"""Golden-run regression: a fixed-seed Figure 9 slice, compared exactly.

The snapshot in ``tests/data/figure9_golden.json`` pins every observable
a figure could read off three Figure 9 cells (Designs A, C, F on ``art``
under Multicast Fast-LRU) at ``measure=150, seed=1``. Any behavioural
drift in the cache model, the network timing, or the trace generator
shows up as an exact mismatch here before it silently bends the curves.

To regenerate after an *intentional* model change::

    PYTHONPATH=src python tests/validation/test_golden.py

then review the diff like any other code change.
"""

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "figure9_golden.json"

DESIGNS = ("A", "C", "F")
SCHEME = "multicast+fast_lru"
BENCHMARK = "art"
MEASURE = 150
SEED = 1


def compute_snapshot() -> dict:
    """Every golden observable of the pinned cells, JSON-ready."""
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.runner import reset_memo, run_cells, spec_for

    reset_memo()
    config = ExperimentConfig(measure=MEASURE, seed=SEED)
    specs = [spec_for(d, SCHEME, BENCHMARK, config) for d in DESIGNS]
    results = run_cells(specs, jobs=1, cache=None)
    reset_memo()
    cells = {}
    for result in results:
        cells[result.design] = {
            "scheme": result.scheme,
            "benchmark": result.benchmark,
            "accesses": result.accesses,
            "instructions": result.instructions,
            "cycles": result.cycles,
            "ipc": result.ipc,
            "hit_rate": result.hit_rate,
            "hits": result.content.hits,
            "misses": result.content.misses,
            "writebacks": result.content.writebacks,
            "average_latency": result.average_latency,
            "average_hit_latency": result.average_hit_latency,
            "average_miss_latency": result.average_miss_latency,
            "network_latency_sum": result.latency.network_sum,
            "bank_latency_sum": result.latency.bank_sum,
            "memory_latency_sum": result.latency.memory_sum,
            "memory_reads": result.memory_reads,
            "memory_writebacks": result.memory_writebacks,
            "contents_digest": result.contents_digest,
            "metrics": result.metrics,
        }
    return {
        "scheme": SCHEME,
        "benchmark": BENCHMARK,
        "measure": MEASURE,
        "seed": SEED,
        "cells": cells,
    }


class TestGoldenFigure9Slice:
    def test_snapshot_matches_exactly(self):
        assert GOLDEN_PATH.exists(), (
            f"{GOLDEN_PATH} missing; generate it with "
            "`PYTHONPATH=src python tests/validation/test_golden.py`"
        )
        golden = json.loads(GOLDEN_PATH.read_text())
        # JSON round-trip the live snapshot so both sides have identical
        # type coercions (tuples->lists, int keys->str); floats survive
        # this exactly (repr round-trip), so the compare stays bitwise.
        live = json.loads(json.dumps(compute_snapshot()))
        assert live == golden

    def test_golden_file_is_normalized_json(self):
        text = GOLDEN_PATH.read_text()
        golden = json.loads(text)
        assert text == json.dumps(golden, indent=2, sort_keys=True) + "\n"
        assert set(golden["cells"]) == set(DESIGNS)


def _regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    snapshot = json.loads(json.dumps(compute_snapshot()))
    GOLDEN_PATH.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate()
