"""Tests for the seeded fuzzer: generation, shrinking, bug detection."""

import random

import pytest

from repro.noc.router import Router
from repro.validation import (
    AnalysisCase,
    CacheCase,
    NocCase,
    OracleCase,
    PacketSpec,
    case_to_pytest,
    fuzz,
    generate_case,
    run_case,
    shrink_case,
    shrink_list,
)


@pytest.fixture(autouse=True)
def _fresh_engine():
    from repro.experiments.runner import reset_memo

    reset_memo()
    yield
    reset_memo()


class TestGeneration:
    def test_same_seed_same_cases(self):
        for family in ("noc", "cache", "oracle"):
            first = generate_case(family, random.Random(f"7/{family}"))
            second = generate_case(family, random.Random(f"7/{family}"))
            assert first == second

    def test_families_produce_their_case_types(self):
        rng = random.Random(0)
        assert isinstance(generate_case("noc", rng), NocCase)
        assert isinstance(generate_case("cache", rng), CacheCase)
        assert isinstance(generate_case("oracle", rng), OracleCase)
        assert isinstance(generate_case("analysis", rng), AnalysisCase)

    def test_unknown_family_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError, match="unknown fuzz family"):
            generate_case("quantum", random.Random(0))

    def test_case_reprs_round_trip(self):
        rng = random.Random(3)
        for family in ("noc", "cache", "oracle", "analysis"):
            case = generate_case(family, rng)
            assert eval(repr(case)) == case  # repros are pasted verbatim


class TestCleanFuzzPasses:
    def test_small_campaign_is_green(self):
        report = fuzz(10, seed=1)
        assert report.ok, report.render()
        assert report.cases_run == 10
        assert "all passed" in report.summary_line()

    def test_single_family_campaigns(self):
        assert fuzz(4, seed=2, families=("noc",)).ok
        assert fuzz(4, seed=2, families=("cache",)).ok

    def test_analysis_family_campaign_is_green(self):
        # Every generated snippet must be caught by its expected rule:
        # the fuzz campaign doubles as a recall test of the lint engine.
        report = fuzz(20, seed=3, families=("analysis",))
        assert report.ok, report.render()

    def test_analysis_case_detects_a_lobotomized_engine(self, monkeypatch):
        # If the analyzer stops reporting (simulated by running with an
        # empty rule set), the family must fail loudly, not pass vacuously.
        import repro.analysis
        from repro.errors import ValidationError
        from repro.validation.fuzzer import _run_analysis_case

        case = generate_case("analysis", random.Random(11))
        monkeypatch.setattr(
            repro.analysis, "analyze_source",
            lambda path, source, module=None, rules=None: [],
        )
        with pytest.raises(ValidationError, match="missed a violating"):
            _run_analysis_case(case)

    @pytest.mark.slow
    def test_acceptance_campaign_100_cases(self):
        report = fuzz(100, seed=1)
        assert report.ok, report.render()


class TestShrinkList:
    def test_shrinks_to_single_culprit(self):
        items = list(range(20))
        shrunk = shrink_list(items, lambda kept: 13 in kept)
        assert shrunk == [13]

    def test_keeps_interacting_pair(self):
        items = list(range(20))
        shrunk = shrink_list(items, lambda kept: 3 in kept and 17 in kept)
        assert shrunk == [3, 17]

    def test_never_returns_empty(self):
        shrunk = shrink_list([1, 2, 3], lambda kept: True)
        assert shrunk  # a repro with no content reproduces nothing


class TestReproEmission:
    def test_emitted_module_compiles_and_runs(self):
        case = NocCase(
            kind="mesh", cols=3, rows=3,
            packets=(PacketSpec("read_request", (0, 0), ((2, 2),)),),
        )
        source = case_to_pytest(case, error="example failure")
        namespace = {}
        exec(compile(source, "<repro>", "exec"), namespace)
        namespace["test_fuzz_repro"]()  # the clean case just passes

    def test_repro_mentions_error_and_case(self):
        case = CacheCase(policy="lru", bank_of_way=(0, 1), accesses=((1, False),))
        source = case_to_pytest(case, error="boom")
        assert "# fails with: boom" in source
        assert "CacheCase" in source
        assert "run_case(case)" in source


def _replica_dropping_split(original):
    """A deliberately buggy ``_split_multicast`` that loses one replica."""

    def buggy(self, port, vc, flit, groups, cycle):
        before = self.stats.replications
        original(self, port, vc, flit, groups, cycle)
        if self.stats.replications > before:
            for unit in self.inputs.values():
                for bvc in unit:
                    if bvc.fifo and bvc.head().packet is flit.packet \
                            and bvc.head() is not flit:
                        bvc.fifo.clear()
                        bvc.active_packet = None

    return buggy


class TestInjectedBugIsCaught:
    def test_dropped_replica_caught_and_shrunk(self, monkeypatch):
        monkeypatch.setattr(
            Router, "_split_multicast",
            _replica_dropping_split(Router._split_multicast),
        )
        report = fuzz(20, seed=1, families=("noc",))
        assert not report.ok, "fuzzer missed a router that drops replicas"
        failure = report.failures[0]
        assert failure.family == "noc"
        # The shrunk case is a minimal repro: few packets, and at least
        # one multicast (the only traffic the bug can touch).
        assert isinstance(failure.shrunk, NocCase)
        assert len(failure.shrunk.packets) <= 2
        assert any(
            len(p.destinations) > 1 for p in failure.shrunk.packets
        )
        assert "NocCase" in failure.repro
        assert "run_case(case)" in failure.repro
        assert failure.index == int(failure.index)
        assert failure.render()

    def test_shrunk_repro_still_fails(self, monkeypatch):
        monkeypatch.setattr(
            Router, "_split_multicast",
            _replica_dropping_split(Router._split_multicast),
        )
        report = fuzz(20, seed=1, families=("noc",))
        shrunk = report.failures[0].shrunk
        with pytest.raises(Exception):
            run_case(shrunk)

    def test_failing_index_reproduces_in_isolation(self, monkeypatch):
        monkeypatch.setattr(
            Router, "_split_multicast",
            _replica_dropping_split(Router._split_multicast),
        )
        report = fuzz(20, seed=1, families=("noc",))
        failure = report.failures[0]
        rng = random.Random(f"{report.seed}/{failure.index}/{failure.family}")
        assert generate_case(failure.family, rng) == failure.case


class TestCacheShrinking:
    def test_cache_case_shrinks_access_tail(self):
        # A synthetic always-failing cache case: the shrinker must cut the
        # access list down without ever producing an empty sequence.
        case = CacheCase(
            policy="lru", bank_of_way=(0, 0, 1, 1),
            accesses=tuple((t % 8, False) for t in range(30)),
        )
        calls = []

        def run_and_fail(c):
            calls.append(c)
            raise AssertionError("synthetic failure")

        import repro.validation.fuzzer as fuzzer_module

        original = fuzzer_module.run_case
        fuzzer_module.run_case = run_and_fail
        try:
            shrunk = shrink_case(case)
        finally:
            fuzzer_module.run_case = original
        assert isinstance(shrunk, CacheCase)
        assert 1 <= len(shrunk.accesses) < 30
