"""Unit tests for the live invariant checkers."""

import pytest

from repro.errors import ValidationError
from repro.noc.network import Network
from repro.noc.packet import MessageType, Packet
from repro.noc.router import Router
from repro.noc.topology import (
    HaloTopology,
    MeshTopology,
    SimplifiedMeshTopology,
    spike_node,
)
from repro.validation import (
    BlockConservationChecker,
    ChannelOrderChecker,
    FlitConservationChecker,
    MulticastDeliveryChecker,
    TransactionTimingChecker,
    default_network_checkers,
    run_with_checkers,
)


def checked_network(topology) -> Network:
    network = Network(topology)
    for checker in default_network_checkers(topology):
        network.install_checker(checker)
    return network


class TestCleanTrafficPasses:
    def test_simplified_mesh_multicast_and_unicast(self):
        topology = SimplifiedMeshTopology(4, 4)
        network = checked_network(topology)
        network.inject(
            Packet(MessageType.READ_REQUEST, (0, 0),
                   tuple((2, y) for y in range(4)))
        )
        network.inject(Packet(MessageType.HIT_DATA, (2, 3), ((2, 0),)))
        run_with_checkers(network)
        assert len(network.stats.deliveries) == 5

    def test_full_mesh_wormholes(self):
        network = checked_network(MeshTopology(3, 3))
        network.inject(Packet(MessageType.MEMORY_FILL, (0, 0), ((2, 2),)))
        network.schedule_injection(
            Packet(MessageType.WRITEBACK, (2, 0), ((0, 2),)), at_cycle=4
        )
        run_with_checkers(network)
        assert len(network.stats.deliveries) == 2

    def test_halo_multicast_down_a_spike(self):
        topology = HaloTopology(4, 4)
        network = checked_network(topology)
        network.inject(
            Packet(MessageType.READ_REQUEST, topology.core_attach,
                   tuple(spike_node(0, i) for i in range(4)))
        )
        run_with_checkers(network)
        assert len(network.stats.deliveries) == 4

    def test_channel_order_checker_saw_grants(self):
        topology = SimplifiedMeshTopology(4, 3)
        network = checked_network(topology)
        order = next(
            c for c in network.checkers if isinstance(c, ChannelOrderChecker)
        )
        network.inject(Packet(MessageType.READ_REQUEST, (0, 0), ((3, 2),)))
        run_with_checkers(network)
        assert order.grants_checked > 0

    def test_returns_cycles_consumed(self):
        network = checked_network(SimplifiedMeshTopology(3, 3))
        network.inject(Packet(MessageType.READ_REQUEST, (0, 0), ((2, 2),)))
        cycles = run_with_checkers(network)
        assert cycles > 0
        assert network.idle()


class TestCheckersCatchBreakage:
    def test_flit_conservation_catches_a_vanished_flit(self):
        from repro.config import RouterConfig

        # A pipelined router holds flits in VC buffers across cycle
        # boundaries (the single-cycle router forwards them the same
        # cycle, so buffers are always empty when the checker runs).
        topology = MeshTopology(3, 3)
        network = Network(topology, router_config=RouterConfig(single_cycle=False))
        for checker in default_network_checkers(topology):
            network.install_checker(checker)
        network.inject(Packet(MessageType.READ_REQUEST, (0, 0), ((2, 2),)))
        for _ in range(10):
            network.step()
            if network.total_buffered_flits():
                break
        assert network.total_buffered_flits()  # flit rests in a router VC
        # Reach into the routers and drop the buffered flit on the floor.
        for router in network.routers.values():
            for unit in router.inputs.values():
                for vc in unit:
                    if vc.fifo:
                        vc.fifo.clear()
        with pytest.raises(ValidationError, match="flit conservation"):
            network.step()

    def test_credit_conservation_catches_a_leaked_credit(self):
        network = checked_network(MeshTopology(3, 3))
        network.inject(Packet(MessageType.READ_REQUEST, (0, 0), ((2, 2),)))
        router = network.routers[(0, 0)]
        key = next(iter(router.credits))
        router.credits[key] -= 1  # a slot the downstream never consumed
        with pytest.raises(ValidationError, match="credit conservation"):
            run_with_checkers(network)

    def test_channel_order_rejects_descending_grant(self):
        from repro.noc.router import _Forward

        topology = SimplifiedMeshTopology(4, 4)
        network = checked_network(topology)
        order = next(
            c for c in network.checkers if isinstance(c, ChannelOrderChecker)
        )
        packet = Packet(MessageType.READ_REQUEST, (1, 0), ((3, 0),))
        flit = packet.flits()[0]
        router = network.routers[(2, 0)]
        # Legal grant: X+ out of (2, 0) -- an X-class channel...
        order.on_switch(router, (1, 0), _Forward(flit, (3, 0), 0), cycle=0)
        # ...then a Y- grant, whose class enumerates *below* every X
        # channel: descending, so the dependency cycle check must fire.
        up = network.routers[(3, 1)]
        with pytest.raises(ValidationError, match="channel-order"):
            order.on_switch(up, (3, 2), _Forward(flit, (3, 0), 0), cycle=1)

    def test_channel_order_requires_simplified_mesh(self):
        with pytest.raises(ValidationError, match="simplified"):
            ChannelOrderChecker(MeshTopology(3, 3))

    def test_multicast_delivery_checker_flags_missing_replicas(self):
        checker = MulticastDeliveryChecker()
        packet = Packet(MessageType.READ_REQUEST, (0, 0), ((1, 0), (2, 0)))
        checker.on_inject(None, packet)
        assert len(checker.missing()) == 2
        with pytest.raises(ValidationError, match="never completed"):
            checker.final_check(None)

    def test_stall_watchdog_catches_lost_delivery(self, monkeypatch):
        # Drop every multicast replica: the borrowed destinations starve
        # and the checked run must abort at the stall limit, not at
        # max_cycles.
        original = Router._split_multicast

        def buggy(self, port, vc, flit, groups, cycle):
            before = self.stats.replications
            original(self, port, vc, flit, groups, cycle)
            if self.stats.replications > before:
                # Undo the replica's buffer occupancy: it vanishes.
                for unit in self.inputs.values():
                    for bvc in unit:
                        if bvc.fifo and bvc.head().packet is flit.packet \
                                and bvc.head() is not flit:
                            bvc.fifo.clear()
                            bvc.active_packet = None

        monkeypatch.setattr(Router, "_split_multicast", buggy)
        topology = SimplifiedMeshTopology(3, 3)
        network = Network(topology)  # no conservation checkers: isolate stall
        network.inject(
            Packet(MessageType.READ_REQUEST, (0, 0), ((2, 0), (0, 2)))
        )
        with pytest.raises(ValidationError, match="no forward progress"):
            run_with_checkers(network, stall_limit=50)


class TestBlockConservation:
    def test_clean_lru_sequence_passes(self):
        from repro.cache.bankset import BankSetState
        from repro.cache.replacement import policy_by_name

        policy = policy_by_name("lru")
        state = BankSetState([0, 0, 1, 1])
        checker = BlockConservationChecker(shadow_lru=True)
        for tag in (1, 2, 3, 4, 5, 2, 1, 6):
            before = state.resident_tags()
            outcome = policy.access(state, tag, False)
            checker.check(tag, before, state, outcome, key="t")
        assert checker.checked == 8

    def test_duplicate_block_detected(self):
        from repro.cache.bankset import BankSetState, BlockState

        state = BankSetState([0, 1])
        state.ways[0] = BlockState(tag=3)
        state.ways[1] = BlockState(tag=3)
        checker = BlockConservationChecker()
        from repro.cache.bankset import AccessOutcome

        with pytest.raises(ValidationError, match="duplicated"):
            checker.check(3, [3, 3], state, AccessOutcome(hit=True, way=0, bank=0))

    def test_dropped_block_detected(self):
        from repro.cache.bankset import AccessOutcome, BankSetState, BlockState

        state = BankSetState([0, 1])
        state.ways[0] = BlockState(tag=7)
        # Claimed miss-fill of tag 5, but tag 5 never landed and tag 2
        # silently vanished from the before-state.
        checker = BlockConservationChecker()
        with pytest.raises(ValidationError, match="conservation broken"):
            checker.check(5, [7, 2], state, AccessOutcome(hit=False))

    def test_shadow_lru_catches_wrong_victim(self):
        from repro.cache.bankset import BankSetState
        from repro.cache.replacement import LRUPolicy

        class WrongVictimLRU(LRUPolicy):
            def _miss(self, state, tag, is_write):
                outcome = super()._miss(state, tag, is_write)
                if outcome.victim is not None:
                    # Misreport which block left.
                    return type(outcome)(
                        hit=False,
                        moved_boundaries=outcome.moved_boundaries,
                        victim=None,
                    )
                return outcome

        policy = WrongVictimLRU()
        state = BankSetState([0, 1])
        checker = BlockConservationChecker(shadow_lru=True)
        with pytest.raises(ValidationError):
            for tag in (1, 2, 3):
                before = state.resident_tags()
                outcome = policy.access(state, tag, False)
                checker.check(tag, before, state, outcome, key="t")

    def test_installs_on_cache_array(self):
        from repro.cache.address import AddressMapper
        from repro.cache.array import CacheArray
        from repro.cache.bank import bank_descriptors_for_column
        from repro.cache.replacement import policy_by_name

        mapper = AddressMapper()
        columns = [
            bank_descriptors_for_column([64 * 1024, 64 * 1024])
            for _ in range(mapper.num_columns)
        ]
        array = CacheArray(columns, policy_by_name("fast_lru"), mapper)
        checker = BlockConservationChecker(shadow_lru=True)
        array.validator = checker
        for tag in range(6):
            array.access(mapper.decode(mapper.encode(tag, 0, 0)))
        assert checker.checked == 6


class TestTransactionTiming:
    def test_clean_system_run_passes(self):
        from repro.core.system import NetworkedCacheSystem
        from repro.workloads import TraceGenerator, profile_by_name

        profile = profile_by_name("twolf")
        trace, warmup = TraceGenerator(profile, seed=3).generate_with_warmup(
            measure=120
        )
        system = NetworkedCacheSystem(design="B", scheme="multicast+fast_lru")
        checker = TransactionTimingChecker()
        system.engine.validators.append(checker)
        system.run(trace, profile, warmup=warmup)
        assert checker.checked == 120

    def test_rejects_acausal_timing(self):
        from repro.cache.bankset import AccessOutcome
        from repro.core.flows import AccessTiming

        checker = TransactionTimingChecker()
        timing = AccessTiming(
            issued=10, data_at_core=5, completion=4, hit=True,
            bank_position=0, settled=5,
        )
        with pytest.raises(ValidationError, match="before issue"):
            checker.on_transaction(0, AccessOutcome(hit=True, bank=0), timing)

    def test_rejects_outcome_mismatch(self):
        from repro.cache.bankset import AccessOutcome
        from repro.core.flows import AccessTiming

        checker = TransactionTimingChecker()
        timing = AccessTiming(
            issued=0, data_at_core=5, completion=6, hit=True,
            bank_position=0, settled=6,
        )
        with pytest.raises(ValidationError, match="hit"):
            checker.on_transaction(0, AccessOutcome(hit=False), timing)
