"""Tests for the differential oracle (engine path vs checked replay)."""

import dataclasses

import pytest

from repro.experiments import runner
from repro.experiments.common import ExperimentConfig
from repro.validation import Tolerances, run_oracle
from repro.validation.differential import _sample_indices


@pytest.fixture(autouse=True)
def _fresh_engine():
    runner.reset_memo()
    yield
    runner.reset_memo()


class TestSampleIndices:
    def test_empty_and_degenerate(self):
        assert _sample_indices(0, 4) == []
        assert _sample_indices(10, 0) == []
        assert _sample_indices(-1, 3) == []

    def test_sample_covers_everything_when_small(self):
        assert _sample_indices(3, 8) == [0, 1, 2]
        assert _sample_indices(1, 1) == [0]

    def test_even_spread_hits_both_ends(self):
        indices = _sample_indices(100, 5)
        assert indices[0] == 0
        assert indices[-1] == 99
        assert indices == sorted(set(indices))
        assert len(indices) == 5

    def test_deterministic(self):
        assert _sample_indices(240, 4) == _sample_indices(240, 4)


class TestOracleAgreement:
    def test_multicast_cell_agrees(self):
        report = run_oracle(
            design="A", scheme="multicast+fast_lru", benchmark="art",
            measure=150, seed=1, sample=3,
        )
        assert report.ok, report.render()
        assert report.engine_hits == report.replay_hits
        assert report.engine_digest == report.replay_digest
        assert report.accesses == 150
        assert report.conservation_checks > 0
        assert report.timing_checks == 150
        assert report.legs  # flit-level re-enactment actually ran
        for leg in report.legs:
            assert leg.delivered_hops == leg.predicted_hops

    def test_unicast_cell_agrees(self):
        report = run_oracle(
            design="F", scheme="unicast+lru", benchmark="twolf",
            measure=120, seed=2, sample=2,
        )
        assert report.ok, report.render()
        assert "OK" in report.summary_line()

    def test_report_renders_every_leg(self):
        report = run_oracle(measure=90, sample=2)
        text = report.render()
        assert report.summary_line() in text
        assert text.count("[ok]") == len(report.legs)


class TestOracleCatchesDivergence:
    def _poison_memo(self, **changes):
        """Replace the lone memoised engine result with a tampered copy."""
        [(spec, result)] = runner._memo.items()
        runner._memo[spec] = dataclasses.replace(result, **changes)

    def test_detects_corrupted_hit_counts(self):
        spec = runner.spec_for(
            "A", "multicast+fast_lru", "art",
            ExperimentConfig(measure=90, seed=1),
        )
        runner.run_cells([spec])
        [(spec, result)] = runner._memo.items()
        bad_content = dataclasses.replace(
            result.content, hits=result.content.hits + 3
        )
        self._poison_memo(content=bad_content)
        report = run_oracle(measure=90, sample=0)
        assert not report.ok
        assert any("hit counts diverge" in d for d in report.divergences)
        assert "DIVERGENCES" in report.summary_line()

    def test_detects_corrupted_contents_digest(self):
        spec = runner.spec_for(
            "A", "multicast+fast_lru", "art",
            ExperimentConfig(measure=90, seed=1),
        )
        runner.run_cells([spec])
        self._poison_memo(contents_digest="deadbeef")
        report = run_oracle(measure=90, sample=0)
        assert not report.ok
        assert any("contents diverge" in d for d in report.divergences)
        assert "DIVERGENCE" in report.render()

    def test_hit_tolerance_absorbs_small_drift(self):
        spec = runner.spec_for(
            "A", "multicast+fast_lru", "art",
            ExperimentConfig(measure=90, seed=1),
        )
        runner.run_cells([spec])
        [(spec, result)] = runner._memo.items()
        bad_content = dataclasses.replace(
            result.content, hits=result.content.hits + 1,
            misses=result.content.misses - 1,
        )
        self._poison_memo(content=bad_content)
        report = run_oracle(
            measure=90, sample=0,
            tolerances=Tolerances(hit_count=1, contents_exact=True),
        )
        assert report.ok, report.render()
