"""Hypothesis property tests: address codec and XYX path legality."""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cache.address import AddressMapper
from repro.errors import RoutingError
from repro.noc.routing import (
    XYXRouting,
    xyx_path_channel_numbers,
)
from repro.noc.topology import MeshTopology, SimplifiedMeshTopology

MAPPER = AddressMapper()
LAYOUT = MAPPER.layout

raw_addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)
tags = st.integers(min_value=0, max_value=(1 << LAYOUT.tag_bits) - 1)
indices = st.integers(min_value=0, max_value=(1 << LAYOUT.index_bits) - 1)
columns = st.integers(min_value=0, max_value=(1 << LAYOUT.column_bits) - 1)
offsets = st.integers(min_value=0, max_value=(1 << LAYOUT.offset_bits) - 1)


class TestAddressCodecProperties:
    @given(raw=raw_addresses)
    def test_decode_then_encode_round_trips(self, raw):
        address = MAPPER.decode(raw)
        assert (
            MAPPER.encode(
                address.tag, address.index, address.column, address.offset
            )
            == raw
        )

    @given(tag=tags, index=indices, column=columns, offset=offsets)
    def test_encode_then_decode_recovers_fields(self, tag, index, column, offset):
        address = MAPPER.decode(MAPPER.encode(tag, index, column, offset))
        assert (address.tag, address.index, address.column, address.offset) == (
            tag, index, column, offset,
        )

    @given(raw=raw_addresses)
    def test_block_address_clears_exactly_the_offset(self, raw):
        address = MAPPER.decode(raw)
        block = MAPPER.decode(address.block_address)
        assert block.offset == 0
        assert (block.tag, block.index, block.column) == (
            address.tag, address.index, address.column,
        )
        assert MAPPER.block_number(raw) == raw >> LAYOUT.offset_bits


@st.composite
def mesh_pairs(draw):
    """Random full-mesh geometry plus an arbitrary (src, dst) pair."""
    cols = draw(st.integers(min_value=2, max_value=8))
    rows = draw(st.integers(min_value=2, max_value=8))
    node = st.tuples(
        st.integers(min_value=0, max_value=cols - 1),
        st.integers(min_value=0, max_value=rows - 1),
    )
    return cols, rows, draw(node), draw(node)


@st.composite
def simplified_pairs(draw):
    """Random simplified-mesh geometry plus a *routable* (src, dst) pair:
    same column, or an endpoint on the row-0 spine (the only places the
    simplified mesh keeps horizontal channels)."""
    cols = draw(st.integers(min_value=2, max_value=8))
    rows = draw(st.integers(min_value=2, max_value=8))
    xs = st.integers(min_value=0, max_value=cols - 1)
    ys = st.integers(min_value=0, max_value=rows - 1)
    shape = draw(st.sampled_from(["same_column", "src_on_spine", "dst_on_spine"]))
    if shape == "same_column":
        x = draw(xs)
        src, dst = (x, draw(ys)), (x, draw(ys))
    elif shape == "src_on_spine":
        src, dst = (draw(xs), 0), (draw(xs), draw(ys))
    else:
        src, dst = (draw(xs), draw(ys)), (draw(xs), 0)
    return cols, rows, src, dst


class TestXYXPathProperties:
    @given(case=mesh_pairs())
    @settings(max_examples=200)
    def test_full_mesh_paths_strictly_ascend_the_enumeration(self, case):
        cols, rows, src, dst = case
        topology = MeshTopology(cols, rows)
        path = XYXRouting().path(topology, src, dst)
        assert path[0] == src and path[-1] == dst
        numbers = xyx_path_channel_numbers(cols, rows, path)
        assert len(numbers) == len(path) - 1
        assert all(a < b for a, b in zip(numbers, numbers[1:]))

    @given(case=simplified_pairs())
    @settings(max_examples=200)
    def test_simplified_mesh_routable_pairs_are_legal(self, case):
        cols, rows, src, dst = case
        topology = SimplifiedMeshTopology(cols, rows)
        routing = XYXRouting()
        path = routing.path(topology, src, dst)
        assert path[0] == src and path[-1] == dst
        # Every step is a real channel of the pruned topology.
        for a, b in zip(path, path[1:]):
            assert topology.has_channel(a, b)
        numbers = xyx_path_channel_numbers(cols, rows, path)
        assert all(a < b for a, b in zip(numbers, numbers[1:]))
        assert routing.hops(topology, src, dst) == len(path) - 1

    @given(case=mesh_pairs())
    @settings(max_examples=200)
    def test_simplified_mesh_rejects_exactly_the_off_spine_pairs(self, case):
        cols, rows, src, dst = case
        legal = src[0] == dst[0] or src[1] == 0 or dst[1] == 0
        topology = SimplifiedMeshTopology(cols, rows)
        if legal:
            XYXRouting().path(topology, src, dst)
        else:
            with pytest.raises(RoutingError):
                XYXRouting().path(topology, src, dst)

    @given(case=mesh_pairs())
    @settings(max_examples=100)
    def test_hop_count_matches_manhattan_distance(self, case):
        cols, rows, src, dst = case
        topology = MeshTopology(cols, rows)
        hops = XYXRouting().hops(topology, src, dst)
        assert hops == abs(src[0] - dst[0]) + abs(src[1] - dst[1])
