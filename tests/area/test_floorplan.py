"""Unit tests for floorplans and the Table-4 accounting."""

import pytest

from repro.area.floorplan import FloorPlanner, halo_layout
from repro.core.designs import design_a, design_b, design_e, design_f, design_spec
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def planner():
    return FloorPlanner()


@pytest.fixture(scope="module")
def areas(planner):
    return {key: planner.design_area(design_spec(key)) for key in "ABEF"}


class TestDesignAreas:
    def test_design_a_network_share(self, areas):
        # Paper: the network claims 52% of Design A's cache area.
        assert areas["A"].network_fraction == pytest.approx(0.52, abs=0.05)

    def test_design_a_l2_area(self, areas):
        assert areas["A"].l2_mm2 == pytest.approx(567.7, rel=0.10)

    def test_design_e_matches_paper_closely(self, areas):
        area = areas["E"]
        assert area.l2_mm2 == pytest.approx(402.3, rel=0.05)
        assert area.chip_mm2 == pytest.approx(1602, rel=0.05)

    def test_simplification_shrinks_network(self, areas):
        assert areas["B"].router_mm2 < areas["A"].router_mm2
        assert areas["B"].link_mm2 < areas["A"].link_mm2
        assert areas["B"].bank_mm2 == pytest.approx(areas["A"].bank_mm2)

    def test_f_is_smallest_l2(self, areas):
        assert areas["F"].l2_mm2 < min(
            areas[k].l2_mm2 for k in "ABE"
        )

    def test_interconnect_headline(self, areas):
        a = areas["A"]
        f = areas["F"]
        ratio = (f.router_mm2 + f.link_mm2) / (a.router_mm2 + a.link_mm2)
        assert ratio < 0.30  # paper: ~23%

    def test_fractions_sum_to_one(self, areas):
        for area in areas.values():
            assert area.bank_fraction + area.router_fraction \
                + area.link_fraction == pytest.approx(1.0)

    def test_chip_at_least_l2(self, planner):
        for key in "ABCDEF":
            area = planner.design_area(design_spec(key))
            assert area.chip_mm2 >= area.l2_mm2

    def test_as_row_shape(self, areas):
        row = areas["A"].as_row()
        assert set(row) == {
            "design", "bank %", "router %", "link %", "L2 area (mm2)",
            "chip area (mm2)",
        }


class TestHaloLayout:
    def test_segments_match_bank_order(self, planner):
        layout = halo_layout(design_f, planner)
        capacities = [seg.capacity_bytes for seg in layout["segments"]]
        assert capacities == [65536, 65536, 131072, 262144, 524288]

    def test_segments_contiguous(self, planner):
        layout = halo_layout(design_f, planner)
        segments = layout["segments"]
        for previous, current in zip(segments, segments[1:]):
            assert current.start_mm == pytest.approx(previous.end_mm)

    def test_die_side_geometry(self, planner):
        layout = halo_layout(design_e, planner)
        assert layout["die_side_mm"] == pytest.approx(
            2 * layout["spike_extent_mm"] + 4.0
        )

    def test_mesh_designs_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            halo_layout(design_a, planner)

    def test_uniform_spike_longer_than_non_uniform(self, planner):
        assert planner.spike_extent(design_e) > planner.spike_extent(design_f)
