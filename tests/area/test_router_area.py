"""Unit tests for the router area model."""

import pytest

from repro.area import RouterAreaModel
from repro.errors import ConfigurationError


class TestRouterAreaModel:
    def test_simplification_ratio_is_48_percent(self):
        # Section 6.3: the 3-port router is 48% of the 5-port router.
        assert RouterAreaModel().simplification_ratio == pytest.approx(0.48, abs=0.01)

    def test_full_router_calibration(self):
        # 256 routers at ~0.46 mm^2 = ~118 mm^2 (20.8% of Design A).
        assert 256 * RouterAreaModel().full_router_area == pytest.approx(118, rel=0.02)

    def test_area_grows_with_ports(self):
        model = RouterAreaModel()
        areas = [model.router_area(p) for p in (2, 3, 4, 5)]
        assert areas == sorted(areas)

    def test_crossbar_quadratic_in_ports(self):
        model = RouterAreaModel()
        assert model.crossbar_area(10) == pytest.approx(4 * model.crossbar_area(5))

    def test_buffer_linear_in_ports(self):
        model = RouterAreaModel()
        assert model.buffer_area(10) == pytest.approx(2 * model.buffer_area(5))

    def test_asymmetric_crossbar(self):
        model = RouterAreaModel()
        assert model.crossbar_area(3, 5) == pytest.approx(
            model.crossbar_area(5, 3)
        )

    def test_invalid_ports(self):
        with pytest.raises(ConfigurationError):
            RouterAreaModel().router_area(0)
