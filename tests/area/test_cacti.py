"""Unit tests for the Cacti-style bank area model."""

import pytest

from repro.area import BankAreaModel
from repro.errors import ConfigurationError

KB = 1024


class TestBankAreaModel:
    def test_calibrated_64kb_area(self):
        model = BankAreaModel()
        # 256 banks must total ~271 mm^2 (47.8% of Design A's 567.7).
        assert 256 * model.area_mm2(64 * KB) == pytest.approx(271, rel=0.02)

    def test_area_grows_with_capacity(self):
        model = BankAreaModel()
        areas = [model.area_mm2(c * KB) for c in (64, 128, 256, 512)]
        assert areas == sorted(areas)

    def test_sublinear_scaling(self):
        model = BankAreaModel()
        # Doubling capacity less than doubles area.
        assert model.area_mm2(128 * KB) < 2 * model.area_mm2(64 * KB)

    def test_density_improves_with_capacity(self):
        model = BankAreaModel()
        assert model.density_mb_per_mm2(512 * KB) > model.density_mb_per_mm2(64 * KB)

    def test_non_uniform_column_denser_than_uniform(self):
        model = BankAreaModel()
        uniform = 16 * model.area_mm2(64 * KB)
        non_uniform = (
            2 * model.area_mm2(64 * KB)
            + model.area_mm2(128 * KB)
            + model.area_mm2(256 * KB)
            + model.area_mm2(512 * KB)
        )
        assert non_uniform < uniform

    def test_access_latency_lookup(self):
        assert BankAreaModel.access_latency(64 * KB) == 2
        assert BankAreaModel.access_latency(64 * KB, replace=True) == 3

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            BankAreaModel().area_mm2(0)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BankAreaModel(area_64kb_mm2=0)
        with pytest.raises(ConfigurationError):
            BankAreaModel(capacity_exponent=1.5)
