"""Unit tests for the RC wire-delay model."""

import pytest

from repro.area import FloorPlanner, WireModel
from repro.config import BankTiming, supported_bank_capacities
from repro.errors import ConfigurationError


class TestWireModel:
    def test_delay_linear_in_length(self):
        wire = WireModel()
        assert wire.delay_ps(2.0) == pytest.approx(2 * wire.delay_ps(1.0))

    def test_reproduces_table1_wire_cycles(self):
        """The calibrated RC model + tile sizes land exactly on Table 1."""
        wire = WireModel()
        planner = FloorPlanner()
        for capacity in supported_bank_capacities():
            side = planner.tile_side(capacity, 3)
            assert wire.cycles(side) == BankTiming.for_capacity(capacity).wire_delay

    def test_cycles_round_up(self):
        wire = WireModel()
        # 160 ps/mm at 5 GHz (200 ps/cycle): 1 mm -> 1 cycle, 2 mm -> 2.
        assert wire.cycles(1.0) == 1
        assert wire.cycles(2.0) == 2

    def test_zero_length_is_free(self):
        assert WireModel().cycles(0) == 0

    def test_minimum_one_cycle(self):
        assert WireModel().cycles(0.01) == 1

    def test_unrepeated_is_quadratic(self):
        wire = WireModel()
        assert wire.unrepeated_delay_ps(2.0) == pytest.approx(
            4 * wire.unrepeated_delay_ps(1.0)
        )

    def test_repeaters_beat_unrepeated_for_long_wires(self):
        wire = WireModel()
        assert wire.delay_ps(20.0) < wire.unrepeated_delay_ps(20.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            WireModel().delay_ps(-1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            WireModel(r_per_mm=0)
        with pytest.raises(ConfigurationError):
            WireModel(frequency_ghz=-5)
