"""Unit tests for interval resources and trackers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import FloorClock, OccupancyTracker, Resource


class TestResource:
    def test_grants_immediately_when_free(self):
        resource = Resource()
        assert resource.acquire(10, 5) == 10

    def test_back_to_back_requests_queue(self):
        resource = Resource()
        assert resource.acquire(0, 10) == 0
        assert resource.acquire(0, 10) == 10

    def test_earlier_request_fits_in_gap_before_future_reservation(self):
        resource = Resource()
        # A chain reserves far in the future...
        assert resource.acquire(100, 10) == 100
        # ...but an earlier tag-match slips in front of it.
        assert resource.acquire(5, 10) == 5

    def test_gap_too_small_is_skipped(self):
        resource = Resource()
        resource.acquire(0, 10)     # [0, 10)
        resource.acquire(12, 10)    # [12, 22)
        # A 5-cycle request at t=8 does not fit in [10, 12); starts at 22.
        assert resource.acquire(8, 5) == 22

    def test_exact_fit_gap(self):
        resource = Resource()
        resource.acquire(0, 10)     # [0, 10)
        resource.acquire(15, 10)    # [15, 25)
        assert resource.acquire(0, 5) == 10  # exactly [10, 15)

    def test_zero_duration_is_free(self):
        resource = Resource()
        resource.acquire(0, 10)
        assert resource.acquire(3, 0) == 3

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Resource().acquire(0, -1)

    def test_statistics(self):
        resource = Resource()
        resource.acquire(0, 10)
        resource.acquire(0, 5)
        assert resource.grants == 2
        assert resource.busy_cycles == 15
        assert resource.queued_cycles == 10
        assert resource.utilization(30) == pytest.approx(0.5)

    def test_reset(self):
        resource = Resource()
        resource.acquire(0, 10)
        resource.reset()
        assert resource.acquire(0, 1) == 0
        assert resource.busy_cycles == 1

    def test_is_free_at(self):
        resource = Resource()
        resource.acquire(5, 10)
        assert resource.is_free_at(4)
        assert not resource.is_free_at(5)
        assert not resource.is_free_at(14)
        assert resource.is_free_at(15)

    def test_floor_pruning_keeps_results_correct(self):
        clock = FloorClock()
        resource = Resource(floor_clock=clock)
        for t in range(0, 100, 10):
            resource.acquire(t, 5)
        clock.advance(1000)
        # After pruning, new far-future requests still behave.
        assert resource.acquire(1000, 5) == 1000
        assert resource.acquire(1000, 5) == 1005

    def test_floor_pruning_bounds_interval_list(self):
        clock = FloorClock()
        resource = Resource(floor_clock=clock)
        for t in range(0, 10_000, 10):
            clock.advance(t)
            resource.acquire(t, 5)
        assert len(resource._intervals) < 50

    @given(
        requests=st.lists(
            st.tuples(st.integers(0, 200), st.integers(1, 20)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_granted_intervals_never_overlap(self, requests):
        resource = Resource()
        granted = []
        for time, duration in requests:
            start = resource.acquire(time, duration)
            assert start >= time
            granted.append((start, start + duration))
        granted.sort()
        for (_, end_a), (start_b, _) in zip(granted, granted[1:]):
            assert end_a <= start_b


class TestOccupancyTracker:
    def test_two_servers_allow_two_concurrent(self):
        tracker = OccupancyTracker(2)
        assert tracker.acquire(0, 10) == 0
        assert tracker.acquire(0, 10) == 0
        assert tracker.acquire(0, 10) == 10

    def test_earliest_server_wins(self):
        tracker = OccupancyTracker(2)
        tracker.acquire(0, 10)
        tracker.acquire(0, 4)
        assert tracker.acquire(0, 1) == 4

    def test_single_server_serializes(self):
        tracker = OccupancyTracker(1)
        assert tracker.acquire(0, 3) == 0
        assert tracker.acquire(1, 3) == 3

    def test_invalid_servers_rejected(self):
        with pytest.raises(SimulationError):
            OccupancyTracker(0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            OccupancyTracker(1).acquire(0, -5)

    def test_reset(self):
        tracker = OccupancyTracker(2)
        tracker.acquire(0, 100)
        tracker.reset()
        assert tracker.acquire(0, 1) == 0


class TestFloorClock:
    def test_monotone(self):
        clock = FloorClock()
        clock.advance(10)
        clock.advance(5)
        assert clock.time == 10

    def test_reset(self):
        clock = FloorClock()
        clock.advance(10)
        clock.reset()
        assert clock.time == 0
