"""Unit tests for the event-driven simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import EventQueue, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(5, lambda: order.append(5))
        queue.push(1, lambda: order.append(1))
        queue.push(3, lambda: order.append(3))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == [1, 3, 5]

    def test_fifo_within_same_timestamp(self):
        queue = EventQueue()
        order = []
        for tag in "abc":
            queue.push(7, lambda t=tag: order.append(t))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.push(1, lambda: fired.append("cancelled"))
        queue.push(2, lambda: fired.append("kept"))
        event.cancel()
        while (live := queue.pop()) is not None:
            live.callback()
        assert fired == ["kept"]

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        assert len(queue) == 2
        event.cancel()
        assert len(queue) == 1

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1, lambda: None)
        queue.push(4, lambda: None)
        first.cancel()
        assert queue.peek_time() == 4

    def test_empty_queue(self):
        queue = EventQueue()
        assert queue.pop() is None
        assert queue.peek_time() is None

    def test_len_is_constant_time_bookkeeping(self):
        queue = EventQueue()
        events = [queue.push(t, lambda: None) for t in range(10)]
        for event in events[::2]:
            event.cancel()
        assert len(queue) == 5

    def test_mass_cancellation_compacts_heap(self):
        queue = EventQueue()
        keep = queue.push(1_000_000, lambda: None)
        events = [queue.push(t, lambda: None) for t in range(200)]
        for event in events:
            event.cancel()
        # Cancelled events outnumber live ones; the sweep must have
        # physically removed them rather than leaving tombstones.
        assert len(queue._heap) < 100
        assert len(queue) == 1
        assert queue.pop() is keep

    def test_compaction_preserves_fifo_order(self):
        queue = EventQueue()
        order = []
        live = [queue.push(5, lambda t=tag: order.append(t)) for tag in "abc"]
        doomed = [queue.push(1, lambda: order.append("x")) for _ in range(200)]
        for event in doomed:
            event.cancel()
        assert len(queue) == len(live)
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["a", "b", "c"]

    def test_double_cancel_is_idempotent(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        event.cancel()
        event.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_len(self):
        queue = EventQueue()
        event = queue.push(1, lambda: None)
        queue.push(2, lambda: None)
        popped = queue.pop()
        assert popped is event
        event.cancel()  # too late: already out of the queue
        assert len(queue) == 1

    def test_scheduling_before_last_pop_raises(self):
        queue = EventQueue()
        queue.push(5, lambda: None)
        queue.pop()
        with pytest.raises(SimulationError, match="time 3.*time 5"):
            queue.push(3, lambda: None)

    def test_scheduling_at_last_pop_time_allowed(self):
        # Same-time events after a pop are causal (they fire this cycle).
        queue = EventQueue()
        queue.push(5, lambda: None)
        queue.pop()
        event = queue.push(5, lambda: None)
        assert queue.pop() is event

    def test_compaction_preserves_causality_guard(self):
        # The tombstone sweep rebuilds the heap; it must not relax the
        # last-pop causality floor in the process.
        queue = EventQueue()
        queue.push(10, lambda: None)
        queue.pop()  # floor = 10
        doomed = [queue.push(50, lambda: None) for _ in range(200)]
        for event in doomed:
            event.cancel()
        assert len(queue._heap) < 200  # the sweep physically removed tombstones
        assert queue.last_pop_time == 10
        with pytest.raises(SimulationError, match="time 9.*time 10"):
            queue.push(9, lambda: None)

    def test_compaction_at_floor_keeps_live_same_time_events(self):
        # Cancelled and live events share the timestamp sitting exactly on
        # the causality floor; the sweep must keep precisely the live ones
        # and preserve their scheduling order.
        queue = EventQueue()
        queue.push(5, lambda: None)
        queue.pop()  # floor = 5
        order = []
        doomed = []
        for i in range(300):
            event = queue.push(5, lambda i=i: order.append(i))
            if i % 3:
                doomed.append(event)
        for event in doomed:
            event.cancel()
        assert len(queue._heap) < 300  # compaction happened
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == [i for i in range(300) if i % 3 == 0]

    def test_len_after_cancel_then_push_at_same_timestamp(self):
        queue = EventQueue()
        stale = queue.push(7, lambda: None)
        stale.cancel()
        fresh = queue.push(7, lambda: None)
        assert len(queue) == 1
        assert queue.pop() is fresh
        assert queue.pop() is None
        assert len(queue) == 0

    def test_last_pop_time_none_until_first_pop(self):
        queue = EventQueue()
        assert queue.last_pop_time is None
        queue.push(3, lambda: None)
        assert queue.last_pop_time is None
        queue.pop()
        assert queue.last_pop_time == 3

    def test_high_water_tracks_live_events(self):
        queue = EventQueue()
        events = [queue.push(t, lambda: None) for t in range(4)]
        assert queue.high_water == 4
        events[0].cancel()
        queue.push(9, lambda: None)  # live count back to 4, no new peak
        assert queue.high_water == 4
        while queue.pop() is not None:
            pass
        assert queue.high_water == 4  # peak survives draining


class TestSimulator:
    def test_time_advances_to_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10]
        assert sim.now == 10

    def test_schedule_relative_and_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule(3, lambda: seen.append(("rel", sim.now)))
        sim.schedule_at(1, lambda: seen.append(("abs", sim.now)))
        sim.run()
        assert seen == [("abs", 1), ("rel", 3)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(5, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(2, lambda: None)

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, lambda: seen.append(5))
        sim.schedule(6, lambda: seen.append(6))
        sim.run(until=5)
        assert seen == [5]
        assert sim.now == 5
        sim.run()
        assert seen == [5, 6]

    def test_run_until_advances_time_when_idle(self):
        sim = Simulator()
        sim.run(until=100)
        assert sim.now == 100

    def test_max_events_bound(self):
        sim = Simulator()
        seen = []
        for t in range(10):
            sim.schedule(t + 1, lambda t=t: seen.append(t))
        executed = sim.run(max_events=3)
        assert executed == 3
        assert seen == [0, 1, 2]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append((sim.now, depth))
            if depth:
                sim.schedule(2, lambda: chain(depth - 1))

        sim.schedule(1, lambda: chain(2))
        sim.run()
        assert seen == [(1, 2), (3, 1), (5, 0)]

    def test_pending_events_counter(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_last_event_time_exposes_causality_floor(self):
        sim = Simulator()
        assert sim.last_event_time is None
        sim.schedule(4, lambda: None)
        sim.run()
        assert sim.last_event_time == 4

    def test_watchdog_hook_fires_after_each_event(self):
        sim = Simulator()
        ticks = []
        sim.watchdog = lambda: ticks.append(sim.now)
        sim.schedule(1, lambda: None)
        sim.schedule(3, lambda: None)
        sim.run()
        assert ticks == [1, 3]

    def test_simulator_watchdog_trips_on_livelock(self):
        from repro.errors import ValidationError
        from repro.validation import SimulatorWatchdog

        sim = Simulator()
        SimulatorWatchdog(sim, max_events_per_cycle=10)

        def respawn():
            sim.schedule(0, respawn)  # time never advances

        sim.schedule(1, respawn)
        with pytest.raises(ValidationError, match="livelock"):
            sim.run()

    def test_simulator_watchdog_tolerates_advancing_time(self):
        from repro.validation import SimulatorWatchdog

        sim = Simulator()
        SimulatorWatchdog(sim, max_events_per_cycle=3)

        def chain(remaining):
            if remaining:
                sim.schedule(1, lambda: chain(remaining - 1))

        sim.schedule(1, lambda: chain(20))
        sim.run()  # each event advances the clock: never trips
        assert sim.now == 21

    def test_simulator_watchdog_detach(self):
        from repro.validation import SimulatorWatchdog

        sim = Simulator()
        watchdog = SimulatorWatchdog(sim)
        assert sim.watchdog is not None
        watchdog.detach()
        assert sim.watchdog is None

    def test_publish_metrics_exports_kernel_series(self):
        from repro.telemetry import MetricsRegistry

        sim = Simulator()
        for t in range(5):
            sim.schedule(t + 1, lambda: None)
        sim.run()
        assert sim.queue_high_water == 5
        registry = MetricsRegistry()
        sim.publish_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["sim.kernel.event_queue_high_water"]["value"] == 5
        assert snapshot["sim.kernel.events_executed"]["value"] == 5
