"""Unit tests for the blocking-read issue/IPC model."""

import pytest

from repro.errors import ConfigurationError
from repro.perf import IssueModel


class TestIssueModel:
    def test_perfect_l2_reaches_perfect_ipc(self):
        model = IssueModel(perfect_ipc=0.5)
        for _ in range(100):
            t = model.issue_time(10)
            model.complete(t, is_write=False)  # zero-latency data
        cycles, ipc = model.finish()
        assert ipc == pytest.approx(0.5, rel=0.01)

    def test_read_latency_stalls_retirement(self):
        fast = IssueModel(perfect_ipc=0.5)
        slow = IssueModel(perfect_ipc=0.5)
        for _ in range(50):
            t = fast.issue_time(10)
            fast.complete(t + 1)
            t = slow.issue_time(10)
            slow.complete(t + 200)
        assert slow.finish()[1] < fast.finish()[1]

    def test_writes_do_not_stall(self):
        model = IssueModel(perfect_ipc=0.5)
        for _ in range(50):
            t = model.issue_time(10)
            model.complete(t + 500, is_write=True)
        _, ipc = model.finish()
        assert ipc == pytest.approx(0.5, rel=0.02)

    def test_hide_cycles_absorb_short_latencies(self):
        hidden = IssueModel(perfect_ipc=0.5, hide_cycles=30)
        for _ in range(50):
            t = hidden.issue_time(10)
            hidden.complete(t + 25)
        _, ipc = hidden.finish()
        assert ipc == pytest.approx(0.5, rel=0.02)

    def test_issue_times_monotone(self):
        model = IssueModel(perfect_ipc=1.0)
        previous = -1
        for _ in range(20):
            t = model.issue_time(1)
            model.complete(t + 300)
            assert t >= previous
            previous = t

    def test_tail_instructions_counted(self):
        model = IssueModel(perfect_ipc=1.0)
        model.issue_time(10)
        cycles, _ = model.finish(tail_instructions=90)
        assert model.instructions == 100
        assert cycles >= 100

    def test_reset(self):
        model = IssueModel(perfect_ipc=1.0)
        model.issue_time(100)
        model.reset()
        assert model.instructions == 0
        assert model.issue_time(1) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            IssueModel(perfect_ipc=0)
        with pytest.raises(ConfigurationError):
            IssueModel(perfect_ipc=1.0, hide_cycles=-1)
        with pytest.raises(ConfigurationError):
            IssueModel(perfect_ipc=1.0).issue_time(-5)

    def test_empty_run(self):
        cycles, ipc = IssueModel(perfect_ipc=0.4).finish()
        assert cycles == 0 and ipc == 0.4
