"""The sim-phase wall-time profiler (repro.perf.profiler).

The contract under test: attaching wraps exactly the four shared phase
methods as instance attributes, detaching restores the plain class
methods (zero footprint when off), double-attach is refused, and the
driver attributes nonzero time to every phase on both cores.
"""

import pytest

from repro.noc import MeshTopology, MessageType, Network, Packet
from repro.noc.arraycore import HAVE_NUMPY
from repro.perf import profiler


def _loaded_network():
    network = Network(MeshTopology(3, 3))
    network.inject(
        Packet(MessageType.READ_REQUEST, (0, 0), ((2, 2),))
    )
    return network


class TestAttachDetach:
    def test_attach_profiles_and_detach_restores(self):
        network = _loaded_network()
        profile = profiler.attach(network)
        network.run_until_drained(max_cycles=1_000)
        assert profiler.detach(network) is profile
        # Zero footprint when off: no instance attrs shadow the class.
        for name in profiler.PHASE_METHODS.values():
            assert name not in vars(network)
        assert not hasattr(network, "_phase_profile")
        assert profile.core == "object"
        assert profile.total() > 0.0
        assert all(profile.calls[phase] > 0 for phase in profiler.PHASES)

    def test_unprofiled_network_has_no_wrappers(self):
        network = _loaded_network()
        for name in profiler.PHASE_METHODS.values():
            assert name not in vars(network)

    def test_double_attach_raises(self):
        network = _loaded_network()
        profiler.attach(network)
        with pytest.raises(RuntimeError, match="already"):
            profiler.attach(network)

    def test_detach_without_attach_raises(self):
        with pytest.raises(RuntimeError, match="no phase profiler"):
            profiler.detach(_loaded_network())

    def test_profiled_run_matches_unprofiled(self):
        """Wrapping must observe, never perturb, the simulation."""
        plain = _loaded_network()
        plain.run_until_drained(max_cycles=1_000)
        profiled = _loaded_network()
        profiler.attach(profiled)
        profiled.run_until_drained(max_cycles=1_000)
        profiler.detach(profiled)
        def digest(network):
            # Packet ids are process-global, so compare id-free fields.
            return (
                network.stats.cycles,
                [
                    (d.destination, d.injected_at, d.delivered_at, d.hops)
                    for d in network.stats.deliveries
                ],
            )

        assert digest(profiled) == digest(plain)


class TestProfileShape:
    def test_fractions_sum_to_one_and_merge_adds(self):
        profile = profiler.PhaseProfile("object")
        profile.seconds["switch"] = 3.0
        profile.seconds["inject"] = 1.0
        profile.calls["switch"] = 10
        fractions = profile.fractions()
        assert fractions["switch"] == 0.75
        assert sum(fractions.values()) == pytest.approx(1.0)
        other = profiler.PhaseProfile("object")
        other.seconds["switch"] = 1.0
        other.calls["switch"] = 2
        profile.merge(other)
        assert profile.seconds["switch"] == 4.0
        assert profile.calls["switch"] == 12

    def test_empty_profile_renders_without_dividing_by_zero(self):
        profile = profiler.PhaseProfile("array")
        assert profile.fractions() == {phase: 0.0 for phase in profiler.PHASES}
        assert "array core" in profile.render()

    def test_render_lists_every_phase(self):
        text = profiler.profile_load("object", mesh_size=3, cycles=40).render()
        assert "phase profile (object core" in text
        for phase in profiler.PHASES:
            assert phase in text


@pytest.mark.skipif(not HAVE_NUMPY, reason="array core requires numpy")
class TestArrayCore:
    def test_profile_load_covers_the_array_core(self):
        profile = profiler.profile_load("array", mesh_size=3, cycles=40)
        assert profile.core == "array"
        assert profile.total() > 0.0
        assert all(profile.calls[phase] > 0 for phase in profiler.PHASES)
