"""Unit tests for latency accumulation."""

import pytest

from repro.perf import LatencyAccumulator


class TestLatencyAccumulator:
    def _filled(self):
        acc = LatencyAccumulator()
        acc.record(latency=100, hit=True, bank=10, network=80, memory=0,
                   bank_position=0)
        acc.record(latency=50, hit=True, bank=10, network=40, memory=0,
                   bank_position=3)
        acc.record(latency=400, hit=False, bank=20, network=180, memory=200)
        return acc

    def test_counts(self):
        acc = self._filled()
        assert acc.total_count == 3
        assert acc.hit_count == 2 and acc.miss_count == 1

    def test_averages(self):
        acc = self._filled()
        assert acc.average_latency == pytest.approx(550 / 3)
        assert acc.average_hit_latency == 75
        assert acc.average_miss_latency == 400

    def test_min_max(self):
        acc = self._filled()
        assert acc.total_min == 50 and acc.total_max == 400

    def test_hit_rate(self):
        assert self._filled().hit_rate == pytest.approx(2 / 3)

    def test_breakdown(self):
        acc = self._filled()
        breakdown = acc.breakdown()
        assert breakdown["bank"] == pytest.approx(40 / 3)
        fractions = acc.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_mru_fraction(self):
        assert self._filled().mru_hit_fraction() == pytest.approx(0.5)

    def test_empty(self):
        acc = LatencyAccumulator()
        assert acc.average_latency == 0.0
        assert acc.hit_rate == 0.0
        assert acc.breakdown_fractions() == {"bank": 0.0, "network": 0.0,
                                             "memory": 0.0}

    def test_summary(self):
        summary = self._filled().summary()
        assert summary.count == 3
        assert summary.minimum == 50 and summary.maximum == 400
