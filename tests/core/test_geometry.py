"""Unit tests for the resource-aware cache geometry."""

import pytest

from repro.core.designs import design_a, design_e, design_f
from repro.core.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.noc.topology import HUB


@pytest.fixture
def mesh_geometry() -> CacheGeometry:
    return design_a.build()


@pytest.fixture
def halo_geometry() -> CacheGeometry:
    return design_e.build()


class TestLayout:
    def test_mesh_bank_nodes(self, mesh_geometry):
        assert mesh_geometry.bank_node(3, 7) == (3, 7)
        assert mesh_geometry.num_columns == 16
        assert mesh_geometry.banks_per_column(0) == 16

    def test_halo_bank_nodes(self, halo_geometry):
        assert halo_geometry.bank_node(2, 5) == ("spike", 2, 5)
        assert halo_geometry.core_node == HUB

    def test_attach_points(self, mesh_geometry):
        assert mesh_geometry.core_node == (8, 0)
        assert mesh_geometry.memory_node == (8, 15)

    def test_memory_pin_delay(self):
        assert design_e.build().memory_pin_delay == 16
        assert design_f.build().memory_pin_delay == 9


class TestTraverse:
    def test_single_hop_head_cost(self, mesh_geometry):
        arrival, _ = mesh_geometry.traverse((0, 0), (0, 1), 0, flits=1)
        assert arrival == 2  # router 1 + wire 1

    def test_serialization_tail(self, mesh_geometry):
        arrival, _ = mesh_geometry.traverse((0, 0), (0, 1), 0, flits=5)
        assert arrival == 2 + 4

    def test_multi_hop(self, mesh_geometry):
        arrival, _ = mesh_geometry.traverse((0, 0), (0, 4), 0, flits=1)
        assert arrival == 4 * 2

    def test_same_node_is_free(self, mesh_geometry):
        arrival, waypoints = mesh_geometry.traverse((3, 3), (3, 3), 17, flits=5)
        assert arrival == 17 and waypoints == {}

    def test_waypoints_record_head_arrivals(self, mesh_geometry):
        arrival, waypoints = mesh_geometry.traverse(
            (0, 3), (0, 0), 0, flits=1, record_waypoints=True
        )
        assert waypoints[(0, 2)] == 2
        assert waypoints[(0, 1)] == 4
        assert (0, 0) not in waypoints  # destination is not a waypoint

    def test_contention_queues_second_packet(self, mesh_geometry):
        first, _ = mesh_geometry.traverse((0, 0), (0, 1), 0, flits=5)
        second, _ = mesh_geometry.traverse((0, 0), (0, 1), 0, flits=5)
        assert second == first + 5  # waits 5 flit cycles on the channel

    def test_reset_contention(self, mesh_geometry):
        mesh_geometry.traverse((0, 0), (0, 1), 0, flits=5)
        mesh_geometry.reset_contention()
        arrival, _ = mesh_geometry.traverse((0, 0), (0, 1), 0, flits=5)
        assert arrival == 6


class TestMulticastColumn:
    def test_arrivals_monotone(self, mesh_geometry):
        arrivals = mesh_geometry.multicast_column(4, 0)
        assert len(arrivals) == 16
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))

    def test_first_arrival_includes_row_traversal(self, mesh_geometry):
        arrivals = mesh_geometry.multicast_column(4, 0)
        # core (8,0) -> (4,0): 4 horizontal hops at 2 cycles each.
        assert arrivals[0] == 8

    def test_halo_spike_arrival_one_hop(self, halo_geometry):
        arrivals = halo_geometry.multicast_column(7, 0)
        assert arrivals[0] == 2  # hub -> MRU bank: one hop


class TestMemoryPaths:
    def test_mesh_core_to_memory(self, mesh_geometry):
        arrival = mesh_geometry.core_to_memory(0, flits=1)
        assert arrival == 15 * 2  # straight down column 8

    def test_halo_core_to_memory_pays_pin_delay(self, halo_geometry):
        assert halo_geometry.core_to_memory(0, flits=1) == 16

    def test_halo_fill_pays_pin_delay(self, halo_geometry):
        arrival = halo_geometry.memory_to_bank(3, 0, 0, flits=1)
        assert arrival == 16 + 2


class TestSpikeQueues:
    def test_mesh_admission_is_immediate(self, mesh_geometry):
        assert mesh_geometry.enter_column(0, 5) == 5

    def test_spike_queue_allows_two(self, halo_geometry):
        assert halo_geometry.enter_column(0, 0) == 1
        assert halo_geometry.enter_column(0, 0) == 1
        assert halo_geometry.enter_column(0, 0) == 2

    def test_mesh_has_no_spike_queue(self, mesh_geometry):
        with pytest.raises(ConfigurationError):
            mesh_geometry.spike_queue(0)
