"""Behavioral tests for the transaction flows (Figures 2 and 3)."""

import pytest

from repro.cache.address import AddressMapper
from repro.core.flows import FIGURE8_SCHEMES, Scheme, make_scheme
from repro.core.system import NetworkedCacheSystem
from repro.errors import ProtocolError

MAPPER = AddressMapper()


def _system(scheme: str, design: str = "A") -> NetworkedCacheSystem:
    return NetworkedCacheSystem(design=design, scheme=scheme)


def _fill_set(system, column=3, index=5, ways=16):
    """Install tags 0..ways-1; tag (ways-1) ends at the MRU way."""
    for tag in range(ways):
        system.access(MAPPER.encode(tag=tag, index=index, column=column), at=0)
    system.geometry.reset_contention()
    system.memory.reset()
    system.engine.reset()


def _probe_hit(scheme, depth, column=3, design="A"):
    system = _system(scheme, design)
    _fill_set(system, column=column)
    timing = system.access(
        MAPPER.encode(tag=15 - depth, index=5, column=column), at=50_000
    )
    assert timing.hit and timing.bank_position == depth
    return timing


def _probe_miss(scheme, column=3, design="A"):
    system = _system(scheme, design)
    _fill_set(system, column=column)
    timing = system.access(
        MAPPER.encode(tag=500, index=5, column=column), at=50_000
    )
    assert not timing.hit
    return timing


class TestSchemeParsing:
    def test_names(self):
        scheme = make_scheme("multicast+fast_lru")
        assert scheme.multicast and scheme.is_fast
        assert scheme.name == "multicast+fast_lru"

    @pytest.mark.parametrize("bad", ["lru", "broadcast+lru", "unicast+mru"])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(Exception):
            make_scheme(bad)

    def test_figure8_scheme_list(self):
        assert len(FIGURE8_SCHEMES) == 5
        for name in FIGURE8_SCHEMES:
            assert isinstance(make_scheme(name), Scheme)


class TestHitTiming:
    @pytest.mark.parametrize("scheme", FIGURE8_SCHEMES)
    def test_mru_hit_is_fast(self, scheme):
        timing = _probe_hit(scheme, depth=0)
        assert timing.latency < 40
        assert timing.transaction_latency >= timing.latency

    @pytest.mark.parametrize("scheme", FIGURE8_SCHEMES)
    def test_latency_grows_with_depth(self, scheme):
        shallow = _probe_hit(scheme, depth=1)
        deep = _probe_hit(scheme, depth=12)
        assert deep.latency > shallow.latency

    def test_multicast_data_latency_beats_unicast_at_depth(self):
        unicast = _probe_hit("unicast+fast_lru", depth=8)
        multicast = _probe_hit("multicast+fast_lru", depth=8)
        assert multicast.latency < unicast.latency

    def test_fast_lru_transaction_beats_lru(self):
        lru = _probe_hit("unicast+lru", depth=8)
        fast = _probe_hit("unicast+fast_lru", depth=8)
        assert fast.transaction_latency < lru.transaction_latency

    def test_promotion_swaps_only_one_bank(self):
        promo = _probe_hit("unicast+promotion", depth=8)
        lru = _probe_hit("unicast+lru", depth=8)
        # Promotion's post-hit movement is one swap, LRU's is a full chain.
        assert promo.transaction_latency < lru.transaction_latency

    def test_settled_never_before_data(self):
        for scheme in FIGURE8_SCHEMES:
            timing = _probe_hit(scheme, depth=4)
            assert timing.settled >= timing.data_at_core

    def test_bank_cycles_on_spine(self):
        timing = _probe_hit("unicast+lru", depth=3)
        # Sequential walk: 4 tag matches at 2 cycles each on the spine.
        assert timing.bank_cycles >= 8

    def test_decomposition_sums_to_transaction(self):
        for scheme in FIGURE8_SCHEMES:
            timing = _probe_hit(scheme, depth=5)
            assert timing.network_cycles == (
                timing.transaction_latency - timing.bank_cycles
                - timing.memory_cycles
            )


class TestMissTiming:
    @pytest.mark.parametrize("scheme", FIGURE8_SCHEMES)
    def test_miss_includes_memory_latency(self, scheme):
        timing = _probe_miss(scheme)
        assert timing.memory_cycles >= 162
        assert timing.latency > 162

    def test_fast_lru_miss_transaction_beats_lru(self):
        lru = _probe_miss("unicast+lru")
        fast = _probe_miss("unicast+fast_lru")
        assert fast.transaction_latency < lru.transaction_latency

    def test_multicast_fast_miss_beats_multicast_promotion(self):
        promo = _probe_miss("multicast+promotion")
        fast = _probe_miss("multicast+fast_lru")
        assert fast.transaction_latency < promo.transaction_latency

    def test_dirty_victim_triggers_writeback(self):
        system = _system("multicast+fast_lru")
        # Fill with writes so the eventual victim is dirty.
        for tag in range(16):
            system.access(
                MAPPER.encode(tag=tag, index=5, column=3), at=0, is_write=True
            )
        system.memory.reset()
        system.access(MAPPER.encode(tag=99, index=5, column=3), at=50_000)
        assert system.memory.writebacks == 1

    def test_clean_victim_no_writeback(self):
        timing = _probe_miss("multicast+fast_lru")
        assert not timing.hit


class TestColumnAdmission:
    def test_mesh_serializes_same_column(self):
        system = _system("unicast+lru")
        _fill_set(system, column=3)
        first = system.access(MAPPER.encode(tag=15, index=5, column=3), at=1000)
        second = system.access(MAPPER.encode(tag=14, index=5, column=3), at=1000)
        # The second transaction waits for the first to settle.
        assert second.data_at_core >= first.settled

    def test_different_columns_proceed_in_parallel(self):
        system = _system("unicast+lru")
        _fill_set(system, column=3)
        _fill_set(system, column=4)
        first = system.access(MAPPER.encode(tag=15, index=5, column=3), at=1000)
        second = system.access(MAPPER.encode(tag=15, index=5, column=4), at=1000)
        assert second.latency <= first.latency + 8  # only row-0 sharing

    def test_halo_admits_two_per_spike(self):
        system = _system("multicast+fast_lru", design="E")
        _fill_set(system, column=3)
        t1 = system.access(MAPPER.encode(tag=15, index=5, column=3), at=1000)
        t2 = system.access(MAPPER.encode(tag=14, index=5, column=3), at=1000)
        t3 = system.access(MAPPER.encode(tag=13, index=5, column=3), at=1000)
        # Two concurrent transactions allowed; the third queues.
        assert t2.issued == t1.issued
        assert t3.data_at_core > t2.data_at_core


class TestDesignTimingContrasts:
    def test_halo_mru_hit_beats_mesh_edge_column(self):
        mesh = _probe_hit("multicast+fast_lru", depth=0, column=0, design="A")
        halo = _probe_hit("multicast+fast_lru", depth=0, column=0, design="E")
        assert halo.latency < mesh.latency

    def test_design_c_mru_hit_pays_big_bank_tag(self):
        a = _probe_hit("multicast+fast_lru", depth=0, column=0, design="A")
        c_sys = _system("multicast+fast_lru", "C")
        _fill_set(c_sys, column=0, ways=16)
        c = c_sys.access(MAPPER.encode(tag=15, index=5, column=0), at=50_000)
        assert c.hit and c.bank_position == 0
        assert c.bank_cycles > a.bank_cycles

    def test_halo_memory_pin_delay_visible_on_miss(self):
        e = _probe_miss("multicast+fast_lru", design="E")
        f = _probe_miss("multicast+fast_lru", design="F")
        # E pays 2 x 16 pin cycles, F only 2 x 9.
        assert e.memory_cycles >= f.memory_cycles
