"""Unit tests for the Table-3 design specifications."""

import pytest

from repro.core.designs import DESIGN_NAMES, design_spec, make_design
from repro.errors import ConfigurationError
from repro.noc.topology import HaloTopology, MeshTopology, SimplifiedMeshTopology


class TestDesignTable:
    def test_six_designs(self):
        assert DESIGN_NAMES == ("A", "B", "C", "D", "E", "F")

    @pytest.mark.parametrize("key", DESIGN_NAMES)
    def test_all_are_16mb(self, key):
        assert design_spec(key).total_capacity == 16 * 1024 * 1024

    @pytest.mark.parametrize("key", DESIGN_NAMES)
    def test_all_are_16_way(self, key):
        geometry = make_design(key)
        assert sum(d.ways for d in geometry.columns[0]) == 16

    def test_lookup_case_insensitive(self):
        assert design_spec("f").key == "F"

    def test_unknown_design_rejected(self):
        with pytest.raises(ConfigurationError):
            design_spec("G")


class TestTopologyFamilies:
    def test_design_a_full_mesh(self):
        topology = design_spec("A").topology_factory()
        assert isinstance(topology, MeshTopology)
        assert not isinstance(topology, SimplifiedMeshTopology)
        assert (topology.cols, topology.rows) == (16, 16)

    @pytest.mark.parametrize("key, rows", [("B", 16), ("C", 4), ("D", 5)])
    def test_simplified_meshes(self, key, rows):
        topology = design_spec(key).topology_factory()
        assert isinstance(topology, SimplifiedMeshTopology)
        assert topology.rows == rows

    @pytest.mark.parametrize("key, length", [("E", 16), ("F", 5)])
    def test_halos(self, key, length):
        topology = design_spec(key).topology_factory()
        assert isinstance(topology, HaloTopology)
        assert topology.spike_length == length
        assert topology.num_spikes == 16

    def test_memory_next_to_core_in_b(self):
        topology = design_spec("B").topology_factory()
        assert topology.memory_attach == (9, 0)
        assert topology.core_attach == (8, 0)

    def test_design_d_wire_delays(self):
        topology = design_spec("D").topology_factory()
        # Horizontal pinned to the 512KB delay.
        assert topology.channel((0, 0), (1, 0)).wire_delay == 3
        # Vertical grows down the column: 64KB -> 512KB.
        assert topology.channel((0, 0), (0, 1)).wire_delay == 1
        assert topology.channel((0, 3), (0, 4)).wire_delay == 3

    @pytest.mark.parametrize("key, pin", [("A", 0), ("B", 0), ("E", 16), ("F", 9)])
    def test_memory_pin_delays(self, key, pin):
        assert design_spec(key).build().memory_pin_delay == pin


class TestBankOrganization:
    def test_design_c_four_way_banks(self):
        geometry = make_design("C")
        assert [d.ways for d in geometry.columns[0]] == [4, 4, 4, 4]

    @pytest.mark.parametrize("key", ["D", "F"])
    def test_non_uniform_columns(self, key):
        geometry = make_design(key)
        capacities = [d.capacity_bytes for d in geometry.columns[0]]
        assert capacities == [65536, 65536, 131072, 262144, 524288]

    def test_uniform_flag(self):
        assert design_spec("A").uniform
        assert not design_spec("D").uniform
