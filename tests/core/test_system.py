"""End-to-end tests for NetworkedCacheSystem."""

import pytest

from repro import DESIGN_NAMES, FIGURE8_SCHEMES, NetworkedCacheSystem, profile_by_name
from repro.errors import ConfigurationError
from repro.workloads import TraceGenerator


@pytest.fixture(scope="module")
def small_trace():
    profile = profile_by_name("twolf")
    trace, warmup = TraceGenerator(profile, seed=11).generate_with_warmup(
        measure=300
    )
    return profile, trace, warmup


class TestRun:
    @pytest.mark.parametrize("scheme", FIGURE8_SCHEMES)
    def test_every_scheme_runs(self, small_trace, scheme):
        profile, trace, warmup = small_trace
        system = NetworkedCacheSystem(design="A", scheme=scheme)
        result = system.run(trace, profile, warmup=warmup)
        assert result.accesses == 300
        assert 0 < result.ipc <= profile.perfect_l2_ipc
        assert result.average_latency > 0

    @pytest.mark.parametrize("design", DESIGN_NAMES)
    def test_every_design_runs(self, small_trace, design):
        profile, trace, warmup = small_trace
        system = NetworkedCacheSystem(design=design, scheme="multicast+fast_lru")
        result = system.run(trace, profile, warmup=warmup)
        assert result.design == design
        assert result.hit_rate > 0.5

    def test_deterministic(self, small_trace):
        profile, trace, warmup = small_trace
        results = [
            NetworkedCacheSystem(design="B", scheme="multicast+fast_lru")
            .run(trace, profile, warmup=warmup)
            for _ in range(2)
        ]
        assert results[0].ipc == results[1].ipc
        assert results[0].average_latency == results[1].average_latency
        assert results[0].cycles == results[1].cycles

    def test_needs_ipc_source(self, small_trace):
        _, trace, warmup = small_trace
        system = NetworkedCacheSystem()
        with pytest.raises(ConfigurationError):
            system.run(trace, warmup=warmup)

    def test_perfect_ipc_override(self, small_trace):
        _, trace, warmup = small_trace
        system = NetworkedCacheSystem()
        result = system.run(trace, perfect_ipc=1.0, warmup=warmup)
        assert result.ipc <= 1.0

    def test_warmup_must_leave_measurement(self, small_trace):
        profile, trace, _ = small_trace
        system = NetworkedCacheSystem()
        with pytest.raises(ConfigurationError):
            system.run(trace, profile, warmup=len(trace))

    def test_breakdown_fractions_sum_to_one(self, small_trace):
        profile, trace, warmup = small_trace
        system = NetworkedCacheSystem(design="A", scheme="unicast+lru")
        result = system.run(trace, profile, warmup=warmup)
        shares = result.breakdown_fractions()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_memory_traffic_counted(self, small_trace):
        profile, trace, warmup = small_trace
        system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
        result = system.run(trace, profile, warmup=warmup)
        assert result.memory_reads == result.latency.miss_count

    def test_scheme_and_design_objects_accepted(self):
        from repro.core.designs import design_b
        from repro.core.flows import make_scheme

        system = NetworkedCacheSystem(
            design=design_b, scheme=make_scheme("unicast+lru")
        )
        assert system.spec.key == "B"
        assert system.scheme.name == "unicast+lru"


class TestSingleAccess:
    def test_first_access_misses(self):
        system = NetworkedCacheSystem()
        timing = system.access(0x1234_0040, at=0)
        assert not timing.hit

    def test_second_access_hits(self):
        system = NetworkedCacheSystem()
        system.access(0x1234_0040, at=0)
        timing = system.access(0x1234_0040, at=10_000)
        assert timing.hit and timing.bank_position == 0
