"""Shared test fixtures."""

import pytest

from repro.cache.address import AddressMapper
from repro.experiments.common import ExperimentConfig


@pytest.fixture
def mapper() -> AddressMapper:
    return AddressMapper()


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    """A config small enough for per-test experiment runs."""
    return ExperimentConfig(
        measure=400,
        benchmarks=("art", "twolf", "mcf"),
    )
