"""Shared test fixtures."""

import pytest

from repro.cache.address import AddressMapper
from repro.experiments.common import ExperimentConfig


@pytest.fixture(scope="session", autouse=True)
def _cache_in_tmp(tmp_path_factory):
    """Point the persistent result cache away from the working tree.

    CLI tests drive ``main()`` with caching enabled (the default); the
    entries they write must not land in a developer's ``.repro-cache``.
    """
    import os

    original = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if original is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = original


@pytest.fixture
def mapper() -> AddressMapper:
    return AddressMapper()


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    """A config small enough for per-test experiment runs."""
    return ExperimentConfig(
        measure=400,
        benchmarks=("art", "twolf", "mcf"),
    )
