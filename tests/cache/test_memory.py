"""Unit tests for the off-chip memory model."""

import pytest

from repro.cache.memory import MemoryModel


class TestMemoryModel:
    def test_block_read_latency(self):
        memory = MemoryModel()
        start, ready = memory.read(100)
        assert start == 100
        assert ready == 100 + 162

    def test_transfer_cycles(self):
        assert MemoryModel().transfer_cycles == 32

    def test_pipelining_limits_bandwidth(self):
        memory = MemoryModel()
        first_start, _ = memory.read(0)
        second_start, second_ready = memory.read(0)
        assert first_start == 0
        assert second_start == 32
        assert second_ready == 32 + 162

    def test_writeback_occupies_channel(self):
        memory = MemoryModel()
        memory.writeback(0)
        start, _ = memory.read(0)
        assert start == 32

    def test_writeback_completion(self):
        memory = MemoryModel()
        start, done = memory.writeback(10)
        assert done == start + 32

    def test_counters_and_reset(self):
        memory = MemoryModel()
        memory.read(0)
        memory.writeback(0)
        assert memory.reads == 1 and memory.writebacks == 1
        memory.reset()
        assert memory.reads == 0
        assert memory.read(0)[0] == 0

    def test_smaller_blocks(self):
        memory = MemoryModel(block_size=8)
        assert memory.transfer_cycles == 4
        assert memory.access_latency == 134
