"""Unit tests for the full cache-contents array."""

import pytest

from repro.cache.address import AddressMapper
from repro.cache.array import CacheArray
from repro.cache.bank import bank_descriptors_for_column
from repro.cache.replacement import LRUPolicy
from repro.errors import ConfigurationError

KB = 1024


def _array():
    columns = [bank_descriptors_for_column([64 * KB] * 16) for _ in range(16)]
    return CacheArray(columns, LRUPolicy())


class TestCacheArray:
    def test_sets_materialize_lazily(self):
        array = _array()
        assert array.touched_sets == 0
        array.access_raw(0)
        assert array.touched_sets == 1

    def test_same_set_key_reuses_state(self, mapper):
        array = _array()
        a = mapper.encode(tag=1, index=5, column=3)
        b = mapper.encode(tag=2, index=5, column=3)
        array.access_raw(a)
        array.access_raw(b)
        assert array.touched_sets == 1
        assert array.set_state(3, 5).find(1) is not None

    def test_hit_after_fill(self, mapper):
        array = _array()
        raw = mapper.encode(tag=9, index=1, column=1)
        assert not array.access_raw(raw).hit
        assert array.access_raw(raw).hit

    def test_stats_recorded(self, mapper):
        array = _array()
        raw = mapper.encode(tag=9, index=1, column=1)
        array.access_raw(raw)
        array.access_raw(raw)
        assert array.stats.accesses == 2
        assert array.stats.hits == 1

    def test_occupancy(self, mapper):
        array = _array()
        for tag in range(5):
            array.access_raw(mapper.encode(tag=tag, index=0, column=0))
        assert array.occupancy() == 5

    def test_column_count_must_match_layout(self):
        columns = [bank_descriptors_for_column([64 * KB] * 16)] * 4
        with pytest.raises(ConfigurationError):
            CacheArray(columns, LRUPolicy())

    def test_associativity_per_column(self):
        array = _array()
        assert array.associativity(0) == 16

    def test_empty_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheArray([], LRUPolicy())
