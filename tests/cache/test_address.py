"""Unit and property tests for address decomposition (Section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.address import AddressMapper
from repro.config import AddressLayout
from repro.errors import ConfigurationError


class TestDecode:
    def test_field_extraction(self, mapper):
        raw = mapper.encode(tag=0xABC, index=0x155, column=0x9, offset=0x2A)
        decoded = mapper.decode(raw)
        assert decoded.tag == 0xABC
        assert decoded.index == 0x155
        assert decoded.column == 0x9
        assert decoded.offset == 0x2A

    def test_block_address_clears_offset(self, mapper):
        raw = mapper.encode(tag=1, index=2, column=3, offset=17)
        decoded = mapper.decode(raw)
        assert decoded.block_address == raw - 17
        assert decoded.block_address % 64 == 0

    def test_set_key(self, mapper):
        decoded = mapper.decode(mapper.encode(tag=5, index=7, column=11))
        assert decoded.set_key == (11, 7)

    def test_out_of_range_raw_rejected(self, mapper):
        with pytest.raises(ConfigurationError):
            mapper.decode(1 << 32)
        with pytest.raises(ConfigurationError):
            mapper.decode(-1)

    def test_block_number(self, mapper):
        raw = mapper.encode(tag=1, index=0, column=0, offset=63)
        assert mapper.block_number(raw) == raw >> 6


class TestEncode:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tag": 1 << 12, "index": 0, "column": 0},
            {"tag": 0, "index": 1 << 10, "column": 0},
            {"tag": 0, "index": 0, "column": 16},
            {"tag": 0, "index": 0, "column": 0, "offset": 64},
            {"tag": -1, "index": 0, "column": 0},
        ],
    )
    def test_out_of_range_fields_rejected(self, mapper, kwargs):
        with pytest.raises(ConfigurationError):
            mapper.encode(**kwargs)

    def test_layout_properties(self, mapper):
        assert mapper.num_columns == 16
        assert mapper.sets_per_bank == 1024


class TestRoundTrip:
    @given(
        tag=st.integers(0, (1 << 12) - 1),
        index=st.integers(0, (1 << 10) - 1),
        column=st.integers(0, 15),
        offset=st.integers(0, 63),
    )
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_roundtrip(self, tag, index, column, offset):
        mapper = AddressMapper()
        raw = mapper.encode(tag=tag, index=index, column=column, offset=offset)
        decoded = mapper.decode(raw)
        assert (decoded.tag, decoded.index, decoded.column, decoded.offset) \
            == (tag, index, column, offset)

    @given(raw=st.integers(0, (1 << 32) - 1))
    @settings(max_examples=200, deadline=None)
    def test_decode_encode_roundtrip(self, raw):
        mapper = AddressMapper()
        decoded = mapper.decode(raw)
        assert mapper.encode(decoded.tag, decoded.index, decoded.column,
                             decoded.offset) == raw


class TestCustomLayout:
    def test_alternate_layout(self):
        layout = AddressLayout(tag_bits=14, index_bits=8, column_bits=4,
                               offset_bits=6)
        mapper = AddressMapper(layout)
        assert mapper.sets_per_bank == 256
        raw = mapper.encode(tag=(1 << 14) - 1, index=255, column=15, offset=63)
        decoded = mapper.decode(raw)
        assert decoded.tag == (1 << 14) - 1
