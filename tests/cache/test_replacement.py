"""Unit and property tests for the replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.bankset import BankSetState
from repro.cache.replacement import (
    FastLRUPolicy,
    LRUPolicy,
    PromotionPolicy,
    policy_by_name,
)
from repro.errors import ConfigurationError

MAPPING = list(range(8))


def _access_all(policy, state, tags):
    outcomes = []
    for tag in tags:
        outcomes.append(policy.access(state, tag))
    return outcomes


class TestRegistry:
    @pytest.mark.parametrize("name, cls", [
        ("lru", LRUPolicy),
        ("fast_lru", FastLRUPolicy),
        ("promotion", PromotionPolicy),
    ])
    def test_lookup(self, name, cls):
        assert isinstance(policy_by_name(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown replacement"):
            policy_by_name("mru")

    def test_overlap_flags(self):
        assert FastLRUPolicy.overlaps_replacement
        assert not LRUPolicy.overlaps_replacement
        assert not PromotionPolicy.overlaps_replacement


class TestOutcomes:
    def test_miss_reports_no_bank(self):
        policy = LRUPolicy()
        state = BankSetState(MAPPING)
        outcome = policy.access(state, 42)
        assert not outcome.hit
        assert outcome.bank is None and outcome.way is None

    def test_hit_reports_pre_move_position(self):
        policy = LRUPolicy()
        state = BankSetState(MAPPING)
        _access_all(policy, state, [0, 1, 2])
        outcome = policy.access(state, 0)  # now at way 2
        assert outcome.hit and outcome.way == 2 and outcome.bank == 2

    def test_victim_returned_when_full(self):
        policy = LRUPolicy()
        state = BankSetState(MAPPING)
        _access_all(policy, state, range(8))
        outcome = policy.access(state, 100)
        assert outcome.victim is not None and outcome.victim.tag == 0

    def test_write_miss_installs_dirty(self):
        policy = LRUPolicy()
        state = BankSetState(MAPPING)
        policy.access(state, 5, is_write=True)
        assert state.ways[0].dirty

    def test_write_hit_marks_dirty_lru(self):
        policy = LRUPolicy()
        state = BankSetState(MAPPING)
        policy.access(state, 5)
        policy.access(state, 6)
        policy.access(state, 5, is_write=True)
        assert state.ways[0].tag == 5 and state.ways[0].dirty

    def test_write_hit_marks_dirty_promotion(self):
        policy = PromotionPolicy()
        state = BankSetState(MAPPING)
        _access_all(policy, state, [0, 1, 2])
        outcome = policy.access(state, 0, is_write=True)
        assert outcome.hit
        dirty_tags = [b.tag for b in state.ways if b is not None and b.dirty]
        assert dirty_tags == [0]

    def test_writeback_required_only_when_dirty(self):
        policy = LRUPolicy()
        state = BankSetState(MAPPING)
        _access_all(policy, state, range(8))
        clean = policy.access(state, 50)
        assert not clean.writeback_required
        state2 = BankSetState(MAPPING)
        policy.access(state2, 7, is_write=True)
        for tag in range(8, 15):
            policy.access(state2, tag)
        dirty = policy.access(state2, 99)
        assert dirty.victim.tag == 7 and dirty.writeback_required


class TestPromotionSemantics:
    def test_hit_moves_one_bank_closer(self):
        policy = PromotionPolicy()
        state = BankSetState(MAPPING)
        _access_all(policy, state, range(8))  # ways now [7,6,...,0]
        policy.access(state, 3)               # at way 4 -> swaps to way 3
        assert state.ways[3].tag == 3
        assert state.ways[4].tag == 4

    def test_repeated_hits_climb_to_mru(self):
        policy = PromotionPolicy()
        state = BankSetState(MAPPING)
        _access_all(policy, state, range(8))
        for _ in range(7):
            policy.access(state, 0)
        assert state.ways[0].tag == 0


class TestFastLRUEquivalence:
    @given(tags=st.lists(st.integers(0, 12), min_size=1, max_size=80),
           writes=st.lists(st.booleans(), min_size=80, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_fast_lru_contents_identical_to_lru(self, tags, writes):
        """Fast-LRU changes WHEN blocks move, never WHERE they end up."""
        lru, fast = LRUPolicy(), FastLRUPolicy()
        state_lru = BankSetState(MAPPING)
        state_fast = BankSetState(MAPPING)
        for tag, is_write in zip(tags, writes):
            out_lru = lru.access(state_lru, tag, is_write)
            out_fast = fast.access(state_fast, tag, is_write)
            assert out_lru.hit == out_fast.hit
            assert out_lru.bank == out_fast.bank
            assert state_lru.resident_tags() == state_fast.resident_tags()
            assert [b.dirty for b in state_lru.ways if b] == \
                [b.dirty for b in state_fast.ways if b]

    @given(tags=st.lists(st.integers(0, 20), min_size=1, max_size=80))
    @settings(max_examples=40, deadline=None)
    def test_lru_hit_rate_never_below_promotion_on_skewed_reuse(self, tags):
        """Not a universal theorem, but on short skewed streams the LRU
        stack dominates; we check the policies at least agree on *what*
        is resident being a permutation-insensitive set for hits."""
        lru, promo = LRUPolicy(), PromotionPolicy()
        s1, s2 = BankSetState(MAPPING), BankSetState(MAPPING)
        hits_lru = sum(lru.access(s1, t).hit for t in tags)
        hits_promo = sum(promo.access(s2, t).hit for t in tags)
        # Both policies must at minimum hit on immediate re-references.
        assert hits_lru >= 0 and hits_promo >= 0
        assert set(s1.resident_tags()) <= set(tags)
        assert set(s2.resident_tags()) <= set(tags)


class TestPromotionMissVariants:
    def _full_state(self):
        state = BankSetState(MAPPING)
        policy = PromotionPolicy()
        for tag in range(8):
            policy.access(state, tag)
        return state  # ways [7, 6, ..., 0]

    def test_zero_copy_overwrites_mru(self):
        policy = PromotionPolicy(miss_policy="zero_copy")
        state = self._full_state()
        outcome = policy.access(state, 99)
        assert outcome.victim.tag == 7        # the MRU block dies
        assert outcome.victim_bank == 0
        assert state.ways[0].tag == 99
        assert state.ways[1].tag == 6         # the rest untouched

    def test_one_copy_demotes_once(self):
        policy = PromotionPolicy(miss_policy="one_copy")
        state = self._full_state()
        outcome = policy.access(state, 99)
        assert outcome.victim.tag == 6        # way 1's occupant dies
        assert outcome.victim_bank == 1
        assert state.ways[0].tag == 99
        assert state.ways[1].tag == 7         # old MRU demoted one way

    def test_recursive_default(self):
        policy = PromotionPolicy()
        state = self._full_state()
        outcome = policy.access(state, 99)
        assert outcome.victim.tag == 0        # the LRU block dies
        assert outcome.victim_bank is None

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            PromotionPolicy(miss_policy="two_copy")

    def test_hits_unaffected_by_variant(self):
        for variant in PromotionPolicy.MISS_POLICIES:
            policy = PromotionPolicy(miss_policy=variant)
            state = self._full_state()
            outcome = policy.access(state, 4)
            assert outcome.hit
