"""Unit tests for partial-tag early miss detection."""

import pytest

from repro.cache.bankset import BankSetState
from repro.cache.partial_tags import PartialTagConfig, PartialTagStore
from repro.errors import ConfigurationError


def _state_with(tags):
    state = BankSetState(list(range(16)))
    for tag in tags:
        state.fill_front(tag)
    return state


class TestPartialTagConfig:
    def test_storage_cost(self):
        config = PartialTagConfig(bits=6)
        # 6 bits x 16K sets x 16 ways = 192 KiB
        assert config.storage_kib(16 * 1024, 16) == pytest.approx(192.0)

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            PartialTagConfig(bits=0)
        with pytest.raises(ConfigurationError):
            PartialTagConfig(bits=13)


class TestPartialTagStore:
    def test_no_false_negatives(self):
        """A resident tag can never be declared a guaranteed miss."""
        store = PartialTagStore()
        state = _state_with(range(100, 116))
        for tag in range(100, 116):
            assert not store.is_guaranteed_miss(state, tag, actual_hit=True)

    def test_detects_clear_miss(self):
        store = PartialTagStore(PartialTagConfig(bits=6))
        state = _state_with([0])  # partial tag 0
        assert store.is_guaranteed_miss(state, 1, actual_hit=False)
        assert store.early_misses == 1

    def test_false_positive_counted(self):
        store = PartialTagStore(PartialTagConfig(bits=6))
        state = _state_with([0])
        # Tag 64 aliases tag 0 in the low 6 bits: partial match, true miss.
        assert not store.is_guaranteed_miss(state, 64, actual_hit=False)
        assert store.false_positives == 1

    def test_rates_and_reset(self):
        store = PartialTagStore()
        state = _state_with([0])
        store.is_guaranteed_miss(state, 1, actual_hit=False)
        store.is_guaranteed_miss(state, 0, actual_hit=True)
        assert store.early_miss_rate == pytest.approx(0.5)
        store.reset()
        assert store.lookups == 0

    def test_empty_set_always_guaranteed_miss(self):
        store = PartialTagStore()
        state = BankSetState(list(range(16)))
        assert store.is_guaranteed_miss(state, 42, actual_hit=False)


class TestSystemIntegration:
    def test_early_misses_speed_up_misses(self):
        from repro.core.system import NetworkedCacheSystem
        from repro.workloads import TraceGenerator, profile_by_name

        profile = profile_by_name("mcf")
        trace, warmup = TraceGenerator(profile, seed=3).generate_with_warmup(
            measure=300
        )
        plain = NetworkedCacheSystem(design="A", scheme="unicast+lru")
        early = NetworkedCacheSystem(design="A", scheme="unicast+lru",
                                     early_miss_detection=True)
        result_plain = plain.run(trace, profile, warmup=warmup)
        result_early = early.run(trace, profile, warmup=warmup)
        assert early.partial_tags.early_misses > 0
        assert result_early.ipc >= result_plain.ipc
        # Contents are unaffected by the shortcut.
        assert result_early.hit_rate == result_plain.hit_rate
