"""Unit tests for the S-NUCA baseline."""

import pytest

from repro.cache.address import AddressMapper
from repro.cache.static_nuca import StaticNUCAArray
from repro.errors import ConfigurationError

MAPPER = AddressMapper()


def _addr(tag, index=3, column=2):
    return MAPPER.decode(MAPPER.encode(tag=tag, index=index, column=column))


class TestStaticNUCAArray:
    def test_home_bank_is_stable(self):
        array = StaticNUCAArray()
        a = _addr(5)
        assert array.home_bank(a) == array.home_bank(_addr(99))  # same set

    def test_home_banks_cover_all_rows(self):
        array = StaticNUCAArray()
        banks = {
            array.home_bank(_addr(0, index=i, column=c))
            for i in range(16)
            for c in range(16)
        }
        assert banks == set(range(16))

    def test_hit_after_fill(self):
        array = StaticNUCAArray()
        assert not array.access(_addr(7)).hit
        outcome = array.access(_addr(7))
        assert outcome.hit
        assert outcome.bank == array.home_bank(_addr(7))

    def test_no_migration_ever(self):
        array = StaticNUCAArray()
        for _ in range(5):
            outcome = array.access(_addr(7))
        assert outcome.bank == array.home_bank(_addr(7))

    def test_lru_within_home_bank(self):
        array = StaticNUCAArray(associativity=2)
        array.access(_addr(1))
        array.access(_addr(2))
        array.access(_addr(1))      # touch 1: now MRU
        outcome = array.access(_addr(3))  # evicts 2
        assert outcome.victim.tag == 2

    def test_hit_rate(self):
        array = StaticNUCAArray()
        array.access(_addr(1))
        array.access(_addr(1))
        assert array.hit_rate == 0.5

    def test_invalid_dimensions(self):
        with pytest.raises(ConfigurationError):
            StaticNUCAArray(columns=0)


class TestStaticNUCASystem:
    def test_runs_and_reports(self):
        from repro.core.static_system import StaticNUCASystem
        from repro.workloads import TraceGenerator, profile_by_name

        profile = profile_by_name("vpr")
        trace, warmup = TraceGenerator(profile, seed=9).generate_with_warmup(
            measure=200
        )
        result = StaticNUCASystem(design="A").run(trace, profile, warmup=warmup)
        assert result.scheme == "static-nuca"
        assert result.accesses == 200
        assert result.average_latency > 0
        assert 0 < result.ipc <= profile.perfect_l2_ipc

    def test_deterministic(self):
        from repro.core.static_system import StaticNUCASystem
        from repro.workloads import TraceGenerator, profile_by_name

        profile = profile_by_name("vpr")
        trace, warmup = TraceGenerator(profile, seed=9).generate_with_warmup(
            measure=150
        )
        a = StaticNUCASystem(design="A").run(trace, profile, warmup=warmup)
        b = StaticNUCASystem(design="A").run(trace, profile, warmup=warmup)
        assert a.ipc == b.ipc and a.average_latency == b.average_latency
