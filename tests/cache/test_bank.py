"""Unit tests for bank descriptors and column construction."""

import pytest

from repro.cache.bank import (
    NON_UNIFORM_COLUMN,
    bank_descriptors_for_column,
    bank_of_way,
    column_associativity,
)
from repro.errors import ConfigurationError

KB = 1024


class TestUniformColumn:
    def test_sixteen_direct_mapped_banks(self):
        descriptors = bank_descriptors_for_column([64 * KB] * 16)
        assert len(descriptors) == 16
        assert all(d.ways == 1 for d in descriptors)
        assert column_associativity(descriptors) == 16

    def test_way_ranges_are_contiguous(self):
        descriptors = bank_descriptors_for_column([64 * KB] * 4)
        assert [list(d.way_range) for d in descriptors] == [[0], [1], [2], [3]]

    def test_mru_bank_flag(self):
        descriptors = bank_descriptors_for_column([64 * KB] * 4)
        assert descriptors[0].is_mru_bank
        assert not descriptors[1].is_mru_bank


class TestNonUniformColumn:
    def test_paper_column(self):
        descriptors = bank_descriptors_for_column(list(NON_UNIFORM_COLUMN))
        assert [d.ways for d in descriptors] == [1, 1, 2, 4, 8]
        assert column_associativity(descriptors) == 16

    def test_bank_of_way_mapping(self):
        descriptors = bank_descriptors_for_column(list(NON_UNIFORM_COLUMN))
        mapping = bank_of_way(descriptors)
        assert mapping == [0, 1, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 4, 4, 4, 4]

    def test_timing_follows_capacity(self):
        descriptors = bank_descriptors_for_column(list(NON_UNIFORM_COLUMN))
        assert descriptors[0].timing.tag_latency == 2
        assert descriptors[-1].timing.tag_latency == 5

    def test_256kb_column(self):
        descriptors = bank_descriptors_for_column([256 * KB] * 4)
        assert [d.ways for d in descriptors] == [4, 4, 4, 4]


class TestValidation:
    def test_non_divisible_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            bank_descriptors_for_column([100 * KB])

    def test_too_small_bank_rejected(self):
        with pytest.raises(ConfigurationError):
            bank_descriptors_for_column([KB], sets_per_bank=1024)
