"""Unit and property tests for bank-set content reordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.bank import NON_UNIFORM_COLUMN, bank_descriptors_for_column, bank_of_way
from repro.cache.bankset import BankSetState, BankSetStats, BlockState

UNIFORM = [0, 1, 2, 3]  # 4 one-way banks
NON_UNIFORM = bank_of_way(bank_descriptors_for_column(list(NON_UNIFORM_COLUMN)))


def _filled(mapping):
    state = BankSetState(list(mapping))
    for tag in range(len(mapping)):
        state.fill_front(tag)
    # After filling 0..n-1, way 0 holds the newest tag (n-1).
    return state


class TestFind:
    def test_find_resident(self):
        state = _filled(UNIFORM)
        assert state.find(3) == 0
        assert state.find(0) == 3

    def test_find_missing(self):
        state = _filled(UNIFORM)
        assert state.find(99) is None

    def test_empty_set(self):
        state = BankSetState(UNIFORM)
        assert state.find(0) is None
        assert state.resident_tags() == []


class TestMoveToFront:
    def test_contents_after_hit(self):
        state = _filled(UNIFORM)  # ways: [3, 2, 1, 0]
        state.move_to_front(2)    # hit tag 1
        assert [b.tag for b in state.ways] == [1, 3, 2, 0]

    def test_boundary_moves_uniform(self):
        state = _filled(UNIFORM)
        # Way 2 -> way 0 crosses banks; ways 0,1 each shift across banks.
        assert state.move_to_front(2) == 3

    def test_hit_at_front_is_free(self):
        state = _filled(UNIFORM)
        assert state.move_to_front(0) == 0
        assert [b.tag for b in state.ways] == [3, 2, 1, 0]

    def test_boundary_moves_skip_intra_bank_shuffles(self):
        state = _filled(NON_UNIFORM)
        # Hit in way 5 (inside the 4-way bank 3): the hit block crosses to
        # bank 0 and each shifted way that crosses a bank boundary counts.
        moves = state.move_to_front(5)
        # Shifts crossing boundaries: ways 0->1, 1->2, 3->4 (2->3 and 4->5
        # stay inside their banks), plus the hit block's own move: 4 total.
        assert moves == 4

    def test_empty_way_rejected(self):
        state = BankSetState(UNIFORM)
        with pytest.raises(ValueError):
            state.move_to_front(1)


class TestPromote:
    def test_swap_with_previous_bank(self):
        state = _filled(UNIFORM)  # [3, 2, 1, 0]
        moves = state.promote(2)
        assert moves == 2
        assert [b.tag for b in state.ways] == [3, 1, 2, 0]

    def test_promotion_in_mru_bank_is_local(self):
        state = _filled(NON_UNIFORM)
        # Way 0 already in bank 0: nothing to move.
        assert state.promote(0) == 0

    def test_multiway_promotes_to_local_lru_slot(self):
        state = _filled(NON_UNIFORM)
        tags_before = [b.tag for b in state.ways]
        # Hit in bank 3 (ways 4..7): swap with bank 2's least-recent way (3).
        moves = state.promote(5)
        assert moves == 2
        tags_after = [b.tag for b in state.ways]
        assert tags_after[3] == tags_before[5]
        assert tags_after[5] == tags_before[3]

    def test_empty_way_rejected(self):
        state = BankSetState(UNIFORM)
        with pytest.raises(ValueError):
            state.promote(2)


class TestFillFront:
    def test_fill_into_empty(self):
        state = BankSetState(UNIFORM)
        victim, moves = state.fill_front(7)
        assert victim is None
        assert moves == 0
        assert state.ways[0].tag == 7

    def test_eviction_from_lru_way(self):
        state = _filled(UNIFORM)  # [3, 2, 1, 0]
        victim, _ = state.fill_front(9)
        assert victim.tag == 0
        assert [b.tag for b in state.ways] == [9, 3, 2, 1]

    def test_dirty_bit_on_write_fill(self):
        state = BankSetState(UNIFORM)
        state.fill_front(7, dirty=True)
        assert state.ways[0].dirty

    def test_boundary_moves_counted(self):
        state = _filled(UNIFORM)
        _, moves = state.fill_front(9)
        assert moves == 3  # three blocks each cross one bank boundary


class TestDirty:
    def test_mark_dirty(self):
        state = _filled(UNIFORM)
        state.mark_dirty(1)
        assert state.ways[1].dirty

    def test_mark_dirty_empty_way_rejected(self):
        with pytest.raises(ValueError):
            BankSetState(UNIFORM).mark_dirty(0)

    def test_dirty_travels_with_block(self):
        state = _filled(UNIFORM)
        state.mark_dirty(2)
        tag = state.ways[2].tag
        state.move_to_front(2)
        assert state.ways[0].tag == tag and state.ways[0].dirty


class TestLRUStackProperty:
    @given(
        tags=st.lists(st.integers(0, 9), min_size=1, max_size=60),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_lru_stack(self, tags):
        """move_to_front + fill_front must behave exactly like a textbook
        LRU stack of the same associativity."""
        state = BankSetState(list(range(8)))
        reference: list[int] = []
        for tag in tags:
            way = state.find(tag)
            if way is None:
                state.fill_front(tag)
                reference.insert(0, tag)
                if len(reference) > 8:
                    reference.pop()
            else:
                assert reference[way] == tag
                state.move_to_front(way)
                reference.remove(tag)
                reference.insert(0, tag)
            assert state.resident_tags() == reference


class TestStats:
    def test_hit_rate_and_mru_fraction(self):
        from repro.cache.bankset import AccessOutcome

        stats = BankSetStats()
        stats.record(AccessOutcome(hit=True, way=0, bank=0))
        stats.record(AccessOutcome(hit=True, way=3, bank=3))
        stats.record(AccessOutcome(hit=False, victim=BlockState(1, dirty=True)))
        assert stats.accesses == 3
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.mru_hit_fraction() == pytest.approx(0.5)
        assert stats.writebacks == 1
