"""StreamSpec through the experiment engine: memo, cache, workers.

The engine's determinism triangle must hold for streaming cells exactly
as it does for CellSpec sweeps: serial, ``--jobs 2``, and warm-cache
replay of the same overload sweep merge to bit-identical telemetry.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import (
    execute_cell,
    reset_memo,
    run_cells,
)
from repro.experiments.stream_sweep import (
    StreamSweepConfig,
    render,
    run_sweep,
    sweep_specs,
)
from repro.stream.engine import (
    StreamSpec,
    execute_stream_cell,
    stream_spec_for,
)
from repro.telemetry import global_registry, reset_global_metrics

SWEEP = StreamSweepConfig(
    design="C",
    mix="duo-bursty",
    loads=(1.0, 3.0),
    cycles=900,
)


@pytest.fixture(autouse=True)
def _fresh_engine():
    reset_memo()
    reset_global_metrics()
    yield
    reset_memo()
    reset_global_metrics()


def _spec(**overrides) -> StreamSpec:
    values = dict(seed=0, cycles=900)
    values.update(overrides)
    return stream_spec_for("C", "drop-tail", "duo-bursty", **values)


class TestStreamSpec:
    def test_key_is_namespaced(self):
        assert _spec().key()[0] == "stream"

    def test_spec_for_validates(self):
        with pytest.raises(ConfigurationError):
            stream_spec_for("C", "rate-limit", "duo-bursty")
        with pytest.raises(ConfigurationError):
            stream_spec_for("C", "drop-tail", "octet-mixed")

    def test_execute_cell_dispatches_registered_specs(self):
        spec = _spec()
        assert execute_cell(spec) == execute_stream_cell(spec)

    def test_results_deterministic_and_core_independent(self):
        reference = execute_stream_cell(_spec())
        assert execute_stream_cell(_spec()) == reference
        array = execute_stream_cell(_spec(core="array"))
        assert array.summary == reference.summary
        assert json.dumps(array.metrics, sort_keys=True) == json.dumps(
            reference.metrics, sort_keys=True
        )


class TestSweep:
    def test_specs_cover_the_grid_policy_major(self):
        specs = sweep_specs(SWEEP)
        assert [(s.scheme, s.load) for s in specs] == [
            ("drop-tail", 1.0),
            ("drop-tail", 3.0),
            ("token-bucket", 1.0),
            ("token-bucket", 3.0),
        ]

    def test_render_tabulates_every_cell(self):
        results = run_sweep(SWEEP, jobs=1, cache=None)
        table = render(SWEEP, results)
        assert "Overload sweep: design C" in table
        assert table.count("drop-tail") == 2
        assert table.count("token-bucket") == 2

    def _merged(self, jobs: int, cache) -> dict:
        reset_global_metrics()
        results = run_cells(sweep_specs(SWEEP), jobs=jobs, cache=cache)
        snapshot = global_registry().snapshot()
        reset_global_metrics()
        assert all(r.offered == r.admitted + r.rejected for r in results)
        return snapshot

    def test_serial_parallel_and_warm_replay_merge_identically(
        self, tmp_path
    ):
        cache = ResultCache(directory=tmp_path)
        serial = self._merged(jobs=1, cache=cache)
        reset_memo()
        parallel = self._merged(jobs=2, cache=cache)
        reset_memo()
        replayed = self._merged(jobs=1, cache=cache)
        assert cache.stats.hits >= len(sweep_specs(SWEEP))
        assert serial
        assert serial == parallel == replayed

    def test_overload_degrades_availability(self):
        results = run_sweep(SWEEP, jobs=1, cache=None)
        by_cell = {
            (s.scheme, s.load): r
            for s, r in zip(sweep_specs(SWEEP), results)
        }
        for policy in ("drop-tail", "token-bucket"):
            nominal = by_cell[(policy, 1.0)]
            overloaded = by_cell[(policy, 3.0)]
            assert overloaded.offered > nominal.offered
            assert overloaded.availability <= nominal.availability
