"""The streaming service: admission control, conservation, SLO telemetry."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.stream.arrivals import TenantSpec, generate_arrivals, tenant_mix
from repro.stream.service import (
    ADMISSION_POLICIES,
    REJECT_REASONS,
    StreamService,
    make_stream_series,
)
from repro.telemetry.registry import LATENCY_SLO_EDGES, MetricsRegistry

CYCLES = 1200


def _run(design="C", *, mix="solo-poisson", load=1.0, core=None, **kwargs):
    service = StreamService(design, core=core, **kwargs)
    requests = generate_arrivals(tenant_mix(mix, load), CYCLES, seed=0)
    service.run(requests, CYCLES)
    return service


def _snapshot(service: StreamService) -> str:
    registry = MetricsRegistry()
    service.publish_metrics(registry)
    return json.dumps(registry.snapshot(), sort_keys=True)


class TestConfiguration:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            StreamService("C", policy="random-early")
        with pytest.raises(ConfigurationError):
            StreamService("C", window=0)
        with pytest.raises(ConfigurationError):
            StreamService("C", queue_limit=0)
        with pytest.raises(ConfigurationError):
            StreamService("C", max_outstanding=0)
        with pytest.raises(ConfigurationError):
            StreamService("C", token_rate=0.0)

    def test_stream_series_shapes(self):
        series = make_stream_series(32)
        assert series["stream.series.queue_depth"].agg == "max"
        latency = series["stream.series.latency"]
        assert latency.agg == "hist"
        assert latency.edges == LATENCY_SLO_EDGES


class TestConservation:
    @pytest.mark.parametrize("policy", ADMISSION_POLICIES)
    @pytest.mark.parametrize("design", ("A", "C", "F"))
    def test_offered_splits_exactly(self, design, policy):
        service = _run(design, mix="duo-bursty", policy=policy)
        rejected = sum(service.rejected.values())
        assert service.offered > 0
        assert service.offered == service.admitted + rejected
        assert service.admitted == service.completed

    def test_per_tenant_totals_sum_to_aggregate(self):
        service = _run(mix="trio-mixed")
        totals = {"offered": 0, "admitted": 0, "completed": 0}
        for stats in service._tenants.values():
            for key in totals:
                totals[key] += stats[key]
        assert totals["offered"] == service.offered
        assert totals["admitted"] == service.admitted
        assert totals["completed"] == service.completed

    def test_overload_rejects_at_the_queue(self):
        service = _run(
            mix="duo-bursty", load=6.0, queue_limit=4, max_outstanding=2
        )
        assert service.rejected["queue_full"] > 0
        assert service.queue_high_water == 4

    def test_token_bucket_sheds_before_the_queue(self):
        service = _run(
            mix="duo-bursty",
            load=6.0,
            policy="token-bucket",
            token_rate=0.02,
            token_burst=2.0,
        )
        assert service.rejected["throttled"] > 0

    def test_no_drain_leaves_work_in_flight_accounted(self):
        service = StreamService("C")
        requests = generate_arrivals(
            tenant_mix("solo-poisson", 4.0), CYCLES, seed=0
        )
        service.run(requests, CYCLES, drain=False)
        assert service.completed <= service.admitted


class TestDeterminism:
    def test_same_seed_same_snapshot(self):
        assert _snapshot(_run(mix="duo-bursty")) == _snapshot(
            _run(mix="duo-bursty")
        )

    @pytest.mark.parametrize("design", ("C", "F"))
    def test_cores_publish_identical_snapshots(self, design):
        obj = _snapshot(_run(design, mix="duo-bursty", core="object"))
        arr = _snapshot(_run(design, mix="duo-bursty", core="array"))
        assert obj == arr


class TestReporting:
    def test_published_names_cover_the_contract(self):
        registry = MetricsRegistry()
        _run(mix="duo-bursty").publish_metrics(registry)
        snapshot = registry.snapshot()
        for name in (
            "stream.offered",
            "stream.admitted",
            "stream.completed",
            "stream.queue.high_water",
            "stream.series.offered",
            "stream.series.latency",
            "stream.series.queue_depth",
            "stream.series.tenant.media.latency",
            "stream.tenant.search.completed",
        ):
            assert name in snapshot, name
        for reason in REJECT_REASONS:
            assert f"stream.rejected.{reason}" in snapshot

    def test_summary_arithmetic(self):
        service = _run(mix="duo-bursty", load=3.0, queue_limit=8)
        summary = service.summary()
        rejected = sum(summary["rejected"].values())
        assert summary["offered"] == summary["admitted"] + rejected
        assert summary["availability"] == pytest.approx(
            summary["admitted"] / summary["offered"], abs=1e-6
        )
        assert summary["rejection_rate"] == pytest.approx(
            rejected / summary["offered"], abs=1e-6
        )
        assert summary["goodput_per_kcycle"] > 0
        quantiles = summary["quantiles"]
        assert quantiles["p50"] <= quantiles["p95"] <= quantiles["p99"]
        assert set(summary["tenants"]) == {"media", "search"}

    def test_latency_counts_match_completions(self):
        service = _run(mix="solo-poisson")
        latency = service._series["stream.series.latency"]
        counted = sum(
            sum(counts) for counts in latency.windows.values()
        )
        assert counted == service.completed


class TestHaloMemoryLeg:
    def test_misses_complete_off_network(self):
        tenants = (
            TenantSpec(
                "cold",
                rate_per_kcycle=25.0,
                catalog_blocks=256,
                resident_fraction=0.2,
            ),
        )
        service = StreamService("F")
        requests = generate_arrivals(tenants, CYCLES, seed=0)
        assert any(not request.hit for request in requests)
        service.run(requests, CYCLES)
        assert service.admitted == service.completed
        assert not service._memory_heap
