"""Open-loop streaming service tests."""
