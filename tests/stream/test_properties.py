"""Hypothesis property tests for the open-loop streaming subsystem.

Three properties anchor the subsystem's determinism story:

* arrival generation is a pure function of ``(tenants, cycles, seed)``;
* per-tenant RNG streams are disjoint -- a tenant's slice of any merged
  schedule equals its solo schedule, regardless of co-tenants;
* admission conservation -- every offered request is admitted or
  rejected, and with drain enabled every admitted request completes.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.stream.arrivals import (  # noqa: E402
    ARRIVAL_PROCESSES,
    TenantSpec,
    generate_arrivals,
    generate_tenant_arrivals,
)
from repro.stream.service import ADMISSION_POLICIES, StreamService  # noqa: E402

_NAMES = ("ash", "birch", "cedar", "dogwood")


@st.composite
def tenant_specs(draw, name=None):
    return TenantSpec(
        name=name or draw(st.sampled_from(_NAMES)),
        rate_per_kcycle=float(draw(st.integers(min_value=5, max_value=80))),
        process=draw(st.sampled_from(ARRIVAL_PROCESSES)),
        zipf_alpha=draw(
            st.sampled_from((0.0, 0.5, 0.8, 0.9, 1.1, 1.4))
        ),
        catalog_blocks=draw(st.sampled_from((16, 64, 128, 256))),
        resident_fraction=draw(st.sampled_from((0.2, 0.5, 0.8, 1.0))),
        burst_period=draw(st.sampled_from((128, 512, 1024))),
        burst_boost=draw(st.sampled_from((1.5, 4.0, 8.0))),
        diurnal_period=draw(st.sampled_from((256, 1024, 4096))),
        diurnal_amplitude=draw(st.sampled_from((0.0, 0.4, 0.9))),
    )


@st.composite
def tenant_groups(draw):
    count = draw(st.integers(min_value=1, max_value=len(_NAMES)))
    return tuple(
        draw(tenant_specs(name=_NAMES[i])) for i in range(count)
    )


class TestArrivalProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        tenant=tenant_specs(),
        cycles=st.integers(min_value=1, max_value=4000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_generation_is_deterministic(self, tenant, cycles, seed):
        first = generate_tenant_arrivals(tenant, cycles, seed)
        assert first == generate_tenant_arrivals(tenant, cycles, seed)
        for request in first:
            assert 0 <= request.cycle < cycles
            assert request.tenant == tenant.name

    @settings(max_examples=25, deadline=None)
    @given(
        tenants=tenant_groups(),
        cycles=st.integers(min_value=100, max_value=2500),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_tenant_streams_are_disjoint(self, tenants, cycles, seed):
        merged = generate_arrivals(tenants, cycles, seed)
        assert [r.cycle for r in merged] == sorted(r.cycle for r in merged)
        for tenant in tenants:
            solo = generate_tenant_arrivals(tenant, cycles, seed)
            assert [r for r in merged if r.tenant == tenant.name] == solo

    @settings(max_examples=25, deadline=None)
    @given(
        tenant=tenant_specs(),
        cycles=st.integers(min_value=500, max_value=3000),
        seed=st.integers(min_value=0, max_value=999),
    )
    def test_classification_is_rank_pure(self, tenant, cycles, seed):
        resident = max(
            1, int(tenant.catalog_blocks * tenant.resident_fraction)
        )
        for request in generate_tenant_arrivals(tenant, cycles, seed):
            assert 0.0 <= request.depth_unit < 1.0
            if tenant.resident_fraction == 1.0:
                assert request.hit
        # The classification map itself is deterministic per tenant:
        # identical (column, hit, depth) multisets across regenerations.
        again = generate_tenant_arrivals(tenant, cycles, seed)
        assert sorted(
            (r.column, r.hit, r.depth_unit)
            for r in generate_tenant_arrivals(tenant, cycles, seed)
        ) == sorted((r.column, r.hit, r.depth_unit) for r in again)


class TestAdmissionConservation:
    @settings(max_examples=12, deadline=None)
    @given(
        tenants=tenant_groups(),
        policy=st.sampled_from(ADMISSION_POLICIES),
        queue_limit=st.integers(min_value=1, max_value=12),
        max_outstanding=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=99),
    )
    def test_offered_equals_admitted_plus_rejected(
        self, tenants, policy, queue_limit, max_outstanding, seed
    ):
        cycles = 600
        service = StreamService(
            "C",
            policy=policy,
            queue_limit=queue_limit,
            max_outstanding=max_outstanding,
        )
        requests = generate_arrivals(tenants, cycles, seed)
        service.run(requests, cycles)
        rejected = sum(service.rejected.values())
        assert service.offered == len(requests)
        assert service.offered == service.admitted + rejected
        assert service.admitted == service.completed
        assert service.queue_high_water <= queue_limit
