"""Open-loop arrival generation: determinism, classification, mixes."""

import pytest

from repro.errors import ConfigurationError
from repro.stream.arrivals import (
    ARRIVAL_PROCESSES,
    MIX_NAMES,
    NUM_COLUMNS,
    TENANT_MIXES,
    TenantSpec,
    generate_arrivals,
    generate_tenant_arrivals,
    tenant_mix,
)


def _tenant(**overrides) -> TenantSpec:
    values = dict(name="t0", rate_per_kcycle=40.0)
    values.update(overrides)
    return TenantSpec(**values)


class TestTenantSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            _tenant(name="")
        with pytest.raises(ConfigurationError):
            _tenant(rate_per_kcycle=0.0)
        with pytest.raises(ConfigurationError):
            _tenant(process="sawtooth")
        with pytest.raises(ConfigurationError):
            _tenant(catalog_blocks=0)
        with pytest.raises(ConfigurationError):
            _tenant(resident_fraction=0.0)
        with pytest.raises(ConfigurationError):
            _tenant(resident_fraction=1.5)
        with pytest.raises(ConfigurationError):
            _tenant(burst_boost=0.5)
        with pytest.raises(ConfigurationError):
            _tenant(diurnal_amplitude=1.0)

    def test_scaled_multiplies_only_the_rate(self):
        tenant = _tenant(process="bursty", zipf_alpha=1.1)
        doubled = tenant.scaled(2.0)
        assert doubled.rate_per_kcycle == tenant.rate_per_kcycle * 2
        assert doubled.name == tenant.name
        assert doubled.process == tenant.process
        assert doubled.zipf_alpha == tenant.zipf_alpha
        with pytest.raises(ConfigurationError):
            tenant.scaled(0.0)


class TestGeneration:
    def test_deterministic_given_seed(self):
        tenant = _tenant()
        first = generate_tenant_arrivals(tenant, 2000, seed=7)
        second = generate_tenant_arrivals(tenant, 2000, seed=7)
        assert first == second
        assert first != generate_tenant_arrivals(tenant, 2000, seed=8)

    def test_requests_classified_in_range(self):
        tenant = _tenant(catalog_blocks=128, resident_fraction=0.5)
        requests = generate_tenant_arrivals(tenant, 4000, seed=1)
        assert requests
        for request in requests:
            assert 0 <= request.cycle < 4000
            assert 0 <= request.column < NUM_COLUMNS
            assert 0.0 <= request.depth_unit < 1.0
            assert request.tenant == tenant.name
        # A 0.5-resident catalog must produce both hits and misses.
        assert {request.hit for request in requests} == {True, False}

    def test_rate_roughly_matches_offered_load(self):
        tenant = _tenant(rate_per_kcycle=50.0)
        requests = generate_tenant_arrivals(tenant, 20_000, seed=3)
        # 50/kcycle over 20 kcycles => ~1000; allow wide Poisson slack.
        assert 700 <= len(requests) <= 1300

    @pytest.mark.parametrize("process", ARRIVAL_PROCESSES)
    def test_every_process_produces_arrivals(self, process):
        tenant = _tenant(process=process, rate_per_kcycle=30.0)
        assert generate_tenant_arrivals(tenant, 8000, seed=2)

    def test_merged_schedule_sorted_and_disjoint(self):
        tenants = (
            _tenant(name="a", rate_per_kcycle=30.0),
            _tenant(name="b", rate_per_kcycle=20.0, process="bursty"),
        )
        merged = generate_arrivals(tenants, 3000, seed=5)
        assert merged == sorted(merged, key=lambda r: r.cycle)
        for tenant in tenants:
            solo = generate_tenant_arrivals(tenant, 3000, seed=5)
            assert [r for r in merged if r.tenant == tenant.name] == solo

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            generate_tenant_arrivals(_tenant(), 0, seed=1)
        with pytest.raises(ConfigurationError):
            generate_arrivals((), 100, seed=1)
        with pytest.raises(ConfigurationError):
            generate_arrivals((_tenant(), _tenant()), 100, seed=1)


class TestMixes:
    def test_named_mixes_generate(self):
        for name in MIX_NAMES:
            requests = generate_arrivals(tenant_mix(name), 2000, seed=0)
            assert requests
            assert {r.tenant for r in requests} <= {
                t.name for t in TENANT_MIXES[name]
            }

    def test_load_scaling_scales_every_tenant(self):
        base = tenant_mix("duo-bursty")
        heavy = tenant_mix("duo-bursty", load=3.0)
        for tenant, scaled in zip(base, heavy):
            assert scaled.rate_per_kcycle == pytest.approx(
                3.0 * tenant.rate_per_kcycle
            )

    def test_unknown_mix_raises(self):
        with pytest.raises(ConfigurationError):
            tenant_mix("quad-nope")
