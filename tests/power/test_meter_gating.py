"""Integration tests for the energy meter and gating policy."""

import pytest

from repro.core.system import NetworkedCacheSystem
from repro.errors import ConfigurationError
from repro.power import EnergyMeter, GatingPolicy, simulate_gating
from repro.workloads import TraceGenerator, profile_by_name


@pytest.fixture(scope="module")
def run_a():
    profile = profile_by_name("twolf")
    trace, warmup = TraceGenerator(profile, seed=2).generate_with_warmup(
        measure=500
    )
    system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
    result = system.run(trace, profile, warmup=warmup)
    return system, result


class TestEnergyMeter:
    def test_all_components_positive(self, run_a):
        system, result = run_a
        report = EnergyMeter().measure(system, result)
        assert report.bank_pj > 0
        assert report.router_pj > 0
        assert report.link_pj > 0
        assert report.memory_pj > 0
        assert report.leakage_pj > 0

    def test_totals_consistent(self, run_a):
        system, result = run_a
        report = EnergyMeter().measure(system, result)
        assert report.total_pj == pytest.approx(
            report.dynamic_pj + report.leakage_pj
        )
        assert report.pj_per_access == pytest.approx(
            report.total_pj / result.accesses
        )
        assert sum(report.fractions().values()) == pytest.approx(1.0)

    def test_memory_energy_counts_fills_and_writebacks(self, run_a):
        system, result = run_a
        report = EnergyMeter().measure(system, result)
        events = system.memory.reads + system.memory.writebacks
        assert report.memory_pj == pytest.approx(
            events * EnergyMeter().params.memory_access_pj
        )

    def test_halo_cheaper_per_access_than_mesh(self, run_a):
        system_a, result_a = run_a
        report_a = EnergyMeter().measure(system_a, result_a)
        profile = profile_by_name("twolf")
        trace, warmup = TraceGenerator(profile, seed=2).generate_with_warmup(
            measure=500
        )
        system_f = NetworkedCacheSystem(design="F", scheme="multicast+fast_lru")
        result_f = system_f.run(trace, profile, warmup=warmup)
        report_f = EnergyMeter().measure(system_f, result_f)
        assert report_f.pj_per_access < report_a.pj_per_access


class TestGating:
    def test_threshold_tradeoff(self, run_a):
        system, result = run_a
        eager = simulate_gating(system, result, GatingPolicy(idle_threshold=100))
        lazy = simulate_gating(system, result, GatingPolicy(idle_threshold=50_000))
        # Eager gating turns off more, but wakes up more often.
        assert eager.gated_fraction >= lazy.gated_fraction
        assert eager.wakeups >= lazy.wakeups

    def test_leakage_accounting(self, run_a):
        system, result = run_a
        report = simulate_gating(system, result)
        assert 0 <= report.gated_fraction <= 1
        assert report.leakage_after_pj == pytest.approx(
            report.leakage_before_pj * (1 - report.gated_fraction)
        )
        assert report.leakage_saved_pj >= 0

    def test_latency_penalty_bounded(self, run_a):
        system, result = run_a
        report = simulate_gating(system, result, GatingPolicy(idle_threshold=0))
        # Threshold 0 gates after every bank access: every access then wakes
        # each bank it touches (the multicast tag phase touches the whole
        # column, so the per-L2-access penalty is several wake latencies).
        assert report.average_latency_penalty >= report.policy.wake_latency
        assert report.gated_fraction == pytest.approx(1.0)

    def test_invalid_policy(self):
        with pytest.raises(ConfigurationError):
            GatingPolicy(idle_threshold=-1)
        with pytest.raises(ConfigurationError):
            GatingPolicy(wake_latency=-1)
