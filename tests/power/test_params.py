"""Unit tests for energy parameters."""

import pytest

from repro.errors import ConfigurationError
from repro.power import EnergyParams

KB = 1024


class TestEnergyParams:
    def test_bank_energy_grows_sublinearly(self):
        params = EnergyParams()
        e64 = params.bank_access_pj(64 * KB)
        e512 = params.bank_access_pj(512 * KB)
        assert e64 < e512 < 8 * e64

    def test_link_energy_linear_in_length(self):
        params = EnergyParams()
        assert params.link_flit_pj(2.0) == pytest.approx(2 * params.link_flit_pj(1.0))

    def test_memory_dominates_onchip_events(self):
        params = EnergyParams()
        assert params.memory_access_pj > 50 * params.bank_access_pj(64 * KB)
        assert params.memory_access_pj > 1000 * params.router_flit_pj

    def test_leakage_scales_with_area_and_time(self):
        params = EnergyParams()
        base = params.leakage_pj(10.0, 1000)
        assert params.leakage_pj(20.0, 1000) == pytest.approx(2 * base)
        assert params.leakage_pj(10.0, 2000) == pytest.approx(2 * base)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyParams(router_flit_pj=0)
        with pytest.raises(ConfigurationError):
            EnergyParams(bank_capacity_exponent=2.0)
        with pytest.raises(ConfigurationError):
            EnergyParams().bank_access_pj(0)
        with pytest.raises(ConfigurationError):
            EnergyParams().link_flit_pj(-1)
        with pytest.raises(ConfigurationError):
            EnergyParams().leakage_pj(-1, 10)
