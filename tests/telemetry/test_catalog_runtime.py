"""The static key catalog is a superset of what cells emit at runtime.

One figure-9 experiment cell and one streaming-service cell, on each
flit core, must emit only keys the generated catalog covers, with the
kind the catalog recorded. A failure here means a new emit site dodged
the extractor (fix the extractor) or the catalog is stale (regenerate
with ``repro lint --write-catalog``).
"""

import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import reset_memo, run_cells, spec_for
from repro.stream.engine import execute_stream_cell, stream_spec_for
from repro.telemetry import catalog, reset_global_metrics

CORES = ("object", "array")


@pytest.fixture(autouse=True)
def _fresh_engine():
    reset_memo()
    reset_global_metrics()
    yield
    reset_memo()
    reset_global_metrics()


def _assert_covered(snapshot: dict) -> None:
    assert snapshot, "smoke cell emitted no metrics"
    assert catalog.unknown_keys(snapshot) == []
    mismatched = {
        key: (payload["type"], catalog.covers(key))
        for key, payload in snapshot.items()
        if payload["type"] not in (catalog.covers(key) or ())
    }
    assert mismatched == {}


@pytest.mark.parametrize("core", CORES)
def test_figure9_cell_keys_are_cataloged(core):
    config = ExperimentConfig(measure=150, seed=1)
    spec = spec_for("A", "multicast+fast_lru", "art", config,
                    core=core, window=64)
    (result,) = run_cells([spec], jobs=1, cache=None)
    _assert_covered(result.metrics)


@pytest.mark.parametrize("core", CORES)
def test_stream_cell_keys_are_cataloged(core):
    spec = stream_spec_for("C", "drop-tail", "duo-bursty",
                           seed=0, cycles=900, core=core)
    result = execute_stream_cell(spec)
    _assert_covered(result.metrics)


def test_wildcards_span_structured_fragments():
    # Port names contain dots and arrows; the wildcard regex must span
    # them, not stop at the first separator.
    assert catalog.covers("noc.link.flits.mem(0,0)->bank(1,2)") is not None
