"""Zero-overhead-when-disabled guards.

These are coarse regression tripwires, not precision benchmarks: each
timing is a best-of-N to shed scheduler noise, and the thresholds are
deliberately generous (the precise disabled-overhead number is measured by
``benchmarks/bench_runtime.py`` and recorded in BENCH_runtime.json). What
they catch is a category error -- an instrumentation site that builds
event payloads before checking ``sink.enabled``, or a hot-path metric that
turns O(1) bookkeeping into something visibly slower.
"""

import itertools
import timeit

from repro.sim.resource import Resource
from repro.telemetry import NULL_SINK, current_sink


def _best_of(stmt, repeat=7, number=20_000):
    return min(timeit.repeat(stmt, repeat=repeat, number=number))


class TestNullSinkFastPath:
    def test_null_sink_is_installed_and_disabled(self):
        assert current_sink() is NULL_SINK
        assert NULL_SINK.enabled is False

    def test_guarded_site_is_near_free(self):
        """A disabled event site must cost about one attribute check.

        Compares a loop body with the exact guard the instrumentation
        uses against a bare loop. 2.0x is far above what the guard
        actually costs (~1.05x) but far below what building event dicts
        per iteration would cost (>5x), so the tripwire is stable.
        """
        sink = NULL_SINK
        payload = {"packet": 1, "vc": 0}

        def bare():
            pass

        def guarded():
            if sink.enabled:
                sink.instant("traverse", "noc.flit", 0, tid=0, args=payload)

        bare_s = _best_of(bare)
        guarded_s = _best_of(guarded)
        assert guarded_s < bare_s * 2.0 + 1e-3

    def test_waits_counter_is_constant_bookkeeping(self):
        """The waits instrumentation must stay O(1) per acquire."""
        resource = Resource(name="m")
        for t in range(1000):
            resource.acquire(t, 2)  # every grant after the first queues
        assert resource.waits == 999
        assert resource.queued_cycles > 0
        resource.reset()
        assert resource.waits == 0

    def test_disabled_run_not_slower_than_traced(self, tmp_path):
        """A run with no sink must not cost more than a traced one.

        If an instrumentation site ever builds its event payloads before
        checking ``sink.enabled``, the disabled run pays tracing's CPU
        cost without its I/O and this ratio collapses toward 1; the
        traced run always does strictly more work, so disabled must win
        (1.10x headroom for timer noise).
        """
        from repro.core.system import NetworkedCacheSystem
        from repro.telemetry import open_sink, set_sink
        from repro.workloads import TraceGenerator, profile_by_name

        profile = profile_by_name("art")
        trace, warmup = TraceGenerator(profile, seed=3).generate_with_warmup(
            measure=300
        )

        def run_once():
            system = NetworkedCacheSystem(
                design="A", scheme="multicast+fast_lru"
            )
            system.run(trace, profile, warmup=warmup)

        trace_ids = itertools.count(1)

        def traced_once():
            sink = open_sink(tmp_path / f"t{next(trace_ids)}.jsonl", "jsonl")
            previous = set_sink(sink)
            try:
                run_once()
            finally:
                set_sink(previous)
                sink.close()

        run_once()  # warm caches/imports outside the timed region
        disabled_s = min(timeit.repeat(run_once, repeat=3, number=1))
        traced_s = min(timeit.repeat(traced_once, repeat=3, number=1))
        assert disabled_s < traced_s * 1.10


class TestWindowedSeriesOffPath:
    def test_window_off_records_no_series(self):
        """window=0 must leave zero Series footprint in the snapshot.

        The off path is the default for every sweep cell, so windowed
        telemetry being "off" must mean structurally absent -- no
        ``cache.series.*`` metrics, no per-access record() calls -- not
        merely empty.
        """
        from repro.core.system import NetworkedCacheSystem
        from repro.workloads import TraceGenerator, profile_by_name

        profile = profile_by_name("art")
        trace, warmup = TraceGenerator(profile, seed=3).generate_with_warmup(
            measure=200
        )
        system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
        assert system._series is None
        result = system.run(trace, profile, warmup=warmup)
        assert not [
            key for key in result.metrics if key.startswith("cache.series.")
        ]

    def test_windowed_run_overhead_is_bounded(self):
        """window=N stays cheap: a few dict ops per measured access.

        Mirrors ``bench_windowed`` in benchmarks/bench_runtime.py (the
        precise ratio lands in BENCH_runtime.json as
        ``windowed_telemetry``); the 1.5x tripwire only catches a
        category error like per-access snapshotting.
        """
        from repro.core.system import NetworkedCacheSystem
        from repro.workloads import TraceGenerator, profile_by_name

        profile = profile_by_name("art")
        trace, warmup = TraceGenerator(profile, seed=3).generate_with_warmup(
            measure=300
        )

        def run_once(window=0):
            system = NetworkedCacheSystem(
                design="A", scheme="multicast+fast_lru", window=window
            )
            system.run(trace, profile, warmup=warmup)

        run_once()  # warm caches/imports outside the timed region
        plain_s = min(timeit.repeat(run_once, repeat=3, number=1))
        windowed_s = min(
            timeit.repeat(lambda: run_once(window=64), repeat=3, number=1)
        )
        assert windowed_s < plain_s * 1.5 + 1e-3
