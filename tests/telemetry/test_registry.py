"""The metrics registry: counters, gauges, fixed-edge histograms, merging.

The load-bearing property is determinism: snapshots are plain sorted-key
dicts, histogram edges are part of a metric's identity, and merging is
associative and commutative -- so serial, parallel, and cache-replayed
sweeps fold per-cell snapshots into identical totals.
"""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    CHAIN_DEPTH_EDGES,
    Histogram,
    MetricsRegistry,
    Series,
    global_registry,
    quantiles_from_counts,
    reset_global_metrics,
)


class TestCounter:
    def test_inc_and_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(9)
        assert counter.value == 9

    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError, match="Counter"):
            registry.gauge("x")


class TestGauge:
    def test_update_max_is_high_water(self):
        gauge = MetricsRegistry().gauge("hw")
        for value in (3, 7, 2):
            gauge.update_max(value)
        assert gauge.value == 7

    def test_merge_keeps_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("hw").set(5)
        b.gauge("hw").set(9)
        a.merge(b.snapshot())
        assert a.gauge("hw").value == 9


class TestHistogram:
    def test_bucket_assignment_is_stable(self):
        hist = Histogram(edges=(0, 1, 2, 4))
        for value in (0, 1, 1, 3, 100):
            hist.record(value)
        # buckets: <=0, <=1, <=2, <=4, overflow
        assert hist.counts == [1, 2, 0, 1, 1]
        assert hist.count == 5
        assert hist.total == 105
        assert hist.mean == 21.0

    def test_edges_must_increase(self):
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Histogram(edges=(1, 1, 2))
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Histogram(edges=(2, 1))

    def test_reregistration_with_other_edges_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (0, 1, 2))
        with pytest.raises(TelemetryError, match="already registered"):
            registry.histogram("h", (0, 1, 3))

    def test_merge_rejects_different_edges(self):
        a = Histogram(edges=(0, 1))
        with pytest.raises(TelemetryError, match="different edges"):
            a.merge({"edges": [0, 2], "counts": [0, 0, 0],
                     "total": 0, "count": 0})

    def test_chain_depth_edges_are_fixed_constants(self):
        # The figure drivers and the merge path both depend on these
        # exact edges; changing them silently breaks series comparability.
        assert CHAIN_DEPTH_EDGES == (0, 1, 2, 3, 4, 6, 8, 12, 16)


class TestSeries:
    def test_samples_bucket_by_sim_cycle_window(self):
        series = Series(10)
        for cycle in (0, 9, 10, 25):
            series.record(cycle, 2)
        # cycle // window: {0, 9} -> 0, 10 -> 1, 25 -> 2
        assert series.windows == {0: 4, 1: 2, 2: 2}

    def test_max_agg_keeps_window_high_water(self):
        series = Series(4, "max")
        for cycle, value in ((0, 3), (1, 7), (2, 5), (4, 1)):
            series.record(cycle, value)
        assert series.windows == {0: 7, 1: 1}

    def test_hist_agg_counts_per_window_bucket(self):
        series = Series(8, "hist", edges=(1, 2, 4))
        for value in (1, 2, 3, 100):
            series.record(0, value)
        series.record(8, 4)
        # per-window buckets: <=1, <=2, <=4, overflow
        assert series.windows == {0: [1, 1, 1, 1], 1: [0, 0, 1, 0]}
        quantiles = dict(series.window_quantiles())
        assert quantiles[0]["p50"] == 2.0
        assert quantiles[1] == {"p50": 4.0, "p95": 4.0, "p99": 4.0}

    def test_identity_is_validated(self):
        with pytest.raises(TelemetryError, match="positive int"):
            Series(0)
        with pytest.raises(TelemetryError, match="agg must be one of"):
            Series(8, "mean")
        with pytest.raises(TelemetryError, match="edges are required"):
            Series(8, "hist")
        with pytest.raises(TelemetryError, match="edges are required"):
            Series(8, "sum", edges=(1, 2))
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Series(8, "hist", edges=(2, 1))
        with pytest.raises(TelemetryError, match="window_quantiles"):
            Series(8).window_quantiles()

    def test_registry_enforces_series_identity(self):
        registry = MetricsRegistry()
        first = registry.series("s", 16)
        assert registry.series("s", 16) is first
        with pytest.raises(TelemetryError, match="identity mismatch"):
            registry.series("s", 32)
        with pytest.raises(TelemetryError, match="identity mismatch"):
            registry.series("s", 16, "max")

    def test_snapshot_shape_and_sorted_windows(self):
        series = Series(10)
        series.record(25)
        series.record(3)
        snap = series.snapshot()
        assert snap == {
            "type": "series", "window": 10, "agg": "sum",
            "windows": [[0, 1], [2, 1]],
        }
        assert "edges" not in snap
        assert "edges" in Series(10, "hist", edges=(1, 2)).snapshot()

    def test_merge_is_order_independent_for_every_agg(self):
        def sample(window_index: int, agg: str) -> Series:
            edges = (1, 4) if agg == "hist" else None
            series = Series(8, agg, edges)
            for offset, value in ((0, 2), (3, 5)):
                series.record(window_index * 8 + offset, value)
            return series

        for agg in ("sum", "max", "hist"):
            parts = [sample(index, agg).snapshot() for index in (0, 0, 1)]

            def fold(order, agg=agg):
                edges = (1, 4) if agg == "hist" else None
                merged = Series(8, agg, edges)
                for part in order:
                    merged.merge(part)
                return merged.snapshot()

            forward = fold(parts)
            assert forward == fold(reversed(parts)), agg
            indexes = [index for index, _ in forward["windows"]]
            assert indexes == [0, 1], agg

    def test_merge_rejects_identity_mismatch(self):
        series = Series(8)
        with pytest.raises(TelemetryError, match="identity mismatch"):
            series.merge(Series(16).snapshot())

    def test_registry_merge_reconstructs_series(self):
        source = MetricsRegistry()
        source.series("s.hist", 8, "hist", (1, 2)).record(0, 2)
        source.series("s.sum", 8).record(9, 3)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        target.merge(source.snapshot())
        snap = target.snapshot()
        assert snap["s.sum"]["windows"] == [[1, 6]]
        assert snap["s.hist"]["windows"] == [[0, [0, 2, 0]]]

    def test_reset_clears_windows_keeps_identity(self):
        registry = MetricsRegistry()
        registry.series("s", 8, "hist", (1, 2)).record(0, 1)
        registry.reset()
        snap = registry.snapshot()["s"]
        assert snap["windows"] == []
        assert snap["edges"] == [1, 2]


class TestQuantilesFromCounts:
    def test_upper_edge_estimate(self):
        # counts per bucket: <=1: 5, <=2: 4, <=4: 1, overflow: 0
        quantiles = quantiles_from_counts((1, 2, 4), [5, 4, 1, 0])
        assert quantiles == {"p50": 1.0, "p95": 4.0, "p99": 4.0}

    def test_overflow_reports_last_edge(self):
        assert quantiles_from_counts((1, 2), [0, 0, 3])["p50"] == 2.0

    def test_empty_reports_zero(self):
        assert quantiles_from_counts((1, 2), [0, 0, 0]) == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_merging_counts_preserves_quantiles(self):
        # Exactness under merging: quantiles of summed counts equal the
        # quantiles of the union stream, by construction.
        a, b = [3, 1, 0, 0], [0, 4, 2, 0]
        union = [x + y for x, y in zip(a, b)]
        assert quantiles_from_counts((1, 2, 4), union)["p50"] == 2.0


class TestRegistrySnapshotMerge:
    def _sample(self, scale: int) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c").inc(10 * scale)
        registry.gauge("g").set(scale)
        hist = registry.histogram("h", (1, 2))
        for _ in range(scale):
            hist.record(2)
        return registry

    def test_snapshot_is_json_stable(self):
        registry = self._sample(2)
        first = json.dumps(registry.snapshot(), sort_keys=True)
        second = json.dumps(self._sample(2).snapshot(), sort_keys=True)
        assert first == second
        assert list(registry.snapshot()) == sorted(registry.snapshot())

    def test_merge_is_associative_and_commutative(self):
        parts = [self._sample(scale).snapshot() for scale in (1, 2, 3)]

        def fold(order):
            registry = MetricsRegistry()
            for part in order:
                registry.merge(part)
            return registry.snapshot()

        forward = fold(parts)
        backward = fold(reversed(parts))
        assert forward == backward
        assert forward["c"]["value"] == 60
        assert forward["g"]["value"] == 3
        assert forward["h"]["counts"] == [0, 6, 0]

    def test_merge_unknown_type_raises(self):
        with pytest.raises(TelemetryError, match="unknown metric type"):
            MetricsRegistry().merge({"x": {"type": "bogus", "value": 1}})

    def test_reset_keeps_names_and_edges(self):
        registry = self._sample(3)
        registry.reset()
        snapshot = registry.snapshot()
        assert set(snapshot) == {"c", "g", "h"}
        assert snapshot["c"]["value"] == 0
        assert snapshot["h"]["edges"] == [1, 2]
        assert snapshot["h"]["counts"] == [0, 0, 0]

    def test_global_registry_reset(self):
        global_registry().counter("t").inc()
        assert "t" in global_registry()
        reset_global_metrics()
        assert "t" not in global_registry()
