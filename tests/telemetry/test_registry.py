"""The metrics registry: counters, gauges, fixed-edge histograms, merging.

The load-bearing property is determinism: snapshots are plain sorted-key
dicts, histogram edges are part of a metric's identity, and merging is
associative and commutative -- so serial, parallel, and cache-replayed
sweeps fold per-cell snapshots into identical totals.
"""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    CHAIN_DEPTH_EDGES,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_metrics,
)


class TestCounter:
    def test_inc_and_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(9)
        assert counter.value == 9

    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError, match="Counter"):
            registry.gauge("x")


class TestGauge:
    def test_update_max_is_high_water(self):
        gauge = MetricsRegistry().gauge("hw")
        for value in (3, 7, 2):
            gauge.update_max(value)
        assert gauge.value == 7

    def test_merge_keeps_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("hw").set(5)
        b.gauge("hw").set(9)
        a.merge(b.snapshot())
        assert a.gauge("hw").value == 9


class TestHistogram:
    def test_bucket_assignment_is_stable(self):
        hist = Histogram(edges=(0, 1, 2, 4))
        for value in (0, 1, 1, 3, 100):
            hist.record(value)
        # buckets: <=0, <=1, <=2, <=4, overflow
        assert hist.counts == [1, 2, 0, 1, 1]
        assert hist.count == 5
        assert hist.total == 105
        assert hist.mean == 21.0

    def test_edges_must_increase(self):
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Histogram(edges=(1, 1, 2))
        with pytest.raises(TelemetryError, match="strictly increasing"):
            Histogram(edges=(2, 1))

    def test_reregistration_with_other_edges_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", (0, 1, 2))
        with pytest.raises(TelemetryError, match="already registered"):
            registry.histogram("h", (0, 1, 3))

    def test_merge_rejects_different_edges(self):
        a = Histogram(edges=(0, 1))
        with pytest.raises(TelemetryError, match="different edges"):
            a.merge({"edges": [0, 2], "counts": [0, 0, 0],
                     "total": 0, "count": 0})

    def test_chain_depth_edges_are_fixed_constants(self):
        # The figure drivers and the merge path both depend on these
        # exact edges; changing them silently breaks series comparability.
        assert CHAIN_DEPTH_EDGES == (0, 1, 2, 3, 4, 6, 8, 12, 16)


class TestRegistrySnapshotMerge:
    def _sample(self, scale: int) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c").inc(10 * scale)
        registry.gauge("g").set(scale)
        hist = registry.histogram("h", (1, 2))
        for _ in range(scale):
            hist.record(2)
        return registry

    def test_snapshot_is_json_stable(self):
        registry = self._sample(2)
        first = json.dumps(registry.snapshot(), sort_keys=True)
        second = json.dumps(self._sample(2).snapshot(), sort_keys=True)
        assert first == second
        assert list(registry.snapshot()) == sorted(registry.snapshot())

    def test_merge_is_associative_and_commutative(self):
        parts = [self._sample(scale).snapshot() for scale in (1, 2, 3)]

        def fold(order):
            registry = MetricsRegistry()
            for part in order:
                registry.merge(part)
            return registry.snapshot()

        forward = fold(parts)
        backward = fold(reversed(parts))
        assert forward == backward
        assert forward["c"]["value"] == 60
        assert forward["g"]["value"] == 3
        assert forward["h"]["counts"] == [0, 6, 0]

    def test_merge_unknown_type_raises(self):
        with pytest.raises(TelemetryError, match="unknown metric type"):
            MetricsRegistry().merge({"x": {"type": "bogus", "value": 1}})

    def test_reset_keeps_names_and_edges(self):
        registry = self._sample(3)
        registry.reset()
        snapshot = registry.snapshot()
        assert set(snapshot) == {"c", "g", "h"}
        assert snapshot["c"]["value"] == 0
        assert snapshot["h"]["edges"] == [1, 2]
        assert snapshot["h"]["counts"] == [0, 0, 0]

    def test_global_registry_reset(self):
        global_registry().counter("t").inc()
        assert "t" in global_registry()
        reset_global_metrics()
        assert "t" not in global_registry()
