"""The ``repro report <metrics.json>`` explorer (repro.telemetry.report).

Everything is a pure function of the snapshot dict, so these tests build
tiny synthetic snapshots and assert on exact extracted structures; the
CLI round-trip over a real sweep lives in tests/test_cli.py.
"""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import report


def _counter(value):
    return {"type": "counter", "value": value}


def _mesh_snapshot():
    """A 2x2 mesh with one hot corner plus a series and a span leg."""
    return {
        "noc.link.flits.(0, 0)->(0, 1)": _counter(30),
        "noc.link.flits.(0, 1)->(1, 1)": _counter(10),
        "noc.link.flits.(1, 0)->(0, 0)": _counter(5),
        "cache.series.accesses": {
            "type": "series", "window": 16, "agg": "sum",
            "windows": [[0, 4], [2, 9]],
        },
        "cache.series.latency": {
            "type": "series", "window": 16, "agg": "hist",
            "edges": [10, 20], "windows": [[0, [3, 1, 0]]],
        },
        "cache.span.bank_service": {
            "type": "histogram", "edges": [4, 8],
            "counts": [2, 1, 1], "total": 24, "count": 4,
        },
    }


class TestLoadMetrics:
    def test_accepts_cli_payload_and_bare_snapshot(self, tmp_path):
        snapshot = _mesh_snapshot()
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(snapshot))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"metrics": snapshot, "journal": []}))
        assert report.load_metrics(bare) == snapshot
        assert report.load_metrics(wrapped) == snapshot

    def test_directory_uses_last_parseable_json(self, tmp_path):
        (tmp_path / "a.json").write_text(json.dumps(_mesh_snapshot()))
        (tmp_path / "b.json").write_text(json.dumps({"not": "a snapshot"}))
        loaded = report.load_metrics(tmp_path)
        assert "cache.series.accesses" in loaded

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(TelemetryError, match="no metrics JSON"):
            report.load_metrics(tmp_path)

    def test_non_snapshot_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(TelemetryError, match="not a metrics snapshot"):
            report.load_metrics(bad)


class TestExtraction:
    def test_series_rows_carry_start_cycles_and_quantiles(self):
        series = report.extract_series(_mesh_snapshot())
        assert set(series) == {"cache.series.accesses", "cache.series.latency"}
        sums = series["cache.series.accesses"]["windows"]
        assert sums == [
            {"index": 0, "start": 0, "value": 4},
            {"index": 2, "start": 32, "value": 9},
        ]
        hist = series["cache.series.latency"]["windows"][0]
        assert hist["count"] == 4
        assert hist["p50"] == 10.0

    def test_heatmap_node_load_is_outgoing_sum(self):
        heatmap = report.extract_heatmap(_mesh_snapshot())
        assert heatmap["metric"] == "noc.link.flits"
        assert heatmap["links"][0]["value"] == 30
        assert heatmap["node_load"] == {
            "(0, 0)": 30, "(0, 1)": 10, "(1, 0)": 5,
        }
        assert heatmap["grid"] == {
            "rows": 2, "cols": 2, "values": [[30, 10], [5, 0]],
        }

    def test_heatmap_prefers_busy_cycles_over_flits(self):
        metrics = dict(_mesh_snapshot())
        metrics["noc.link.busy_cycles.(0, 0)->(0, 1)"] = _counter(7)
        heatmap = report.extract_heatmap(metrics)
        assert heatmap["metric"] == "noc.link.busy_cycles"
        assert len(heatmap["links"]) == 1

    def test_heatmap_without_link_counters_is_none(self):
        assert report.extract_heatmap({"x": _counter(1)}) is None

    def test_non_mesh_nodes_skip_the_grid(self):
        metrics = {
            "noc.link.flits.('hub',)->('spike', 0)": _counter(4),
        }
        heatmap = report.extract_heatmap(metrics)
        assert heatmap["links"]
        assert "grid" not in heatmap

    def test_breakdown_means_and_quantiles(self):
        breakdown = report.extract_breakdown(_mesh_snapshot())
        assert breakdown == {
            "bank_service": {
                "count": 4, "total": 24, "mean": 6.0,
                "p50": 4.0, "p95": 8.0, "p99": 8.0,
            },
        }


class TestRendering:
    def test_render_text_has_all_three_sections(self):
        text = report.render_text(report.explore(_mesh_snapshot()))
        assert "Windowed series" in text
        assert "Congestion heatmap" in text
        assert "Latency breakdown (cycles)" in text
        assert "2x2 mesh" in text
        assert "(0, 0)->(0, 1)  30" in text
        assert "bank_service" in text

    def test_render_text_degrades_gracefully_when_empty(self):
        text = report.render_text(report.explore({"x": _counter(1)}))
        assert "rerun with --window N" in text
        assert "no per-link counters" in text
        assert "no cache.span.*" in text

    def test_long_series_elide_the_middle(self):
        metrics = {
            "s": {
                "type": "series", "window": 4, "agg": "sum",
                "windows": [[i, i] for i in range(100)],
            },
        }
        text = report.render_text(report.explore(metrics))
        assert "windows elided" in text
        assert "@       0" in text and "@     396" in text

    def test_write_png_matches_matplotlib_availability(self, tmp_path):
        try:
            import matplotlib  # noqa: F401
            have_mpl = True
        except ImportError:
            have_mpl = False
        target = tmp_path / "out.png"
        wrote = report.write_png(report.explore(_mesh_snapshot()), target)
        assert wrote is have_mpl
        assert target.exists() is have_mpl
