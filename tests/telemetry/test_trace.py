"""Trace sinks: byte-identical JSONL and Perfetto-loadable Chrome output.

Determinism contract: sim-time timestamps only, sorted keys, compact
separators, first-use-order track ids. Two identical runs must produce
byte-identical trace files.
"""

import json

import pytest

from repro.core.system import NetworkedCacheSystem
from repro.errors import TelemetryError
from repro.telemetry import (
    NULL_SINK,
    ChromeTraceSink,
    JsonlTraceSink,
    current_sink,
    open_sink,
    set_sink,
)
from repro.workloads import TraceGenerator, profile_by_name


@pytest.fixture(autouse=True)
def _null_sink_after():
    yield
    set_sink(None)


def _traced_run(path, trace_format="jsonl"):
    """One small deterministic system run with a live sink at *path*."""
    profile = profile_by_name("art")
    trace, warmup = TraceGenerator(profile, seed=7).generate_with_warmup(
        measure=250
    )
    sink = open_sink(path, trace_format)
    previous = set_sink(sink)
    try:
        system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
        result = system.run(trace, profile, warmup=warmup)
    finally:
        set_sink(previous)
        sink.close()
    return result


class TestSinkPlumbing:
    def test_default_is_null_and_disabled(self):
        assert current_sink() is NULL_SINK
        assert current_sink().enabled is False

    def test_set_sink_returns_previous(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        assert set_sink(sink) is NULL_SINK
        assert current_sink() is sink
        assert set_sink(None) is sink
        assert current_sink() is NULL_SINK
        sink.close()

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(TelemetryError, match="unknown trace format"):
            open_sink(tmp_path / "t", "xml")

    def test_chrome_rejects_unknown_phase(self, tmp_path):
        sink = ChromeTraceSink(tmp_path / "t.json")
        with pytest.raises(TelemetryError, match="phase"):
            sink.emit("e", "cat", 0, ph="B")


class TestJsonlDeterminism:
    def test_identical_runs_are_byte_identical(self, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _traced_run(first)
        _traced_run(second)
        a, b = first.read_bytes(), second.read_bytes()
        assert len(a) > 0
        assert a == b

    def test_lines_are_valid_sorted_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _traced_run(path)
        lines = path.read_text().splitlines()
        assert lines
        names = set()
        for line in lines:
            event = json.loads(line)
            assert list(event) == sorted(event)
            assert isinstance(event["ts"], int)
            names.add(event["name"])
        # The cache-transaction lifecycle must be visible.
        assert "miss" in names or "hit" in names

    def test_disabled_run_emits_nothing(self, tmp_path):
        profile = profile_by_name("art")
        trace, warmup = TraceGenerator(profile, seed=7).generate_with_warmup(
            measure=250
        )
        system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
        system.run(trace, profile, warmup=warmup)  # no sink installed
        assert not list(tmp_path.iterdir())


class TestChromeFormat:
    def test_document_loads_and_has_required_fields(self, tmp_path):
        path = tmp_path / "t.json"
        _traced_run(path, trace_format="chrome")
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events
        payload = [e for e in events if e["ph"] != "M"]
        assert payload
        for event in payload:
            assert isinstance(event["tid"], int)
            assert isinstance(event["ts"], int)
            if event["ph"] == "i":
                assert event["s"] == "t"

    def test_tids_assigned_in_first_use_order(self, tmp_path):
        sink = ChromeTraceSink(tmp_path / "t.json")
        sink.instant("a", "c", 0, tid="column-3")
        sink.instant("b", "c", 1, tid="column-0")
        sink.instant("c", "c", 2, tid="column-3")
        assert sink._tids == {"column-3": 0, "column-0": 1}
        sink.close()
        document = json.loads((tmp_path / "t.json").read_text())
        labels = {
            e["tid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert labels == {0: "column-3", 1: "column-0"}

    def test_identical_runs_are_byte_identical(self, tmp_path):
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        _traced_run(first, trace_format="chrome")
        _traced_run(second, trace_format="chrome")
        assert first.read_bytes() == second.read_bytes()


class TestTracedTimingUnchanged:
    def test_tracing_does_not_perturb_results(self, tmp_path):
        traced = _traced_run(tmp_path / "t.jsonl")
        profile = profile_by_name("art")
        trace, warmup = TraceGenerator(profile, seed=7).generate_with_warmup(
            measure=250
        )
        system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
        plain = system.run(trace, profile, warmup=warmup)
        assert traced.cycles == plain.cycles
        assert traced.ipc == plain.ipc
        assert traced.metrics == plain.metrics
