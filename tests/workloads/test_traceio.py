"""Unit tests for trace file I/O."""

import pytest

from repro.errors import TraceError
from repro.workloads import Trace, TraceAccess, generate_trace, profile_by_name
from repro.workloads.traceio import dumps_trace, load_trace, loads_trace, save_trace


def _trace():
    return Trace(
        [
            TraceAccess(0x12340040, False, 7),
            TraceAccess(0x00000080, True, 1),
        ],
        name="mini",
    )


class TestRoundTrip:
    def test_string_round_trip(self):
        original = _trace()
        restored = loads_trace(dumps_trace(original))
        assert restored.name == "mini"
        assert len(restored) == 2
        assert [a.address for a in restored] == [a.address for a in original]
        assert [a.is_write for a in restored] == [False, True]
        assert [a.gap_instructions for a in restored] == [7, 1]

    def test_file_round_trip(self, tmp_path):
        original = generate_trace(profile_by_name("art"), 300, seed=5)
        path = tmp_path / "art.trace"
        save_trace(original, path)
        restored = load_trace(path)
        assert len(restored) == 300
        assert [a.address for a in restored] == [a.address for a in original]

    def test_generated_trace_survives_simulation(self, tmp_path):
        from repro import NetworkedCacheSystem

        profile = profile_by_name("twolf")
        original = generate_trace(profile, 300, seed=6)
        path = tmp_path / "t.trace"
        save_trace(original, path)
        restored = load_trace(path)
        a = NetworkedCacheSystem().run(original, profile, warmup=100)
        b = NetworkedCacheSystem().run(restored, profile, warmup=100)
        assert a.average_latency == b.average_latency


class TestFormat:
    def test_header_required(self):
        with pytest.raises(TraceError, match="not a repro-trace"):
            loads_trace("12340040 r 1\n")

    def test_comments_and_blanks_ignored(self):
        text = ("# repro-trace v1 name=x\n\n# comment\n00000040 r 3\n")
        assert len(loads_trace(text)) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceError, match="malformed"):
            loads_trace("# repro-trace v1 name=x\n00000040 q 3\n")

    def test_bad_numbers_rejected(self):
        with pytest.raises(TraceError, match="malformed"):
            loads_trace("# repro-trace v1 name=x\nzzz r 3\n")

    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError, match="no accesses"):
            loads_trace("# repro-trace v1 name=x\n")

    def test_default_name_from_file(self, tmp_path):
        path = tmp_path / "fancy.trace"
        path.write_text("# repro-trace v1 name=\n00000040 r 3\n")
        assert load_trace(path).name == "fancy"
