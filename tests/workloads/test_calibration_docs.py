"""The set-sampling calibration prose must match the actual constants.

The generator and profiles docstrings both state the effective
set-sampled cache size in words; these regress the numbers in that prose
against ``DEFAULT_INDEX_SPACE`` and the address layout, so shrinking or
widening the sampled index space forces the documentation along.
"""

import re

from repro.config import AddressLayout
from repro.workloads import generator as generator_module
from repro.workloads import profiles as profiles_module
from repro.workloads.profiles import profile_by_name

WAYS = 16
COLUMNS = AddressLayout().num_columns


def _effective_blocks() -> int:
    return COLUMNS * generator_module.DEFAULT_INDEX_SPACE * WAYS


def test_generator_docstring_quotes_the_real_default():
    match = re.search(
        r"``index_space`` \(default (\d+)\)", generator_module.__doc__
    )
    assert match, "generator docstring no longer documents the default"
    assert int(match.group(1)) == generator_module.DEFAULT_INDEX_SPACE


def test_generator_constant_comment_matches_the_arithmetic():
    # The inline comment next to DEFAULT_INDEX_SPACE spells out the
    # effective-block arithmetic; keep it honest.
    source = open(generator_module.__file__, encoding="utf-8").read()
    match = re.search(
        r"(\d+) indexes x (\d+) columns x (\d+) ways = (\d+) effective",
        source,
    )
    assert match, "DEFAULT_INDEX_SPACE comment no longer shows the product"
    indexes, columns, ways, total = map(int, match.groups())
    assert indexes == generator_module.DEFAULT_INDEX_SPACE
    assert columns == COLUMNS
    assert ways == WAYS
    assert total == indexes * columns * ways == _effective_blocks()


def test_profiles_docstring_matches_effective_capacity():
    match = re.search(
        r"\((\d+) columns x (\d+) indexes x (\d+) ways = (\d+) blocks\)",
        profiles_module.__doc__,
    )
    assert match, "profiles docstring no longer states the effective cache"
    columns, indexes, ways, total = map(int, match.groups())
    assert columns == COLUMNS
    assert indexes == generator_module.DEFAULT_INDEX_SPACE
    assert ways == WAYS
    assert total == columns * indexes * ways == _effective_blocks()


def test_docstring_fit_claims_hold_for_art_and_mcf():
    # "art fits entirely, mcf overflows it roughly 2.5-fold."
    effective = _effective_blocks()
    assert profile_by_name("art").footprint_blocks <= effective
    ratio = profile_by_name("mcf").footprint_blocks / effective
    assert 2.0 <= ratio <= 3.0
