"""Unit tests for the trace container."""

import pytest

from repro.errors import TraceError
from repro.workloads import Trace, TraceAccess


class TestTraceAccess:
    def test_valid(self):
        access = TraceAccess(address=0x40, is_write=False, gap_instructions=3)
        assert access.address == 0x40

    def test_address_range_checked(self):
        with pytest.raises(TraceError):
            TraceAccess(address=1 << 32, is_write=False, gap_instructions=0)

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            TraceAccess(address=0, is_write=False, gap_instructions=-1)


class TestTrace:
    def _trace(self):
        return Trace(
            [
                TraceAccess(0x40, False, 2),
                TraceAccess(0x80, True, 3),
                TraceAccess(0x40, False, 5),
            ],
            name="t",
        )

    def test_len_and_iteration(self):
        trace = self._trace()
        assert len(trace) == 3
        assert [a.address for a in trace] == [0x40, 0x80, 0x40]

    def test_counts(self):
        trace = self._trace()
        assert trace.write_count == 1
        assert trace.read_count == 2

    def test_total_instructions(self):
        assert self._trace().total_instructions == 10

    def test_distinct_blocks(self):
        assert self._trace().distinct_blocks() == 2

    def test_slice(self):
        part = self._trace().slice(1)
        assert len(part) == 2
        assert part[0].address == 0x80

    def test_indexing(self):
        assert self._trace()[2].gap_instructions == 5
