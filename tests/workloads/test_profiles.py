"""Unit tests for the Table-2 benchmark profiles."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import BENCHMARKS, profile_by_name
from repro.workloads.profiles import BenchmarkProfile


class TestTable2:
    def test_twelve_benchmarks(self):
        assert len(BENCHMARKS) == 12

    def test_paper_order(self):
        names = [p.name for p in BENCHMARKS]
        assert names == ["applu", "apsi", "art", "galgel", "lucas", "mesa",
                         "bzip2", "gcc", "mcf", "parser", "twolf", "vpr"]

    def test_suites(self):
        fp = [p.name for p in BENCHMARKS if p.suite == "FP"]
        assert fp == ["applu", "apsi", "art", "galgel", "lucas", "mesa"]

    @pytest.mark.parametrize("name, ipc, api", [
        ("art", 0.40, 0.155),
        ("mcf", 0.34, 0.181),
        ("mesa", 0.40, 0.003),
        ("gcc", 0.29, 0.082),
    ])
    def test_spot_values(self, name, ipc, api):
        profile = profile_by_name(name)
        assert profile.perfect_l2_ipc == ipc
        assert profile.l2_access_per_instr == api

    def test_derived_quantities(self):
        art = profile_by_name("art")
        assert art.l2_accesses == art.l2_reads + art.l2_writes
        assert 0 < art.write_fraction < 0.5
        assert art.mean_gap_instructions == pytest.approx(1 / 0.155)

    def test_unknown_benchmark(self):
        with pytest.raises(ConfigurationError):
            profile_by_name("gzip")

    def test_art_has_no_streaming(self):
        # art exhibits only compulsory misses in the paper's simulation.
        assert profile_by_name("art").stream_fraction == 0.0

    def test_low_hit_rate_benchmarks_stream(self):
        for name in ("applu", "lucas"):
            assert profile_by_name(name).stream_fraction > 0.2

    def test_mcf_overflows_effective_cache(self):
        assert profile_by_name("mcf").footprint_blocks > 2048


class TestValidation:
    def _profile(self, **overrides):
        base = dict(
            name="x", suite="INT", instructions=1000, perfect_l2_ipc=0.4,
            l2_reads=100, l2_writes=50, l2_access_per_instr=0.1,
            footprint_blocks=100, zipf_alpha=1.0, stream_fraction=0.1,
        )
        base.update(overrides)
        return BenchmarkProfile(**base)

    def test_bad_suite(self):
        with pytest.raises(ConfigurationError):
            self._profile(suite="SPEC")

    def test_bad_stream_fraction(self):
        with pytest.raises(ConfigurationError):
            self._profile(stream_fraction=1.0)

    def test_band_requires_blocks(self):
        with pytest.raises(ConfigurationError):
            self._profile(band_fraction=0.2, band_blocks=0)

    def test_fractions_must_leave_zipf_mass(self):
        with pytest.raises(ConfigurationError):
            self._profile(stream_fraction=0.6, band_fraction=0.4,
                          band_blocks=10)

    def test_zero_footprint(self):
        with pytest.raises(ConfigurationError):
            self._profile(footprint_blocks=0)
