"""Unit and property tests for the synthetic trace generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.address import AddressMapper
from repro.errors import TraceError
from repro.workloads import TraceGenerator, generate_trace, profile_by_name
from repro.workloads.generator import DEFAULT_INDEX_SPACE


@pytest.fixture(scope="module")
def art():
    return profile_by_name("art")


class TestDeterminism:
    def test_same_seed_same_trace(self, art):
        a = generate_trace(art, 500, seed=3)
        b = generate_trace(art, 500, seed=3)
        assert [x.address for x in a] == [x.address for x in b]
        assert [x.is_write for x in a] == [x.is_write for x in b]

    def test_different_seed_differs(self, art):
        a = generate_trace(art, 500, seed=3)
        b = generate_trace(art, 500, seed=4)
        assert [x.address for x in a] != [x.address for x in b]

    def test_different_benchmarks_differ(self):
        a = generate_trace(profile_by_name("art"), 500, seed=3)
        b = generate_trace(profile_by_name("mcf"), 500, seed=3)
        assert [x.address for x in a] != [x.address for x in b]


class TestStatisticalFidelity:
    def test_write_fraction_tracks_profile(self, art):
        trace = generate_trace(art, 5000, seed=1)
        assert trace.write_count / len(trace) == pytest.approx(
            art.write_fraction, abs=0.03
        )

    def test_access_rate_tracks_profile(self, art):
        trace = generate_trace(art, 5000, seed=1)
        rate = len(trace) / trace.total_instructions
        assert rate == pytest.approx(art.l2_access_per_instr, rel=0.1)

    def test_footprint_bounded(self, art):
        trace = generate_trace(art, 5000, seed=1)
        assert trace.distinct_blocks() <= art.footprint_blocks + art.band_blocks

    def test_streaming_grows_footprint(self):
        applu = profile_by_name("applu")
        trace = generate_trace(applu, 5000, seed=1)
        resident = applu.footprint_blocks + applu.band_blocks
        assert trace.distinct_blocks() > min(resident, 1000)


class TestAddressSpace:
    def test_indexes_confined_to_sampled_space(self, art):
        mapper = AddressMapper()
        trace = generate_trace(art, 2000, seed=1)
        for access in trace:
            decoded = mapper.decode(access.address)
            assert decoded.index < DEFAULT_INDEX_SPACE
            assert decoded.offset == 0

    def test_all_columns_used(self, art):
        mapper = AddressMapper()
        trace = generate_trace(art, 2000, seed=1)
        columns = {mapper.decode(a.address).column for a in trace}
        assert columns == set(range(16))

    def test_custom_index_space(self, art):
        mapper = AddressMapper()
        generator = TraceGenerator(art, seed=1, index_space=4)
        trace = generator.generate(500)
        assert all(mapper.decode(a.address).index < 4 for a in trace)

    def test_invalid_index_space(self, art):
        with pytest.raises(TraceError):
            TraceGenerator(art, index_space=3)
        with pytest.raises(TraceError):
            TraceGenerator(art, index_space=2048)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_addresses_always_valid_32bit(self, seed):
        profile = profile_by_name("mcf")
        trace = generate_trace(profile, 200, seed=seed)
        for access in trace:
            assert 0 <= access.address < (1 << 32)
            assert access.gap_instructions >= 1


class TestWarmupCover:
    def test_cover_touches_every_resident_block(self, art):
        generator = TraceGenerator(art, seed=1)
        trace, warmup = generator.generate_with_warmup(measure=100)
        resident = art.footprint_blocks + art.band_blocks
        cover = trace.slice(0, resident)
        assert cover.distinct_blocks() == resident

    def test_warmup_length(self, art):
        generator = TraceGenerator(art, seed=1)
        trace, warmup = generator.generate_with_warmup(
            measure=100, mix_factor=0.5
        )
        resident = art.footprint_blocks + art.band_blocks
        assert warmup == resident + resident // 2
        assert len(trace) == warmup + 100

    def test_invalid_measure(self, art):
        with pytest.raises(TraceError):
            TraceGenerator(art, seed=1).generate_with_warmup(measure=0)


class TestErrors:
    def test_zero_length(self, art):
        with pytest.raises(TraceError):
            TraceGenerator(art, seed=1).generate(0)
