"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--design", "F", "--benchmark", "art"])
        assert args.design == "F" and args.benchmark == "art"

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "Z"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--benchmark", "art", "--design", "B",
                     "--measure", "200"]) == 0
        out = capsys.readouterr().out
        assert "design B" in out and "IPC" in out

    def test_run_early_miss(self, capsys):
        main(["run", "--benchmark", "mcf", "--measure", "200", "--early-miss"])
        assert "early misses" in capsys.readouterr().out

    def test_table_1(self, capsys):
        main(["table", "1"])
        assert "Table 1" in capsys.readouterr().out

    def test_table_3(self, capsys):
        main(["table", "3"])
        assert "halo" in capsys.readouterr().out

    def test_table_4(self, capsys):
        main(["table", "4"])
        assert "Table 4" in capsys.readouterr().out

    def test_figure_10(self, capsys):
        main(["figure", "10"])
        assert "die side" in capsys.readouterr().out

    def test_layout(self, capsys):
        main(["layout"])
        assert "spike" in capsys.readouterr().out

    def test_energy(self, capsys):
        main(["energy", "--measure", "200", "--benchmark", "mesa"])
        out = capsys.readouterr().out
        assert "pJ/access" in out and "gating" in out


class TestExtensionCommands:
    def test_cmp(self, capsys):
        main(["cmp", "--cores", "1", "2", "--designs", "A",
              "--measure", "300"])
        out = capsys.readouterr().out
        assert "agg IPC" in out

    def test_snuca(self, capsys):
        main(["snuca", "--benchmark", "art", "--measure", "300"])
        out = capsys.readouterr().out
        assert "S-NUCA" in out and "speedup" in out

    def test_trace(self, capsys, tmp_path):
        target = tmp_path / "out.trace"
        main(["trace", "--benchmark", "mesa", "--measure", "100",
              "--output", str(target)])
        assert "wrote 100 accesses" in capsys.readouterr().out
        assert target.exists()

    def test_report(self, capsys, tmp_path):
        target = tmp_path / "report.txt"
        main(["report", "--measure", "250", "--out", str(target)])
        out = capsys.readouterr().out
        assert "report written" in out
        text = target.read_text()
        assert "Figure 9" in text and "Table 4" in text
        assert "Headline" in text
