"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--design", "F", "--benchmark", "art"])
        assert args.design == "F" and args.benchmark == "art"

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--design", "Z"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--benchmark", "art", "--design", "B",
                     "--measure", "200"]) == 0
        out = capsys.readouterr().out
        assert "design B" in out and "IPC" in out

    def test_run_early_miss(self, capsys):
        main(["run", "--benchmark", "mcf", "--measure", "200", "--early-miss"])
        assert "early misses" in capsys.readouterr().out

    def test_table_1(self, capsys):
        main(["table", "1"])
        assert "Table 1" in capsys.readouterr().out

    def test_table_3(self, capsys):
        main(["table", "3"])
        assert "halo" in capsys.readouterr().out

    def test_table_4(self, capsys):
        main(["table", "4"])
        assert "Table 4" in capsys.readouterr().out

    def test_figure_10(self, capsys):
        main(["figure", "10"])
        assert "die side" in capsys.readouterr().out

    def test_layout(self, capsys):
        main(["layout"])
        assert "spike" in capsys.readouterr().out

    def test_energy(self, capsys):
        main(["energy", "--measure", "200", "--benchmark", "mesa"])
        out = capsys.readouterr().out
        assert "pJ/access" in out and "gating" in out


class TestTelemetryFlags:
    @pytest.fixture(autouse=True)
    def _fresh_telemetry(self):
        from repro.experiments.runner import reset_memo
        from repro.telemetry import reset_global_metrics

        reset_memo()
        reset_global_metrics()
        yield
        reset_memo()
        reset_global_metrics()

    def test_metrics_out_writes_valid_json(self, capsys, tmp_path):
        import json

        target = tmp_path / "metrics.json"
        assert main(["run", "--benchmark", "art", "--measure", "200",
                     "--metrics-out", str(target)]) == 0
        err = capsys.readouterr().err
        assert "1 cells:" in err
        assert f"metrics written to {target}" in err
        payload = json.loads(target.read_text())
        metrics = payload["metrics"]
        assert metrics
        assert "noc.router.vc_alloc_failures" in metrics
        assert "cache.bankset.eviction_chain_depth" in metrics
        assert payload["provenance"]["source_fingerprint"]
        assert payload["journal"][0]["total"] == 1

    def test_trace_jsonl_written_and_nonempty(self, capsys, tmp_path):
        import json

        target = tmp_path / "t.jsonl"
        assert main(["run", "--benchmark", "art", "--measure", "200",
                     "--trace", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert lines
        for line in lines[:50]:
            json.loads(line)

    def test_trace_chrome_is_perfetto_loadable(self, capsys, tmp_path):
        import json

        target = tmp_path / "t.json"
        assert main(["run", "--benchmark", "art", "--measure", "200",
                     "--trace", str(target), "--trace-format", "chrome"]) == 0
        document = json.loads(target.read_text())
        assert document["traceEvents"]
        assert any(e["ph"] == "X" for e in document["traceEvents"])

    def test_trace_forces_serial_uncached(self, capsys, tmp_path):
        from repro.experiments.runner import settings

        target = tmp_path / "t.jsonl"
        main(["run", "--benchmark", "art", "--measure", "200",
              "--jobs", "4", "--trace", str(target)])
        err = capsys.readouterr().err
        assert "forces --jobs 1" in err
        assert settings().jobs == 1
        assert settings().cache is None

    def test_null_sink_restored_after_traced_run(self, tmp_path):
        from repro.telemetry import NULL_SINK, current_sink

        main(["run", "--benchmark", "art", "--measure", "200",
              "--trace", str(tmp_path / "t.jsonl")])
        assert current_sink() is NULL_SINK


class TestObservabilityCLI:
    """--window series, --metrics-out/--trace beyond `run`, and the
    `repro report <metrics.json>` explorer."""

    @pytest.fixture(autouse=True)
    def _fresh_telemetry(self):
        from repro.experiments.runner import reset_memo
        from repro.telemetry import reset_global_metrics

        reset_memo()
        reset_global_metrics()
        yield
        reset_memo()
        reset_global_metrics()

    def _windowed_metrics(self, tmp_path):
        target = tmp_path / "metrics.json"
        assert main(["run", "--benchmark", "art", "--measure", "400",
                     "--window", "32", "--no-cache",
                     "--metrics-out", str(target)]) == 0
        return target

    def test_window_flag_emits_series_metrics(self, capsys, tmp_path):
        import json

        target = self._windowed_metrics(tmp_path)
        metrics = json.loads(target.read_text())["metrics"]
        series = {
            name: snap for name, snap in metrics.items()
            if snap["type"] == "series"
        }
        assert "cache.series.accesses" in series
        assert series["cache.series.accesses"]["window"] == 32
        assert series["cache.series.accesses"]["windows"]
        assert series["cache.series.latency"]["agg"] == "hist"

    def test_faults_metrics_out_and_trace(self, capsys, tmp_path):
        import json

        metrics_path = tmp_path / "faults.json"
        trace_path = tmp_path / "faults.jsonl"
        assert main(["faults", "--rate", "1e-3", "--accesses", "200",
                     "--designs", "A", "--seed", "7",
                     "--metrics-out", str(metrics_path),
                     "--trace", str(trace_path)]) == 0
        payload = json.loads(metrics_path.read_text())
        assert any(
            name.startswith("faults.") for name in payload["metrics"]
        )
        assert payload["provenance"]["source_fingerprint"]
        lines = trace_path.read_text().splitlines()
        assert lines
        json.loads(lines[0])

    def test_validate_metrics_out(self, capsys, tmp_path):
        import json

        target = tmp_path / "validate.json"
        assert main(["validate", "--fuzz", "3", "--seed", "5",
                     "--metrics-out", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["provenance"]["source_fingerprint"]

    def test_validate_profile_phases(self, capsys):
        assert main(["validate", "--profile-phases", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "phase profile (object core" in out
        for phase in ("arrivals", "inject", "replication", "switch"):
            assert phase in out

    def test_report_explorer_text(self, capsys, tmp_path):
        target = self._windowed_metrics(tmp_path)
        capsys.readouterr()
        assert main(["report", str(target)]) == 0
        out = capsys.readouterr().out
        assert "Windowed series" in out
        assert "Congestion heatmap" in out
        assert "Latency breakdown (cycles)" in out
        assert "cache.series.accesses" in out
        assert "hottest links:" in out
        assert "hop_traversal" in out

    def test_report_explorer_json(self, capsys, tmp_path):
        import json

        target = self._windowed_metrics(tmp_path)
        capsys.readouterr()
        assert main(["report", str(target), "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert set(report) == {"series", "heatmap", "breakdown"}
        assert report["heatmap"]["links"]
        assert report["breakdown"]["hop_traversal"]["count"] > 0

    def test_report_explorer_accepts_directory_and_gates_png(
        self, capsys, tmp_path
    ):
        self._windowed_metrics(tmp_path)
        png = tmp_path / "heat.png"
        capsys.readouterr()
        assert main(["report", str(tmp_path), "--png", str(png)]) == 0
        out = capsys.readouterr().out
        assert "Congestion heatmap" in out
        # matplotlib is optional: either the PNG landed or the explorer
        # said exactly why it did not.
        assert png.exists() or (
            f"matplotlib not installed; skipped PNG {png}" in out
        )


class TestExtensionCommands:
    def test_cmp(self, capsys):
        main(["cmp", "--cores", "1", "2", "--designs", "A",
              "--measure", "300"])
        out = capsys.readouterr().out
        assert "agg IPC" in out

    def test_snuca(self, capsys):
        main(["snuca", "--benchmark", "art", "--measure", "300"])
        out = capsys.readouterr().out
        assert "S-NUCA" in out and "speedup" in out

    def test_trace(self, capsys, tmp_path):
        target = tmp_path / "out.trace"
        main(["trace", "--benchmark", "mesa", "--measure", "100",
              "--output", str(target)])
        assert "wrote 100 accesses" in capsys.readouterr().out
        assert target.exists()

    def test_report(self, capsys, tmp_path):
        target = tmp_path / "report.txt"
        main(["report", "--measure", "250", "--out", str(target)])
        out = capsys.readouterr().out
        assert "report written" in out
        text = target.read_text()
        assert "Figure 9" in text and "Table 4" in text
        assert "Headline" in text


class TestSeedHygiene:
    SIM_COMMANDS = (
        ["run"],
        ["figure", "9"],
        ["table", "3"],
        ["headline"],
        ["layout"],
        ["energy"],
        ["report"],
        ["cmp"],
        ["snuca"],
        ["faults"],
        ["validate"],
        ["trace", "--output", "x.trace"],
    )

    def test_every_sim_subcommand_accepts_seed(self):
        parser = build_parser()
        for argv in self.SIM_COMMANDS:
            args = parser.parse_args(argv + ["--seed", "42"])
            assert args.seed == 42, argv

    def test_seed_changes_the_workload(self, capsys):
        outputs = []
        for seed in ("1", "2"):
            main(["run", "--benchmark", "art", "--design", "A",
                  "--measure", "200", "--seed", seed, "--no-cache"])
            outputs.append(capsys.readouterr().out)
        assert outputs[0] != outputs[1]


class TestFaultsCommand:
    def test_campaign_smoke(self, capsys):
        assert main(["faults", "--rate", "1e-3", "--accesses", "200",
                     "--seed", "7", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Fault sweep" in out
        assert "avail" in out and "lat degr" in out
        assert " 0 " in out or "0\n" in out  # the forced zero-rate baseline

    def test_fault_seed_defaults_to_seed(self, capsys):
        main(["faults", "--rate", "1e-3", "--accesses", "200",
              "--designs", "A", "--seed", "9", "--no-cache"])
        assert "fault seed 9" in capsys.readouterr().out

    def test_explicit_fault_seed_wins(self, capsys):
        main(["faults", "--rate", "1e-3", "--accesses", "200",
              "--designs", "A", "--seed", "9", "--fault-seed", "3",
              "--no-cache"])
        assert "fault seed 3" in capsys.readouterr().out
