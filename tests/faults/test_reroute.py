"""Degraded routing: U-route detours, declared unroutability, proof checks."""

import pytest

from repro.errors import ValidationError
from repro.faults import (
    DegradedRouting,
    alive_nodes,
    fallback_destination,
    verify_degraded,
)
from repro.noc.routing import routing_for
from repro.noc.topology import MeshTopology, SimplifiedMeshTopology


def _degraded(topology, cuts=()):
    """DegradedRouting with both directions of each cut pair dead."""
    dead = set()
    for src, dst in cuts:
        dead.add((src, dst))
        dead.add((dst, src))
    return DegradedRouting(topology, routing_for(topology), frozenset(dead))


class TestZeroFault:
    def test_paths_identical_to_base(self):
        topology = MeshTopology(3, 3)
        base = routing_for(topology)
        degraded = _degraded(topology)
        nodes = sorted(topology.nodes)
        for src in nodes:
            for dst in nodes:
                if src != dst:
                    assert degraded.path(topology, src, dst) == base.path(
                        topology, src, dst
                    )
        assert degraded.detour_hops == 0

    def test_verify_reports_nothing_degraded(self):
        topology = MeshTopology(3, 3)
        report = verify_degraded(topology, _degraded(topology))
        assert report["rerouted_pairs"] == 0
        assert report["unroutable_pairs"] == 0


class TestUDetours:
    def test_horizontal_cut_takes_u_route(self):
        topology = MeshTopology(4, 4)
        routing = _degraded(topology, [((1, 2), (2, 2))])
        path = routing.path(topology, (1, 2), (3, 2))
        # Ascend to row 1, cross, descend: the U-route of the docstring.
        assert path == [(1, 2), (1, 1), (2, 1), (3, 1), (3, 2)]
        assert routing.detour_hops > 0
        assert routing.is_rerouted((1, 2), (3, 2))

    def test_verify_passes_with_reroutes(self):
        topology = MeshTopology(4, 4)
        routing = _degraded(topology, [((1, 2), (2, 2))])
        report = verify_degraded(topology, routing)
        assert report["rerouted_pairs"] > 0
        assert report["unroutable_pairs"] == 0
        assert routing.detour_hops == 0  # verification walks don't count

    def test_vertical_cut_truncates_column_below(self):
        topology = MeshTopology(4, 4)
        routing = _degraded(topology, [((1, 1), (1, 2))])
        # Below the cut the descent reuses the dead channel: unroutable.
        assert not routing.can_route((0, 0), (1, 2))
        assert not routing.can_route((0, 0), (1, 3))
        assert routing.can_route((0, 0), (1, 1))
        report = verify_degraded(topology, routing)
        assert report["unroutable_pairs"] > 0

    def test_strict_pairs_raise_on_unroutable(self):
        topology = MeshTopology(4, 4)
        routing = _degraded(topology, [((1, 1), (1, 2))])
        with pytest.raises(ValidationError):
            verify_degraded(topology, routing, pairs=[((0, 0), (1, 3))])

    def test_can_route_leaves_detour_count_untouched(self):
        topology = MeshTopology(4, 4)
        routing = _degraded(topology, [((1, 2), (2, 2))])
        assert routing.can_route((1, 2), (3, 2))
        assert routing.detour_hops == 0


class TestSimplifiedMesh:
    def test_base_dead_is_unroutable(self):
        topology = SimplifiedMeshTopology(4, 4)
        routing = _degraded(topology, [((1, 1), (1, 2))])
        # On the simplified mesh the only XYX-legal descent is the base
        # path itself, so a cut column truncates: base-or-nothing.
        assert not routing.can_route((1, 0), (1, 2))
        assert routing.can_route((1, 0), (1, 1))

    def test_verify_checks_channel_enumeration(self):
        topology = SimplifiedMeshTopology(4, 4)
        report = verify_degraded(topology, _degraded(topology))
        assert report["xyx_checked"] is True
        assert report["pairs_checked"] > 0


class TestAliveAndFallback:
    def test_alive_excludes_cutoff_suffix(self):
        topology = SimplifiedMeshTopology(4, 4)
        dead = frozenset({((1, 1), (1, 2)), ((1, 2), (1, 1))})
        alive = alive_nodes(topology, dead)
        assert (1, 2) not in alive
        assert (1, 3) not in alive
        assert (1, 1) in alive

    def test_fallback_climbs_the_column(self):
        topology = SimplifiedMeshTopology(4, 4)
        dead = frozenset({((1, 1), (1, 2)), ((1, 2), (1, 1))})
        alive = alive_nodes(topology, dead)
        assert fallback_destination(topology, alive, (1, 2)) == (1, 1)
