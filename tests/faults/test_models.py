"""Fault model tests: sampling determinism, protection, injection filtering."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    BankFault,
    FaultInjector,
    FaultPlan,
    TransientFaults,
    protected_nodes,
)
from repro.noc.packet import MessageType, Packet
from repro.noc.topology import (
    HUB,
    HaloTopology,
    MeshTopology,
    SimplifiedMeshTopology,
)
from repro.telemetry.registry import MetricsRegistry


class TestProtectedNodes:
    def test_mesh_protects_row0_and_memory_column(self):
        topology = MeshTopology(4, 4)
        protected = protected_nodes(topology)
        for x in range(4):
            assert (x, 0) in protected
        mx, my = topology.memory_attach
        assert my == 3
        for y in range(4):
            assert (mx, y) in protected
        assert (0, 1) not in protected

    def test_simplified_mesh_protects_row0(self):
        protected = protected_nodes(SimplifiedMeshTopology(4, 4))
        for x in range(4):
            assert (x, 0) in protected
        assert (0, 2) not in protected

    def test_halo_protects_hub_and_position0(self):
        topology = HaloTopology(8, 4)
        protected = protected_nodes(topology)
        assert HUB in protected
        for s in range(topology.num_spikes):
            assert ("spike", s, 0) in protected


class TestFaultPlanSample:
    def test_same_seed_same_plan(self):
        topology = MeshTopology(4, 4)
        kwargs = dict(
            link_rate=0.4, vc_rate=0.2, bank_rate=0.3,
            transient_rate=0.05, seed=3,
        )
        assert FaultPlan.sample(topology, **kwargs) == FaultPlan.sample(
            topology, **kwargs
        )

    def test_different_seeds_differ(self):
        topology = MeshTopology(5, 5)
        plans = {
            FaultPlan.sample(topology, link_rate=0.5, seed=s).links
            for s in range(6)
        }
        assert len(plans) > 1

    def test_protected_links_spared(self):
        topology = MeshTopology(4, 4)
        protected = protected_nodes(topology)
        plan = FaultPlan.sample(topology, link_rate=1.0, seed=0)
        assert plan.links
        for fault in plan.links:
            assert fault.src not in protected
            assert fault.dst not in protected

    def test_link_failures_are_bidirectional(self):
        plan = FaultPlan.sample(MeshTopology(4, 4), link_rate=1.0, seed=1)
        channels = plan.dead_channels()
        for src, dst in channels:
            assert (dst, src) in channels

    def test_zero_rates_null_plan(self):
        plan = FaultPlan.sample(MeshTopology(3, 3), seed=9)
        assert plan.is_null
        assert plan.describe() == "no faults"

    def test_at_cycle_propagates(self):
        plan = FaultPlan.sample(
            MeshTopology(4, 4), link_rate=1.0, seed=0, at_cycle=17
        )
        assert plan.links
        assert all(fault.at_cycle == 17 for fault in plan.links)

    def test_vc_faults_spare_vc0(self):
        plan = FaultPlan.sample(MeshTopology(4, 4), vc_rate=1.0, seed=0)
        assert plan.vcs
        assert all(fault.vc != 0 for fault in plan.vcs)


class TestTransientFaults:
    def test_rate_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            TransientFaults(drop_rate=1.5)

    def test_total_rate(self):
        assert TransientFaults(0.01, 0.02).total_rate == pytest.approx(0.03)


def _packet(destinations, source=(0, 0)):
    return Packet(MessageType.READ_REQUEST, source, tuple(destinations))


class TestInjectorAdmit:
    def test_dead_bank_destination_filtered(self):
        injector = FaultInjector(FaultPlan(banks=(BankFault((1, 1)),)))
        packet = _packet([(1, 1), (2, 1)])
        assert injector.admit(None, packet, (0, 0))
        assert packet.destinations == ((2, 1),)
        assert injector.stats.filtered_destinations == 1

    def test_fully_dead_packet_rejected(self):
        injector = FaultInjector(FaultPlan(banks=(BankFault((1, 1)),)))
        assert not injector.admit(None, _packet([(1, 1)]), (0, 0))
        assert injector.stats.rejected_packets == 1

    def test_unroutable_destination_filtered(self):
        injector = FaultInjector(FaultPlan())
        injector.set_route_filter(lambda src, dst: dst != (2, 2))
        packet = _packet([(2, 2), (1, 0)])
        assert injector.admit(None, packet, (0, 0))
        assert packet.destinations == ((1, 0),)
        assert injector.stats.unroutable_destinations == 1

    def test_no_faults_pass_through(self):
        injector = FaultInjector(FaultPlan())
        packet = _packet([(1, 1), (2, 2)])
        assert injector.admit(None, packet, (0, 0))
        assert packet.destinations == ((1, 1), (2, 2))

    def test_stats_publish_to_registry(self):
        injector = FaultInjector(FaultPlan(banks=(BankFault((1, 1)),)))
        registry = MetricsRegistry()
        injector.stats.publish_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["faults.injected"]["value"] == 1
        assert snapshot["faults.rejected_packets"]["value"] == 0
