"""Protocol-layer resilience: typed trace guards and chain repair."""

import pytest

from repro.errors import ProtocolError
from repro.faults import FaultPlan, TransientFaults
from repro.noc.protocol import FlitLevelCacheProtocol, ProtocolTrace


class TestTraceGuards:
    def test_chain_done_raises_until_set(self):
        trace = ProtocolTrace(issued=0)
        with pytest.raises(ProtocolError):
            trace.chain_done
        trace.chain_done_at = 11
        assert trace.chain_done == 11

    def test_memory_requested_raises_until_set(self):
        trace = ProtocolTrace(issued=0)
        with pytest.raises(ProtocolError):
            trace.memory_requested
        trace.memory_requested_at = 7
        assert trace.memory_requested == 7

    def test_data_latency_raises_until_complete(self):
        with pytest.raises(ProtocolError):
            ProtocolTrace(issued=3).data_latency

    def test_hit_trace_never_requests_memory(self):
        protocol = FlitLevelCacheProtocol(cols=4, rows=4)
        trace = protocol.run_hit(column=1, depth=2)
        assert trace.data_latency > 0
        with pytest.raises(ProtocolError):
            trace.memory_requested


class TestChainRepairUnderFaults:
    def test_hit_completes_under_transient_loss(self):
        protocol = FlitLevelCacheProtocol(cols=4, rows=4)
        plan = FaultPlan(transients=TransientFaults(drop_rate=0.02))
        injector, recovery = protocol.attach_resilience(plan, seed=3)
        trace = protocol.run_hit(column=1, depth=3)
        assert trace.data_latency > 0
        assert trace.chain_done >= trace.issued
        assert recovery.outstanding_messages() == 0

    def test_pristine_and_faulty_traces_agree_on_shape(self):
        pristine = FlitLevelCacheProtocol(cols=4, rows=4).run_hit(1, 3)
        faulty_protocol = FlitLevelCacheProtocol(cols=4, rows=4)
        faulty_protocol.attach_resilience(
            FaultPlan(transients=TransientFaults(drop_rate=0.02)), seed=3
        )
        faulty = faulty_protocol.run_hit(1, 3)
        # Recovery may add latency but never removes protocol events.
        assert set(faulty.request_arrivals) == set(pristine.request_arrivals)
        assert faulty.data_latency >= pristine.data_latency
