"""End-to-end recovery: reroute delivery, retransmit, truncation, timers."""

import pytest

from repro.cache.bank import bank_descriptors_for_column
from repro.errors import ConfigurationError
from repro.faults import (
    BankFault,
    FaultPlan,
    LinkFault,
    RetryPolicy,
    TransientFaults,
    install_resilience,
    truncate_columns,
)
from repro.noc.network import Network
from repro.noc.packet import MessageType, Packet
from repro.noc.topology import MeshTopology
from repro.sim.kernel import DeadlineQueue
from repro.validation.invariants import (
    default_network_checkers,
    run_with_checkers,
)


def _checked_network(topology):
    network = Network(topology)
    for checker in default_network_checkers(topology):
        network.install_checker(checker)
    return network


class TestRetryPolicy:
    def test_backoff_growth_and_cap(self):
        policy = RetryPolicy(backoff_base=4, backoff_cap=32)
        assert [policy.backoff(k) for k in range(5)] == [4, 8, 16, 32, 32]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0)


class TestLinkCutReroute:
    def test_all_delivered_around_the_cut(self):
        topology = MeshTopology(4, 4)
        plan = FaultPlan(
            links=(LinkFault((1, 2), (2, 2)), LinkFault((2, 2), (1, 2)))
        )
        network = _checked_network(topology)
        _, recovery = install_resilience(network, plan, seed=0)
        traffic = [((0, 2), (3, 2)), ((1, 2), (2, 2)), ((3, 2), (0, 2))]
        for i, (src, dst) in enumerate(traffic):
            network.schedule_injection(
                Packet(MessageType.READ_REQUEST, src, (dst,)), at_cycle=i
            )
        run_with_checkers(network, max_cycles=20_000)
        assert network.stats.packets_delivered == len(traffic)
        assert network.routing.detour_hops > 0
        assert recovery.outstanding_messages() == 0


class TestTransientRecovery:
    def test_drops_recovered_by_retransmit(self):
        topology = MeshTopology(3, 3)
        plan = FaultPlan(transients=TransientFaults(drop_rate=0.3))
        network = _checked_network(topology)
        injector, recovery = install_resilience(network, plan, seed=2)
        for i in range(6):
            network.schedule_injection(
                Packet(MessageType.READ_REQUEST, (0, 0), ((2, 2),)),
                at_cycle=4 * i,
            )
        run_with_checkers(network, max_cycles=60_000, stall_limit=1000)
        assert injector.stats.transient_drops > 0
        assert recovery.stats.retries > 0
        assert recovery.stats.recovered_messages > 0
        assert recovery.stats.recovery_latencies
        assert recovery.outstanding_messages() == 0

    def test_retry_budget_exhaustion_abandons(self):
        topology = MeshTopology(2, 2)
        plan = FaultPlan(transients=TransientFaults(drop_rate=0.95))
        network = _checked_network(topology)
        policy = RetryPolicy(
            timeout=32, backoff_base=1, backoff_cap=4, max_retries=2
        )
        _, recovery = install_resilience(
            network, plan, seed=1, policy=policy
        )
        network.schedule_injection(
            Packet(MessageType.READ_REQUEST, (0, 0), ((1, 1),)), at_cycle=0
        )
        run_with_checkers(network, max_cycles=20_000, stall_limit=1000)
        assert recovery.stats.abandoned_messages == 1
        assert recovery.outstanding_messages() == 0


class TestTruncateColumns:
    @staticmethod
    def _columns(cols, rows):
        return [
            bank_descriptors_for_column([64 * 1024] * rows)
            for _ in range(cols)
        ]

    def test_vertical_cut_truncates_to_live_prefix(self):
        topology = MeshTopology(3, 3, core_column=1, memory_column=1)
        plan = FaultPlan(
            links=(LinkFault((0, 1), (0, 2)), LinkFault((0, 2), (0, 1)))
        )
        live = truncate_columns(topology, self._columns(3, 3), plan)
        assert [len(column) for column in live] == [2, 3, 3]
        assert [d.position for d in live[0]] == [0, 1]

    def test_dead_bank_cuts_its_column(self):
        topology = MeshTopology(3, 3, core_column=1, memory_column=1)
        plan = FaultPlan(banks=(BankFault((2, 1)),))
        live = truncate_columns(topology, self._columns(3, 3), plan)
        assert [len(column) for column in live] == [3, 3, 1]

    def test_emptied_column_rejected(self):
        topology = MeshTopology(3, 3, core_column=1, memory_column=1)
        plan = FaultPlan(banks=(BankFault((0, 0)),))
        with pytest.raises(ConfigurationError):
            truncate_columns(topology, self._columns(3, 3), plan)


class TestDeadlineQueue:
    def test_fifo_within_timestamp(self):
        queue = DeadlineQueue()
        queue.arm("a", 5)
        queue.arm("b", 5)
        queue.arm("c", 3)
        assert queue.peek() == 3
        assert queue.pop_due(5) == ["c", "a", "b"]
        assert len(queue) == 0

    def test_rearm_replaces_deadline(self):
        queue = DeadlineQueue()
        queue.arm("a", 5)
        queue.arm("a", 9)
        assert queue.peek() == 9
        assert queue.pop_due(5) == []
        assert queue.pop_due(9) == ["a"]

    def test_disarm_idempotent(self):
        queue = DeadlineQueue()
        queue.arm("a", 1)
        queue.disarm("a")
        queue.disarm("a")
        assert queue.peek() is None


class TestDrainDiagnostic:
    def test_snapshot_names_outstanding_packets(self):
        topology = MeshTopology(4, 4)
        network = Network(topology)
        network.schedule_injection(
            Packet(MessageType.WRITEBACK, (0, 0), ((3, 3),)), at_cycle=0
        )
        network.run(3)
        text = network.drain_diagnostic()
        assert "drain diagnostic" in text
        assert "undelivered" in text
