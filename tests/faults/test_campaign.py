"""Campaign sweeps plus zero-fault bit-identity against the golden slice."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.faults import CampaignConfig, run_campaign

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "data" / "figure9_golden.json"
)
SCHEME = "multicast+fast_lru"


class TestCampaignConfig:
    def test_bad_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(rates=(2.0,))

    def test_empty_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(rates=())

    def test_sweep_always_includes_baseline(self):
        config = CampaignConfig(rates=(1e-2, 1e-3))
        assert config.sweep_rates() == (0.0, 1e-3, 1e-2)


def _golden_cell(design):
    return json.loads(GOLDEN_PATH.read_text())["cells"][design]


def _run_single(spec):
    from repro.experiments.runner import reset_memo, run_cells

    reset_memo()
    [result] = run_cells([spec], jobs=1, cache=None)
    reset_memo()
    return result


class TestZeroFaultBitIdentity:
    def test_zero_rates_match_golden_exactly(self):
        from repro.experiments.runner import CellSpec

        spec = CellSpec(
            design="A", scheme=SCHEME, benchmark="art",
            measure=150, seed=1, fault_seed=7,
        )
        assert not spec.has_faults
        result = _run_single(spec)
        golden = _golden_cell("A")
        assert result.contents_digest == golden["contents_digest"]
        assert result.cycles == golden["cycles"]
        assert result.ipc == golden["ipc"]
        assert json.loads(json.dumps(result.metrics)) == golden["metrics"]

    def test_null_sampled_plan_is_bit_identical(self):
        # A vanishing rate still routes the build through the degraded
        # geometry; with an empty sampled plan it must not move a single
        # cycle or digest bit relative to the pristine golden run.
        from repro.experiments.runner import CellSpec

        spec = CellSpec(
            design="A", scheme=SCHEME, benchmark="art",
            measure=150, seed=1, link_fault_rate=1e-12, fault_seed=7,
        )
        assert spec.has_faults
        result = _run_single(spec)
        golden = _golden_cell("A")
        assert result.contents_digest == golden["contents_digest"]
        assert result.cycles == golden["cycles"]
        assert result.ipc == golden["ipc"]
        live_metrics = json.loads(json.dumps(result.metrics))
        shared = {k: v for k, v in live_metrics.items() if k in golden["metrics"]}
        assert shared == golden["metrics"]
        # The resilience instrumentation is present but reports inertness.
        assert live_metrics["faults.injected"]["value"] == 0
        assert live_metrics["faults.retries"]["value"] == 0


class TestSeededCampaign:
    def test_link_failure_campaign_fully_available(self):
        config = CampaignConfig(
            designs=("A",), schemes=(SCHEME,), benchmark="art",
            rates=(1e-2,), measure=150, seed=1, fault_seed=7,
        )
        result = run_campaign(config)
        assert len(result.points) == 2  # swept rate plus forced baseline

        baseline = result.point("A", SCHEME, 0.0)
        assert baseline.availability == 1.0
        assert baseline.latency_degradation == 1.0
        assert baseline.faults_injected == 0

        faulted = result.point("A", SCHEME, 1e-2)
        assert faulted.faults_injected > 0
        # Every access completes through reroute/retry alone.
        assert faulted.availability == 1.0
        assert faulted.completed == faulted.accesses
        assert faulted.exhausted_retries == 0
        assert faulted.rerouted_packets > 0 or faulted.retries > 0
        assert faulted.latency_degradation > 0.0
        assert faulted.goodput > 0.0
