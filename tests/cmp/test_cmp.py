"""Tests for the CMP shared-NUCA extension."""

import pytest

from repro.cmp import CMPCacheSystem, core_attach_points
from repro.core.designs import design_a, design_e, design_spec
from repro.errors import ConfigurationError
from repro.workloads import TraceGenerator, profile_by_name


def _workload(name, seed, measure=250):
    profile = profile_by_name(name)
    trace, warmup = TraceGenerator(profile, seed=seed).generate_with_warmup(
        measure=measure
    )
    return (profile, trace, warmup)


class TestAttachPoints:
    def test_mesh_cores_spread_across_top_row(self):
        points = core_attach_points(design_a, 4)
        assert points == [(2, 0), (6, 0), (10, 0), (14, 0)]
        assert all(y == 0 for _, y in points)

    def test_two_cores(self):
        assert core_attach_points(design_a, 2) == [(4, 0), (12, 0)]

    def test_halo_cores_share_hub(self):
        points = core_attach_points(design_e, 3)
        assert points == [("hub",)] * 3

    def test_limits(self):
        with pytest.raises(ConfigurationError):
            core_attach_points(design_a, 0)
        with pytest.raises(ConfigurationError):
            core_attach_points(design_a, 17)


class TestCMPRun:
    def test_two_core_run(self):
        system = CMPCacheSystem(design="A", num_cores=2)
        result = system.run([_workload("twolf", 1), _workload("vpr", 2)])
        assert result.num_cores == 2
        assert len(result.cores) == 2
        assert result.aggregate_ipc > max(c.ipc for c in result.cores)
        assert 0 < result.fairness <= 1

    def test_workload_count_checked(self):
        system = CMPCacheSystem(design="A", num_cores=2)
        with pytest.raises(ConfigurationError):
            system.run([_workload("twolf", 1)])

    def test_per_core_results_isolated(self):
        system = CMPCacheSystem(design="F", num_cores=2)
        result = system.run([_workload("art", 1), _workload("mcf", 2)])
        by_name = {c.benchmark: c for c in result.cores}
        # art fits the cache; mcf overflows it: their hit rates must differ.
        assert by_name["art"].hit_rate > by_name["mcf"].hit_rate

    def test_contention_hurts_vs_single_core(self):
        single = CMPCacheSystem(design="A", num_cores=1)
        r1 = single.run([_workload("art", 1, measure=400)])
        quad = CMPCacheSystem(design="A", num_cores=4)
        r4 = quad.run([
            _workload("art", 1, measure=400),
            _workload("art", 2, measure=400),
            _workload("art", 3, measure=400),
            _workload("art", 4, measure=400),
        ])
        art_alone = r1.cores[0].ipc
        art_shared = [c for c in r4.cores if c.core == 0][0].ipc
        # Sharing the cache cannot help a cache-fitting workload.
        assert art_shared <= art_alone * 1.05

    def test_deterministic(self):
        results = []
        for _ in range(2):
            system = CMPCacheSystem(design="A", num_cores=2)
            result = system.run([_workload("twolf", 1), _workload("vpr", 2)])
            results.append(result.aggregate_ipc)
        assert results[0] == results[1]
