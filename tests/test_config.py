"""Unit tests for the Table-1 configuration module."""

import pytest

from repro import config
from repro.errors import ConfigurationError


class TestMemoryLatency:
    def test_block_access_is_162_cycles(self):
        assert config.memory_access_latency(64) == 162

    def test_base_latency_for_zero_bytes(self):
        assert config.memory_access_latency(0) == 130

    def test_partial_chunk_rounds_up(self):
        assert config.memory_access_latency(1) == 134
        assert config.memory_access_latency(8) == 134
        assert config.memory_access_latency(9) == 138

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            config.memory_access_latency(-1)


class TestBankTiming:
    @pytest.mark.parametrize(
        "capacity_kb, wire, tag, tag_repl",
        [(64, 1, 2, 3), (128, 2, 4, 4), (256, 2, 4, 5), (512, 3, 5, 6)],
    )
    def test_table1_entries(self, capacity_kb, wire, tag, tag_repl):
        timing = config.BankTiming.for_capacity(capacity_kb * 1024)
        assert timing.wire_delay == wire
        assert timing.tag_latency == tag
        assert timing.tag_replace_latency == tag_repl

    def test_unsupported_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="unsupported bank capacity"):
            config.BankTiming.for_capacity(96 * 1024)

    def test_supported_capacities_sorted(self):
        caps = config.supported_bank_capacities()
        assert list(caps) == sorted(caps)
        assert 64 * 1024 in caps and 512 * 1024 in caps

    def test_replacement_never_faster_than_tag(self):
        for capacity in config.supported_bank_capacities():
            timing = config.BankTiming.for_capacity(capacity)
            assert timing.tag_replace_latency >= timing.tag_latency


class TestAddressLayout:
    def test_default_fields_sum_to_32(self):
        layout = config.AddressLayout()
        assert layout.tag_bits + layout.index_bits + layout.column_bits \
            + layout.offset_bits == 32

    def test_sixteen_columns(self):
        assert config.AddressLayout().num_columns == 16

    def test_1024_sets_per_bank(self):
        assert config.AddressLayout().sets_per_bank == 1024

    def test_wrong_total_rejected(self):
        with pytest.raises(ConfigurationError):
            config.AddressLayout(tag_bits=13)

    def test_zero_field_rejected(self):
        with pytest.raises(ConfigurationError):
            config.AddressLayout(tag_bits=22, index_bits=0, column_bits=4,
                                 offset_bits=6)


class TestRouterConfig:
    def test_single_cycle_hop_latency(self):
        assert config.RouterConfig(single_cycle=True).hop_latency == 1

    def test_pipelined_hop_latency(self):
        assert config.RouterConfig(single_cycle=False).hop_latency == 5

    def test_defaults_match_table1(self):
        router = config.RouterConfig()
        assert router.num_vcs == 4
        assert router.buffer_depth == 4
        assert router.flit_size_bits == 128

    @pytest.mark.parametrize("field", ["num_vcs", "buffer_depth",
                                       "flit_size_bits", "stage_latency"])
    def test_non_positive_rejected(self, field):
        with pytest.raises(ConfigurationError):
            config.RouterConfig(**{field: 0})


class TestPacketFlits:
    def test_control_packet_is_one_flit(self):
        assert config.packet_flits(carries_block=False) == 1

    def test_block_packet_is_five_flits(self):
        assert config.packet_flits(carries_block=True) == 5

    def test_flit_overhead_fits(self):
        # type(2) + size(7) + routing(8) + comm(1) = 18 bits of overhead
        assert config.FLIT_OVERHEAD_BITS == 18
        assert config.FLIT_OVERHEAD_BITS < config.FLIT_SIZE_BITS


class TestSystemConfig:
    def test_default_is_16mb(self):
        system = config.SystemConfig()
        assert system.total_capacity_bytes == 16 * 1024 * 1024
        assert system.total_blocks == 262_144

    def test_capacity_must_divide_block_size(self):
        with pytest.raises(ConfigurationError):
            config.SystemConfig(total_capacity_bytes=100)

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            config.SystemConfig(total_capacity_bytes=0)
