"""Protocol-level validation of the transaction-level flows.

`FlitLevelCacheProtocol` runs the real Fig.-3 message sequences (chain
multicast, per-bank tag match, pipelined eviction chain, miss/fill path)
through the cycle-accurate router fabric. The transaction engine's data
latencies must track it within the small constant offsets the two models
place differently (injection/ejection channel cycles).
"""

import pytest

from repro.cache.address import AddressMapper
from repro.core.system import NetworkedCacheSystem
from repro.errors import ProtocolError
from repro.noc.protocol import FlitLevelCacheProtocol

MAPPER = AddressMapper()

#: Allowed disagreement: the flit simulator charges one cycle each for
#: injection and ejection channels that the transaction model folds into
#: neighboring components, plus one cycle per replication split on the
#: deepest multicast paths.
HIT_TOLERANCE = 5
MISS_TOLERANCE = 16


def _transaction_hit(column: int, depth: int) -> int:
    system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
    for tag in range(16):
        system.access(MAPPER.encode(tag=tag, index=3, column=column), at=0)
    system.geometry.reset_contention()
    system.memory.reset()
    system.engine.reset()
    timing = system.access(
        MAPPER.encode(tag=15 - depth, index=3, column=column), at=0
    )
    assert timing.hit and timing.bank_position == depth
    return timing.latency


def _transaction_miss(column: int) -> int:
    system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
    for tag in range(16):
        system.access(MAPPER.encode(tag=tag, index=3, column=column), at=0)
    system.geometry.reset_contention()
    system.memory.reset()
    system.engine.reset()
    timing = system.access(MAPPER.encode(tag=99, index=3, column=column), at=0)
    assert not timing.hit
    return timing.latency


class TestHitValidation:
    @pytest.mark.parametrize("column, depth", [
        (4, 0), (4, 1), (4, 3), (4, 8), (8, 5), (12, 15), (0, 10),
    ])
    def test_hit_data_latency_tracks_flit_level(self, column, depth):
        protocol = FlitLevelCacheProtocol()
        trace = protocol.run_hit(column, depth)
        transaction = _transaction_hit(column, depth)
        assert abs(trace.data_latency - transaction) <= HIT_TOLERANCE

    def test_hit_latency_monotone_in_depth(self):
        protocol_latencies = []
        for depth in (0, 4, 8, 12):
            protocol = FlitLevelCacheProtocol()
            protocol_latencies.append(protocol.run_hit(6, depth).data_latency)
        assert protocol_latencies == sorted(protocol_latencies)

    def test_request_chain_arrivals_monotone(self):
        protocol = FlitLevelCacheProtocol()
        trace = protocol.run_hit(6, 15)
        arrivals = [trace.request_arrivals[i] for i in range(16)]
        assert arrivals == sorted(arrivals)

    def test_depth_out_of_range(self):
        with pytest.raises(ProtocolError):
            FlitLevelCacheProtocol().run_hit(4, 16)


class TestMissValidation:
    @pytest.mark.parametrize("column", [2, 8, 13])
    def test_miss_data_latency_tracks_flit_level(self, column):
        protocol = FlitLevelCacheProtocol()
        trace = protocol.run_miss(column)
        transaction = _transaction_miss(column)
        assert abs(trace.data_latency - transaction) <= MISS_TOLERANCE

    def test_miss_includes_memory_latency(self):
        protocol = FlitLevelCacheProtocol()
        trace = protocol.run_miss(5)
        assert trace.memory_requested is not None
        assert trace.data_latency > 162

    def test_eviction_chain_completes(self):
        protocol = FlitLevelCacheProtocol()
        trace = protocol.run_miss(5)
        assert trace.chain_done is not None
        # The chain must reach the LRU bank after the request did.
        assert trace.chain_done > trace.request_arrivals[15]

    def test_hit_chain_stops_at_hit_bank(self):
        protocol = FlitLevelCacheProtocol()
        trace = protocol.run_hit(5, 4)
        # The chain is absorbed at the hit bank, after it missed... i.e.
        # after the request reached the banks before it.
        assert trace.chain_done is not None
        assert trace.chain_done >= trace.request_arrivals[3]
