"""Fixture-backed tests for the exception-discipline rule family."""

import pytest

from tests.analysis.fixtures import Fixture, fixtures_for, labelled
from tests.analysis.helpers import assert_fixture_verdict, flagged_rules

_FIXTURES, _IDS = labelled(fixtures_for("exceptions"))


@pytest.mark.parametrize("fixture", _FIXTURES, ids=_IDS)
def test_discipline_fixture(fixture):
    assert_fixture_verdict(fixture)


def test_family_has_all_three_kinds_per_rule():
    kinds_by_rule = {}
    for fixture in _FIXTURES:
        kinds_by_rule.setdefault(fixture.rule, set()).add(fixture.kind)
    assert set(kinds_by_rule) == {
        "exc-bare", "exc-silent", "exc-broad-hotpath", "exc-taxonomy",
    }
    for rule, kinds in kinds_by_rule.items():
        assert kinds == {"positive", "negative", "suppressed"}, rule


def test_bare_silent_swallow_trips_both_rules():
    rules = flagged_rules(Fixture(
        rule="exc-bare",
        family="exceptions",
        kind="positive",
        module="repro.experiments.demo",
        source=(
            "def attempt(thunk):\n"
            "    try:\n"
            "        thunk()\n"
            "    except:\n"
            "        pass\n"
        ),
    ))
    assert {"exc-bare", "exc-silent"} <= rules


def test_taxonomy_raise_in_tuple_catch_reraise_is_clean():
    # Re-raising a caught exception (`raise` with no operand) is never a
    # taxonomy violation, and tuple catches of narrow types are fine.
    rules = flagged_rules(Fixture(
        rule="exc-taxonomy",
        family="exceptions",
        kind="negative",
        module="repro.sim.demo",
        source=(
            "def dispatch(event, count):\n"
            "    try:\n"
            "        event()\n"
            "    except (ValueError, KeyError):\n"
            "        count()\n"
            "        raise\n"
        ),
    ))
    assert "exc-taxonomy" not in rules
    assert "exc-broad-hotpath" not in rules
