"""Fixture-backed tests for the telemetry-hygiene rule family."""

import pytest

from tests.analysis.fixtures import Fixture, fixtures_for, labelled
from tests.analysis.helpers import assert_fixture_verdict, flagged_rules

_FIXTURES, _IDS = labelled(fixtures_for("telemetry"))


@pytest.mark.parametrize("fixture", _FIXTURES, ids=_IDS)
def test_telemetry_fixture(fixture):
    assert_fixture_verdict(fixture)


def test_family_has_all_three_kinds_per_rule():
    kinds_by_rule = {}
    for fixture in _FIXTURES:
        kinds_by_rule.setdefault(fixture.rule, set()).add(fixture.kind)
    assert set(kinds_by_rule) == {
        "tel-registry-only", "tel-sink-only", "tel-wallclock-payload",
        "tel-window-simtime",
    }
    for rule, kinds in kinds_by_rule.items():
        assert kinds == {"positive", "negative", "suppressed"}, rule


def test_telemetry_package_may_construct_its_own_classes():
    rules = flagged_rules(Fixture(
        rule="tel-registry-only",
        family="telemetry",
        kind="negative",
        module="repro.telemetry.registry",
        source=(
            "class Counter:\n    pass\n\n\n"
            "def counter():\n    return Counter()\n"
        ),
    ))
    assert "tel-registry-only" not in rules


def test_whitebox_tests_outside_repro_are_exempt():
    # Layering rules key off the dotted module: files outside the repro
    # package (module=None, e.g. the telemetry unit tests) construct
    # metric and sink classes freely.
    rules = flagged_rules(Fixture(
        rule="tel-registry-only",
        family="telemetry",
        kind="negative",
        module=None,
        source="from repro.telemetry import Counter\n\nhits = Counter()\n",
    ))
    assert "tel-registry-only" not in rules
