"""Tests for the strict-typing gate: parsing, ratchet, baseline hygiene."""

import pytest

from repro.analysis import AnalysisError
from repro.analysis.typegate import (
    BASELINE_NAME,
    TYPED_CORE,
    TypeGateReport,
    baseline_problems,
    check_typegate,
    evaluate,
    in_typed_core,
    load_baseline,
    parse_mypy_errors,
)

_CANNED_OUTPUT = """\
src/repro/noc/router.py:10: error: Function is missing a return type annotation
src/repro/noc/router.py:25:9: error: Call to untyped function "foo" in typed context
src/repro/cache/bankset.py:4: error: Missing type parameters for generic type "dict"
src/repro/noc/router.py:30: note: See https://mypy.readthedocs.io
elsewhere/other.py:1: error: Not a repro module
Found 4 errors in 3 files (checked 80 source files)
"""


class TestParsing:
    def test_counts_errors_per_module(self):
        counts = parse_mypy_errors(_CANNED_OUTPUT)
        assert counts == {"repro.noc.router": 2, "repro.cache.bankset": 1}

    def test_notes_and_summary_lines_ignored(self):
        assert parse_mypy_errors("just chatter\n") == {}


class TestEvaluate:
    def test_baselined_errors_pass(self):
        report = evaluate(
            {"repro.noc.router": 2}, ["repro.noc.router"]
        )
        assert report.ok
        assert report.baselined_errors == 2
        assert report.offenders == {}

    def test_unbaselined_module_fails_the_ratchet(self):
        report = evaluate({"repro.noc.router": 2}, [])
        assert not report.ok
        assert report.offenders == {"repro.noc.router": 2}
        assert "only shrinks" in report.render()
        assert "FAILED" in report.render()

    def test_clean_baselined_module_is_reported_stale(self):
        report = evaluate({}, ["repro.noc.router"])
        assert report.ok  # stale entries warn, they do not fail
        assert report.stale == ["repro.noc.router"]
        assert BASELINE_NAME in report.render()

    def test_skipped_report_renders_as_skipped(self):
        report = TypeGateReport(ran=False)
        assert report.ok
        assert "skipped" in report.render()


class TestBaselineHygiene:
    def test_sorted_unique_repro_entries_are_sound(self):
        assert baseline_problems(["repro.cache.bankset", "repro.noc.router"]) == []

    def test_unsorted_entries_rejected(self):
        problems = baseline_problems(["repro.noc.router", "repro.cache.bankset"])
        assert any("sorted" in problem for problem in problems)

    def test_duplicate_entries_rejected(self):
        problems = baseline_problems(["repro.noc.router", "repro.noc.router"])
        assert any("unique" in problem for problem in problems)

    def test_typed_core_entries_rejected(self):
        problems = baseline_problems(["repro.sim.kernel"])
        assert any("typed-core" in problem for problem in problems)

    def test_foreign_modules_rejected(self):
        problems = baseline_problems(["numpy.random"])
        assert any("not repro modules" in problem for problem in problems)

    def test_load_baseline_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.txt") == []

    def test_load_baseline_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / BASELINE_NAME
        path.write_text(
            "# header\n\nrepro.cache.bankset\nrepro.noc.router\n",
            encoding="utf-8",
        )
        assert load_baseline(path) == [
            "repro.cache.bankset", "repro.noc.router",
        ]

    def test_load_baseline_raises_on_damage(self, tmp_path):
        path = tmp_path / BASELINE_NAME
        path.write_text("repro.sim.kernel\n", encoding="utf-8")
        with pytest.raises(AnalysisError, match="typed-core"):
            load_baseline(path)

    def test_in_typed_core_prefixes(self):
        assert in_typed_core("repro.sim")
        assert in_typed_core("repro.sim.kernel")
        assert in_typed_core("repro.experiments.runner")
        assert not in_typed_core("repro.experiments.cache")
        assert not in_typed_core("repro.simulator")  # prefix, not substring


class TestRepoBaseline:
    def test_checked_in_baseline_is_structurally_sound(self):
        entries = load_baseline(BASELINE_NAME)  # raises on damage
        assert entries, "baseline unexpectedly empty"
        assert not any(in_typed_core(entry) for entry in entries)

    def test_gate_skips_gracefully_without_mypy(self, monkeypatch):
        import repro.analysis.typegate as typegate

        monkeypatch.setattr(typegate, "mypy_available", lambda: False)
        report = check_typegate(".")
        assert report.ok
        assert not report.ran

    def test_typed_core_covers_the_contract_modules(self):
        assert "repro.analysis" in TYPED_CORE
        assert "repro.sim" in TYPED_CORE
        assert "repro.telemetry" in TYPED_CORE
        assert "repro.experiments.runner" in TYPED_CORE
