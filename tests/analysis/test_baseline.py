"""Tests for the shrink-only lint-finding baseline ratchet."""

import pytest

from repro.analysis import AnalysisError, Finding
from repro.analysis.baseline import (
    check_baseline,
    evaluate,
    load_baseline,
    parse_entry,
    write_baseline,
)


def _finding(path="src/repro/noc/demo.py", line=3, rule="det-wallclock"):
    return Finding(path=path, line=line, col=1, rule=rule, message="m")


class TestParsing:
    def test_entry_round_trip(self):
        assert parse_entry("src/repro/a.py:det-wallclock:2") == (
            "src/repro/a.py", "det-wallclock", 2
        )

    def test_windows_unfriendly_paths_still_split_right(self):
        # rpartition: only the LAST two colons delimit rule and count.
        assert parse_entry("pkg:mod.py:rule:1") == ("pkg:mod.py", "rule", 1)

    @pytest.mark.parametrize("line", [
        "no-colons", "a.py:rule", "a.py:rule:zero", "a.py:rule:0",
        ":rule:1", "a.py::1",
    ])
    def test_malformed_entries_raise(self, line):
        with pytest.raises(AnalysisError, match="malformed"):
            parse_entry(line)

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.txt") == {}

    def test_comments_and_blanks_are_ignored(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("# header\n\na.py:rule:2\n", encoding="utf-8")
        assert load_baseline(path) == {("a.py", "rule"): 2}

    def test_unsorted_entries_raise(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("b.py:rule:1\na.py:rule:1\n", encoding="utf-8")
        with pytest.raises(AnalysisError, match="sorted"):
            load_baseline(path)

    def test_duplicate_entries_raise(self, tmp_path):
        path = tmp_path / "b.txt"
        path.write_text("a.py:rule:1\na.py:rule:1\n", encoding="utf-8")
        with pytest.raises(AnalysisError, match="unique"):
            load_baseline(path)


class TestEvaluate:
    def test_clean_run_against_empty_baseline(self):
        report = evaluate([], {})
        assert report.ok
        assert report.render().startswith("repro lint: ok")

    def test_unbaselined_finding_is_an_offender(self):
        report = evaluate([_finding()], {})
        assert not report.ok
        assert len(report.offenders) == 1
        assert "FAILED" in report.render()

    def test_allowance_absorbs_first_findings_in_location_order(self):
        findings = [_finding(line=30), _finding(line=10), _finding(line=20)]
        allowed = {("src/repro/noc/demo.py", "det-wallclock"): 2}
        report = evaluate(findings, allowed)
        assert report.absorbed == 2
        assert [f.line for f in report.offenders] == [30]

    def test_allowance_is_per_path_and_rule(self):
        findings = [_finding(), _finding(rule="exc-bare")]
        allowed = {("src/repro/noc/demo.py", "det-wallclock"): 1}
        report = evaluate(findings, allowed)
        assert [f.rule for f in report.offenders] == ["exc-bare"]

    def test_shrunk_count_flags_the_entry_stale(self):
        allowed = {("src/repro/noc/demo.py", "det-wallclock"): 3}
        report = evaluate([_finding()], allowed)
        assert report.ok  # stale alone does not make offenders...
        assert report.stale == ["src/repro/noc/demo.py:det-wallclock:3"]
        assert "shrink" in report.render()

    def test_fixed_file_flags_the_whole_entry(self):
        report = evaluate([], {("gone.py", "rule"): 2})
        assert report.stale == ["gone.py:rule:2"]


class TestGate:
    def test_update_writes_sorted_entries_and_passes(self, tmp_path):
        path = tmp_path / "lint-baseline.txt"
        findings = [
            _finding(path="z.py"), _finding(path="a.py"),
            _finding(path="a.py", line=9),
        ]
        report = check_baseline(findings, path, update=True)
        assert report.ok and report.absorbed == 3
        body = path.read_text(encoding="utf-8")
        assert "a.py:det-wallclock:2\n" in body
        assert body.index("a.py:") < body.index("z.py:")
        # The written file must load cleanly (sorted, unique).
        assert load_baseline(path) == {
            ("a.py", "det-wallclock"): 2, ("z.py", "det-wallclock"): 1,
        }

    def test_ratchet_fails_on_growth(self, tmp_path):
        path = tmp_path / "lint-baseline.txt"
        write_baseline([_finding()], path)
        grown = [_finding(), _finding(line=99)]
        report = check_baseline(grown, path)
        assert not report.ok
        assert [f.line for f in report.offenders] == [99]

    def test_shipped_baseline_is_empty(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        assert load_baseline(root / "lint-baseline.txt") == {}
