"""Fixture snippets for the static-analysis rules.

Each fixture is one small source module plus the verdict the analyzer
must reach on it:

* ``positive`` -- the snippet violates the rule and must be flagged;
* ``negative`` -- the snippet is idiomatic/clean and must not be;
* ``suppressed`` -- the snippet violates the rule but carries a
  justified ``# repro: allow[rule]`` directive, so the analyzer must
  stay silent (and must not report ``bad-suppression`` either).

The violating code lives only inside string literals, so the analyzer's
CI sweep over ``tests/`` never sees it as real source.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Fixture:
    rule: str
    family: str
    kind: str  # "positive" | "negative" | "suppressed"
    module: str | None
    source: str


FIXTURES = [
    # -- determinism ----------------------------------------------------------
    Fixture(
        "det-wallclock", "determinism", "positive", "repro.experiments.demo",
        "import time\n\nSTARTED = time.time()\n",
    ),
    Fixture(
        "det-wallclock", "determinism", "positive", "repro.core.demo",
        "from datetime import datetime\n\nstamp = datetime.now()\n",
    ),
    Fixture(
        # Monotonic clocks are fine for wall-cost metadata outside the
        # simulation core (RunResult.wall_s is compare=False).
        "det-wallclock", "determinism", "negative", "repro.experiments.demo",
        "import time\n\nstarted = time.perf_counter()\n",
    ),
    Fixture(
        # ... but inside the core the only clock is Simulator.now.
        "det-wallclock", "determinism", "positive", "repro.sim.demo",
        "import time\n\nstarted = time.perf_counter()\n",
    ),
    Fixture(
        "det-wallclock", "determinism", "suppressed", "repro.experiments.demo",
        "import time\n\n"
        "STARTED = time.time()"
        "  # repro: allow[det-wallclock] -- fixture: vetted false positive\n",
    ),
    Fixture(
        "det-unseeded-random", "determinism", "positive",
        "repro.workloads.demo",
        "import random\n\n\ndef pick(items):\n"
        "    return random.choice(items)\n",
    ),
    Fixture(
        "det-unseeded-random", "determinism", "positive",
        "repro.experiments.demo",
        "import random\n\nrng = random.Random()\n",
    ),
    Fixture(
        "det-unseeded-random", "determinism", "negative",
        "repro.workloads.demo",
        "import random\n\n\ndef pick(items, seed):\n"
        "    rng = random.Random(seed)\n"
        "    return rng.choice(items)\n",
    ),
    Fixture(
        "det-unseeded-random", "determinism", "suppressed",
        "repro.workloads.demo",
        "import random\n\n\ndef pick(items):\n"
        "    return random.choice(items)"
        "  # repro: allow[det-unseeded-random] -- fixture justification\n",
    ),
    Fixture(
        "det-id-order", "determinism", "positive", "repro.noc.demo",
        "def order(items):\n    return sorted(items, key=id)\n",
    ),
    Fixture(
        "det-id-order", "determinism", "positive", "repro.cache.demo",
        "def seen(items):\n    return {id(item) for item in items}\n",
    ),
    Fixture(
        "det-id-order", "determinism", "negative", "repro.noc.demo",
        "def order(items):\n"
        "    return sorted(items, key=lambda item: item.name)\n",
    ),
    Fixture(
        # Outside the simulation core the rule does not apply at all.
        "det-id-order", "determinism", "negative", "repro.experiments.demo",
        "def order(items):\n    return sorted(items, key=id)\n",
    ),
    Fixture(
        "det-id-order", "determinism", "suppressed", "repro.noc.demo",
        "def taken(candidates):\n"
        "    return {id(vc) for vc in candidates}"
        "  # repro: allow[det-id-order] -- fixture: membership-only set\n",
    ),
    Fixture(
        # Module-level numpy draws share numpy's hidden global state just
        # like random.* does.
        "det-unseeded-random", "determinism", "positive", "repro.noc.demo",
        "import numpy\n\n\ndef jitter(n):\n"
        "    return numpy.random.standard_normal(n)\n",
    ),
    Fixture(
        "det-unseeded-random", "determinism", "positive",
        "repro.workloads.demo",
        "from numpy import random as nprandom\n\n\ndef arrivals(n):\n"
        "    return nprandom.poisson(3.0, n)\n",
    ),
    Fixture(
        "det-unseeded-random", "determinism", "negative", "repro.noc.demo",
        "import numpy\n\n\ndef jitter(n, seed):\n"
        "    rng = numpy.random.default_rng(seed)\n"
        "    return rng.standard_normal(n)\n",
    ),
    Fixture(
        "det-unordered-reduce", "determinism", "positive", "repro.noc.demo",
        "def total(latencies):\n"
        "    return sum({flit.latency for flit in latencies})\n",
    ),
    Fixture(
        "det-unordered-reduce", "determinism", "positive", "repro.sim.demo",
        "import math\n\n\ndef energy(loads, extra):\n"
        "    return math.fsum({0.5, 1.5, extra})\n",
    ),
    Fixture(
        # Reducing a deterministic sequence is the idiomatic fix.
        "det-unordered-reduce", "determinism", "negative", "repro.noc.demo",
        "def total(latencies):\n"
        "    return sum(sorted({flit.latency for flit in latencies}))\n",
    ),
    Fixture(
        # Outside the simulation core the rule does not apply.
        "det-unordered-reduce", "determinism", "negative",
        "repro.experiments.demo",
        "def total(values):\n"
        "    return sum({v for v in values})\n",
    ),
    Fixture(
        "det-unordered-reduce", "determinism", "suppressed",
        "repro.noc.demo",
        "def total(counts):\n"
        "    return sum({c for c in counts})"
        "  # repro: allow[det-unordered-reduce] -- fixture: ints commute\n",
    ),
    Fixture(
        "det-set-iter", "determinism", "positive", "repro.sim.demo",
        "def visit(handler, extra):\n"
        "    for node in {1, 2, extra}:\n"
        "        handler(node)\n",
    ),
    Fixture(
        "det-set-iter", "determinism", "positive", "repro.noc.demo",
        "def fan(links):\n    return [hop for hop in set(links)]\n",
    ),
    Fixture(
        "det-set-iter", "determinism", "negative", "repro.sim.demo",
        "def visit(handler, nodes):\n"
        "    for node in sorted(set(nodes)):\n"
        "        handler(node)\n",
    ),
    Fixture(
        "det-set-iter", "determinism", "suppressed", "repro.noc.demo",
        "def fan(links):\n"
        "    return [hop for hop in set(links)]"
        "  # repro: allow[det-set-iter] -- fixture: order provably unused\n",
    ),
    Fixture(
        "det-np-unstable-sort", "determinism", "positive", "repro.noc.demo",
        "import numpy as np\n\n\ndef rank(keys):\n"
        "    return np.argsort(keys)\n",
    ),
    Fixture(
        # The method form is numpy-specific (lists have no argsort).
        "det-np-unstable-sort", "determinism", "positive", "repro.sim.demo",
        "def order(scores):\n    return scores.argsort()\n",
    ),
    Fixture(
        "det-np-unstable-sort", "determinism", "negative", "repro.noc.demo",
        "import numpy as np\n\n\ndef rank(keys):\n"
        "    return np.argsort(keys, kind=\"stable\")\n",
    ),
    Fixture(
        # Outside the simulation core the rule does not apply.
        "det-np-unstable-sort", "determinism", "negative",
        "repro.experiments.demo",
        "import numpy as np\n\n\ndef rank(keys):\n"
        "    return np.argsort(keys)\n",
    ),
    Fixture(
        "det-np-unstable-sort", "determinism", "suppressed",
        "repro.noc.demo",
        "import numpy as np\n\n\ndef rank(keys):\n"
        "    return np.argsort(keys)"
        "  # repro: allow[det-np-unstable-sort] -- fixture: keys unique\n",
    ),
    Fixture(
        # numpy reductions over set expressions accumulate in hash order
        # just like builtin sum.
        "det-unordered-reduce", "determinism", "positive", "repro.noc.demo",
        "import numpy as np\n\n\ndef total(latencies):\n"
        "    return np.sum({lat for lat in latencies})\n",
    ),
    # -- process safety -------------------------------------------------------
    Fixture(
        "proc-spec-pickle", "process-safety", "positive",
        "repro.experiments.demo",
        "from dataclasses import dataclass\n\n\n"
        "@dataclass(frozen=True)\n"
        "class DemoSpec:\n"
        "    tag: str\n"
        "    table: dict\n",
    ),
    Fixture(
        "proc-spec-pickle", "process-safety", "positive",
        "repro.experiments.demo",
        "from dataclasses import dataclass\n"
        "from typing import Callable\n\n\n"
        "@dataclass(frozen=True)\n"
        "class HookSpec:\n"
        "    on_done: Callable\n",
    ),
    Fixture(
        "proc-spec-pickle", "process-safety", "negative",
        "repro.experiments.demo",
        "from dataclasses import dataclass\n\n\n"
        "@dataclass(frozen=True)\n"
        "class DemoSpec:\n"
        "    design: str\n"
        "    seed: int\n"
        "    weights: tuple[float, ...]\n"
        "    index_space: int | None = None\n",
    ),
    Fixture(
        # Spec classes outside repro.experiments are out of the rule's
        # jurisdiction (they never cross the pool boundary).
        "proc-spec-pickle", "process-safety", "negative", "repro.noc.demo",
        "from dataclasses import dataclass\n\n\n"
        "@dataclass\nclass LinkSpec:\n    table: dict\n",
    ),
    Fixture(
        "proc-spec-pickle", "process-safety", "suppressed",
        "repro.experiments.demo",
        "from dataclasses import dataclass\n\n\n"
        "@dataclass(frozen=True)\n"
        "class DemoSpec:\n"
        "    tag: str\n"
        "    table: dict"
        "  # repro: allow[proc-spec-pickle] -- fixture justification\n",
    ),
    Fixture(
        "proc-worker-global-write", "process-safety", "positive",
        "repro.experiments.demo",
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "_SEEN = {}\n\n\n"
        "def work(item):\n"
        "    _SEEN[item] = True\n"
        "    return item\n\n\n"
        "def run(items):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        futures = [pool.submit(work, item) for item in items]\n"
        "    return [future.result() for future in futures]\n",
    ),
    Fixture(
        # The closure is transitive: work() calls helper(), which writes.
        "proc-worker-global-write", "process-safety", "positive",
        "repro.experiments.demo",
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "_LOG = []\n\n\n"
        "def helper(item):\n"
        "    _LOG.append(item)\n\n\n"
        "def work(item):\n"
        "    helper(item)\n"
        "    return item\n\n\n"
        "def run(items):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return [pool.submit(work, item) for item in items]\n",
    ),
    Fixture(
        "proc-worker-global-write", "process-safety", "negative",
        "repro.experiments.demo",
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "_LIMIT = 8\n\n\n"
        "def work(item):\n"
        "    local = {}\n"
        "    local[item] = _LIMIT\n"
        "    return local\n\n\n"
        "def run(items):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return [pool.submit(work, item) for item in items]\n",
    ),
    Fixture(
        "proc-worker-global-write", "process-safety", "suppressed",
        "repro.experiments.demo",
        "from concurrent.futures import ProcessPoolExecutor\n\n"
        "_SEEN = {}\n\n\n"
        "def work(item):\n"
        "    _SEEN[item] = True"
        "  # repro: allow[proc-worker-global-write] -- fixture: pure memo\n"
        "    return item\n\n\n"
        "def run(items):\n"
        "    with ProcessPoolExecutor() as pool:\n"
        "        return [pool.submit(work, item) for item in items]\n",
    ),
    Fixture(
        "proc-mutable-default", "process-safety", "positive",
        "repro.experiments.demo",
        "def gather(item, acc=[]):\n"
        "    acc.append(item)\n"
        "    return acc\n",
    ),
    Fixture(
        "proc-mutable-default", "process-safety", "positive",
        "repro.workloads.demo",
        "def index(key, table={}):\n"
        "    return table.setdefault(key, 0)\n",
    ),
    Fixture(
        "proc-mutable-default", "process-safety", "negative",
        "repro.experiments.demo",
        "def gather(item, acc=None):\n"
        "    acc = [] if acc is None else acc\n"
        "    acc.append(item)\n"
        "    return acc\n",
    ),
    Fixture(
        "proc-mutable-default", "process-safety", "suppressed",
        "repro.experiments.demo",
        "def gather(item, acc=[]):"
        "  # repro: allow[proc-mutable-default] -- fixture justification\n"
        "    acc.append(item)\n"
        "    return acc\n",
    ),
    # -- telemetry hygiene ----------------------------------------------------
    Fixture(
        "tel-registry-only", "telemetry", "positive", "repro.noc.demo",
        "from repro.telemetry import Counter\n\nhits = Counter()\n",
    ),
    Fixture(
        "tel-registry-only", "telemetry", "positive", "repro.cache.demo",
        "from repro.telemetry.registry import Histogram\n\n"
        "depths = Histogram((1, 2, 4))\n",
    ),
    Fixture(
        # collections.Counter is a different class; import resolution
        # must tell them apart.
        "tel-registry-only", "telemetry", "negative",
        "repro.validation.demo",
        "from collections import Counter\n\ntallies = Counter()\n",
    ),
    Fixture(
        "tel-registry-only", "telemetry", "negative", "repro.noc.demo",
        "from repro.telemetry import global_registry\n\n"
        "hits = global_registry().counter('noc.demo.hits')\n",
    ),
    Fixture(
        "tel-registry-only", "telemetry", "suppressed", "repro.noc.demo",
        "from repro.telemetry import Counter\n\n"
        "hits = Counter()"
        "  # repro: allow[tel-registry-only] -- fixture justification\n",
    ),
    Fixture(
        "tel-sink-only", "telemetry", "positive", "repro.experiments.demo",
        "from repro.telemetry import JsonlTraceSink\n\n"
        "sink = JsonlTraceSink('out.jsonl')\n",
    ),
    Fixture(
        "tel-sink-only", "telemetry", "positive", "repro.noc.demo",
        "from repro.telemetry.trace import ChromeTraceSink\n\n"
        "sink = ChromeTraceSink('out.json')\n",
    ),
    Fixture(
        "tel-sink-only", "telemetry", "negative", "repro.experiments.demo",
        "from repro.telemetry import open_sink\n\n"
        "sink = open_sink('out.jsonl')\n",
    ),
    Fixture(
        "tel-sink-only", "telemetry", "suppressed", "repro.experiments.demo",
        "from repro.telemetry import JsonlTraceSink\n\n"
        "sink = JsonlTraceSink('out.jsonl')"
        "  # repro: allow[tel-sink-only] -- fixture justification\n",
    ),
    Fixture(
        "tel-wallclock-payload", "telemetry", "positive",
        "repro.telemetry.demo",
        "import time\n\n\ndef stamp():\n    return time.time()\n",
    ),
    Fixture(
        "tel-wallclock-payload", "telemetry", "positive",
        "repro.telemetry.demo",
        "import os\n\n\ndef tag():\n    return os.getpid()\n",
    ),
    Fixture(
        "tel-wallclock-payload", "telemetry", "negative",
        "repro.telemetry.demo",
        "def stamp(simulator):\n    return simulator.now\n",
    ),
    Fixture(
        "tel-wallclock-payload", "telemetry", "suppressed",
        "repro.telemetry.demo",
        "import time\n\n\ndef stamp():\n"
        "    return time.time()"
        "  # repro: allow[tel-wallclock-payload] -- fixture justification\n",
    ),
    Fixture(
        # Monotonic clocks are fine in orchestration for wall-cost
        # metadata, but never as a metric sample: a host-time window
        # index shears the serial == --jobs N == replay merge.
        "tel-window-simtime", "telemetry", "positive",
        "repro.experiments.demo",
        "import time\n\n\ndef sample(series):\n"
        "    series.record(time.perf_counter())\n",
    ),
    Fixture(
        "tel-window-simtime", "telemetry", "positive",
        "repro.perf.demo",
        "from time import monotonic\n\n\ndef sample(registry, value):\n"
        "    registry.series('demo', 16).record(int(monotonic()), value)\n",
    ),
    Fixture(
        "tel-window-simtime", "telemetry", "negative",
        "repro.experiments.demo",
        "def sample(series, cycle, value):\n"
        "    series.record(cycle, value)\n",
    ),
    Fixture(
        # Timing *around* a record call is fine; only host time flowing
        # into the sample arguments is a violation.
        "tel-window-simtime", "telemetry", "negative",
        "repro.experiments.demo",
        "import time\n\n\ndef sample(series, cycle):\n"
        "    started = time.perf_counter()\n"
        "    series.record(cycle)\n"
        "    return time.perf_counter() - started\n",
    ),
    Fixture(
        "tel-window-simtime", "telemetry", "suppressed",
        "repro.experiments.demo",
        "import time\n\n\ndef sample(series):\n"
        "    series.record(int(time.monotonic()))"
        "  # repro: allow[tel-window-simtime] -- fixture justification\n",
    ),
    # -- exception discipline -------------------------------------------------
    Fixture(
        "exc-bare", "exceptions", "positive", "repro.experiments.demo",
        "def guard(thunk):\n"
        "    try:\n"
        "        return thunk()\n"
        "    except:\n"
        "        return None\n",
    ),
    Fixture(
        # Bare except is banned even outside the repro package.
        "exc-bare", "exceptions", "positive", None,
        "def guard(thunk):\n"
        "    try:\n"
        "        return thunk()\n"
        "    except:\n"
        "        raise\n",
    ),
    Fixture(
        "exc-bare", "exceptions", "negative", "repro.experiments.demo",
        "def guard(thunk):\n"
        "    try:\n"
        "        return thunk()\n"
        "    except ValueError:\n"
        "        return None\n",
    ),
    Fixture(
        "exc-bare", "exceptions", "suppressed", "repro.experiments.demo",
        "def guard(thunk):\n"
        "    try:\n"
        "        return thunk()\n"
        "    except:"
        "  # repro: allow[exc-bare] -- fixture justification\n"
        "        raise\n",
    ),
    Fixture(
        "exc-silent", "exceptions", "positive", "repro.experiments.demo",
        "def attempt(thunk):\n"
        "    try:\n"
        "        thunk()\n"
        "    except Exception:\n"
        "        pass\n",
    ),
    Fixture(
        # Inside the simulation core even a *narrow* silent catch is a
        # swallow: a dropped error surfaces later as corruption.
        "exc-silent", "exceptions", "positive", "repro.noc.demo",
        "def attempt(thunk):\n"
        "    try:\n"
        "        thunk()\n"
        "    except KeyError:\n"
        "        pass\n",
    ),
    Fixture(
        # A narrow, silent catch outside the core is tolerated (cleanup
        # idiom); the broad-or-core combinations are what the rule bans.
        "exc-silent", "exceptions", "negative", "repro.experiments.demo",
        "def attempt(thunk):\n"
        "    try:\n"
        "        thunk()\n"
        "    except FileNotFoundError:\n"
        "        pass\n",
    ),
    Fixture(
        "exc-silent", "exceptions", "negative", "repro.experiments.demo",
        "def attempt(thunk, log):\n"
        "    try:\n"
        "        thunk()\n"
        "    except Exception as exc:\n"
        "        log(exc)\n",
    ),
    Fixture(
        "exc-silent", "exceptions", "suppressed", "repro.experiments.demo",
        "def attempt(thunk):\n"
        "    try:\n"
        "        thunk()\n"
        "    except Exception:"
        "  # repro: allow[exc-silent] -- fixture justification\n"
        "        pass\n",
    ),
    Fixture(
        "exc-broad-hotpath", "exceptions", "positive", "repro.sim.demo",
        "def step(event, log):\n"
        "    try:\n"
        "        event()\n"
        "    except Exception as exc:\n"
        "        log(exc)\n",
    ),
    Fixture(
        "exc-broad-hotpath", "exceptions", "positive", "repro.cache.demo",
        "def probe(bank, log):\n"
        "    try:\n"
        "        bank.read()\n"
        "    except BaseException as exc:\n"
        "        log(exc)\n"
        "        raise\n",
    ),
    Fixture(
        "exc-broad-hotpath", "exceptions", "negative",
        "repro.experiments.demo",
        "def step(event, log):\n"
        "    try:\n"
        "        event()\n"
        "    except Exception as exc:\n"
        "        log(exc)\n",
    ),
    Fixture(
        "exc-broad-hotpath", "exceptions", "suppressed", "repro.sim.demo",
        "def step(event, log):\n"
        "    try:\n"
        "        event()\n"
        "    except Exception as exc:"
        "  # repro: allow[exc-broad-hotpath] -- fixture justification\n"
        "        log(exc)\n",
    ),
    Fixture(
        "exc-taxonomy", "exceptions", "positive", "repro.cache.demo",
        "def check(depth):\n"
        "    if depth < 0:\n"
        "        raise RuntimeError('negative depth')\n"
        "    return depth\n",
    ),
    Fixture(
        "exc-taxonomy", "exceptions", "positive", "repro.sim.demo",
        "def dispatch(event):\n"
        "    if event is None:\n"
        "        raise Exception('no event')\n"
        "    event()\n",
    ),
    Fixture(
        # ValueError on argument validation stays idiomatic.
        "exc-taxonomy", "exceptions", "negative", "repro.cache.demo",
        "def check(depth):\n"
        "    if depth < 0:\n"
        "        raise ValueError('negative depth')\n"
        "    return depth\n",
    ),
    Fixture(
        "exc-taxonomy", "exceptions", "negative", "repro.experiments.demo",
        "def check(depth):\n"
        "    if depth < 0:\n"
        "        raise RuntimeError('negative depth')\n"
        "    return depth\n",
    ),
    Fixture(
        "exc-taxonomy", "exceptions", "suppressed", "repro.cache.demo",
        "def check(depth):\n"
        "    if depth < 0:\n"
        "        raise RuntimeError('negative depth')"
        "  # repro: allow[exc-taxonomy] -- fixture justification\n"
        "    return depth\n",
    ),
    # -- dataflow taint -------------------------------------------------------
    Fixture(
        # Wall clock two assignments away from a telemetry payload: the
        # det-* rules see only the time.time() call, the taint pass
        # follows the value into the counter sample.
        "df-taint-telemetry", "dataflow", "positive", "repro.experiments.demo",
        "import time\n\n\ndef push(registry):\n"
        "    stamp = time.time()\n"
        "    jitter = stamp * 2.0\n"
        "    registry.counter('exp.jitter').inc(int(jitter))\n",
    ),
    Fixture(
        # Set-iteration order laundered through list() into a gauge.
        "df-taint-telemetry", "dataflow", "positive", "repro.noc.demo",
        "def publish(registry, ports):\n"
        "    pending = {p for p in ports}\n"
        "    order = list(pending)\n"
        "    registry.gauge('noc.first_port').set(order[0])\n",
    ),
    Fixture(
        # id() flowing into a metric *key* makes the schema per-process.
        "df-taint-telemetry", "dataflow", "positive", "repro.cache.demo",
        "def publish(registry, bank):\n"
        "    key = f'cache.bank.{id(bank)}.hits'\n"
        "    registry.counter(key).inc(1)\n",
    ),
    Fixture(
        # sorted() canonicalizes set order before the sample: clean.
        "df-taint-telemetry", "dataflow", "negative", "repro.noc.demo",
        "def publish(registry, ports):\n"
        "    pending = {p for p in ports}\n"
        "    order = sorted(pending)\n"
        "    registry.gauge('noc.first_port').set(order[0])\n",
    ),
    Fixture(
        # Simulator-cycle values are the legitimate telemetry clock.
        "df-taint-telemetry", "dataflow", "negative", "repro.noc.demo",
        "def publish(registry, network):\n"
        "    cycles = network.cycle\n"
        "    registry.counter('noc.network.cycles').inc(cycles)\n",
    ),
    Fixture(
        "df-taint-telemetry", "dataflow", "suppressed", "repro.noc.demo",
        "def publish(registry, ports):\n"
        "    order = list({p for p in ports})\n"
        "    registry.gauge('noc.first_port').set(order[0])"
        "  # repro: allow[df-taint-telemetry] -- fixture justification\n",
    ),
    Fixture(
        # Monotonic clock stored into sim state through a local helper:
        # the summary pass carries the taint across the call edge.
        "df-taint-state", "dataflow", "positive", "repro.sim.demo",
        "import time\n\n\ndef _now():\n"
        "    return time.perf_counter()\n\n\n"
        "class Kernel:\n"
        "    def tick(self):\n"
        "        value = _now()\n"
        "        self.last_tick = value\n",
    ),
    Fixture(
        # Unseeded Random() object feeding a state store.
        "df-taint-state", "dataflow", "positive", "repro.noc.demo",
        "import random\n\n\nclass Router:\n"
        "    def shuffle(self):\n"
        "        rng = random.Random()\n"
        "        self.pick = rng.random()\n",
    ),
    Fixture(
        # The wall_s accounting idiom lives outside the simulation core
        # and stores into a compare=False result field: clean.
        "df-taint-state", "dataflow", "negative", "repro.experiments.demo",
        "import time\n\n\ndef run(result):\n"
        "    started = time.perf_counter()\n"
        "    result.wall_s = time.perf_counter() - started\n",
    ),
    Fixture(
        # A seeded RNG is a pure function of the spec: clean.
        "df-taint-state", "dataflow", "negative", "repro.noc.demo",
        "import random\n\n\nclass Router:\n"
        "    def shuffle(self, seed):\n"
        "        rng = random.Random(seed)\n"
        "        self.pick = rng.random()\n",
    ),
    Fixture(
        "df-taint-state", "dataflow", "suppressed", "repro.sim.demo",
        "import time\n\n\nclass Kernel:\n"
        "    def tick(self):\n"
        "        self.last_tick = time.monotonic()"
        "  # repro: allow[df-taint-state] -- fixture justification\n",
    ),
    Fixture(
        # id() seeding a CellSpec field forks the result cache per run.
        "df-taint-spec", "dataflow", "positive", "repro.experiments.demo",
        "from repro.experiments.runner import CellSpec\n\n\n"
        "def make(design):\n"
        "    return CellSpec(design=design, seed=id(design))\n",
    ),
    Fixture(
        # Wall clock flowing into a cache-fingerprint input.
        "df-taint-spec", "dataflow", "positive", "repro.experiments.demo",
        "import time\n\nfrom repro.experiments.cache import "
        "code_fingerprint\n\n\ndef stamp():\n"
        "    salt = str(time.time())\n"
        "    return code_fingerprint(salt)\n",
    ),
    Fixture(
        "df-taint-spec", "dataflow", "negative", "repro.experiments.demo",
        "from repro.experiments.runner import CellSpec\n\n\n"
        "def make(design, seed):\n"
        "    return CellSpec(design=design, seed=seed)\n",
    ),
    Fixture(
        "df-taint-spec", "dataflow", "suppressed", "repro.experiments.demo",
        "from repro.experiments.runner import CellSpec\n\n\n"
        "def make(design):\n"
        "    return CellSpec(design=design, seed=id(design))"
        "  # repro: allow[df-taint-spec] -- fixture justification\n",
    ),
    # -- telemetry-key catalog ------------------------------------------------
    Fixture(
        # One key, two kinds: the registry would raise at runtime only
        # if both sites ever met in one process.
        "cat-key-collision", "catalog", "positive", "repro.noc.demo",
        "def publish(registry):\n"
        "    registry.counter('noc.demo.flits').inc(1)\n"
        "    registry.gauge('noc.demo.flits').set(2)\n",
    ),
    Fixture(
        "cat-key-collision", "catalog", "negative", "repro.noc.demo",
        "def publish(registry):\n"
        "    registry.counter('noc.demo.flits').inc(1)\n"
        "    registry.gauge('noc.demo.depth').set(2)\n",
    ),
    Fixture(
        "cat-key-collision", "catalog", "suppressed", "repro.noc.demo",
        "def publish(registry):\n"
        "    registry.counter('noc.demo.flits').inc(1)"
        "  # repro: allow[cat-key-collision] -- fixture justification\n"
        "    registry.gauge('noc.demo.flits').set(2)"
        "  # repro: allow[cat-key-collision] -- fixture justification\n",
    ),
    Fixture(
        # A one-site near-miss of an established multi-site key.
        "cat-key-typo", "catalog", "positive", "repro.noc.demo",
        "def publish(registry):\n"
        "    registry.counter('noc.demo.flits_forwarded').inc(1)\n"
        "    registry.counter('noc.demo.flits_forwarded').inc(2)\n"
        "    registry.counter('noc.demo.flits_forwarder').inc(3)\n",
    ),
    Fixture(
        # Distinct keys more than one edit apart: clean.
        "cat-key-typo", "catalog", "negative", "repro.noc.demo",
        "def publish(registry):\n"
        "    registry.counter('noc.demo.flits_forwarded').inc(1)\n"
        "    registry.counter('noc.demo.flits_forwarded').inc(2)\n"
        "    registry.counter('noc.demo.flits_ejected').inc(3)\n",
    ),
    Fixture(
        "cat-key-typo", "catalog", "suppressed", "repro.noc.demo",
        "def publish(registry):\n"
        "    registry.counter('noc.demo.flits_forwarded').inc(1)\n"
        "    registry.counter('noc.demo.flits_forwarded').inc(2)\n"
        "    registry.counter('noc.demo.flits_forwarder').inc(3)"
        "  # repro: allow[cat-key-typo] -- fixture justification\n",
    ),
    # -- cross-core contract --------------------------------------------------
    Fixture(
        # Replication before injection: the array core has drifted from
        # the canonical phase order the parity suite assumes.
        "contract-core-divergence", "contract", "positive",
        "repro.noc.arraycore",
        "class ArrayNetwork:\n"
        "    def step(self):\n"
        "        cycle = self.cycle\n"
        "        self._deliver_arrivals(cycle)\n"
        "        self._replication_phase(cycle)\n"
        "        self._inject_phase(cycle)\n"
        "        self._switch_phase(cycle)\n\n"
        "    def _inject_phase(self, cycle):\n"
        "        pass\n",
    ),
    Fixture(
        # Same module shape under a non-anchor name: the contract check
        # only binds to the real core modules.
        "contract-core-divergence", "contract", "negative",
        "repro.noc.demo",
        "class DemoNetwork:\n"
        "    def step(self):\n"
        "        cycle = self.cycle\n"
        "        self._replication_phase(cycle)\n"
        "        self._inject_phase(cycle)\n\n"
        "    def _inject_phase(self, cycle):\n"
        "        pass\n",
    ),
]


def fixtures_for(family: str) -> list[Fixture]:
    return [fixture for fixture in FIXTURES if fixture.family == family]


def labelled(fixtures: list[Fixture]) -> tuple[list[Fixture], list[str]]:
    """(fixtures, stable pytest ids): rule-kind, numbered within a rule."""
    counts: dict[tuple[str, str], int] = {}
    ids = []
    for fixture in fixtures:
        key = (fixture.rule, fixture.kind)
        counts[key] = counts.get(key, 0) + 1
        ids.append(f"{fixture.rule}-{fixture.kind}-{counts[key]}")
    return fixtures, ids
