"""Tests for the analysis framework itself: suppressions, driving, CLI.

The load-bearing assertions: a suppression without a justification is
itself a finding, the repo's own source is clean under every rule, and
the command-line entry points exit nonzero exactly when findings exist.
"""

import os
import subprocess
import sys

import pytest

from repro.analysis import (
    AnalysisError,
    Finding,
    all_rules,
    analyze_paths,
    analyze_source,
    module_name_for,
    parse_suppressions,
    render_findings,
    rule_by_id,
)

_VIOLATION = "import time\n\nSTARTED = time.time()\n"


class TestSuppressionSyntax:
    def test_justified_suppression_silences_the_rule(self):
        source = (
            "import time\n\n"
            "STARTED = time.time()"
            "  # repro: allow[det-wallclock] -- vetted: fixture\n"
        )
        assert analyze_source("<t>", source, module="repro.experiments.x") == []

    def test_suppression_without_justification_is_a_finding(self):
        source = (
            "import time\n\n"
            "STARTED = time.time()  # repro: allow[det-wallclock]\n"
        )
        findings = analyze_source("<t>", source, module="repro.experiments.x")
        rules = {finding.rule for finding in findings}
        # The malformed directive is reported AND the original violation
        # still surfaces: an unjustified allow suppresses nothing.
        assert "bad-suppression" in rules
        assert "det-wallclock" in rules

    def test_suppression_of_unknown_rule_is_a_finding(self):
        source = "x = 1  # repro: allow[not-a-rule] -- because\n"
        findings = analyze_source("<t>", source, module="repro.experiments.x")
        assert [finding.rule for finding in findings] == ["bad-suppression"]
        assert "not-a-rule" in findings[0].message

    def test_unparseable_directive_is_a_finding(self):
        source = "x = 1  # repro: allow det-wallclock -- because\n"
        findings = analyze_source("<t>", source, module="repro.experiments.x")
        assert [finding.rule for finding in findings] == ["bad-suppression"]

    def test_empty_rule_list_is_a_finding(self):
        source = "x = 1  # repro: allow[] -- because\n"
        findings = analyze_source("<t>", source, module="repro.experiments.x")
        assert [finding.rule for finding in findings] == ["bad-suppression"]

    def test_file_wide_suppression_covers_every_occurrence(self):
        source = (
            "# repro: allow-file[det-wallclock] -- fixture: whole file vetted\n"
            "import time\n\n"
            "A = time.time()\n"
            "B = time.time()\n"
        )
        assert analyze_source("<t>", source, module="repro.experiments.x") == []

    def test_line_suppression_covers_only_its_line(self):
        source = (
            "import time\n\n"
            "A = time.time()  # repro: allow[det-wallclock] -- fixture\n"
            "B = time.time()\n"
        )
        findings = analyze_source("<t>", source, module="repro.experiments.x")
        assert [finding.line for finding in findings] == [4]

    def test_one_directive_may_name_several_rules(self):
        suppressions = parse_suppressions(
            "<t>",
            "x = 1  # repro: allow[det-wallclock, exc-bare] -- fixture\n",
        )
        assert suppressions.problems == []
        assert suppressions.by_line[1] == {"det-wallclock", "exc-bare"}


class TestDriving:
    def test_syntax_error_yields_parse_error_finding(self):
        findings = analyze_source("<t>", "def broken(:\n")
        assert [finding.rule for finding in findings] == ["parse-error"]

    def test_findings_sort_by_location(self):
        source = (
            "import time\n\n"
            "def f(x, acc=[]):\n"
            "    return time.time()\n"
        )
        findings = analyze_source("<t>", source, module="repro.experiments.x")
        assert [f.rule for f in findings] == [
            "proc-mutable-default", "det-wallclock",
        ]
        assert findings == sorted(findings)

    def test_render_includes_location_and_verdict_line(self):
        findings = analyze_source(
            "pkg/mod.py", _VIOLATION, module="repro.experiments.x"
        )
        text = render_findings(findings)
        assert "pkg/mod.py:3:" in text
        assert "[det-wallclock]" in text
        assert text.endswith("repro lint: 1 finding")
        assert render_findings([]).endswith("repro lint: 0 findings")

    def test_module_name_for(self):
        import pathlib

        cases = {
            "src/repro/noc/router.py": "repro.noc.router",
            "src/repro/telemetry/__init__.py": "repro.telemetry",
            "tests/noc/test_router.py": None,
        }
        for path, expected in cases.items():
            assert module_name_for(pathlib.Path(path)) == expected

    def test_rule_registry_is_complete_and_queryable(self):
        rules = all_rules()
        families = {rule.family for rule in rules}
        assert families == {
            "determinism", "process-safety", "telemetry", "exceptions",
            "dataflow", "catalog", "contract",
        }
        assert len(rules) == 25
        assert rule_by_id("det-wallclock").family == "determinism"
        with pytest.raises(AnalysisError, match="unknown rule"):
            rule_by_id("no-such-rule")

    def test_finding_payload_round_trips(self):
        finding = Finding(
            path="a.py", line=3, col=1, rule="det-wallclock", message="m"
        )
        assert finding.payload() == {
            "path": "a.py", "line": 3, "col": 1,
            "rule": "det-wallclock", "message": "m",
        }


class TestRepoIsClean:
    def test_src_repro_has_zero_unsuppressed_findings(self):
        findings = analyze_paths(["src/repro"])
        assert findings == [], render_findings(findings)


class TestCommandLine:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *argv],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
        )

    def test_list_rules_exits_zero(self):
        completed = self._run("--list-rules")
        assert completed.returncode == 0
        assert "det-wallclock" in completed.stdout

    def test_violating_file_exits_nonzero(self, tmp_path):
        bad = tmp_path / "repro" / "experiments" / "demo.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(_VIOLATION, encoding="utf-8")
        completed = self._run(str(bad))
        assert completed.returncode == 1
        assert "[det-wallclock]" in completed.stdout

    def test_clean_file_exits_zero(self, tmp_path):
        good = tmp_path / "clean.py"
        good.write_text("x = 1\n", encoding="utf-8")
        completed = self._run(str(good))
        assert completed.returncode == 0
        assert "0 findings" in completed.stdout
