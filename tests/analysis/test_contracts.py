"""Cross-core contract checks against the *real* core sources.

Each perturbation test copies an actual shipped source file, applies a
one-token perturbation of the kind a refactor could plausibly introduce
(a reordered phase, an ``id()`` tie-break, a swapped rank tuple), and
asserts ``contract-core-divergence`` fires. The unperturbed sources
must extract cleanly -- if an anchor moves out of reach, the rule
reports the extraction failure instead of silently passing, and the
clean-tree test here fails first.
"""

import ast
import pathlib

import pytest

from repro.analysis import ModuleInfo, ProjectIndex
from repro.analysis.contracts import (
    ARRAY_MODULE,
    OBJECT_PHASES_MODULE,
    OBJECT_RANKS_MODULE,
    PHASE_ORDER,
    REPLICATION_KEY,
    SWITCH_RANK,
    CoreContractRule,
    extract_array_contract,
    extract_phase_order,
    extract_router_replication_key,
    extract_router_switch_rank,
)
from tests.analysis.fixtures import fixtures_for, labelled
from tests.analysis.helpers import assert_fixture_verdict

_ROOT = pathlib.Path(__file__).resolve().parents[2]

_SOURCES = {
    OBJECT_PHASES_MODULE: _ROOT / "src" / "repro" / "noc" / "network.py",
    OBJECT_RANKS_MODULE: _ROOT / "src" / "repro" / "noc" / "router.py",
    ARRAY_MODULE: _ROOT / "src" / "repro" / "noc" / "arraycore.py",
}

_FIXTURES, _IDS = labelled(fixtures_for("contract"))


@pytest.mark.parametrize("fixture", _FIXTURES, ids=_IDS)
def test_contract_fixture(fixture):
    assert_fixture_verdict(fixture)


def _real_source(module: str) -> str:
    return _SOURCES[module].read_text(encoding="utf-8")


def _index(overrides: dict[str, str] | None = None) -> ProjectIndex:
    overrides = overrides or {}
    modules = []
    for module, path in _SOURCES.items():
        source = overrides.get(module, path.read_text(encoding="utf-8"))
        modules.append(ModuleInfo(
            path=str(path), module=module,
            tree=ast.parse(source), source=source,
        ))
    return ProjectIndex(modules=tuple(modules))


def _findings(overrides: dict[str, str] | None = None):
    return list(CoreContractRule().check_project(_index(overrides)))


def _perturb(module: str, old: str, new: str) -> dict[str, str]:
    source = _real_source(module)
    assert source.count(old) == 1, f"perturbation anchor not unique: {old!r}"
    return {module: source.replace(old, new)}


class TestRealSourcesExtract:
    def test_object_core_phase_order(self):
        anchor = extract_phase_order(
            ast.parse(_real_source(OBJECT_PHASES_MODULE))
        )
        assert anchor is not None
        assert anchor.value == PHASE_ORDER

    def test_object_core_tie_breaks(self):
        tree = ast.parse(_real_source(OBJECT_RANKS_MODULE))
        switch = extract_router_switch_rank(tree)
        replication = extract_router_replication_key(tree)
        assert switch is not None and switch.value == SWITCH_RANK
        assert replication is not None and replication.value == REPLICATION_KEY

    def test_array_core_contract(self):
        tree = ast.parse(_real_source(ARRAY_MODULE))
        phases, switch, replication = extract_array_contract(tree)
        assert phases is not None and phases.value == PHASE_ORDER
        assert switch is not None and switch.value == SWITCH_RANK
        assert replication is not None and replication.value == REPLICATION_KEY

    def test_shipped_cores_produce_no_findings(self):
        assert _findings() == []

    def test_missing_modules_produce_no_findings(self):
        # Analyzing an unrelated subtree must not fail the contract.
        assert list(CoreContractRule().check_project(
            ProjectIndex(modules=())
        )) == []


class TestPerturbedCopies:
    def _assert_diverges(self, overrides, *needles):
        findings = _findings(overrides)
        assert findings, "perturbation went undetected"
        blob = " | ".join(f.message for f in findings)
        for needle in needles:
            assert needle in blob, blob
        assert all(f.rule == "contract-core-divergence" for f in findings)

    def test_reordered_object_step_phases(self):
        self._assert_diverges(
            _perturb(
                OBJECT_PHASES_MODULE,
                "self._replication_phase(cycle)\n"
                "        self._switch_phase(cycle)",
                "self._switch_phase(cycle)\n"
                "        self._replication_phase(cycle)",
            ),
            "object-core step() phase order",
            "_switch_phase",
        )

    def test_router_switch_rank_by_id(self):
        self._assert_diverges(
            _perturb(
                OBJECT_RANKS_MODULE,
                "{port: str(port) for port in in_ports}",
                "{port: id(port) for port in in_ports}",
            ),
            "object-core switch tie-break rank",
            "id(port)",
        )

    def test_router_replication_key_by_id(self):
        self._assert_diverges(
            _perturb(
                OBJECT_RANKS_MODULE,
                "key=lambda p: (utilization(p), p == INJECT, str(p)),",
                "key=lambda p: (utilization(p), p == INJECT, id(p)),",
            ),
            "object-core replication preference key",
            "id(p)",
        )

    def test_array_replication_rank_tuple_swapped(self):
        self._assert_diverges(
            _perturb(
                ARRAY_MODULE,
                "key=lambda i: (i == inject, names[i])",
                "key=lambda i: (names[i], i == inject)",
            ),
            "array-core replication preference key",
        )

    def test_array_contenders_sort_bypasses_rank_table(self):
        # Sorting contenders by something other than the rank table makes
        # the switch rank unextractable: that is a finding, not a pass.
        findings = _findings(_perturb(
            ARRAY_MODULE,
            "contenders.sort(key=lambda c: rank[c[0]])",
            "contenders.sort(key=lambda c: str(c[0]))",
        ))
        assert any(
            "could not extract array-core switch tie-break rank" in f.message
            for f in findings
        ), findings

    def test_reordered_array_step_phases(self):
        self._assert_diverges(
            _perturb(
                ARRAY_MODULE,
                "self._replication_phase(cycle, order)\n"
                "            self._switch_phase(cycle, order)",
                "self._switch_phase(cycle, order)\n"
                "            self._replication_phase(cycle, order)",
            ),
            "array-core step() phase order",
        )
