"""Fixture-backed and engine-level tests for the dataflow taint family.

The fixtures cover the single-module verdicts; the direct engine tests
exercise what makes the family *interprocedural*: taint carried across
module boundaries through the project index, parameter-to-sink
summaries reported at the call site, and attribute taint that needs a
second fixpoint round.
"""

import pytest

from repro.analysis import analyze_paths, analyze_source
from tests.analysis.fixtures import fixtures_for, labelled
from tests.analysis.helpers import assert_fixture_verdict

_FIXTURES, _IDS = labelled(fixtures_for("dataflow"))


@pytest.mark.parametrize("fixture", _FIXTURES, ids=_IDS)
def test_dataflow_fixture(fixture):
    assert_fixture_verdict(fixture)


def test_family_has_all_three_kinds_per_rule():
    kinds_by_rule = {}
    for fixture in _FIXTURES:
        kinds_by_rule.setdefault(fixture.rule, set()).add(fixture.kind)
    assert set(kinds_by_rule) == {
        "df-taint-state", "df-taint-telemetry", "df-taint-spec",
    }
    for rule, kinds in kinds_by_rule.items():
        assert kinds == {"positive", "negative", "suppressed"}, rule


def _rules(source: str, module: str) -> set[str]:
    return {f.rule for f in analyze_source("<t>", source, module=module)}


def test_taint_crosses_module_boundary(tmp_path):
    """A clock helper in one module taints a state store in another."""
    package = tmp_path / "repro" / "sim"
    package.mkdir(parents=True)
    (package / "clockmod.py").write_text(
        "import time\n\n\ndef read_clock():\n"
        "    return time.perf_counter()\n",
        encoding="utf-8",
    )
    (package / "kernelmod.py").write_text(
        "from repro.sim.clockmod import read_clock\n\n\n"
        "class Kernel:\n"
        "    def tick(self):\n"
        "        self.stamp = read_clock()\n",
        encoding="utf-8",
    )
    findings = analyze_paths([tmp_path / "repro"])
    hits = [f for f in findings if f.rule == "df-taint-state"]
    assert hits, findings
    assert hits[0].path.endswith("kernelmod.py")


def test_param_sink_reported_at_call_site():
    source = (
        "import time\n\n\n"
        "def _store(sim, value):\n"
        "    sim.stamp = value\n\n\n"
        "def drive(sim):\n"
        "    _store(sim, time.monotonic())\n"
    )
    findings = analyze_source("<t>", source, module="repro.sim.demo")
    hits = [f for f in findings if f.rule == "df-taint-state"]
    assert hits
    # The finding anchors where the tainted value enters the call, not
    # inside the helper.
    assert hits[0].line == 9


def test_attribute_taint_needs_second_round():
    """rng stored on self in __init__, sampled into telemetry later."""
    source = (
        "import random\n\n\n"
        "class Service:\n"
        "    def __init__(self):\n"
        "        self._rng = random.Random()\n\n"
        "    def publish(self, registry):\n"
        "        registry.gauge('noc.jitter').set(self._rng.random())\n"
    )
    assert "df-taint-telemetry" in _rules(source, "repro.noc.demo")


def test_comparisons_launder_taint():
    """Branching on a tainted value is not a tainted result."""
    source = (
        "def publish(registry, ports):\n"
        "    pending = {p for p in ports}\n"
        "    busy = len(pending) > 3\n"
        "    registry.gauge('noc.busy').set(1 if busy else 0)\n"
    )
    assert "df-taint-telemetry" not in _rules(source, "repro.noc.demo")


def test_membership_test_on_id_set_is_clean():
    """The router's id()-set membership idiom must stay unflagged."""
    source = (
        "class Router:\n"
        "    def pick(self, vcs, taken_vcs):\n"
        "        taken = {id(vc) for vc in taken_vcs}"
        "  # repro: allow[det-id-order] -- membership only\n"
        "        for vc in vcs:\n"
        "            if id(vc) in taken:\n"
        "                continue\n"
        "            self.choice = vc\n"
        "            return vc\n"
        "        return None\n"
    )
    assert "df-taint-state" not in _rules(source, "repro.noc.demo")


def test_sim_scope_gates_the_state_sink():
    source = (
        "import time\n\n\n"
        "class Tracker:\n"
        "    def mark(self):\n"
        "        self.at = time.monotonic()\n"
    )
    assert "df-taint-state" in _rules(source, "repro.noc.demo")
    assert "df-taint-state" not in _rules(source, "repro.perf.demo")


def test_wallclock_into_trace_sink_payload():
    source = (
        "import time\n\n\n"
        "class Network:\n"
        "    def drop(self, cycle):\n"
        "        self._sink.instant('drop', time.time_ns())\n"
    )
    assert "df-taint-telemetry" in _rules(source, "repro.noc.demo")


def test_stream_spec_field_is_a_spec_sink():
    source = (
        "from repro.stream.engine import StreamSpec\n\n\n"
        "def make(design):\n"
        "    return StreamSpec(design=design, scheme='drop-tail',\n"
        "                      benchmark='steady', seed=id(design))\n"
    )
    assert "df-taint-spec" in _rules(source, "repro.stream.demo")
