"""Fixture-backed tests for the determinism rule family.

Positive fixtures must be flagged, negatives must not, and suppressed
fixtures carry a justified directive the analyzer must honor silently.
"""

import pytest

from tests.analysis.fixtures import Fixture, fixtures_for, labelled
from tests.analysis.helpers import assert_fixture_verdict, flagged_rules

_FIXTURES, _IDS = labelled(fixtures_for("determinism"))


@pytest.mark.parametrize("fixture", _FIXTURES, ids=_IDS)
def test_determinism_fixture(fixture):
    assert_fixture_verdict(fixture)


def test_family_has_all_three_kinds_per_rule():
    kinds_by_rule = {}
    for fixture in _FIXTURES:
        kinds_by_rule.setdefault(fixture.rule, set()).add(fixture.kind)
    assert set(kinds_by_rule) == {
        "det-wallclock", "det-unseeded-random", "det-id-order",
        "det-set-iter", "det-unordered-reduce", "det-np-unstable-sort",
    }
    for rule, kinds in kinds_by_rule.items():
        assert kinds == {"positive", "negative", "suppressed"}, rule


def test_import_aliasing_is_resolved():
    # `from time import time as now` still reads the wall clock.
    fixture_rules = flagged_rules(Fixture(
        rule="det-wallclock",
        family="determinism",
        kind="positive",
        module="repro.experiments.demo",
        source="from time import time as now\n\nstamp = now()\n",
    ))
    assert "det-wallclock" in fixture_rules


def test_perf_counter_import_alias_outside_core_is_clean():
    fixture_rules = flagged_rules(Fixture(
        rule="det-wallclock",
        family="determinism",
        kind="negative",
        module="repro.experiments.demo",
        source="from time import perf_counter\n\nstarted = perf_counter()\n",
    ))
    assert "det-wallclock" not in fixture_rules
