"""Tests for the telemetry-key catalog: extraction, rules, generation.

Extraction must resolve the tree's real key shapes (literal keys,
parameter-default prefixes, local f-string prefixes, series-table dict
literals, series-dict subscript stores) and skip fully-dynamic keys.
The rules ride on extraction; the generated-module round trip pins the
``cat-stale`` ratchet.
"""

import ast

import pytest

from repro.analysis import ModuleInfo, ProjectIndex, analyze_source
from repro.analysis.catalog import (
    KeySite,
    build_catalog,
    extract_module_sites,
    generate_catalog_source,
    resolve_pattern,
)
from tests.analysis.fixtures import fixtures_for, labelled
from tests.analysis.helpers import assert_fixture_verdict

_FIXTURES, _IDS = labelled(fixtures_for("catalog"))


@pytest.mark.parametrize("fixture", _FIXTURES, ids=_IDS)
def test_catalog_fixture(fixture):
    assert_fixture_verdict(fixture)


def _info(source: str, module: str = "repro.noc.demo") -> ModuleInfo:
    return ModuleInfo(
        path=f"src/{module.replace('.', '/')}.py",
        module=module,
        tree=ast.parse(source),
        source=source,
    )


def _patterns(source: str, module: str = "repro.noc.demo") -> dict:
    return build_catalog(extract_module_sites(_info(source, module)))


class TestExtraction:
    def test_literal_factory_keys(self):
        catalog = _patterns(
            "def publish(registry):\n"
            "    registry.counter('noc.flits').inc(1)\n"
            "    registry.gauge('noc.depth').set(2)\n"
            "    registry.histogram('noc.latency', edges=(1, 2)).record(1)\n"
            "    registry.series('noc.series.flits', 64).record(0, 1)\n"
        )
        assert catalog == {
            "noc.flits": ("counter",),
            "noc.depth": ("gauge",),
            "noc.latency": ("histogram",),
            "noc.series.flits": ("series",),
        }

    def test_parameter_default_prefix_is_inlined(self):
        catalog = _patterns(
            "def publish_metrics(registry, prefix='noc.router'):\n"
            "    registry.counter(f'{prefix}.flits_forwarded').inc(1)\n"
        )
        assert catalog == {"noc.router.flits_forwarded": ("counter",)}

    def test_local_fstring_prefix_resolves_transitively(self):
        catalog = _patterns(
            "def tenant_series(self, name, window):\n"
            "    prefix = f'stream.series.tenant.{name}'\n"
            "    self._series[f'{prefix}.offered'] = Series(window)\n",
            module="repro.stream.demo",
        )
        assert catalog == {"stream.series.tenant.*.offered": ("series",)}

    def test_dict_literal_series_table(self):
        catalog = _patterns(
            "def make_series(window):\n"
            "    return {\n"
            "        'noc.series.flits_injected': Series(window),\n"
            "        'noc.series.latency': Series(window, agg='hist'),\n"
            "    }\n"
        )
        assert catalog == {
            "noc.series.flits_injected": ("series",),
            "noc.series.latency": ("series",),
        }

    def test_dynamic_fragments_become_wildcards(self):
        catalog = _patterns(
            "def publish(registry, src, dst):\n"
            "    registry.counter(f'noc.link.flits.{src}->{dst}').inc(1)\n"
        )
        assert catalog == {"noc.link.flits.*->*": ("counter",)}

    def test_fully_dynamic_keys_are_skipped(self):
        catalog = _patterns(
            "def republish(registry, series):\n"
            "    for name, metric in series.items():\n"
            "        registry.series(name, 64)\n"
        )
        assert catalog == {}

    def test_reassigned_prefix_stays_dynamic(self):
        catalog = _patterns(
            "def publish(registry, names):\n"
            "    prefix = 'noc.a'\n"
            "    prefix = 'noc.b'\n"
            "    registry.counter(f'{prefix}.hits').inc(1)\n"
        )
        assert catalog == {"*.hits": ("counter",)}

    def test_out_of_scope_modules_are_ignored(self):
        from repro.analysis.catalog import extract_sites

        info = _info(
            "def publish(registry):\n"
            "    registry.counter('cli.key').inc(1)\n",
            module="repro.cli",
        )
        assert extract_sites(ProjectIndex(modules=(info,))) == []

    def test_resolve_pattern_concat(self):
        node = ast.parse("'noc.' + suffix", mode="eval").body
        assert resolve_pattern(node, {"suffix": "hits"}) == "noc.hits"
        assert resolve_pattern(node, {}) == "noc.*"


class TestRules:
    def test_undocumented_rule_reads_design_tables(self):
        info = _info(
            "def publish(registry):\n"
            "    registry.counter('noc.documented').inc(1)\n"
            "    registry.counter('noc.undocumented').inc(1)\n"
        )
        design = (
            "## Telemetry schema\n<!-- telemetry-schema -->\n"
            "| `noc.documented` | counter |\n"
        )
        index = ProjectIndex(modules=(info,), design_text=design)
        from repro.analysis.catalog import UndocumentedKeyRule

        findings = list(UndocumentedKeyRule().check_project(index))
        assert len(findings) == 1
        assert "noc.undocumented" in findings[0].message

    def test_undocumented_rule_inactive_without_marker(self):
        info = _info(
            "def publish(registry):\n"
            "    registry.counter('noc.anything').inc(1)\n"
        )
        index = ProjectIndex(modules=(info,), design_text="no tables here")
        from repro.analysis.catalog import UndocumentedKeyRule

        assert list(UndocumentedKeyRule().check_project(index)) == []

    def test_typo_needs_an_established_key(self):
        # Two singleton keys one edit apart: ambiguous, stays quiet.
        rules = {
            f.rule for f in analyze_source(
                "<t>",
                "def publish(registry):\n"
                "    registry.counter('noc.demo.hits').inc(1)\n"
                "    registry.counter('noc.demo.bits').inc(1)\n",
                module="repro.noc.demo",
            )
        }
        assert "cat-key-typo" not in rules


class TestGeneratedModule:
    def _index_with_catalog(self, emit_source: str, catalog_source: str):
        emitter = _info(emit_source)
        generated = ModuleInfo(
            path="src/repro/telemetry/catalog.py",
            module="repro.telemetry.catalog",
            tree=ast.parse(catalog_source),
            source=catalog_source,
        )
        return ProjectIndex(modules=(emitter, generated))

    def test_fresh_catalog_is_not_stale(self):
        emit = (
            "def publish(registry):\n"
            "    registry.counter('noc.flits').inc(1)\n"
        )
        index = ProjectIndex(modules=(_info(emit),))
        generated = generate_catalog_source(index)
        from repro.analysis.catalog import StaleCatalogRule

        round_trip = self._index_with_catalog(emit, generated)
        assert list(StaleCatalogRule().check_project(round_trip)) == []

    def test_drifted_catalog_is_stale(self):
        emit = (
            "def publish(registry):\n"
            "    registry.counter('noc.flits').inc(1)\n"
        )
        stale = 'CATALOG = {"noc.bygone": ("counter",)}\n'
        index = self._index_with_catalog(emit, stale)
        from repro.analysis.catalog import StaleCatalogRule

        findings = list(StaleCatalogRule().check_project(index))
        assert len(findings) == 1
        assert "noc.flits" in findings[0].message
        assert "noc.bygone" in findings[0].message

    def test_generated_source_is_deterministic_and_evaluable(self):
        emit = (
            "def publish(registry):\n"
            "    registry.gauge('noc.depth').set(1)\n"
            "    registry.counter('noc.flits').inc(1)\n"
        )
        index = ProjectIndex(modules=(_info(emit),))
        first = generate_catalog_source(index)
        second = generate_catalog_source(ProjectIndex(modules=(_info(emit),)))
        assert first == second
        namespace: dict = {}
        exec(compile(first, "<catalog>", "exec"), namespace)
        assert namespace["CATALOG"] == {
            "noc.depth": ("gauge",),
            "noc.flits": ("counter",),
        }
        assert namespace["covers"]("noc.depth") == ("gauge",)
        assert namespace["covers"]("noc.absent") is None

    def test_shipped_catalog_matches_the_tree(self):
        """The committed generated module is fresh (cat-stale would fail
        CI otherwise, but catching it here names the fix directly)."""
        import pathlib

        from repro.analysis import build_index
        from repro.analysis.catalog import extract_sites

        root = pathlib.Path(__file__).resolve().parents[2]
        index, _, _ = build_index([root / "src" / "repro"])
        fresh = build_catalog(extract_sites(index))
        from repro.telemetry.catalog import CATALOG

        assert CATALOG == fresh, (
            "regenerate with `repro lint --write-catalog`"
        )

    def test_key_site_ordering_is_total(self):
        sites = [
            KeySite("b", "counter", "z.py", 2),
            KeySite("a", "gauge", "a.py", 9),
        ]
        assert sorted(sites)[0].pattern == "a"
