"""Deterministic finding output: stable ordering, byte-identical diffs.

Lint output feeds a baseline ratchet and CI artifacts; both only work
if two runs over the same tree produce byte-identical text, JSON, and
SARIF regardless of filesystem enumeration order or rule registration
order.
"""

import json
import os
import subprocess
import sys

from repro.analysis import Finding, analyze_paths, render_findings
from repro.analysis.sarif import render_sarif

_TREE = {
    "repro/experiments/zed.py": "import time\n\nB = time.time()\nA = time.time()\n",
    "repro/experiments/abel.py": "import time\n\nX = time.time()\n",
}


def _materialize(tmp_path):
    for rel, source in _TREE.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tmp_path / "repro"


def test_findings_sorted_by_path_line_rule(tmp_path):
    root = _materialize(tmp_path)
    findings = analyze_paths([root])
    keys = [(f.path, f.line, f.rule) for f in findings]
    assert keys == sorted(keys)
    assert [os.path.basename(f.path) for f in findings] == [
        "abel.py", "zed.py", "zed.py",
    ]


def test_path_argument_order_does_not_change_output(tmp_path):
    root = _materialize(tmp_path)
    forward = analyze_paths([root / "experiments" / "abel.py",
                             root / "experiments" / "zed.py"])
    backward = analyze_paths([root / "experiments" / "zed.py",
                              root / "experiments" / "abel.py"])
    assert forward == backward
    assert render_findings(forward) == render_findings(backward)


def test_json_and_sarif_are_byte_identical_across_runs(tmp_path):
    root = _materialize(tmp_path)
    first = analyze_paths([root])
    second = analyze_paths([root])
    as_json = [json.dumps([f.payload() for f in run], sort_keys=True)
               for run in (first, second)]
    assert as_json[0] == as_json[1]
    assert render_sarif(first) == render_sarif(second)


def test_sarif_shape_and_rule_index_coherence():
    findings = [
        Finding(path="b.py", line=2, col=1, rule="det-wallclock", message="w"),
        Finding(path="a.py", line=9, col=1, rule="parse-error", message="p"),
    ]
    document = json.loads(render_sarif(findings))
    assert document["version"] == "2.1.0"
    run = document["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted(r["id"] for r in rules)
    results = run["results"]
    # Results sorted by (path, line, rule), not input order.
    assert [r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in results] == ["a.py", "b.py"]
    for result in results:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
    # No timestamps anywhere: rendering twice is byte-identical.
    assert render_sarif(findings) == render_sarif(list(reversed(findings)))


def test_sarif_with_no_findings_still_lists_rules():
    document = json.loads(render_sarif([]))
    run = document["runs"][0]
    assert run["results"] == []
    assert any(r["id"] == "contract-core-divergence"
               for r in run["tool"]["driver"]["rules"])


def test_cli_sarif_format_round_trips(tmp_path):
    bad = tmp_path / "repro" / "experiments" / "demo.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\nT = time.time()\n", encoding="utf-8")
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    runs = [
        subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(bad),
             "--format", "sarif"],
            capture_output=True, text=True, env=env, cwd=os.getcwd(),
        )
        for _ in range(2)
    ]
    assert all(completed.returncode == 1 for completed in runs)
    assert runs[0].stdout == runs[1].stdout
    document = json.loads(runs[0].stdout)
    assert document["runs"][0]["results"][0]["ruleId"] == "det-wallclock"
