"""Shared assertion helpers for the static-analysis test suite."""

from repro.analysis import analyze_source

from tests.analysis.fixtures import Fixture


def flagged_rules(fixture: Fixture) -> set[str]:
    findings = analyze_source(
        "<fixture>", fixture.source, module=fixture.module
    )
    return {finding.rule for finding in findings}


def assert_fixture_verdict(fixture: Fixture) -> None:
    rules = flagged_rules(fixture)
    if fixture.kind == "positive":
        assert fixture.rule in rules, (
            f"{fixture.rule} missed a violation in:\n{fixture.source}"
        )
    elif fixture.kind == "negative":
        assert fixture.rule not in rules, (
            f"{fixture.rule} false positive in:\n{fixture.source}"
        )
    elif fixture.kind == "suppressed":
        # A justified directive silences the rule without tripping the
        # bad-suppression check.
        assert fixture.rule not in rules, (
            f"suppression of {fixture.rule} ignored in:\n{fixture.source}"
        )
        assert "bad-suppression" not in rules, (
            f"well-formed directive reported malformed in:\n{fixture.source}"
        )
    else:
        raise AssertionError(f"unknown fixture kind {fixture.kind!r}")
