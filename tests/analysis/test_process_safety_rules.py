"""Fixture-backed tests for the process-safety rule family."""

import pytest

from tests.analysis.fixtures import Fixture, fixtures_for, labelled
from tests.analysis.helpers import assert_fixture_verdict, flagged_rules

_FIXTURES, _IDS = labelled(fixtures_for("process-safety"))


@pytest.mark.parametrize("fixture", _FIXTURES, ids=_IDS)
def test_process_safety_fixture(fixture):
    assert_fixture_verdict(fixture)


def test_family_has_all_three_kinds_per_rule():
    kinds_by_rule = {}
    for fixture in _FIXTURES:
        kinds_by_rule.setdefault(fixture.rule, set()).add(fixture.kind)
    assert set(kinds_by_rule) == {
        "proc-spec-pickle", "proc-worker-global-write",
        "proc-mutable-default",
    }
    for rule, kinds in kinds_by_rule.items():
        assert kinds == {"positive", "negative", "suppressed"}, rule


def test_global_declaration_in_worker_is_flagged():
    rules = flagged_rules(Fixture(
        rule="proc-worker-global-write",
        family="process-safety",
        kind="positive",
        module="repro.experiments.demo",
        source=(
            "from concurrent.futures import ProcessPoolExecutor\n\n"
            "_MODE = 'idle'\n\n\n"
            "def work(item):\n"
            "    global _MODE\n"
            "    _MODE = 'busy'\n"
            "    return item\n\n\n"
            "def run(items):\n"
            "    with ProcessPoolExecutor() as pool:\n"
            "        return [pool.submit(work, item) for item in items]\n"
        ),
    ))
    assert "proc-worker-global-write" in rules


def test_non_worker_module_state_writes_are_allowed():
    # Without a pool entry point the rule stays out of the way: plenty of
    # orchestration code maintains module-level caches legitimately.
    rules = flagged_rules(Fixture(
        rule="proc-worker-global-write",
        family="process-safety",
        kind="negative",
        module="repro.experiments.demo",
        source=(
            "_CACHE = {}\n\n\n"
            "def remember(key, value):\n"
            "    _CACHE[key] = value\n"
        ),
    ))
    assert "proc-worker-global-write" not in rules
