"""Unit and property tests for XY / XYX / spike routing (Fig. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.noc import (
    Direction,
    HaloTopology,
    MeshTopology,
    SimplifiedMeshTopology,
    XYRouting,
    XYXRouting,
    channel_dependency_graph,
    xyx_channel_number,
)
from repro.noc.routing import SpikeRouting, is_deadlock_free, routing_for
from repro.noc.topology import HUB, spike_node

coords = st.tuples(st.integers(0, 7), st.integers(0, 7))


class TestXYRouting:
    def test_x_resolved_first(self):
        routing = XYRouting()
        assert routing.direction((0, 0), (3, 3)) is Direction.X_PLUS
        assert routing.direction((3, 0), (3, 3)) is Direction.Y_PLUS

    def test_arrival_is_local(self):
        assert XYRouting().direction((2, 2), (2, 2)) is Direction.LOCAL

    def test_path_on_mesh(self):
        mesh = MeshTopology(4, 4)
        path = XYRouting().path(mesh, (0, 0), (2, 3))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2), (2, 3)]

    def test_hops(self):
        mesh = MeshTopology(4, 4)
        assert XYRouting().hops(mesh, (0, 0), (3, 3)) == 6
        assert XYRouting().hops(mesh, (1, 1), (1, 1)) == 0

    @given(src=coords, dst=coords)
    @settings(max_examples=80, deadline=None)
    def test_always_reaches_destination(self, src, dst):
        mesh = MeshTopology(8, 8)
        path = XYRouting().path(mesh, src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == abs(src[0] - dst[0]) + abs(src[1] - dst[1])


class TestXYXRouting:
    def test_requests_go_x_first(self):
        routing = XYXRouting()
        assert routing.direction((0, 0), (3, 3)) is Direction.X_PLUS

    def test_replies_go_y_first(self):
        # From a bank (row 3) back to the core row: Y- first.
        routing = XYXRouting()
        assert routing.direction((3, 3), (0, 0)) is Direction.Y_MINUS
        assert routing.direction((3, 0), (0, 0)) is Direction.X_MINUS

    def test_legal_on_simplified_mesh_for_cache_traffic(self):
        mesh = SimplifiedMeshTopology(8, 8)
        routing = XYXRouting()
        core = mesh.core_attach
        for node in sorted(mesh.nodes):
            if node == core:
                continue
            down = routing.path(mesh, core, node)
            up = routing.path(mesh, node, core)
            assert down[-1] == node and up[-1] == core

    def test_illegal_mid_mesh_horizontal_detected(self):
        mesh = SimplifiedMeshTopology(4, 4)
        # (0,2) -> (3,3): Yoff >= 0 selects X+ at row 2, which is removed.
        with pytest.raises(RoutingError, match="missing channel"):
            XYXRouting().path(mesh, (0, 2), (3, 3))

    @given(src=coords, dst=coords)
    @settings(max_examples=100, deadline=None)
    def test_channel_numbers_strictly_increase(self, src, dst):
        """The Fig.-5 enumeration: every XYX path climbs channel numbers,
        hence the routing is deadlock-free."""
        mesh = MeshTopology(8, 8)
        path = XYXRouting().path(mesh, src, dst)
        numbers = [
            xyx_channel_number(8, 8, path[i], path[i + 1])
            for i in range(len(path) - 1)
        ]
        assert all(a < b for a, b in zip(numbers, numbers[1:]))

    def test_channel_number_rejects_non_channel(self):
        with pytest.raises(RoutingError):
            xyx_channel_number(4, 4, (0, 0), (2, 2))

    def test_channel_numbers_unique(self):
        mesh = MeshTopology(4, 4)
        numbers = [
            xyx_channel_number(4, 4, c.src, c.dst) for c in mesh.channels()
        ]
        assert len(numbers) == len(set(numbers))


class TestSpikeRouting:
    def test_hub_to_spike(self):
        halo = HaloTopology(4, 4)
        path = SpikeRouting().path(halo, HUB, spike_node(2, 3))
        assert path == [HUB] + [spike_node(2, i) for i in range(4)]

    def test_spike_to_hub(self):
        halo = HaloTopology(4, 4)
        path = SpikeRouting().path(halo, spike_node(1, 2), HUB)
        assert path == [spike_node(1, 2), spike_node(1, 1), spike_node(1, 0), HUB]

    def test_cross_spike_via_hub(self):
        halo = HaloTopology(4, 4)
        path = SpikeRouting().path(halo, spike_node(0, 1), spike_node(3, 0))
        assert HUB in path

    def test_within_spike_down(self):
        halo = HaloTopology(4, 4)
        assert SpikeRouting().hops(halo, spike_node(0, 0), spike_node(0, 3)) == 3


class TestDeadlockFreedom:
    def test_xy_on_mesh(self):
        assert is_deadlock_free(MeshTopology(4, 4), XYRouting())

    def test_xyx_on_full_mesh(self):
        assert is_deadlock_free(MeshTopology(4, 4), XYXRouting())

    def test_xyx_on_simplified_mesh_cache_traffic(self):
        mesh = SimplifiedMeshTopology(5, 5)
        endpoints = (mesh.core_attach, mesh.memory_attach)
        pairs = []
        for node in sorted(mesh.nodes):
            for endpoint in endpoints:
                if node != endpoint:
                    pairs.append((endpoint, node))
                    pairs.append((node, endpoint))
        # plus in-column replacement traffic
        for x in range(5):
            for y in range(4):
                pairs.append(((x, y), (x, y + 1)))
                pairs.append(((x, y + 1), (x, y)))
        assert is_deadlock_free(mesh, XYXRouting(), pairs)

    def test_spike_routing_on_halo(self):
        assert is_deadlock_free(HaloTopology(4, 4), SpikeRouting())

    def test_cdg_has_edges(self):
        mesh = MeshTopology(3, 3)
        graph = channel_dependency_graph(mesh, XYRouting())
        assert graph.number_of_nodes() == mesh.num_channels
        assert graph.number_of_edges() > 0


class TestRoutingFor:
    def test_defaults(self):
        assert isinstance(routing_for(MeshTopology(4, 4)), XYRouting)
        assert isinstance(routing_for(SimplifiedMeshTopology(4, 4)), XYXRouting)
        assert isinstance(routing_for(HaloTopology(4, 4)), SpikeRouting)

    def test_unknown_topology_rejected(self):
        from repro.noc.topology import Topology

        with pytest.raises(RoutingError):
            routing_for(Topology())
