"""Unit tests for flits, packets, and flitization (Section 5)."""

import pytest

from repro import config
from repro.errors import ProtocolError
from repro.noc import Flit, FlitType, MessageType, Packet


class TestFlitType:
    def test_head_tail_is_both(self):
        assert FlitType.HEAD_TAIL.is_head and FlitType.HEAD_TAIL.is_tail

    def test_body_is_neither(self):
        assert not FlitType.BODY.is_head and not FlitType.BODY.is_tail

    def test_head_and_tail(self):
        assert FlitType.HEAD.is_head and not FlitType.HEAD.is_tail
        assert FlitType.TAIL.is_tail and not FlitType.TAIL.is_head


class TestMessageTypes:
    @pytest.mark.parametrize(
        "message",
        [
            MessageType.WRITE_REQUEST,
            MessageType.REPLACEMENT,
            MessageType.HIT_DATA,
            MessageType.MEMORY_FILL,
            MessageType.WRITEBACK,
        ],
    )
    def test_block_carrying_messages(self, message):
        assert message.carries_block

    @pytest.mark.parametrize(
        "message",
        [
            MessageType.READ_REQUEST,
            MessageType.MISS_NOTIFY,
            MessageType.HIT_NOTIFY,
            MessageType.COMPLETION_NOTIFY,
            MessageType.MEMORY_REQUEST,
        ],
    )
    def test_control_messages(self, message):
        assert not message.carries_block


class TestPacket:
    def test_control_packet_single_flit(self):
        packet = Packet(MessageType.READ_REQUEST, source=(0, 0),
                        destinations=((1, 1),))
        flits = packet.flits()
        assert len(flits) == 1
        assert flits[0].kind is FlitType.HEAD_TAIL
        assert flits[0].destinations == ((1, 1),)

    def test_block_packet_five_flits(self):
        packet = Packet(MessageType.HIT_DATA, source=(0, 0),
                        destinations=((1, 1),))
        flits = packet.flits()
        assert len(flits) == 5
        assert [f.kind for f in flits] == [
            FlitType.HEAD, FlitType.BODY, FlitType.BODY, FlitType.BODY,
            FlitType.TAIL,
        ]

    def test_only_head_carries_destinations(self):
        packet = Packet(MessageType.REPLACEMENT, source=(0, 0),
                        destinations=((1, 1),))
        flits = packet.flits()
        assert flits[0].destinations == ((1, 1),)
        assert all(f.destinations == () for f in flits[1:])

    def test_multicast_control_packet_allowed(self):
        packet = Packet(
            MessageType.READ_REQUEST,
            source=(0, 0),
            destinations=tuple((0, y) for y in range(4)),
        )
        assert packet.is_multicast
        assert packet.flits()[0].is_multicast

    def test_multicast_block_packet_rejected(self):
        with pytest.raises(ProtocolError, match="carries a block"):
            Packet(
                MessageType.HIT_DATA,
                source=(0, 0),
                destinations=((0, 1), (0, 2)),
            )

    def test_empty_destinations_rejected(self):
        with pytest.raises(ProtocolError):
            Packet(MessageType.READ_REQUEST, source=(0, 0), destinations=())

    def test_packet_ids_unique(self):
        a = Packet(MessageType.READ_REQUEST, source=0, destinations=(1,))
        b = Packet(MessageType.READ_REQUEST, source=0, destinations=(1,))
        assert a.packet_id != b.packet_id


class TestFlit:
    def _flit(self, destinations=((1, 1),)):
        packet = Packet(MessageType.READ_REQUEST, source=(0, 0),
                        destinations=destinations)
        return packet.flits()[0]

    def test_payload_excludes_overhead(self):
        flit = self._flit()
        assert flit.payload_bits == config.FLIT_SIZE_BITS - config.FLIT_OVERHEAD_BITS
        assert flit.size_bits == config.FLIT_SIZE_BITS

    def test_clone_narrows_destinations(self):
        flit = self._flit(destinations=((1, 1), (2, 2)))
        replica = flit.clone_for(((2, 2),))
        assert replica.destinations == ((2, 2),)
        assert replica.packet is flit.packet
        assert replica.flit_id != flit.flit_id

    def test_clone_preserves_timing_fields(self):
        flit = self._flit(destinations=((1, 1), (2, 2)))
        flit.injected_at = 7
        flit.hops = 3
        flit.eligible_at = 9
        replica = flit.clone_for(((1, 1),))
        assert replica.injected_at == 7
        assert replica.hops == 3
        assert replica.eligible_at == 9
