"""Microarchitectural unit tests for the single-cycle multicast router."""

import pytest

from repro.config import RouterConfig
from repro.errors import ProtocolError
from repro.noc import MeshTopology, MessageType, Network, Packet
from repro.noc.router import EJECT, INJECT


def _network(cols=3, rows=3, **router_kwargs):
    return Network(
        MeshTopology(cols, rows),
        router_config=RouterConfig(**router_kwargs),
    )


def _router(network, node):
    return network.routers[node]


class TestPorts:
    def test_input_ports_are_neighbors_plus_inject(self):
        network = _network()
        router = _router(network, (1, 1))
        assert set(router.inputs) == {(0, 1), (2, 1), (1, 0), (1, 2), INJECT}

    def test_output_ports_are_neighbors_plus_eject(self):
        network = _network()
        router = _router(network, (0, 0))
        assert set(router.out_ports) == {(1, 0), (0, 1), EJECT}

    def test_credits_initialized_to_buffer_depth(self):
        network = _network(buffer_depth=4)
        router = _router(network, (1, 1))
        assert all(credit == 4 for credit in router.credits.values())


class TestCreditFlow:
    def test_credits_consumed_and_returned(self):
        network = _network()
        network.inject(Packet(MessageType.REPLACEMENT, source=(0, 0),
                              destinations=((2, 0),)))
        # Run a few cycles: credits must never exceed depth nor go negative.
        for _ in range(30):
            network.step()
            for router in network.routers.values():
                for credit in router.credits.values():
                    assert 0 <= credit <= 4
        network.run_until_drained()
        # Fully drained: every credit restored.
        for router in network.routers.values():
            assert all(credit == 4 for credit in router.credits.values())

    def test_buffers_never_exceed_depth(self):
        network = _network(buffer_depth=2)
        for i in range(10):
            network.inject(Packet(MessageType.REPLACEMENT, source=(0, 0),
                                  destinations=((2, 2),)))
        while not network.idle():
            network.step()
            for router in network.routers.values():
                for unit in router.inputs.values():
                    for vc in unit:
                        assert vc.occupancy <= 2


class TestReplication:
    def test_multicast_split_consumes_other_pc_vc(self):
        network = _network()
        destinations = tuple((1, y) for y in range(3))
        network.inject(Packet(MessageType.READ_REQUEST, source=(1, 0),
                              destinations=destinations))
        network.run_until_drained()
        replications = network.total_replications()
        assert replications == 2  # split at (1,0) and (1,1)

    def test_multi_flit_multicast_rejected_at_replication(self):
        # The Packet constructor already refuses; build the bad flit by
        # hand to exercise the router's own guard.
        network = _network()
        router = _router(network, (1, 1))
        packet = Packet(MessageType.READ_REQUEST, source=(1, 1),
                        destinations=((1, 2), (2, 1)))
        flits = Packet(MessageType.REPLACEMENT, source=(1, 1),
                       destinations=((1, 2),)).flits()
        head = flits[0]
        head.destinations = ((1, 1), (1, 2))  # force a multicast body worm
        vc = router.inputs[INJECT][0]
        vc.push(head)
        with pytest.raises(ProtocolError, match="single-flit"):
            router.replication_phase(0)

    def test_blocked_replication_retries(self):
        network = _network(num_vcs=1, buffer_depth=1)
        # Saturate the target router's VCs with other traffic, then send a
        # multicast through it; the router must block and retry, and the
        # network must still drain.
        for _ in range(3):
            network.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                                  destinations=((0, 2),)))
        network.inject(Packet(
            MessageType.READ_REQUEST,
            source=(0, 0),
            destinations=tuple((0, y) for y in range(3)),
        ))
        network.run_until_drained()
        assert network.stats.packets_delivered == 3 + 3


class TestArbitration:
    def test_output_conflict_serializes(self):
        network = _network()
        # Two packets from different inputs competing for the same output.
        network.inject(Packet(MessageType.READ_REQUEST, source=(0, 1),
                              destinations=((2, 1),)))
        network.inject(Packet(MessageType.READ_REQUEST, source=(1, 0),
                              destinations=((1, 2),)))
        network.run_until_drained()
        assert network.stats.packets_delivered == 2

    def test_switch_conflicts_counted_under_contention(self):
        network = _network()
        for _ in range(8):
            network.inject(Packet(MessageType.READ_REQUEST, source=(0, 1),
                                  destinations=((2, 1),)))
            network.inject(Packet(MessageType.READ_REQUEST, source=(1, 0),
                                  destinations=((1, 2),)))
        network.run_until_drained()
        conflicts = sum(
            r.stats.switch_conflicts for r in network.routers.values()
        )
        assert conflicts >= 0  # counter exists and never goes negative


class TestIntrospection:
    def test_uncontended_single_cycle_router_bypasses_buffers(self):
        # Buffer bypassing: with no contention a flit never waits in a VC
        # between cycles, so inter-step occupancy stays zero.
        network = _network()
        network.inject(Packet(MessageType.REPLACEMENT, source=(0, 0),
                              destinations=((2, 2),)))
        for _ in range(12):
            network.step()
            assert sum(
                r.buffered_flits() for r in network.routers.values()
            ) == 0
        network.run_until_drained()

    def test_contention_fills_buffers_then_drains(self):
        network = _network()
        # Two wormholes colliding on the same path must queue in VCs.
        for _ in range(4):
            network.inject(Packet(MessageType.REPLACEMENT, source=(0, 0),
                                  destinations=((2, 2),)))
            network.inject(Packet(MessageType.REPLACEMENT, source=(0, 1),
                                  destinations=((2, 2),)))
        peak = 0
        for _ in range(20):
            network.step()
            peak = max(
                peak,
                sum(r.buffered_flits() for r in network.routers.values()),
            )
        assert peak > 0
        network.run_until_drained()
        assert all(r.occupied_vcs() == 0 for r in network.routers.values())
        assert all(
            r.buffered_flits() == 0 for r in network.routers.values()
        )
