"""Property tests pinning the array core's switch arbitration tables.

The full-sim equivalence sweeps only visit (occupancy, credit,
round-robin pointer) states reachable from empty fabrics. These tests
plant *arbitrary* table states -- random buffered heads and wormhole
bodies, random credit counts, random rr pointers, randomly reserved
VCs -- into the object core and both array-core sweep implementations,
run exactly one switch-allocation phase with link traversal stubbed
out, and require identical grant vectors, identical post-state
(pointers, credits, VC bookkeeping), and identical counters. This pins
the stringified-port tie-break order and the vectorized pre-filter's
stability proof independently of any workload generator.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RouterConfig
from repro.noc import MeshTopology, MessageType, Network, Packet
from repro.noc.arraycore import HAVE_NUMPY, ArrayNetwork
from repro.noc.router import EJECT, INJECT

MESH = 3

# Fixed 3x3-mesh port geometry, read off a throwaway object network so
# the strategies and the planters index ports identically.
_PROBE = Network(MeshTopology(MESH, MESH))
NODES = list(_PROBE.routers)
IN_PORTS = {r: list(_PROBE.routers[node].inputs) for r, node in enumerate(NODES)}
OUT_PORTS = {r: list(_PROBE.routers[node].out_ports) for r, node in enumerate(NODES)}
CONFIG = RouterConfig()
VCS = CONFIG.num_vcs
DEPTH = CONFIG.buffer_depth
del _PROBE


@st.composite
def table_state(draw):
    """One arbitrary arbitration table state.

    Buffered flits are drawn structurally (so hypothesis can shrink
    them); the bulk credit / rr tables come from a drawn PRNG seed.
    """
    flits = {}
    for _ in range(draw(st.integers(1, 16))):
        r = draw(st.integers(0, MESH * MESH - 1))
        p = draw(st.integers(0, len(IN_PORTS[r]) - 1))
        vc = draw(st.integers(0, VCS - 1))
        if (r, p, vc) in flits:
            continue
        eligible = draw(st.booleans())
        if draw(st.booleans()):
            dest = draw(st.integers(0, MESH * MESH - 1))
            flits[(r, p, vc)] = ("head", dest, eligible)
        else:
            out = draw(st.integers(0, len(OUT_PORTS[r]) - 1))
            out_vc = draw(st.integers(0, VCS - 1))
            tail = draw(st.booleans())
            flits[(r, p, vc)] = ("body", out, out_vc, eligible, tail)
    reserved = []
    for _ in range(draw(st.integers(0, 4))):
        r = draw(st.integers(0, MESH * MESH - 1))
        p = draw(st.integers(0, len(IN_PORTS[r]) - 1))
        vc = draw(st.integers(0, VCS - 1))
        if (r, p, vc) not in flits and (r, p, vc) not in reserved:
            reserved.append((r, p, vc))
    seed = draw(st.integers(0, 2**16))
    return _expand(flits, reserved, seed)


def _expand(flits, reserved, seed):
    """Fill the credit / rr tables from *seed*, honoring flow control.

    A channel's credit plus the occupancy of the downstream VC it feeds
    may never exceed the buffer depth, or credit return on pop would
    (correctly) raise in both cores.
    """
    rng = random.Random(seed)
    credits = {}
    for r in range(MESH * MESH):
        for out in OUT_PORTS[r]:
            if out == EJECT:
                continue
            d = NODES.index(out)
            p_at_d = IN_PORTS[d].index(NODES[r])
            for vc in range(VCS):
                occupied = 1 if (d, p_at_d, vc) in flits else 0
                credits[(r, out, vc)] = min(
                    rng.randint(0, DEPTH), DEPTH - occupied
                )
    rr_in = {
        (r, p): rng.randrange(VCS)
        for r in range(MESH * MESH)
        for p in range(len(IN_PORTS[r]))
    }
    rr_out = {
        (r, o): rng.randrange(8)
        for r in range(MESH * MESH)
        for o in range(len(OUT_PORTS[r]))
    }
    return {
        "flits": flits,
        "reserved": reserved,
        "credits": credits,
        "rr_in": rr_in,
        "rr_out": rr_out,
    }


def _flit_packets(spec):
    """(key -> tag, key -> Packet-args) shared by both planters."""
    tags = {}
    for key, planted in sorted(spec["flits"].items()):
        tags[key] = (planted[0],) + key
    return tags


def _plant_object(spec):
    net = Network(MeshTopology(MESH, MESH))
    tag_of_pid = {}
    for key, planted in sorted(spec["flits"].items()):
        r, p, vc_index = key
        router = net.routers[NODES[r]]
        vc = router.inputs[IN_PORTS[r][p]][vc_index]
        if planted[0] == "head":
            _, dest, eligible = planted
            packet = Packet(
                MessageType.READ_REQUEST, NODES[r], (NODES[dest],)
            )
            flit = packet.flits()[0]
            flit.eligible_at = 0 if eligible else 1
            vc.push(flit)
        else:
            _, out, out_vc, eligible, tail = planted
            packet = Packet(MessageType.WRITEBACK, NODES[r], (NODES[r],))
            flit = packet.flits()[4 if tail else 1]
            flit.eligible_at = 0 if eligible else 1
            vc.active_packet = packet.packet_id
            vc.push(flit)
            out_port = OUT_PORTS[r][out]
            vc.out_port = out_port
            vc.out_vc = None if out_port == EJECT else out_vc
        tag_of_pid[packet.packet_id] = ("flit",) + key
    for i, (r, p, vc_index) in enumerate(spec["reserved"]):
        router = net.routers[NODES[r]]
        router.inputs[IN_PORTS[r][p]][vc_index].active_packet = 10**9 + i
        tag_of_pid[10**9 + i] = ("reserved", i)
    for (r, out, vc), credit in spec["credits"].items():
        net.routers[NODES[r]].credits[(out, vc)] = credit
    for (r, p), value in spec["rr_in"].items():
        net.routers[NODES[r]]._rr_in[IN_PORTS[r][p]] = value
    for (r, o), value in spec["rr_out"].items():
        net.routers[NODES[r]]._rr_out[OUT_PORTS[r][o]] = value
    return net, tag_of_pid


def _plant_array(spec, vectorize):
    net = ArrayNetwork(MeshTopology(MESH, MESH), vectorize=vectorize)
    tag_of_pid = {}
    for key, planted in sorted(spec["flits"].items()):
        r, p, vc_index = key
        gvc = (net._unit_base[r] + p) * VCS + vc_index
        if planted[0] == "head":
            _, dest, eligible = planted
            packet = Packet(
                MessageType.READ_REQUEST, NODES[r], (NODES[dest],)
            )
            row = len(net._packets)
            net._packets.append(packet)
            flit = net.pool.alloc(
                row, True, True, 0, (dest,), 0, 0, 0 if eligible else 1
            )
            net._push(r, gvc, flit)
        else:
            _, out, out_vc, eligible, tail = planted
            packet = Packet(MessageType.WRITEBACK, NODES[r], (NODES[r],))
            row = len(net._packets)
            net._packets.append(packet)
            flit = net.pool.alloc(
                row, False, tail, 4 if tail else 1, (r,), 0, 0,
                0 if eligible else 1,
            )
            net._vc_active[gvc] = packet.packet_id
            net._push(r, gvc, flit)
            eject = net._eject_local[r]
            net._vc_out_local[gvc] = out
            net._vc_out_vc[gvc] = -1 if out == eject else out_vc
        tag_of_pid[packet.packet_id] = ("flit",) + key
    for i, (r, p, vc_index) in enumerate(spec["reserved"]):
        gvc = (net._unit_base[r] + p) * VCS + vc_index
        net._vc_active[gvc] = 10**9 + i
        tag_of_pid[10**9 + i] = ("reserved", i)
    for (r, out, vc), credit in spec["credits"].items():
        out_local = OUT_PORTS[r].index(out)
        net._credit[(net._chan_base[r] + out_local) * VCS + vc] = credit
    for (r, p), value in spec["rr_in"].items():
        net._rr_in[net._unit_base[r] + p] = value
    for (r, o), value in spec["rr_out"].items():
        net._rr_out[net._rr_out_base[r] + o] = value
    return net, tag_of_pid


def _run_object(spec):
    net, tags = _plant_object(spec)
    grants = []

    def record(node, forward, cycle):
        eject = forward.out_port == EJECT
        grants.append((
            str(node),
            "EJECT" if eject else str(forward.out_port),
            None if eject else forward.out_vc,
            tags[forward.flit.packet.packet_id],
        ))

    net._handle_forward = record
    net._switch_phase(0)
    return grants, _object_state(net, tags)


def _run_array(spec, vectorize):
    net, tags = _plant_array(spec, vectorize)
    grants = []

    def record(r, forward, cycle):
        _, out_local, out_vc, flit, _ = forward
        eject = out_local == net._eject_local[r]
        grants.append((
            str(NODES[r]),
            "EJECT" if eject else str(NODES[net._out_nodes[r][out_local]]),
            None if eject else out_vc,
            tags[net._packets[net.pool.packet[flit]].packet_id],
        ))

    net._handle_forward = record
    net._switch_phase(0, sorted(net._active))
    return grants, _array_state(net, tags)


def _object_state(net, tags):
    state = {}
    totals = dict.fromkeys(
        ("forwarded", "ejected", "conflicts", "alloc_failures",
         "bypass", "speculative"), 0)
    for node in NODES:
        router = net.routers[node]
        stats = router.stats
        totals["forwarded"] += stats.flits_forwarded
        totals["ejected"] += stats.flits_ejected
        totals["conflicts"] += stats.switch_conflicts
        totals["alloc_failures"] += stats.vc_alloc_failures
        totals["bypass"] += stats.buffer_bypass_hits
        totals["speculative"] += stats.speculative_switch_wins
        for port, unit in router.inputs.items():
            state[("rr_in", str(node), str(port))] = router._rr_in[port]
            for vc in unit:
                eject = vc.out_port == EJECT
                state[("vc", str(node), str(port), vc.index)] = (
                    len(vc.fifo),
                    tags.get(vc.active_packet),
                    "EJECT" if eject else (
                        None if vc.out_port is None else str(vc.out_port)
                    ),
                    None if eject else vc.out_vc,
                )
        for out in router.out_ports:
            state[("rr_out", str(node), str(out))] = router._rr_out[out]
            if out == EJECT:
                continue
            for vc in range(VCS):
                state[("credit", str(node), str(out), vc)] = (
                    router.credits[(out, vc)]
                )
                state[("stall", str(node), str(out), vc)] = (
                    router.credit_stalls.get((out, vc), 0)
                )
    state["totals"] = totals
    return state


def _array_state(net, tags):
    state = {}
    state["totals"] = {
        "forwarded": net.flits_forwarded,
        "ejected": net.flits_ejected,
        "conflicts": net.switch_conflicts,
        "alloc_failures": net.vc_alloc_failures,
        "bypass": net.buffer_bypass_hits,
        "speculative": net.speculative_switch_wins,
    }
    for r, node in enumerate(NODES):
        eject = net._eject_local[r]
        for p, port in enumerate(IN_PORTS[r]):
            unit = net._unit_base[r] + p
            state[("rr_in", str(node), str(port))] = net._rr_in[unit]
            for vc in range(VCS):
                gvc = unit * VCS + vc
                active = net._vc_active[gvc]
                out_local = net._vc_out_local[gvc]
                if out_local == eject:
                    out_name, out_vc = "EJECT", None
                elif out_local < 0:
                    out_name, out_vc = None, None
                else:
                    out_name = str(NODES[net._out_nodes[r][out_local]])
                    out_vc = net._vc_out_vc[gvc]
                state[("vc", str(node), str(port), vc)] = (
                    net._vc_len[gvc],
                    None if active < 0 else tags.get(active),
                    out_name,
                    out_vc,
                )
        for o, out in enumerate(OUT_PORTS[r]):
            state[("rr_out", str(node), str(out))] = (
                net._rr_out[net._rr_out_base[r] + o]
            )
            if out == EJECT:
                continue
            chan = net._chan_base[r] + o
            for vc in range(VCS):
                state[("credit", str(node), str(out), vc)] = (
                    net._credit[chan * VCS + vc]
                )
                state[("stall", str(node), str(out), vc)] = (
                    net._credit_stall[chan * VCS + vc]
                )
    return state


class TestArbitrationEquivalence:
    @given(spec=table_state())
    @settings(max_examples=60, deadline=None)
    def test_scalar_grants_match_object(self, spec):
        expected = _run_object(spec)
        assert _run_array(spec, vectorize=False) == expected

    @pytest.mark.skipif(not HAVE_NUMPY, reason="vector sweeps need numpy")
    @given(spec=table_state())
    @settings(max_examples=60, deadline=None)
    def test_vector_grants_match_object(self, spec):
        expected = _run_object(spec)
        assert _run_array(spec, vectorize=True) == expected


class TestTieBreakPinned:
    """Two-contender conflicts resolve by str(port) rank + rr pointer,
    pinned explicitly -- not merely 'all cores agree'."""

    def _conflict_spec(self, rr_out_value):
        center = NODES.index((1, 1))
        ports = [
            p for p, port in enumerate(IN_PORTS[center])
            if port in ((0, 1), (2, 1))
        ]
        dest = NODES.index((1, 0))
        flits = {
            (center, p, 0): ("head", dest, True) for p in ports
        }
        spec = _expand(flits, [], seed=5)
        out_port = None
        net = Network(MeshTopology(MESH, MESH))
        probe = net.routers[(1, 1)].routing.next_hop(
            net.topology, (1, 1), (1, 0)
        )
        out_port = probe
        o = OUT_PORTS[center].index(out_port)
        spec["rr_out"][(center, o)] = rr_out_value
        return spec, out_port

    @pytest.mark.parametrize("rr_out_value", [0, 1, 2, 3])
    def test_conflict_winner_matches_str_sort(self, rr_out_value):
        spec, out_port = self._conflict_spec(rr_out_value)
        grants, state = _run_object(spec)
        winners = [g for g in grants if g[1] == str(out_port)]
        assert len(winners) == 1
        contenders = sorted(
            key for key, planted in spec["flits"].items()
            if planted[0] == "head"
        )
        ranked = sorted(
            contenders, key=lambda key: str(IN_PORTS[key[0]][key[1]])
        )
        expected = ("flit",) + ranked[rr_out_value % len(ranked)]
        assert winners[0][3] == expected
        assert state["totals"]["conflicts"] == 1
        for vectorize in (False, True) if HAVE_NUMPY else (False,):
            assert _run_array(spec, vectorize=vectorize) == (grants, state)
