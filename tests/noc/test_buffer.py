"""Unit tests for virtual-channel buffers."""

import pytest

from repro.errors import SimulationError
from repro.noc import MessageType, Packet
from repro.noc.buffer import VirtualChannel, make_input_unit


def _flits(message=MessageType.REPLACEMENT):
    packet = Packet(message, source=(0, 0), destinations=((1, 1),))
    return packet.flits()


class TestVirtualChannel:
    def test_fresh_vc_is_free(self):
        vc = VirtualChannel(port="X+", index=0, depth=4)
        assert vc.is_free
        assert vc.head() is None

    def test_head_flit_claims_vc(self):
        vc = VirtualChannel(port="X+", index=0, depth=4)
        flits = _flits()
        vc.push(flits[0])
        assert not vc.is_free
        assert vc.active_packet == flits[0].packet.packet_id

    def test_tail_pop_releases_vc(self):
        vc = VirtualChannel(port="X+", index=0, depth=8)
        flits = _flits()
        for flit in flits:
            vc.push(flit)
        for _ in flits:
            vc.pop()
        assert vc.is_free

    def test_wormhole_order_preserved(self):
        vc = VirtualChannel(port="X+", index=0, depth=8)
        flits = _flits()
        for flit in flits:
            vc.push(flit)
        assert [vc.pop().index for _ in flits] == [0, 1, 2, 3, 4]

    def test_overflow_raises(self):
        vc = VirtualChannel(port="X+", index=0, depth=2)
        flits = _flits()
        vc.push(flits[0])
        vc.push(flits[1])
        with pytest.raises(SimulationError, match="overflow"):
            vc.push(flits[2])

    def test_foreign_head_rejected_when_held(self):
        vc = VirtualChannel(port="X+", index=0, depth=4)
        vc.push(_flits()[0])
        with pytest.raises(SimulationError, match="held by"):
            vc.push(_flits()[0])  # a different packet's head

    def test_reserved_vc_accepts_own_head(self):
        vc = VirtualChannel(port="X+", index=0, depth=4)
        flits = _flits()
        vc.active_packet = flits[0].packet.packet_id  # upstream reservation
        vc.push(flits[0])
        assert vc.head() is flits[0]

    def test_body_flit_needs_matching_allocation(self):
        vc = VirtualChannel(port="X+", index=0, depth=4)
        with pytest.raises(SimulationError, match="not allocated"):
            vc.push(_flits()[1])

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            VirtualChannel(port="X+", index=0, depth=4).pop()


class TestInputUnit:
    def test_make_input_unit(self):
        unit = make_input_unit("Y-", num_vcs=4, depth=4)
        assert len(unit) == 4
        assert [vc.index for vc in unit] == [0, 1, 2, 3]
        assert all(vc.port == "Y-" for vc in unit)
