"""Equivalence and unit tests for the SoA array core (repro.noc.arraycore).

The array core's contract is *bit-equivalence* with the object-model
reference ``Network``: identical cycle counts, delivery records, and
telemetry counters for any legal workload. The sweeps here drive both
cores over designs x traffic x seeds and assert digest equality; the
unit tests pin the SoA plumbing (ring-buffer wraparound, pool growth,
credit accounting, replication slot borrowing) directly.
"""

from __future__ import annotations

import random

import pytest

from repro.config import RouterConfig
from repro.errors import SimulationError
from repro.noc import (
    HaloTopology,
    MeshTopology,
    MessageType,
    Network,
    Packet,
    SimplifiedMeshTopology,
)
from repro.noc.arraycore import HAVE_NUMPY, ArrayNetwork, FlitPool
from repro.noc.network import make_network, normalize_core
from repro.validation.fuzzer import _core_digest

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="array core requires numpy"
)


def _run_both(make_topology, packets, single_cycle=True, max_cycles=50_000):
    """Run the same workload on both cores; return their digests."""
    digests = {}
    for name, cls in (("object", Network), ("array", ArrayNetwork)):
        net = cls(
            make_topology(),
            router_config=RouterConfig(single_cycle=single_cycle),
        )
        for message, source, destinations, at_cycle in packets:
            net.schedule_injection(
                Packet(message, source, destinations), at_cycle=at_cycle
            )
        net.run_until_drained(max_cycles=max_cycles)
        digests[name] = _core_digest(net)
    return digests


def _unicast_stream(nodes, seed, count, spacing):
    rng = random.Random(seed)
    stream = []
    for i in range(count):
        source, destination = rng.sample(nodes, 2)
        message = rng.choice(
            (MessageType.READ_REQUEST, MessageType.REPLACEMENT)
        )
        stream.append((message, source, (destination,), i * spacing))
    return stream


@needs_numpy
class TestEquivalenceSweeps:
    @pytest.mark.parametrize("single_cycle", [True, False])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mesh_unicast(self, seed, single_cycle):
        nodes = [(x, y) for x in range(5) for y in range(4)]
        packets = _unicast_stream(nodes, seed, count=30, spacing=2)
        digests = _run_both(
            lambda: MeshTopology(5, 4), packets, single_cycle=single_cycle
        )
        assert digests["object"] == digests["array"]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_simplified_mesh_multicast(self, seed):
        rng = random.Random(seed)
        packets = []
        for i in range(20):
            x = rng.randrange(4)
            column = tuple((x, y) for y in range(4))
            packets.append(
                (MessageType.READ_REQUEST, (x, 0), column, i * 3)
            )
        digests = _run_both(lambda: SimplifiedMeshTopology(4, 4), packets)
        assert digests["object"] == digests["array"]

    @pytest.mark.parametrize("single_cycle", [True, False])
    def test_halo_mixed_traffic(self, single_cycle):
        topology = HaloTopology(4, 4)
        nodes = sorted(topology.nodes, key=str)
        rng = random.Random(9)
        packets = _unicast_stream(nodes, 9, count=15, spacing=4)
        spikes = [n for n in nodes if n[0] == "spike"]
        for i in range(8):
            destinations = tuple(rng.sample(spikes, 3))
            packets.append(
                (MessageType.MISS_NOTIFY, ("hub",), destinations, i * 5)
            )
        digests = _run_both(
            lambda: HaloTopology(4, 4), packets, single_cycle=single_cycle
        )
        assert digests["object"] == digests["array"]

    def test_protocol_paced_large_mesh(self):
        nodes = [(x, y) for x in range(8) for y in range(8)]
        packets = _unicast_stream(nodes, 5, count=25, spacing=40)
        digests = _run_both(lambda: MeshTopology(8, 8), packets)
        assert digests["object"] == digests["array"]


@needs_numpy
class TestProtocolAndLoadParity:
    def test_protocol_trace_identical(self):
        from repro.noc.protocol import FlitLevelCacheProtocol

        traces = {}
        for core in ("object", "array"):
            protocol = FlitLevelCacheProtocol(cols=8, rows=8, core=core)
            hit = protocol.run_hit(column=3, depth=4)
            miss = protocol.run_miss(column=5)
            traces[core] = (
                hit.issued,
                hit.data_at_core,
                hit.chain_done_at,
                sorted(hit.request_arrivals.items()),
                miss.data_at_core,
                miss.memory_requested_at,
            )
        assert traces["object"] == traces["array"]

    def test_load_point_identical(self):
        from repro.experiments.noc_load import run_load_point

        points = {
            core: run_load_point(
                0.02, mesh_size=4, cycles=120, seed=3, core=core
            )
            for core in ("object", "array")
        }
        assert points["object"] == points["array"]


class TestCoreSelector:
    def test_normalize_core(self):
        assert normalize_core(None) == "object"
        assert normalize_core("object") == "object"
        assert normalize_core("array") == "array"
        assert normalize_core("array-scalar") == "array-scalar"
        with pytest.raises(SimulationError):
            normalize_core("simd")

    def test_make_network_object(self):
        net = make_network(MeshTopology(2, 2), core="object")
        assert isinstance(net, Network)

    @needs_numpy
    def test_make_network_array(self):
        net = make_network(MeshTopology(2, 2), core="array")
        assert isinstance(net, ArrayNetwork)
        assert net._vector

    def test_make_network_array_scalar(self):
        # The scalar core needs no numpy: it must construct either way.
        net = make_network(MeshTopology(2, 2), core="array-scalar")
        assert isinstance(net, ArrayNetwork)
        assert not net._vector

    def test_cellspec_records_core(self):
        from repro.experiments.common import ExperimentConfig
        from repro.experiments.runner import spec_for

        spec = spec_for(
            "A", "multicast+fast_lru", "art",
            ExperimentConfig(measure=10, core="array"),
        )
        assert spec.core == "array"
        assert "array" in str(spec.key())


@needs_numpy
class TestSoAPlumbing:
    def test_flit_pool_growth_doubles(self):
        pool = FlitPool(capacity=2)
        rows = [
            pool.alloc(0, True, True, 0, (i,), 0, 0, 0) for i in range(5)
        ]
        assert rows == [0, 1, 2, 3, 4]
        assert pool.capacity >= 5
        assert pool.size == 5
        assert pool.destinations[4] == (4,)

    def test_ring_buffer_wraparound(self):
        # Force heavy reuse of one VC: a long single-source stream keeps
        # pushing/popping through the same ring slots.
        net = ArrayNetwork(MeshTopology(3, 1))
        for i in range(12):
            net.schedule_injection(
                Packet(
                    MessageType.REPLACEMENT, (0, 0), ((2, 0),)
                ),
                at_cycle=i,
            )
        net.run_until_drained(max_cycles=5_000)
        assert len(net.stats.deliveries) == 12

    def test_credit_overflow_raises(self):
        net = ArrayNetwork(MeshTopology(2, 2))
        with pytest.raises(SimulationError, match="credit overflow"):
            for _ in range(20):
                net._return_credit(0, 0, 0)

    def test_checkers_and_faults_unsupported(self):
        net = ArrayNetwork(MeshTopology(2, 2))
        with pytest.raises(SimulationError):
            net.install_checker(object())
        with pytest.raises(SimulationError):
            net.install_fault_controller(object())
        assert net.checkers == ()
        assert net.fault_controller is None

    def test_replication_borrows_and_counts(self):
        # One spine-to-column multicast must replicate once per column
        # router below the source; counters match the object core's.
        results = {}
        for cls in (Network, ArrayNetwork):
            net = cls(SimplifiedMeshTopology(3, 4))
            column = tuple((1, y) for y in range(4))
            net.inject(
                Packet(MessageType.READ_REQUEST, (1, 0), column)
            )
            net.run_until_drained(max_cycles=5_000)
            results[cls.__name__] = (
                net.total_replications(),
                len(net.stats.deliveries),
            )
        assert results["Network"] == results["ArrayNetwork"]
        assert results["ArrayNetwork"][0] >= 1
        assert results["ArrayNetwork"][1] == 4

class TestScalarFallbackEquivalence:
    """The no-NumPy code path is proven, not just the fast one: these
    tests monkeypatch ``HAVE_NUMPY`` off (a no-op in a genuinely
    numpy-free environment) and hold the scalar sweeps to the same
    bit-equivalence contract as the vectorized ones. No ``needs_numpy``
    marker on purpose -- this class runs in the no-numpy CI job too."""

    @pytest.fixture(autouse=True)
    def _force_scalar(self, monkeypatch):
        import repro.noc.arraycore as arraycore

        monkeypatch.setattr(arraycore, "HAVE_NUMPY", False)

    def test_without_numpy_scalar_fallback(self):
        # Without numpy the array core degrades to its scalar sweeps
        # instead of refusing to construct; only forcing vectorize=True
        # is an error.
        net = ArrayNetwork(MeshTopology(2, 2))
        assert not net._vector
        with pytest.raises(SimulationError, match="numpy"):
            ArrayNetwork(MeshTopology(2, 2), vectorize=True)

    @pytest.mark.parametrize("single_cycle", [True, False])
    def test_mesh_unicast_fallback(self, single_cycle):
        nodes = [(x, y) for x in range(5) for y in range(4)]
        packets = _unicast_stream(nodes, 21, count=30, spacing=2)
        digests = _run_both(
            lambda: MeshTopology(5, 4), packets, single_cycle=single_cycle
        )
        assert digests["object"] == digests["array"]

    def test_simplified_multicast_fallback(self):
        rng = random.Random(23)
        packets = []
        for i in range(15):
            x = rng.randrange(4)
            column = tuple((x, y) for y in range(4))
            packets.append(
                (MessageType.READ_REQUEST, (x, 0), column, i * 3)
            )
        digests = _run_both(lambda: SimplifiedMeshTopology(4, 4), packets)
        assert digests["object"] == digests["array"]


@needs_numpy
class TestObservabilityEquivalence:
    """Windowed series and spatial congestion counters are part of the
    bit-equivalence contract: publishing each core into a fresh registry
    must produce byte-identical snapshots -- same per-link counters, same
    per-VC high-waters, same series windows -- not merely matching
    aggregate digests."""

    def _snapshots(self, make_topology, packets, window, single_cycle=True):
        from repro.telemetry import MetricsRegistry

        snapshots = {}
        for name, cls in (("object", Network), ("array", ArrayNetwork)):
            net = cls(
                make_topology(),
                router_config=RouterConfig(single_cycle=single_cycle),
                window=window,
            )
            for message, source, destinations, at_cycle in packets:
                net.schedule_injection(
                    Packet(message, source, destinations), at_cycle=at_cycle
                )
            net.run_until_drained(max_cycles=50_000)
            registry = MetricsRegistry()
            net.publish_metrics(registry)
            snapshots[name] = registry.snapshot()
        return snapshots

    @pytest.mark.parametrize("window", [8, 64])
    def test_mesh_windowed_snapshots_identical(self, window):
        nodes = [(x, y) for x in range(5) for y in range(4)]
        packets = _unicast_stream(nodes, 11, count=40, spacing=2)
        snaps = self._snapshots(
            lambda: MeshTopology(5, 4), packets, window=window
        )
        assert snaps["object"] == snaps["array"]
        series = {
            name: snap for name, snap in snaps["object"].items()
            if snap["type"] == "series"
        }
        assert series
        assert all(snap["window"] == window for snap in series.values())
        assert any(snap["windows"] for snap in series.values())
        assert any(
            name.startswith("noc.link.flits.") for name in snaps["object"]
        )

    def test_halo_multicast_snapshots_identical(self):
        topology = HaloTopology(4, 4)
        nodes = sorted(topology.nodes, key=str)
        rng = random.Random(13)
        packets = _unicast_stream(nodes, 13, count=12, spacing=4)
        spikes = [n for n in nodes if n[0] == "spike"]
        for i in range(6):
            destinations = tuple(rng.sample(spikes, 3))
            packets.append(
                (MessageType.MISS_NOTIFY, ("hub",), destinations, i * 5)
            )
        snaps = self._snapshots(
            lambda: HaloTopology(4, 4), packets, window=16
        )
        assert snaps["object"] == snaps["array"]
        assert "noc.hub.issue_queue_depth" in snaps["object"]
