"""Saturation-grade cross-core parity: the regime the paper's figures live in.

The paper's headline results (figures 9-11) sit at and beyond the
saturation knee, exactly where the vectorized sweeps earn their keep and
where short equivalence sweeps barely tread. These tests drive all four
execution modes -- object core, array auto, array forced-vector, array
scalar fallback -- through long-horizon (>= 20k cycle) workloads at
injection rates straddling the knee on mesh / simplified-mesh / halo
fabrics, and assert *byte* equality of flit traces and windowed metric
snapshots, not just digest equality.

Long runs are slow-marked; each fabric also gets a short tier-1 smoke
variant with the same structure so every CI run exercises the harness.
"""

from __future__ import annotations

import itertools
import json
import os
import random
import tempfile

import pytest

from repro.noc import (
    HaloTopology,
    MeshTopology,
    MessageType,
    Network,
    Packet,
    SimplifiedMeshTopology,
)
import repro.noc.packet as packet_mod
from repro.noc.arraycore import HAVE_NUMPY, ArrayNetwork
from repro.telemetry import MetricsRegistry
from repro.telemetry.trace import JsonlTraceSink
from repro.validation.fuzzer import _core_digest


def _modes() -> list[str]:
    """Execution modes available in this environment.

    ``array-vector`` (forced whole-mesh sweeps) needs numpy; the other
    three run everywhere, so the suite stays green in the no-numpy job.
    """
    modes = ["object", "array-auto", "array-scalar"]
    if HAVE_NUMPY:
        modes.insert(2, "array-vector")
    return modes


def _build(mode, topology, window=0):
    if mode == "object":
        return Network(topology, window=window)
    vectorize = {"array-auto": None, "array-vector": True,
                 "array-scalar": False}[mode]
    return ArrayNetwork(topology, window=window, vectorize=vectorize)


def _inject_all(net, packets):
    for message, source, destinations, at_cycle in packets:
        net.schedule_injection(
            Packet(message, source, destinations), at_cycle=at_cycle
        )


def _parity_run(make_topology, packets, window=256, max_cycles=400_000):
    """Run every mode; return {mode: (digest, snapshot_bytes, cycles)}."""
    results = {}
    for mode in _modes():
        net = _build(mode, make_topology(), window=window)
        _inject_all(net, packets)
        cycles = net.run_until_drained(max_cycles=max_cycles)
        registry = MetricsRegistry()
        net.publish_metrics(registry)
        snapshot = json.dumps(
            registry.snapshot(), sort_keys=True, default=str
        ).encode()
        results[mode] = (_core_digest(net), snapshot, cycles)
    return results


def _assert_parity(results):
    reference = results["object"]
    for mode, got in results.items():
        assert got[0] == reference[0], f"digest mismatch: {mode}"
        assert got[1] == reference[1], f"snapshot mismatch: {mode}"
        assert got[2] == reference[2], f"cycle count mismatch: {mode}"


def _trace_bytes(mode, make_topology, packets, max_cycles=400_000):
    """Run one mode with a JSONL flit trace; return the trace bytes.

    Packet ids feed the trace, so the process-global id counter is reset
    before each run -- identical workloads then produce byte-identical
    traces if and only if the cores are bit-equivalent.
    """
    packet_mod._packet_ids = itertools.count()
    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    try:
        net = _build(mode, make_topology())
        sink = JsonlTraceSink(path)
        net.set_trace_sink(sink)
        _inject_all(net, packets)
        net.run_until_drained(max_cycles=max_cycles)
        sink.close()
        with open(path, "rb") as handle:
            return handle.read()
    finally:
        os.unlink(path)


# -- workloads ----------------------------------------------------------


def _mesh_stream(seed, count, spacing, hotspot=0.0):
    """Uniform-random mesh traffic, optionally biased toward one corner.

    ``hotspot`` is the fraction of packets aimed at (0, 0): tree
    contention toward a single ejection port drives the fabric past its
    saturation knee even at one packet per cycle.
    """
    nodes = [(x, y) for x in range(4) for y in range(4)]
    rng = random.Random(seed)
    stream = []
    for i in range(count):
        source = rng.choice(nodes)
        if rng.random() < hotspot:
            destination = (0, 0) if source != (0, 0) else (3, 3)
        else:
            destination = rng.choice([n for n in nodes if n != source])
        message = rng.choice(
            (MessageType.READ_REQUEST, MessageType.REPLACEMENT)
        )
        stream.append((message, source, (destination,), i * spacing))
    return stream


def _simplified_stream(seed, count, spacing):
    """Column multicasts mixed with spine unicasts on the simplified mesh."""
    rng = random.Random(seed)
    stream = []
    for i in range(count):
        x = rng.randrange(4)
        if rng.random() < 0.7:
            column = tuple((x, y) for y in range(4))
            stream.append(
                (MessageType.READ_REQUEST, (x, 0), column, i * spacing)
            )
        else:
            other = rng.choice([c for c in range(4) if c != x])
            stream.append(
                (MessageType.REPLACEMENT, (x, 0), ((other, 0),), i * spacing)
            )
    return stream


def _halo_stream(seed, count, spacing):
    """Hub-to-spike multicasts over unicast background on the halo."""
    topology = HaloTopology(4, 4)
    nodes = sorted(topology.nodes, key=str)
    spikes = [n for n in nodes if n[0] == "spike"]
    rng = random.Random(seed)
    stream = []
    for i in range(count):
        if rng.random() < 0.5:
            destinations = tuple(rng.sample(spikes, 3))
            stream.append(
                (MessageType.MISS_NOTIFY, ("hub",), destinations, i * spacing)
            )
        else:
            source, destination = rng.sample(nodes, 2)
            stream.append(
                (MessageType.READ_REQUEST, source, (destination,),
                 i * spacing)
            )
    return stream


def _saturation_counters(net):
    """(vc allocation failures, credit-stall cycles) of the object core."""
    alloc = sum(r.stats.vc_alloc_failures for r in net.routers.values())
    stalls = sum(
        sum(r.credit_stalls.values()) for r in net.routers.values()
    )
    return alloc, stalls


# -- long-horizon parity (slow tier) ------------------------------------


@pytest.mark.slow
class TestMeshSaturationParity:
    """>= 20k-cycle mesh sweeps at rates straddling the saturation knee."""

    @pytest.mark.parametrize(
        "label, spacing, hotspot, count",
        [
            ("above_knee", 1, 0.35, 20_000),
            ("at_knee", 1, 0.0, 20_000),
            ("below_knee", 3, 0.0, 6_667),
        ],
    )
    def test_mesh_rate_parity(self, label, spacing, hotspot, count):
        packets = _mesh_stream(77, count, spacing, hotspot)
        results = _parity_run(lambda: MeshTopology(4, 4), packets)
        _assert_parity(results)
        assert results["object"][2] >= 20_000

    def test_above_knee_actually_saturates(self):
        # The harness must really straddle the knee: the hotspot load has
        # to show massive VC-allocation backpressure, the below-knee load
        # essentially none.
        evidence = {}
        for label, spacing, hotspot, count in (
            ("above", 1, 0.35, 20_000),
            ("below", 3, 0.0, 6_667),
        ):
            net = Network(MeshTopology(4, 4))
            _inject_all(net, _mesh_stream(77, count, spacing, hotspot))
            net.run_until_drained(max_cycles=400_000)
            evidence[label] = _saturation_counters(net)
        assert evidence["above"][0] > 100_000
        assert evidence["above"][1] > 10_000
        assert evidence["below"][0] == 0


@pytest.mark.slow
class TestMulticastSaturationParity:
    """Long-horizon replication-heavy fabrics: simplified mesh and halo."""

    def test_simplified_mesh_parity(self):
        packets = _simplified_stream(101, count=10_000, spacing=2)
        results = _parity_run(lambda: SimplifiedMeshTopology(4, 4), packets)
        _assert_parity(results)
        assert results["object"][2] >= 20_000

    def test_halo_parity(self):
        packets = _halo_stream(55, count=10_000, spacing=2)
        results = _parity_run(lambda: HaloTopology(4, 4), packets)
        _assert_parity(results)
        assert results["object"][2] >= 20_000


@pytest.mark.slow
class TestSaturatedTraceEquality:
    """Flit traces from a saturated run must match byte for byte."""

    def test_mesh_hotspot_traces_identical(self):
        packets = _mesh_stream(303, count=2_500, spacing=1, hotspot=0.35)
        traces = {
            mode: _trace_bytes(mode, lambda: MeshTopology(4, 4), packets)
            for mode in _modes()
        }
        reference = traces["object"]
        assert reference.count(b"\n") > 2_500
        for mode, got in traces.items():
            assert got == reference, f"trace mismatch: {mode}"


# -- tier-1 smoke (same harness, short horizon) -------------------------


class TestSaturationSmoke:
    """Short variants of the long sweeps that run on every tier-1 pass."""

    def test_mesh_hotspot_smoke(self):
        packets = _mesh_stream(7, count=400, spacing=1, hotspot=0.35)
        results = _parity_run(lambda: MeshTopology(4, 4), packets, window=64)
        _assert_parity(results)

    def test_simplified_smoke(self):
        packets = _simplified_stream(9, count=250, spacing=2)
        results = _parity_run(
            lambda: SimplifiedMeshTopology(4, 4), packets, window=64
        )
        _assert_parity(results)

    def test_halo_smoke(self):
        packets = _halo_stream(11, count=200, spacing=2)
        results = _parity_run(lambda: HaloTopology(4, 4), packets, window=64)
        _assert_parity(results)

    def test_trace_smoke(self):
        packets = _mesh_stream(13, count=150, spacing=1, hotspot=0.35)
        traces = {
            mode: _trace_bytes(mode, lambda: MeshTopology(4, 4), packets)
            for mode in _modes()
        }
        reference = traces["object"]
        assert reference.count(b"\n") > 150
        for mode, got in traces.items():
            assert got == reference, f"trace mismatch: {mode}"
