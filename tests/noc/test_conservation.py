"""Property tests: flit conservation and ordering under random traffic.

The flit-level simulator must neither lose nor duplicate traffic, and a
wormhole's flits must arrive in order -- for any topology and any traffic
pattern hypothesis can produce.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc import MeshTopology, MessageType, Network, Packet

MESH = 3  # small meshes keep hypothesis examples fast


@st.composite
def traffic(draw):
    nodes = [(x, y) for x in range(MESH) for y in range(MESH)]
    count = draw(st.integers(1, 12))
    packets = []
    for _ in range(count):
        src = draw(st.sampled_from(nodes))
        dst = draw(st.sampled_from([n for n in nodes if n != src]))
        block = draw(st.booleans())
        packets.append((src, dst, block))
    return packets


class TestConservation:
    @given(packets=traffic())
    @settings(max_examples=50, deadline=None)
    def test_every_packet_delivered_exactly_once(self, packets):
        network = Network(MeshTopology(MESH, MESH))
        for src, dst, block in packets:
            message = (MessageType.REPLACEMENT if block
                       else MessageType.READ_REQUEST)
            network.inject(Packet(message, source=src, destinations=(dst,)))
        network.run_until_drained(max_cycles=20_000)
        assert network.stats.packets_delivered == len(packets)
        assert network.total_buffered_flits() == 0

    @given(packets=traffic())
    @settings(max_examples=30, deadline=None)
    def test_flit_count_conserved(self, packets):
        network = Network(MeshTopology(MESH, MESH))
        expected_flits = 0
        for src, dst, block in packets:
            message = (MessageType.REPLACEMENT if block
                       else MessageType.READ_REQUEST)
            network.inject(Packet(message, source=src, destinations=(dst,)))
            expected_flits += 5 if block else 1
        network.run_until_drained(max_cycles=20_000)
        assert network.stats.flits_injected == expected_flits
        ejected = sum(
            r.stats.flits_ejected for r in network.routers.values()
        )
        assert ejected == expected_flits

    @given(
        column=st.integers(0, MESH - 1),
        fanout=st.integers(2, MESH),
    )
    @settings(max_examples=30, deadline=None)
    def test_multicast_delivers_every_destination_once(self, column, fanout):
        network = Network(MeshTopology(MESH, MESH))
        destinations = tuple((column, y) for y in range(fanout))
        network.inject(Packet(MessageType.READ_REQUEST, source=(column, 0),
                              destinations=destinations))
        network.run_until_drained(max_cycles=20_000)
        delivered = [d.destination for d in network.stats.deliveries]
        assert sorted(delivered) == sorted(destinations)

    def test_wormhole_flits_arrive_in_order(self):
        network = Network(MeshTopology(MESH, MESH))
        seen = []

        # Spy on ejections via the pending-eject bookkeeping: record the
        # flit index order at the destination router.
        original = network._eject

        def spying_eject(node, flit, cycle):
            seen.append(flit.index)
            original(node, flit, cycle)

        network._eject = spying_eject
        network.inject(Packet(MessageType.REPLACEMENT, source=(0, 0),
                              destinations=((2, 2),)))
        network.run_until_drained(max_cycles=5_000)
        assert seen == sorted(seen)
