"""Integration tests for the flit-level network simulator."""

import random

import pytest

from repro.config import RouterConfig
from repro.errors import SimulationError
from repro.noc import (
    HaloTopology,
    MeshTopology,
    MessageType,
    Network,
    Packet,
    SimplifiedMeshTopology,
)
from repro.noc.topology import HUB, spike_node


def _drain(network, max_cycles=50_000):
    return network.run_until_drained(max_cycles=max_cycles)


class TestUnicastDelivery:
    def test_single_flit_latency(self):
        # hop time = router (1) + wire (1); plus 1 ejection cycle.
        net = Network(MeshTopology(4, 4))
        net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                          destinations=((3, 0),)))
        _drain(net)
        delivery = net.stats.deliveries[0]
        assert delivery.latency == 3 * 2 + 1

    def test_five_flit_serialization(self):
        net = Network(MeshTopology(4, 4))
        net.inject(Packet(MessageType.REPLACEMENT, source=(0, 0),
                          destinations=((0, 1),)))
        _drain(net)
        # 1 hop x 2 cycles + 4 extra flits + ejection
        assert net.stats.deliveries[0].latency == 2 + 4 + 1

    def test_wire_delay_respected(self):
        net = Network(MeshTopology(4, 4, uniform_wire_delay=3))
        net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                          destinations=((0, 2),)))
        _drain(net)
        assert net.stats.deliveries[0].latency == 2 * (1 + 3) + 1

    def test_pipelined_router_slower(self):
        def latency(single_cycle):
            net = Network(
                MeshTopology(4, 4),
                router_config=RouterConfig(single_cycle=single_cycle),
            )
            net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                              destinations=((3, 3),)))
            _drain(net)
            return net.stats.deliveries[0].latency

        assert latency(False) > latency(True)

    def test_injection_node_validated(self):
        net = Network(MeshTopology(2, 2))
        with pytest.raises(SimulationError):
            net.inject(Packet(MessageType.READ_REQUEST, source=(9, 9),
                              destinations=((0, 0),)))


class TestMulticast:
    def test_column_chain_delivers_all(self):
        net = Network(MeshTopology(4, 4))
        destinations = tuple((1, y) for y in range(4))
        net.inject(Packet(MessageType.READ_REQUEST, source=(1, 0),
                          destinations=destinations))
        _drain(net)
        delivered = {d.destination for d in net.stats.deliveries}
        assert delivered == set(destinations)

    def test_chain_arrival_times_monotone_down_column(self):
        net = Network(MeshTopology(4, 4))
        destinations = tuple((2, y) for y in range(4))
        net.inject(Packet(MessageType.READ_REQUEST, source=(2, 0),
                          destinations=destinations))
        _drain(net)
        by_row = sorted(net.stats.deliveries, key=lambda d: d.destination[1])
        times = [d.delivered_at for d in by_row]
        assert times == sorted(times)

    def test_replication_count(self):
        net = Network(MeshTopology(4, 4))
        net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                          destinations=tuple((0, y) for y in range(4))))
        _drain(net)
        # One split per router that both ejects and forwards: rows 0..2.
        assert net.total_replications() == 3

    def test_multicast_faster_than_unicast_storm(self):
        destinations = tuple((1, y) for y in range(4))
        mc = Network(MeshTopology(4, 4))
        mc.inject(Packet(MessageType.READ_REQUEST, source=(1, 0),
                         destinations=destinations))
        mc_cycles = _drain(mc)
        uc = Network(MeshTopology(4, 4))
        for destination in destinations:
            uc.inject(Packet(MessageType.READ_REQUEST, source=(1, 0),
                             destinations=(destination,)))
        uc_cycles = _drain(uc)
        assert mc_cycles <= uc_cycles


class TestStress:
    @pytest.mark.parametrize("topology_factory", [
        lambda: MeshTopology(4, 4),
        lambda: SimplifiedMeshTopology(4, 4),
        lambda: HaloTopology(4, 4),
    ])
    def test_random_traffic_drains(self, topology_factory):
        topology = topology_factory()
        net = Network(topology)
        rng = random.Random(7)
        if isinstance(topology, SimplifiedMeshTopology):
            # Domain traffic only: core/memory row <-> banks, in-column moves.
            nodes = sorted(topology.nodes)
            core = topology.core_attach
            pairs = [(core, n) for n in nodes if n != core]
            pairs += [(n, core) for n in nodes if n != core]
        elif isinstance(topology, HaloTopology):
            nodes = [spike_node(s, i) for s in range(4) for i in range(4)]
            pairs = [(HUB, n) for n in nodes] + [(n, HUB) for n in nodes]
        else:
            nodes = sorted(topology.nodes)
            pairs = [(a, b) for a in nodes for b in nodes if a != b]
        for i in range(150):
            src, dst = rng.choice(pairs)
            message = (MessageType.REPLACEMENT if i % 3 == 0
                       else MessageType.READ_REQUEST)
            net.inject(Packet(message, source=src, destinations=(dst,)))
        _drain(net)
        assert net.stats.packets_delivered == 150
        assert net.total_buffered_flits() == 0
        assert net.idle()

    def test_sustained_multicast_load_drains(self):
        net = Network(MeshTopology(4, 4))
        for col in range(4):
            for _ in range(10):
                net.inject(Packet(
                    MessageType.READ_REQUEST,
                    source=(col, 0),
                    destinations=tuple((col, y) for y in range(4)),
                ))
        _drain(net)
        assert net.stats.packets_delivered == 160  # 40 packets x 4 dests

    def test_undrained_network_raises(self):
        net = Network(MeshTopology(2, 2))
        net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                          destinations=((1, 1),)))
        with pytest.raises(SimulationError, match="did not drain"):
            net.run_until_drained(max_cycles=1)


class TestStatsAccounting:
    def test_flits_injected_counted(self):
        net = Network(MeshTopology(2, 2))
        net.inject(Packet(MessageType.REPLACEMENT, source=(0, 0),
                          destinations=((1, 1),)))
        _drain(net)
        assert net.stats.flits_injected == 5
        assert net.stats.packets_injected == 1

    def test_average_and_max_latency(self):
        net = Network(MeshTopology(3, 3))
        net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                          destinations=((2, 2),)))
        net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                          destinations=((1, 0),)))
        _drain(net)
        stats = net.stats
        assert stats.max_latency >= stats.average_latency > 0
        assert stats.average_hops > 0

    def test_delivery_callback_fires(self):
        net = Network(MeshTopology(2, 2))
        seen = []
        net.on_delivery(lambda d: seen.append(d.destination))
        net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0),
                          destinations=((1, 1),)))
        _drain(net)
        assert seen == [(1, 1)]
