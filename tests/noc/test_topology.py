"""Unit tests for mesh, simplified mesh, and halo topologies."""

import pytest

from repro.errors import TopologyError
from repro.noc import HaloTopology, MeshTopology, SimplifiedMeshTopology
from repro.noc.topology import HUB, Channel, Topology, spike_node


class TestChannel:
    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Channel(src=(0, 0), dst=(0, 0))

    def test_negative_delay_rejected(self):
        with pytest.raises(TopologyError):
            Channel(src=(0, 0), dst=(0, 1), wire_delay=-1)


class TestTopologyBase:
    def test_channel_endpoints_must_exist(self):
        topology = Topology()
        topology.add_node((0, 0))
        with pytest.raises(TopologyError):
            topology.add_channel((0, 0), (1, 1))

    def test_duplicate_channel_rejected(self):
        topology = Topology()
        topology.add_node(1)
        topology.add_node(2)
        topology.add_channel(1, 2)
        with pytest.raises(TopologyError, match="duplicate"):
            topology.add_channel(1, 2)

    def test_missing_channel_lookup_raises(self):
        topology = Topology()
        topology.add_node(1)
        topology.add_node(2)
        with pytest.raises(TopologyError):
            topology.channel(1, 2)

    def test_bidirectional_counts_one_link(self):
        topology = Topology()
        topology.add_node(1)
        topology.add_node(2)
        topology.add_bidirectional(1, 2)
        assert topology.num_channels == 2
        assert topology.num_links == 1


class TestMesh:
    def test_node_count(self):
        assert MeshTopology(4, 4).num_nodes == 16
        assert MeshTopology(16, 16).num_nodes == 256

    def test_link_count(self):
        # n x m mesh: m(n-1) horizontal + n(m-1) vertical bidirectional links
        mesh = MeshTopology(4, 4)
        assert mesh.num_links == 2 * 4 * 3
        assert MeshTopology(16, 16).num_links == 480

    def test_interior_node_degree(self):
        mesh = MeshTopology(4, 4)
        assert len(mesh.successors((1, 1))) == 4
        assert len(mesh.successors((0, 0))) == 2
        assert len(mesh.successors((0, 1))) == 3

    def test_default_attach_points(self):
        mesh = MeshTopology(16, 16)
        assert mesh.core_attach == (8, 0)
        assert mesh.memory_attach == (8, 15)

    def test_uniform_wire_delay(self):
        mesh = MeshTopology(4, 4, uniform_wire_delay=2)
        assert mesh.channel((0, 0), (0, 1)).wire_delay == 2

    def test_non_uniform_rows_set_vertical_delays(self):
        capacities = [64 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024]
        mesh = MeshTopology(4, 5, row_bank_capacities=capacities,
                            horizontal_wire_delay=3)
        # Entering row 1 (64KB) costs 1; entering row 4 (512KB) costs 3.
        assert mesh.channel((0, 0), (0, 1)).wire_delay == 1
        assert mesh.channel((0, 3), (0, 4)).wire_delay == 3
        assert mesh.channel((0, 4), (0, 3)).wire_delay == 3
        assert mesh.channel((0, 0), (1, 0)).wire_delay == 3

    def test_row_capacities_length_checked(self):
        with pytest.raises(TopologyError):
            MeshTopology(4, 4, row_bank_capacities=[64 * 1024] * 3)

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(TopologyError):
            MeshTopology(0, 4)

    def test_attach_columns_validated(self):
        with pytest.raises(TopologyError):
            MeshTopology(4, 4, core_column=9)

    def test_paper_formulas(self):
        assert MeshTopology.paper_total_links(16) == 900
        assert MeshTopology.paper_removable_links(16) == 196
        assert MeshTopology.paper_underutilized_links(16) == 254


class TestSimplifiedMesh:
    def test_keeps_only_first_row_horizontals(self):
        mesh = SimplifiedMeshTopology(4, 4)
        assert mesh.has_channel((0, 0), (1, 0))
        assert not mesh.has_channel((0, 1), (1, 1))
        assert not mesh.has_channel((0, 3), (1, 3))

    def test_keeps_all_verticals(self):
        mesh = SimplifiedMeshTopology(4, 4)
        for x in range(4):
            for y in range(3):
                assert mesh.has_channel((x, y), (x, y + 1))
                assert mesh.has_channel((x, y + 1), (x, y))

    def test_link_count(self):
        # verticals: cols * (rows-1); first-row horizontals: cols-1
        mesh = SimplifiedMeshTopology(16, 16)
        assert mesh.num_links == 16 * 15 + 15

    def test_memory_moves_next_to_core(self):
        mesh = SimplifiedMeshTopology(16, 16, core_column=8)
        assert mesh.memory_attach == (9, 0)

    def test_link_inventory_orientation(self):
        inventory = SimplifiedMeshTopology(4, 4).link_inventory()
        assert inventory["horizontal"] == 2 * 3
        assert inventory["vertical"] == 2 * 4 * 3


class TestHalo:
    def test_node_count(self):
        halo = HaloTopology(16, 16)
        assert halo.num_nodes == 1 + 16 * 16

    def test_every_mru_bank_one_hop_from_hub(self):
        halo = HaloTopology(16, 5)
        for spike in range(16):
            assert halo.has_channel(HUB, spike_node(spike, 0))
            assert halo.has_channel(spike_node(spike, 0), HUB)

    def test_spike_chain_connectivity(self):
        halo = HaloTopology(4, 4)
        for i in range(3):
            assert halo.has_channel(spike_node(2, i), spike_node(2, i + 1))
        assert not halo.has_channel(spike_node(0, 0), spike_node(1, 0))

    def test_link_count(self):
        assert HaloTopology(16, 16).num_links == 16 * 16
        assert HaloTopology(16, 5).num_links == 16 * 5

    def test_non_uniform_wire_delays(self):
        capacities = [64 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024]
        halo = HaloTopology(4, 5, position_bank_capacities=capacities)
        assert halo.channel(HUB, spike_node(0, 0)).wire_delay == 1
        assert halo.channel(spike_node(0, 3), spike_node(0, 4)).wire_delay == 3

    def test_memory_pin_delay(self):
        assert HaloTopology(4, 4, memory_pin_delay=16).memory_pin_delay == 16

    def test_capacities_length_checked(self):
        with pytest.raises(TopologyError):
            HaloTopology(4, 5, position_bank_capacities=[64 * 1024] * 3)

    def test_degenerate_rejected(self):
        with pytest.raises(TopologyError):
            HaloTopology(0, 4)

    def test_attach_points_at_hub(self):
        halo = HaloTopology(4, 4)
        assert halo.core_attach == HUB
        assert halo.memory_attach == HUB
