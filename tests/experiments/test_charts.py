"""Unit tests for the ASCII chart renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.charts import (
    grouped_bars,
    horizontal_bars,
    sparkline,
    stacked_bars,
)


class TestHorizontalBars:
    def test_bars_scale_to_maximum(self):
        out = horizontal_bars({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_baseline_marker(self):
        out = horizontal_bars({"a": 0.5, "b": 2.0}, width=10, baseline=1.0)
        assert "|" in out.splitlines()[0]

    def test_unit_suffix(self):
        out = horizontal_bars({"a": 1.5}, unit="x")
        assert "1.50x" in out

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            horizontal_bars({})

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigurationError):
            horizontal_bars({"a": 0.0})


class TestStackedBars:
    def test_normalized_width(self):
        out = stacked_bars(
            {"x": {"a": 30.0, "b": 70.0}, "y": {"a": 50.0, "b": 50.0}},
            width=20,
        )
        lines = out.splitlines()
        for line in lines[:2]:
            bar = line.split(" ", 1)[1]
            assert len(bar.rstrip()) == 20

    def test_legend_lists_series(self):
        out = stacked_bars({"x": {"bank": 1.0, "net": 2.0}})
        assert "#=bank" in out and "==net" in out.replace("=net", "=net")

    def test_mismatched_series_rejected(self):
        with pytest.raises(ConfigurationError):
            stacked_bars({"x": {"a": 1.0}, "y": {"b": 1.0}})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            stacked_bars({})


class TestGroupedBars:
    def test_groups_rendered(self):
        out = grouped_bars({"g1": {"a": 1.0, "b": 2.0}, "g2": {"a": 0.5, "b": 1.0}})
        assert "g1:" in out and "g2:" in out
        assert out.count("#") > 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            grouped_bars({})


class TestSparkline:
    def test_monotone_values(self):
        line = sparkline([1, 2, 3, 4, 5])
        assert len(line) == 5
        assert line[0] == " " and line[-1] == "@"

    def test_flat_values(self):
        assert len(sparkline([2, 2, 2])) == 3

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestReportFormatting:
    def test_format_table_alignment(self):
        from repro.experiments.report import format_table

        out = format_table(["a", "long_header"], [(1, 2.5), ("xy", 3)],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) <= 2  # uniform column alignment

    def test_format_ratio(self):
        from repro.experiments.report import format_ratio

        assert format_ratio(1.38) == "+38%"
        assert format_ratio(0.7) == "-30%"


class TestFullReport:
    def test_artifact_registry(self):
        from repro.experiments.full_report import artifact_names

        names = artifact_names()
        assert len(names) == 11
        assert any("Figure 9" in n for n in names)
