"""The parallel experiment engine and its persistent result cache.

The engine's contract is determinism: parallel, serial, and cached
evaluations of the same :class:`CellSpec` must be bit-identical, and the
persistent cache must invalidate on code changes and survive corruption.
"""

import dataclasses
import pickle

import pytest

from repro.core.flows import make_scheme
from repro.core.system import RunResult
from repro.experiments.cache import ResultCache, code_fingerprint
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import (
    CellSpec,
    execute_cell,
    reset_memo,
    run_cells,
    spec_for,
)

ENGINE_CONFIG = ExperimentConfig(measure=300)


def _result_fields(result: RunResult) -> tuple:
    """Every numeric observable a figure could read off a result."""
    return (
        result.design,
        result.scheme,
        result.accesses,
        result.cycles,
        result.ipc,
        result.average_latency,
        result.average_hit_latency,
        result.average_miss_latency,
        result.hit_rate,
        result.latency.network_sum,
        result.latency.bank_sum,
        result.latency.memory_sum,
    )


def _sweep_specs() -> list[CellSpec]:
    """The ISSUE's reference sweep: 2 designs x 3 benchmarks."""
    return [
        spec_for(design, "multicast+fast_lru", benchmark, ENGINE_CONFIG)
        for design in ("A", "F")
        for benchmark in ("art", "twolf", "mcf")
    ]


@pytest.fixture(autouse=True)
def _fresh_engine():
    reset_memo()
    yield
    reset_memo()


class TestRunCells:
    def test_parallel_bit_identical_to_serial(self):
        specs = _sweep_specs()
        serial = run_cells(specs, jobs=1, cache=None)
        reset_memo()
        parallel = run_cells(specs, jobs=2, cache=None)
        assert len(serial) == len(parallel) == 6
        for s, p in zip(serial, parallel):
            assert _result_fields(s) == _result_fields(p)

    def test_results_in_input_order_with_duplicates(self):
        spec = _sweep_specs()[0]
        other = _sweep_specs()[1]
        results = run_cells([spec, other, spec], jobs=1, cache=None)
        assert results[0] is results[2]
        assert results[0].design != results[1].design or (
            _result_fields(results[0]) != _result_fields(results[1])
        )

    def test_memo_shared_across_batches(self):
        spec = _sweep_specs()[0]
        first = run_cells([spec], jobs=1, cache=None)[0]
        again = run_cells([spec], jobs=1, cache=None)[0]
        assert again is first

    def test_scheme_aliases_share_a_cell(self):
        canonical = spec_for("A", "multicast+fast_lru", "art", ENGINE_CONFIG)
        for alias in ("multicast+fastlru", "MC+Fast-LRU", "mc+fast lru"):
            assert spec_for("A", alias, "art", ENGINE_CONFIG) == canonical


class TestTelemetryIntegration:
    def _merged_metrics(self, jobs: int) -> dict:
        from repro.telemetry import global_registry, reset_global_metrics

        reset_global_metrics()
        run_cells(_sweep_specs(), jobs=jobs, cache=None)
        snapshot = global_registry().snapshot()
        reset_global_metrics()
        return snapshot

    def test_serial_and_parallel_merge_identically(self):
        serial = self._merged_metrics(jobs=1)
        reset_memo()
        parallel = self._merged_metrics(jobs=2)
        assert serial
        assert serial == parallel

    def test_cache_replay_merges_identically(self, tmp_path):
        from repro.telemetry import global_registry, reset_global_metrics

        cache = ResultCache(directory=tmp_path)
        reset_global_metrics()
        run_cells(_sweep_specs(), jobs=1, cache=cache)
        fresh = global_registry().snapshot()
        reset_memo()
        reset_global_metrics()
        run_cells(_sweep_specs(), jobs=1, cache=cache)
        replayed = global_registry().snapshot()
        reset_global_metrics()
        assert cache.stats.hits == len(_sweep_specs())
        assert replayed == fresh

    def test_serial_parallel_and_warm_replay_merge_identically(self, tmp_path):
        """The full determinism triangle: a serial run, a ``--jobs 2`` run,
        and a warm-cache replay of the same sweep must merge to the same
        telemetry, not just the same results."""
        from repro.telemetry import global_registry, reset_global_metrics

        cache = ResultCache(directory=tmp_path)

        def merged(jobs: int) -> dict:
            reset_global_metrics()
            run_cells(_sweep_specs(), jobs=jobs, cache=cache)
            snapshot = global_registry().snapshot()
            reset_global_metrics()
            return snapshot

        serial = merged(jobs=1)
        reset_memo()
        parallel = merged(jobs=2)
        reset_memo()
        replayed = merged(jobs=1)  # every cell served from the warm cache
        assert cache.stats.hits >= len(_sweep_specs())
        assert serial
        assert serial == parallel == replayed

    def test_windowed_series_survive_the_triangle(self, tmp_path):
        """Series honor the same merge contract as every other metric: a
        windowed sweep's ``cache.series.*``/``noc.series.*`` payloads are
        byte-identical across serial, ``--jobs 2``, and warm-cache
        replay -- window maps merge per-index, order-independently."""
        import json

        from repro.telemetry import global_registry, reset_global_metrics

        config = dataclasses.replace(ENGINE_CONFIG, window=50)
        specs = [
            spec_for(design, "multicast+fast_lru", benchmark, config)
            for design in ("A", "F")
            for benchmark in ("art", "twolf")
        ]
        cache = ResultCache(directory=tmp_path)

        def merged(jobs: int) -> dict:
            reset_global_metrics()
            run_cells(specs, jobs=jobs, cache=cache)
            snapshot = global_registry().snapshot()
            reset_global_metrics()
            return snapshot

        serial = merged(jobs=1)
        reset_memo()
        parallel = merged(jobs=2)
        reset_memo()
        replayed = merged(jobs=1)  # every cell served from the warm cache
        assert cache.stats.hits >= len(specs)
        series = {
            name: snap for name, snap in serial.items()
            if snap["type"] == "series"
        }
        assert "cache.series.accesses" in series
        assert all(snap["window"] == 50 for snap in series.values())
        encode = lambda snap: json.dumps(snap, sort_keys=True)  # noqa: E731
        assert encode(serial) == encode(parallel) == encode(replayed)

    def test_window_is_part_of_the_cache_key(self):
        """A windowed cell must never replay from an unwindowed entry
        (the snapshots differ), so ``window`` lives on the CellSpec."""
        windowed = spec_for(
            "A", "multicast+fast_lru", "art",
            dataclasses.replace(ENGINE_CONFIG, window=50),
        )
        plain = spec_for("A", "multicast+fast_lru", "art", ENGINE_CONFIG)
        assert windowed != plain
        assert windowed.key() != plain.key()
        assert dict(windowed.key()[1:])["window"] == 50

    def test_results_carry_metrics_and_provenance(self):
        result = run_cells([_sweep_specs()[0]], jobs=1, cache=None)[0]
        assert result.metrics
        assert "noc.router.vc_alloc_failures" in result.metrics
        assert "cache.bankset.eviction_chain_depth" in result.metrics
        assert result.wall_s is not None and result.wall_s > 0
        assert result.provenance["seed"] == ENGINE_CONFIG.seed
        assert result.provenance["source_fingerprint"] == code_fingerprint()

    def test_provenance_is_pure_function_of_spec(self):
        spec = _sweep_specs()[0]
        first = execute_cell(spec).provenance
        second = execute_cell(spec).provenance
        assert first == second


class TestBatchReport:
    def test_sources_classified_and_summary(self, tmp_path):
        from repro.experiments.runner import last_batch

        cache = ResultCache(directory=tmp_path)
        specs = _sweep_specs()[:2]
        run_cells(specs, jobs=1, cache=cache)
        batch = last_batch()
        assert (batch.total, batch.unique, batch.computed) == (2, 2, 2)
        assert batch.summary() == "2 cells: 0 cached, 2 computed"

        run_cells(specs + [specs[0]], jobs=1, cache=cache)
        batch = last_batch()
        assert batch.total == 3 and batch.unique == 2
        assert batch.memo_hits == 2 and batch.computed == 0
        assert batch.summary() == "3 cells: 2 cached, 0 computed"

        reset_memo()
        run_cells(specs, jobs=1, cache=cache)
        batch = last_batch()
        assert batch.cache_hits == 2 and batch.computed == 0
        sources = {cell.source for cell in batch.cells}
        assert sources == {"cache"}
        assert batch.wall_s >= 0

    def test_journal_payload_is_json_able(self):
        import json

        from repro.experiments.runner import journal_payload

        run_cells(_sweep_specs()[:1], jobs=1, cache=None)
        payload = journal_payload()
        assert len(payload) == 1
        decoded = json.loads(json.dumps(payload))
        assert decoded[0]["cells"][0]["source"] == "computed"


class TestResultCache:
    def test_hit_returns_identical_result(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        spec = _sweep_specs()[0]
        fresh = run_cells([spec], jobs=1, cache=cache)[0]
        assert cache.stats.stores == 1
        reset_memo()
        cached = run_cells([spec], jobs=1, cache=cache)[0]
        assert cache.stats.hits == 1
        assert _result_fields(cached) == _result_fields(fresh)

    def test_fingerprint_change_invalidates(self, tmp_path):
        spec = _sweep_specs()[0]
        old = ResultCache(directory=tmp_path, fingerprint="aaaa")
        run_cells([spec], jobs=1, cache=old)
        reset_memo()
        new = ResultCache(directory=tmp_path, fingerprint="bbbb")
        run_cells([spec], jobs=1, cache=new)
        assert new.stats.misses == 1
        assert new.stats.hits == 0
        # Both fingerprints' entries coexist; neither clobbered the other.
        assert len(new) == 2

    def test_corrupted_entry_discarded_not_fatal(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        spec = _sweep_specs()[0]
        fresh = run_cells([spec], jobs=1, cache=cache)[0]
        [entry] = tmp_path.glob("*.pkl")
        entry.write_bytes(b"not a pickle at all")
        reset_memo()
        rerun = run_cells([spec], jobs=1, cache=cache)[0]
        assert cache.stats.discarded == 1
        assert cache.stats.hits == 0
        assert _result_fields(rerun) == _result_fields(fresh)

    def test_wrong_payload_key_discarded(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        key = ("cell", ("design", "A"))
        cache.put(key, "value")
        [entry] = tmp_path.glob("*.pkl")
        entry.write_bytes(
            pickle.dumps({"key": ("something", "else"), "value": "forged"})
        )
        assert cache.get(key) is None
        assert cache.stats.discarded == 1
        assert len(cache) == 0

    def test_unwritable_directory_is_not_fatal(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        cache = ResultCache(directory=blocker / "sub", fingerprint="f")
        cache.put(("k",), "value")  # must not raise
        assert cache.stats.write_failures == 1
        assert cache.stats.stores == 0
        assert cache.get(("k",)) is None

    def test_round_trip_and_clear(self, tmp_path):
        cache = ResultCache(directory=tmp_path, fingerprint="fixed")
        cache.put(("k",), {"x": 1})
        assert cache.get(("k",)) == {"x": 1}
        assert len(cache) == 1
        assert cache.clear() == 1
        assert cache.get(("k",)) is None

    def test_fingerprint_is_stable_within_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 20


class TestCellSpec:
    def test_spec_is_picklable_and_hashable(self):
        spec = _sweep_specs()[0]
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert spec in {spec}

    def test_key_covers_every_field(self):
        spec = _sweep_specs()[0]
        names = {name for name, _ in spec.key()[1:]}
        assert names == {f.name for f in dataclasses.fields(CellSpec)}

    def test_override_fields_reach_the_model(self):
        # mcf at this scale actually misses, so the off-chip latency
        # override must show up in the miss path.
        config = ExperimentConfig(measure=600)
        base = spec_for("A", "multicast+fast_lru", "mcf", config)
        slow = dataclasses.replace(base, memory_base_latency=500)
        base_result = execute_cell(base)
        slow_result = execute_cell(slow)
        assert base_result.latency.miss_count > 0
        assert (
            slow_result.average_miss_latency > base_result.average_miss_latency
        )


class TestSchemeAliases:
    def test_fastlru_spellings_accepted(self):
        for name in ("multicast+fastlru", "multicast+fast-lru",
                     "multicast+fast_lru"):
            assert make_scheme(name).name == "multicast+fast_lru"

    def test_unknown_scheme_error_lists_spellings(self):
        from repro.errors import ConfigurationError, ProtocolError

        with pytest.raises(ConfigurationError, match="fast_lru"):
            make_scheme("multicast+bogus")
        with pytest.raises(ProtocolError, match="multicast"):
            make_scheme("teleport+lru")
        with pytest.raises(ProtocolError, match="fast_lru"):
            make_scheme("justonename")

    def test_policy_by_name_aliases(self):
        from repro.cache.replacement import policy_by_name

        assert type(policy_by_name("fastlru")) is type(policy_by_name("fast_lru"))
        assert type(policy_by_name("Fast-LRU")) is type(policy_by_name("fast_lru"))
        with pytest.raises(Exception, match="fastlru"):
            policy_by_name("bogus")
