"""Smoke + shape tests for every figure/table driver (reduced scale)."""

import pytest

from repro.experiments import (
    fig2_hops,
    fig10_layout,
    figure7,
    figure8,
    figure9,
    headline,
    link_analysis,
    table1_params,
    table2_workloads,
    table3_designs,
    table4_area,
)


class TestFastDrivers:
    def test_table1(self):
        params = table1_params.run()
        assert "Table 1" in table1_params.render(params)
        for bank in params["banks"]:
            assert bank["model_wire_delay"] == bank["table1_wire_delay"]

    def test_table2(self, tiny_config):
        rows = table2_workloads.run(tiny_config)
        assert len(rows) == 12
        assert "art" in table2_workloads.render(rows)

    def test_table3(self):
        rows = table3_designs.run()
        assert all(row["capacity_mb"] == 16.0 for row in rows)
        assert "halo" in table3_designs.render(rows)

    def test_table4(self):
        areas = table4_area.run()
        assert table4_area.interconnect_ratio(areas) < 0.35
        assert "Table 4" in table4_area.render(areas)

    def test_fig2(self):
        results = fig2_hops.run()
        assert results["fast_lru"].total_hops < results["lru"].total_hops
        assert "21" in fig2_hops.render(results)

    def test_link_analysis(self):
        rows = link_analysis.run((4, 8))
        assert rows[0].paper_removable == 4
        assert "Section 4" in link_analysis.render(rows)

    def test_fig10(self):
        results = fig10_layout.run()
        assert results["waste_ratio"] > 1
        assert "die side" in fig10_layout.render(results)


class TestSimulationDrivers:
    def test_figure7_network_dominates(self, tiny_config):
        rows = figure7.run(tiny_config)
        avg = figure7.average_shares(rows)
        assert avg["network"] > avg["bank"]
        assert avg["network"] > avg["memory"]
        assert "Figure 7" in figure7.render(rows)

    def test_figure8_fastlru_wins(self, tiny_config):
        results = figure8.run(tiny_config)
        ratios = figure8.summary(results)
        assert ratios["fastlru_vs_lru"] < 0.95
        assert ratios["mc_fastlru_vs_mc_promotion"] < 0.95
        assert "Figure 8" in figure8.render(results)

    def test_figure9_halo_wins(self, tiny_config):
        result = figure9.run(tiny_config)
        assert result.geomean_normalized("F") > 1.0
        assert result.geomean_normalized("A") == pytest.approx(1.0)
        assert "Figure 9" in figure9.render(result)

    def test_headline(self, tiny_config):
        result = headline.run(tiny_config)
        assert result.ipc_full_vs_baseline > 1.0
        assert result.interconnect_area_ratio < 0.35
        assert "Headline" in headline.render(result)
