"""Smoke tests for the extension experiment drivers (tiny scale)."""

import pytest

from repro.experiments import ablations, cmp_scaling, noc_load, sensitivity
from repro.experiments.common import ExperimentConfig

TINY = ExperimentConfig(measure=250, benchmarks=("art", "twolf", "mcf"))


class TestAblations:
    def test_router_ablation(self):
        points = ablations.router_ablation(TINY)
        assert points[1].mean_latency > points[0].mean_latency
        assert "single-cycle" in ablations.render(points, "t")

    def test_mechanism_ablation_orders(self):
        points = ablations.mechanism_ablation(TINY)
        assert len(points) == 4
        assert points[3].mean_latency < points[0].mean_latency

    def test_spike_queue_depths(self):
        points = ablations.spike_queue_ablation(TINY, depths=(1, 2))
        assert len(points) == 2

    def test_sampling_ablation(self):
        ratios = ablations.sampling_ablation(TINY, index_spaces=(8, 16))
        assert set(ratios) == {8, 16}
        assert all(v > 0.9 for v in ratios.values())


class TestSensitivity:
    def test_memory_sweep_restores_config(self):
        from repro import config

        before = config.MEMORY_BASE_LATENCY
        points = sensitivity.memory_latency_sweep(
            TINY, base_latencies=(60, 300)
        )
        assert config.MEMORY_BASE_LATENCY == before
        assert len(points) == 2
        assert all(p.ipc_a > 0 for p in points)
        # Faster memory means higher absolute IPC everywhere.
        assert points[0].ipc_a > points[1].ipc_a

    def test_wire_sweep_restores_config(self):
        from repro.config import BankTiming

        before = BankTiming.for_capacity(65536).wire_delay
        points = sensitivity.wire_delay_sweep(TINY, scales=(1, 3))
        assert BankTiming.for_capacity(65536).wire_delay == before
        # Worse wires hurt absolute IPC.
        assert points[1].ipc_a < points[0].ipc_a

    def test_render(self):
        points = sensitivity.memory_latency_sweep(TINY, base_latencies=(130,))
        out = sensitivity.render(points, "t")
        assert "F / A" in out


class TestCMPScaling:
    def test_driver(self):
        points = cmp_scaling.run(designs=("A",), core_counts=(1, 2),
                                 measure=300)
        assert len(points) == 2
        assert points[1].aggregate_ipc > points[0].aggregate_ipc
        assert "agg IPC" in cmp_scaling.render(points)


class TestNoCLoad:
    def test_single_point(self):
        point = noc_load.run_load_point(0.05, mesh_size=4, cycles=150)
        assert point.delivered == point.offered
        assert point.average_latency > 0

    def test_render(self):
        points = noc_load.run(rates=(0.02, 0.3), mesh_size=4, cycles=150)
        out = noc_load.render(points)
        assert "latency trend" in out
