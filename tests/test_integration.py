"""Cross-cutting integration tests.

The most important one validates the transaction-level timing model
against the flit-level NoC simulator: for a single uncontended request the
two must agree exactly on the network traversal time.
"""

import pytest

from repro.config import RouterConfig
from repro.core.designs import design_a
from repro.noc import MeshTopology, MessageType, Network, Packet


class TestFidelityCrossValidation:
    @pytest.mark.parametrize(
        "src, dst",
        [((8, 0), (3, 0)), ((8, 0), (8, 10)), ((2, 0), (2, 15)),
         ((0, 5), (0, 9))],
    )
    def test_control_packet_traversal_matches_flit_level(self, src, dst):
        geometry = design_a.build()
        transaction_arrival, _ = geometry.traverse(src, dst, 0, flits=1)

        network = Network(MeshTopology(16, 16))
        network.inject(Packet(MessageType.READ_REQUEST, source=src,
                              destinations=(dst,)))
        network.run_until_drained()
        flit_arrival = network.stats.deliveries[0].delivered_at

        # The flit-level simulator adds one ejection-channel cycle that the
        # transaction model folds into the next component's start.
        assert flit_arrival == transaction_arrival + 1

    @pytest.mark.parametrize("src, dst", [((8, 0), (5, 0)), ((4, 0), (4, 6))])
    def test_data_packet_traversal_matches_flit_level(self, src, dst):
        geometry = design_a.build()
        transaction_arrival, _ = geometry.traverse(src, dst, 0, flits=5)

        network = Network(MeshTopology(16, 16))
        network.inject(Packet(MessageType.REPLACEMENT, source=src,
                              destinations=(dst,)))
        network.run_until_drained()
        flit_arrival = network.stats.deliveries[0].delivered_at

        assert flit_arrival == transaction_arrival + 1

    def test_multicast_column_matches_flit_level(self):
        geometry = design_a.build()
        column = 8  # the core's own column: no row hops in either model
        arrivals = geometry.multicast_column(column, 0)

        network = Network(MeshTopology(16, 16))
        destinations = tuple((column, y) for y in range(16))
        network.inject(Packet(MessageType.READ_REQUEST, source=(column, 0),
                              destinations=destinations))
        network.run_until_drained()
        flit_arrivals = {
            d.destination[1]: d.delivered_at for d in network.stats.deliveries
        }
        # Same chain: monotone down the column at ~2 cycles/hop. The
        # flit-level run adds the injection + ejection channel cycles the
        # transaction model folds into adjacent components (a constant
        # 2-cycle offset; 1 at the chain's end where no replica splits off).
        for position in range(16):
            diff = flit_arrivals[position] - arrivals[position]
            assert 0 <= diff <= 2

    def test_pipelined_router_slows_both_models(self):
        geometry_fast = design_a.build()
        spec_slow = design_a.build()
        spec_slow.router_config = RouterConfig(single_cycle=False)
        fast, _ = geometry_fast.traverse((0, 0), (0, 8), 0, flits=1)
        slow, _ = spec_slow.traverse((0, 0), (0, 8), 0, flits=1)
        assert slow > fast


class TestEndToEndShapes:
    def test_all_scheme_design_pairs_run(self):
        from repro import NetworkedCacheSystem, profile_by_name
        from repro.workloads import TraceGenerator

        profile = profile_by_name("vpr")
        trace, warmup = TraceGenerator(profile, seed=5).generate_with_warmup(
            measure=150
        )
        for design in "ABCDEF":
            for scheme in ("unicast+lru", "multicast+fast_lru"):
                system = NetworkedCacheSystem(design=design, scheme=scheme)
                result = system.run(trace, profile, warmup=warmup)
                assert result.accesses == 150
                assert result.ipc > 0
