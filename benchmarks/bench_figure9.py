"""Figure 9: normalized IPC of Designs A-F (Multicast Fast-LRU)."""

from conftest import emit

from repro.experiments import figure9
from repro.experiments.common import ExperimentConfig


def test_figure9_design_space(benchmark, config: ExperimentConfig, report_dir):
    result = benchmark.pedantic(figure9.run, args=(config,), rounds=1, iterations=1)
    emit(report_dir, "figure9", figure9.render(result))
    geo = {d: result.geomean_normalized(d) for d in "ABCDEF"}
    # B tracks A (paper: ~same, +7-10% on low-hit-rate benchmarks).
    assert 0.95 <= geo["B"] <= 1.15
    # The halos win (paper: E +12%, F +13%).
    assert geo["E"] > 1.05
    assert geo["F"] > 1.10
    assert geo["F"] >= geo["E"] - 0.02
    # D (non-uniform mesh) sits below A (paper: -12%).
    assert geo["D"] < 1.02
    # art: no misses, pure wire-delay sensitivity (paper: C/D degrade,
    # F x1.33).
    assert result.normalized("D", "art") < 0.9
    assert result.normalized("C", "art") < 0.95
    assert result.normalized("F", "art") > 1.2
    # lucas gains on F (paper x1.19).
    assert result.normalized("F", "lucas") > 1.1
