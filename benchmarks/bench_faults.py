"""Fault-campaign benchmark: resilience overhead and availability curve.

Standalone (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_faults.py [--measure N]

Runs the reference fault campaign (Design A, Multicast Fast-LRU, `art`)
across a rate sweep, times the zero-fault baseline against the faulted
points (the price of the resilience machinery plus the faults
themselves), and records the availability / latency-degradation curve.
Human-readable output goes to ``benchmarks/out/faults.txt``; the
machine-readable ``faults`` section is merged into ``BENCH_runtime.json``
at the repo root alongside the engine-runtime numbers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.runner import reset_memo
from repro.faults import CampaignConfig, run_campaign

ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"

SCHEME = "multicast+fast_lru"
RATES = (0.0, 1e-3, 1e-2)


def bench_campaign(measure: int) -> dict:
    config = CampaignConfig(
        designs=("A",),
        schemes=(SCHEME,),
        benchmark="art",
        rates=RATES,
        measure=measure,
        seed=1,
        fault_seed=7,
    )
    reset_memo()
    t0 = time.perf_counter()
    result = run_campaign(config)
    campaign_s = time.perf_counter() - t0
    reset_memo()

    points = [point.as_dict() for point in result.points]
    baseline = result.point("A", SCHEME, 0.0)
    worst = result.point("A", SCHEME, max(RATES))
    return {
        "measure": measure,
        "rates": list(config.sweep_rates()),
        "campaign_s": round(campaign_s, 3),
        "baseline_avg_latency": round(baseline.average_latency, 3),
        "worst_rate_availability": worst.availability,
        "worst_rate_latency_degradation": round(
            worst.latency_degradation, 3
        ),
        "worst_rate_faults_injected": worst.faults_injected,
        "points": points,
    }


def render(faults: dict) -> str:
    lines = [
        "Fault-campaign benchmark",
        "========================",
        f"Design A, {SCHEME}, art, measure={faults['measure']}, "
        f"rates={faults['rates']}",
        f"  campaign wall time  {faults['campaign_s']:8.3f} s",
        "",
        f"{'rate':>8}  {'avail':>7}  {'lat degr':>8}  {'faults':>6}  "
        f"{'rerouted':>8}  {'retries':>7}",
    ]
    for point in faults["points"]:
        lines.append(
            f"{point['rate']:>8g}  {point['availability']:>7.1%}  "
            f"x{point['latency_degradation']:>7.2f}  "
            f"{point['faults_injected']:>6}  "
            f"{point['rerouted_packets']:>8}  {point['retries']:>7}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--measure", type=int, default=600,
                        help="measured accesses per cell (default 600)")
    args = parser.parse_args(argv)

    faults = bench_campaign(args.measure)
    text = render(faults)
    print(text)

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "faults.txt").write_text(text + "\n", encoding="utf-8")

    bench_path = ROOT / "BENCH_runtime.json"
    payload = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    payload["faults"] = faults
    bench_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
