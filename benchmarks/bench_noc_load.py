"""Flit-level NoC under load: latency vs offered traffic."""

from conftest import emit

from repro.experiments import noc_load


def test_load_latency_curve(benchmark, report_dir):
    points = benchmark.pedantic(noc_load.run, rounds=1, iterations=1)
    emit(report_dir, "noc_load", noc_load.render(points))
    # Everything offered is eventually delivered.
    for point in points:
        assert point.delivered == point.offered
    # Latency grows with load...
    latencies = [p.average_latency for p in points]
    assert latencies == sorted(latencies)
    # ...and the heaviest load is visibly contended vs the lightest.
    assert latencies[-1] > 1.5 * latencies[0]
