"""Runtime benchmark for the experiment engine and the simulator hot path.

Standalone (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_runtime.py [--measure N] [--jobs N]

Times the fixed Fig.-9 reference sweep three ways -- serial, parallel
(``--jobs``, default every core), and a warm persistent cache -- checks the
three produce bit-identical results, and microbenchmarks
:meth:`Resource.acquire` on a dense 10k-interval workload against the
seed's linear-scan placement. Human-readable output goes to
``benchmarks/out/runtime.txt``; machine-readable numbers to
``BENCH_runtime.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import random
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.core.designs import DESIGN_NAMES
from repro.experiments.cache import ResultCache
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import reset_memo, run_cells, spec_for
from repro.sim.resource import Resource

ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"

SWEEP_BENCHMARKS = ("art", "twolf", "mcf")
SWEEP_SCHEME = "multicast+fast_lru"


def _sweep_specs(measure: int):
    """The Fig.-9 reference sweep: every design, one scheme, 3 benchmarks."""
    config = ExperimentConfig(measure=measure)
    return [
        spec_for(design, SWEEP_SCHEME, benchmark, config)
        for design in DESIGN_NAMES
        for benchmark in SWEEP_BENCHMARKS
    ]


def _signature(results) -> list:
    return [
        (r.design, r.scheme, r.cycles, r.ipc, r.average_latency, r.hit_rate)
        for r in results
    ]


def bench_sweep(measure: int, jobs: int) -> dict:
    specs = _sweep_specs(measure)

    reset_memo()
    t0 = time.perf_counter()
    serial = run_cells(specs, jobs=1, cache=None)
    serial_s = time.perf_counter() - t0

    reset_memo()
    t0 = time.perf_counter()
    parallel = run_cells(specs, jobs=jobs, cache=None)
    parallel_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(directory=tmp)
        reset_memo()
        t0 = time.perf_counter()
        run_cells(specs, jobs=1, cache=cache)
        cold_cache_s = time.perf_counter() - t0
        reset_memo()
        t0 = time.perf_counter()
        warm = run_cells(specs, jobs=1, cache=cache)
        warm_cache_s = time.perf_counter() - t0
        assert cache.stats.hits == len(specs), cache.stats

    identical = (
        _signature(serial) == _signature(parallel) == _signature(warm)
    )
    return {
        "cells": len(specs),
        "measure": measure,
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "cold_cache_s": round(cold_cache_s, 3),
        "warm_cache_s": round(warm_cache_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "warm_cache_speedup": round(serial_s / warm_cache_s, 2),
        "bit_identical": identical,
    }


class _LinearScanResource:
    """The seed's Resource placement: a linear walk over (start, end) pairs.

    Kept here (not in repro) purely as the microbenchmark baseline.
    """

    def __init__(self) -> None:
        self._intervals: list[tuple[int, int]] = []

    def acquire(self, time: int, duration: int) -> int:
        start = max(time, 0)
        intervals = self._intervals
        placed_at = None
        for i, (busy_start, busy_end) in enumerate(intervals):
            if start + duration <= busy_start:
                placed_at = i
                break
            start = max(start, busy_end)
        if placed_at is None:
            intervals.append((start, start + duration))
        else:
            intervals.insert(placed_at, (start, start + duration))
        return start


def _acquire_workload(n: int) -> list[tuple[int, int]]:
    """A dense reservation pattern: many arrivals land on busy intervals."""
    rng = random.Random(20070212)
    horizon = n * 2  # ~50% raw occupancy => long busy runs, real gaps
    return [(rng.randrange(horizon), rng.randrange(1, 4)) for _ in range(n)]


def bench_acquire(n: int = 10_000) -> dict:
    requests = _acquire_workload(n)

    baseline = _LinearScanResource()
    t0 = time.perf_counter()
    expected = [baseline.acquire(t, d) for t, d in requests]
    linear_s = time.perf_counter() - t0

    optimized = Resource("bench")  # no floor clock: intervals accumulate
    t0 = time.perf_counter()
    got = [optimized.acquire(t, d) for t, d in requests]
    bisect_s = time.perf_counter() - t0

    assert got == expected, "bisect placement diverged from linear scan"
    return {
        "intervals": n,
        "linear_scan_s": round(linear_s, 3),
        "bisect_s": round(bisect_s, 3),
        "speedup": round(linear_s / bisect_s, 1),
        "identical_grants": True,
    }


def bench_telemetry(measure: int) -> dict:
    """Telemetry overhead on one cell: disabled vs JSONL-traced.

    ``disabled_overhead`` is the regression the ISSUE bounds at 5%: the
    cost of having instrumentation compiled in but no sink installed,
    relative to the best observed cell time. ``traced_ratio`` is the
    opt-in price of full JSONL tracing.
    """
    from repro.experiments.runner import execute_cell
    from repro.telemetry import open_sink, set_sink

    spec = _sweep_specs(measure)[0]
    execute_cell(spec)  # warm trace/import caches outside timed runs

    def timed(repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            execute_cell(spec)
            best = min(best, time.perf_counter() - t0)
        return best

    disabled_s = timed()
    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as tmp:
        sink = open_sink(pathlib.Path(tmp) / "cell.jsonl", "jsonl")
        previous = set_sink(sink)
        try:
            traced_s = timed()
        finally:
            set_sink(previous)
            sink.close()
        events = sink.events_written
    return {
        "measure": measure,
        "disabled_cell_s": round(disabled_s, 4),
        "traced_cell_s": round(traced_s, 4),
        "traced_ratio": round(traced_s / disabled_s, 3),
        "trace_events": events,
    }


def bench_windowed(measure: int, window: int = 64) -> dict:
    """Windowed-series overhead on one cell: window=0 vs window=N.

    ``windowed_ratio`` is the price of sampling every access into
    per-window Series metrics; the off path must stay free (the guard
    test bounds ``windowed_ratio`` and checks the window=0 snapshot
    carries no series at all).
    """
    from repro.experiments.runner import execute_cell

    config = ExperimentConfig(measure=measure)
    plain_spec = spec_for("A", SWEEP_SCHEME, "art", config)
    windowed_spec = spec_for(
        "A", SWEEP_SCHEME, "art", config, window=window
    )
    execute_cell(plain_spec)  # warm trace/import caches

    def timed(spec, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            execute_cell(spec)
            best = min(best, time.perf_counter() - t0)
        return best

    plain_s = timed(plain_spec)
    windowed_s = timed(windowed_spec)
    result = execute_cell(windowed_spec)
    series_keys = [
        key for key in result.metrics if key.startswith("cache.series.")
    ]
    return {
        "measure": measure,
        "window": window,
        "plain_cell_s": round(plain_s, 4),
        "windowed_cell_s": round(windowed_s, 4),
        "windowed_ratio": round(windowed_s / plain_s, 3),
        "series_metrics": len(series_keys),
    }


def render(payload: dict) -> str:
    sweep, acquire = payload["sweep"], payload["acquire"]
    lines = [
        "Engine runtime benchmark",
        "========================",
        f"host: {payload['host']['platform']}, "
        f"{payload['host']['cpu_count']} core(s), "
        f"python {payload['host']['python']}",
        "",
        f"Reference sweep: {sweep['cells']} cells "
        f"({len(DESIGN_NAMES)} designs x {SWEEP_SCHEME} x "
        f"{len(SWEEP_BENCHMARKS)} benchmarks), "
        f"measure={sweep['measure']}",
        f"  serial          {sweep['serial_s']:8.3f} s",
        f"  parallel (j={sweep['jobs']})  {sweep['parallel_s']:8.3f} s  "
        f"(x{sweep['parallel_speedup']:.2f})",
        f"  cold cache      {sweep['cold_cache_s']:8.3f} s",
        f"  warm cache      {sweep['warm_cache_s']:8.3f} s  "
        f"(x{sweep['warm_cache_speedup']:.2f})",
        f"  bit-identical across modes: {sweep['bit_identical']}",
        "",
        f"Resource.acquire, dense {acquire['intervals']}-interval workload:",
        f"  linear scan (seed) {acquire['linear_scan_s']:8.3f} s",
        f"  bisect placement   {acquire['bisect_s']:8.3f} s  "
        f"(x{acquire['speedup']:.1f})",
        f"  identical grants: {acquire['identical_grants']}",
    ]
    telemetry = payload.get("telemetry")
    if telemetry:
        lines += [
            "",
            f"Telemetry, one cell at measure={telemetry['measure']}:",
            f"  disabled (null sink) {telemetry['disabled_cell_s']:8.4f} s",
            f"  JSONL traced         {telemetry['traced_cell_s']:8.4f} s  "
            f"(x{telemetry['traced_ratio']:.2f}, "
            f"{telemetry['trace_events']} events)",
        ]
    windowed = payload.get("windowed_telemetry")
    if windowed:
        lines += [
            "",
            f"Windowed series, one cell at measure={windowed['measure']}, "
            f"window={windowed['window']}:",
            f"  window off           {windowed['plain_cell_s']:8.4f} s",
            f"  window on            {windowed['windowed_cell_s']:8.4f} s  "
            f"(x{windowed['windowed_ratio']:.2f}, "
            f"{windowed['series_metrics']} series)",
        ]
    array_core = payload.get("array_core")
    if array_core:
        lines += [
            "",
            "Array (SoA) flit core vs object reference core:",
            f"  per-cell (protocol-paced) x{array_core['per_cell_speedup']:.1f}, "
            f"saturated-mesh floor x{array_core['min_speedup']:.1f}, "
            f"bit-identical: {array_core['bit_identical']}",
        ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--measure", type=int, default=2000,
                        help="measured accesses per cell (default 2000)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel worker count (0 = all cores)")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)

    payload = {
        "host": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "sweep": bench_sweep(args.measure, jobs),
        "acquire": bench_acquire(),
        "telemetry": bench_telemetry(args.measure),
        "windowed_telemetry": bench_windowed(args.measure),
    }
    from repro.noc.arraycore import HAVE_NUMPY

    if HAVE_NUMPY:
        from bench_arraycore import bench_array_core

        payload["array_core"] = bench_array_core(packets=400)

    text = render(payload)
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "runtime.txt").write_text(text + "\n", encoding="utf-8")

    # Merge over the existing payload so sections owned by the sibling
    # benchmarks (e.g. ``faults``) survive a runtime-only refresh.
    bench_path = ROOT / "BENCH_runtime.json"
    merged = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    merged.update(payload)
    bench_path.write_text(
        json.dumps(merged, indent=2) + "\n", encoding="utf-8"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
