"""Table 1: system-parameter echo plus RC-model wire-delay cross-check."""

from conftest import emit

from repro.experiments import table1_params


def test_table1_parameters(benchmark, report_dir):
    params = benchmark.pedantic(table1_params.run, rounds=3, iterations=1)
    emit(report_dir, "table1_params", table1_params.render(params))
    for bank in params["banks"]:
        assert bank["model_wire_delay"] == bank["table1_wire_delay"]
    assert params["memory_latency"] == 162
    assert params["data_packet_flits"] == 5
