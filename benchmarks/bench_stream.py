"""Runtime benchmark for the open-loop streaming service.

Standalone (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_stream.py [--cycles N] [--jobs N]

Times a fixed overload sweep (two admission policies x four offered
loads on design C / duo-bursty) three ways -- serial, parallel, and a
warm persistent cache -- checks the three produce bit-identical
results, and measures raw single-cell serving throughput (simulated
cycles and served requests per wall second) on both simulation cores.
Human-readable output goes to ``benchmarks/out/stream.txt``; a
``streaming`` section is merged into ``BENCH_runtime.json`` at the
repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.cache import ResultCache
from repro.experiments.runner import reset_memo, run_cells
from repro.experiments.stream_sweep import StreamSweepConfig, sweep_specs
from repro.stream.engine import execute_stream_cell, stream_spec_for

ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


def _signature(results) -> list:
    return [
        (
            r.design, r.scheme, r.benchmark, r.offered, r.admitted,
            r.rejected, r.completed, r.goodput_per_kcycle,
            tuple(sorted(r.quantiles.items())),
        )
        for r in results
    ]


def bench_sweep(cycles: int, jobs: int) -> dict:
    """The engine triangle on the reference overload sweep."""
    config = StreamSweepConfig(cycles=cycles)
    specs = sweep_specs(config)

    reset_memo()
    t0 = time.perf_counter()
    serial = run_cells(specs, jobs=1, cache=None)
    serial_s = time.perf_counter() - t0

    reset_memo()
    t0 = time.perf_counter()
    parallel = run_cells(specs, jobs=jobs, cache=None)
    parallel_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-bench-stream-") as tmp:
        cache = ResultCache(directory=tmp)
        reset_memo()
        run_cells(specs, jobs=1, cache=cache)
        reset_memo()
        t0 = time.perf_counter()
        warm = run_cells(specs, jobs=1, cache=cache)
        warm_cache_s = time.perf_counter() - t0
        assert cache.stats.hits == len(specs), cache.stats

    identical = (
        _signature(serial) == _signature(parallel) == _signature(warm)
    )
    return {
        "cells": len(specs),
        "cycles": cycles,
        "jobs": jobs,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "warm_cache_s": round(warm_cache_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "bit_identical": identical,
    }


def bench_throughput(cycles: int) -> dict:
    """Single-cell serving rate per core: cycles/s and requests/s."""
    out = {}
    for core in ("object", "array"):
        spec = stream_spec_for(
            "C", "drop-tail", "duo-bursty",
            cycles=cycles, load=2.0, core=core,
        )
        execute_stream_cell(spec)  # warm import/trace caches
        best = float("inf")
        completed = 0
        for _ in range(3):
            t0 = time.perf_counter()
            result = execute_stream_cell(spec)
            best = min(best, time.perf_counter() - t0)
            completed = result.completed
        out[core] = {
            "cell_s": round(best, 4),
            "kcycles_per_s": round(cycles / best / 1000, 1),
            "requests_per_s": round(completed / best, 1),
        }
    return out


def render(section: dict) -> str:
    sweep, throughput = section["sweep"], section["throughput"]
    lines = [
        "Streaming service benchmark",
        "===========================",
        f"host: {section['host']['platform']}, "
        f"{section['host']['cpu_count']} core(s), "
        f"python {section['host']['python']}",
        "",
        f"Overload sweep: {sweep['cells']} cells "
        f"(2 policies x 4 loads, C/duo-bursty), "
        f"cycles={sweep['cycles']}",
        f"  serial          {sweep['serial_s']:8.3f} s",
        f"  parallel (j={sweep['jobs']})  {sweep['parallel_s']:8.3f} s  "
        f"(x{sweep['parallel_speedup']:.2f})",
        f"  warm cache      {sweep['warm_cache_s']:8.3f} s",
        f"  bit-identical across modes: {sweep['bit_identical']}",
        "",
        f"Single cell (C/duo-bursty, load 2.0, {sweep['cycles']} cycles):",
    ]
    for core in ("object", "array"):
        cell = throughput[core]
        lines.append(
            f"  {core:<7} core  {cell['cell_s']:8.4f} s  "
            f"({cell['kcycles_per_s']} kcycles/s, "
            f"{cell['requests_per_s']} req/s)"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=3000,
                        help="open-loop cycles per cell (default 3000)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="parallel worker count (0 = all cores)")
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)

    section = {
        "host": {
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "sweep": bench_sweep(args.cycles, jobs),
        "throughput": bench_throughput(args.cycles),
    }
    text = render(section)
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "stream.txt").write_text(text + "\n", encoding="utf-8")

    # Merge under a "streaming" key so sections owned by the sibling
    # benchmarks survive a stream-only refresh.
    bench_path = ROOT / "BENCH_runtime.json"
    merged = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    merged["streaming"] = section
    bench_path.write_text(
        json.dumps(merged, indent=2) + "\n", encoding="utf-8"
    )
    if not section["sweep"]["bit_identical"]:
        print("FAIL: sweep results diverged across modes", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
