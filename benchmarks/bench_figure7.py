"""Figure 7: latency distribution of L2 accesses (Unicast LRU)."""

from conftest import emit

from repro.experiments import figure7
from repro.experiments.common import ExperimentConfig


def test_figure7_latency_distribution(benchmark, config: ExperimentConfig, report_dir):
    rows = benchmark.pedantic(figure7.run, args=(config,), rounds=1, iterations=1)
    emit(report_dir, "figure7", figure7.render(rows))
    avg = figure7.average_shares(rows)
    # The paper's observation: network dominates (65%), then bank (25%),
    # then memory (10%).
    assert avg["network"] > avg["bank"] > 0
    assert avg["network"] > 0.45
    assert avg["memory"] < avg["network"]
