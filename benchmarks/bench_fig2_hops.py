"""Figure 2 example: LRU vs Fast-LRU communication hop counts."""

from conftest import emit

from repro.experiments import fig2_hops


def test_fig2_hop_example(benchmark, report_dir):
    results = benchmark.pedantic(fig2_hops.run, rounds=1, iterations=1)
    emit(report_dir, "fig2_hops", fig2_hops.render(results))
    lru, fast = results["lru"], results["fast_lru"]
    # Fast-LRU roughly halves LRU's communication (paper: 21 -> 12 hops).
    assert fast.total_hops < lru.total_hops
    assert 0.3 <= fast.total_hops / lru.total_hops <= 0.75
    assert fast.transaction_latency < lru.transaction_latency
