"""Seed robustness: the design-space conclusions must not depend on the
synthetic traces' random seed."""

from conftest import emit

from repro.experiments.common import ExperimentConfig, geometric_mean
from repro.experiments.runner import run_cells, spec_for

BENCHMARKS = ("art", "twolf", "mcf")
SEEDS = (1, 7, 42)


def _sweep(measure: int) -> dict[int, float]:
    """Halo/mesh IPC ratio per seed, evaluated as one engine batch."""
    specs = [
        spec_for(design, "multicast+fast_lru", name,
                 ExperimentConfig(measure=measure, seed=seed))
        for seed in SEEDS
        for design in ("A", "F")
        for name in BENCHMARKS
    ]
    results = iter(run_cells(specs))
    ratios = {}
    for seed in SEEDS:
        ipc = {
            design: geometric_mean([next(results).ipc for _ in BENCHMARKS])
            for design in ("A", "F")
        }
        ratios[seed] = ipc["F"] / ipc["A"]
    return ratios


def test_halo_win_robust_to_seed(benchmark, config, report_dir):
    ratios = benchmark.pedantic(
        _sweep, args=(max(1200, config.measure // 4),), rounds=1, iterations=1
    )
    emit(report_dir, "seed_robustness",
         "Halo/mesh IPC ratio by trace seed: "
         + ", ".join(f"seed {k}: {v:.2f}" for k, v in ratios.items()))
    values = list(ratios.values())
    assert all(v > 1.05 for v in values)
    assert max(values) - min(values) < 0.15
