"""Seed robustness: the design-space conclusions must not depend on the
synthetic traces' random seed."""

from conftest import emit

from repro.core.system import NetworkedCacheSystem
from repro.experiments.common import geometric_mean
from repro.workloads import TraceGenerator, profile_by_name

BENCHMARKS = ("art", "twolf", "mcf")


def _halo_ratio(seed: int, measure: int) -> float:
    ipcs = {"A": [], "F": []}
    for name in BENCHMARKS:
        profile = profile_by_name(name)
        trace, warmup = TraceGenerator(profile, seed=seed).generate_with_warmup(
            measure=measure
        )
        for design in ("A", "F"):
            system = NetworkedCacheSystem(design=design,
                                          scheme="multicast+fast_lru")
            ipcs[design].append(system.run(trace, profile, warmup=warmup).ipc)
    return geometric_mean(ipcs["F"]) / geometric_mean(ipcs["A"])


def _sweep(measure: int) -> dict[int, float]:
    return {seed: _halo_ratio(seed, measure) for seed in (1, 7, 42)}


def test_halo_win_robust_to_seed(benchmark, config, report_dir):
    ratios = benchmark.pedantic(
        _sweep, args=(max(1200, config.measure // 4),), rounds=1, iterations=1
    )
    emit(report_dir, "seed_robustness",
         "Halo/mesh IPC ratio by trace seed: "
         + ", ".join(f"seed {k}: {v:.2f}" for k, v in ratios.items()))
    values = list(ratios.values())
    assert all(v > 1.05 for v in values)
    assert max(values) - min(values) < 0.15
