"""Section 4: removable / underutilized link counts."""

from conftest import emit

from repro.experiments import link_analysis


def test_link_analysis(benchmark, report_dir):
    rows = benchmark.pedantic(link_analysis.run, rounds=1, iterations=1)
    emit(report_dir, "link_analysis", link_analysis.render(rows))
    for row in rows:
        assert row.paper_removable == (row.n - 2) ** 2
        assert row.paper_underutilized == row.n * (row.n - 2) + 2 * (row.n - 1)
        # Our constructed simplification approaches ~50% for large meshes,
        # bracketing the paper's two-stage 25% + 25% savings.
        assert 0.3 <= row.link_saving <= 0.55
