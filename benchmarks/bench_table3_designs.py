"""Table 3: design list echo and structural invariants."""

from conftest import emit

from repro.experiments import table3_designs


def test_table3_designs(benchmark, report_dir):
    rows = benchmark.pedantic(table3_designs.run, rounds=1, iterations=1)
    emit(report_dir, "table3_designs", table3_designs.render(rows))
    assert [r["design"] for r in rows] == list("ABCDEF")
    for row in rows:
        assert row["capacity_mb"] == 16.0
        assert row["associativity"] == 16
    assert rows[4]["halo"] and rows[5]["halo"]
    assert rows[1]["simplified"] and rows[2]["simplified"] and rows[3]["simplified"]
