"""Extended baselines: S-NUCA and the footnote-4 Promotion miss variants."""

from conftest import emit

from repro.cache.replacement import PromotionPolicy
from repro.core.flows import Scheme
from repro.core.static_system import StaticNUCASystem
from repro.core.system import NetworkedCacheSystem
from repro.workloads import TraceGenerator, profile_by_name


def _snuca_vs_dnuca(measure: int):
    rows = {}
    for bname in ("art", "twolf", "mcf"):
        profile = profile_by_name(bname)
        trace, warmup = TraceGenerator(profile, seed=4).generate_with_warmup(
            measure=measure
        )
        snuca = StaticNUCASystem(design="A").run(trace, profile, warmup=warmup)
        dnuca = NetworkedCacheSystem(
            design="A", scheme="multicast+fast_lru"
        ).run(trace, profile, warmup=warmup)
        rows[bname] = (snuca, dnuca)
    return rows


def test_snuca_baseline(benchmark, config, report_dir):
    rows = benchmark.pedantic(
        _snuca_vs_dnuca, args=(max(1200, config.measure // 4),),
        rounds=1, iterations=1,
    )
    lines = ["S-NUCA vs D-NUCA (Design A fabric, multicast Fast-LRU)"]
    for bname, (snuca, dnuca) in rows.items():
        lines.append(
            f"  {bname:6s} S-NUCA lat {snuca.average_latency:6.1f} "
            f"IPC {snuca.ipc:.3f} | D-NUCA lat {dnuca.average_latency:6.1f} "
            f"IPC {dnuca.ipc:.3f}"
        )
    emit(report_dir, "snuca_baseline", "\n".join(lines))
    # Migration pays for hit-dominated workloads: blocks concentrate near
    # the core instead of sitting at their static (uniformly deep) home.
    for bname in ("art", "twolf"):
        snuca, dnuca = rows[bname]
        assert dnuca.average_hit_latency < snuca.average_hit_latency
        assert dnuca.ipc > snuca.ipc


def _promotion_variants(measure: int):
    profile = profile_by_name("mcf")
    trace, warmup = TraceGenerator(profile, seed=5).generate_with_warmup(
        measure=measure
    )
    rows = {}
    for variant in PromotionPolicy.MISS_POLICIES:
        scheme = Scheme(multicast=True, policy=PromotionPolicy(miss_policy=variant))
        system = NetworkedCacheSystem(design="A", scheme=scheme)
        rows[variant] = system.run(trace, profile, warmup=warmup)
    return rows


def test_promotion_miss_variants(benchmark, config, report_dir):
    rows = benchmark.pedantic(
        _promotion_variants, args=(max(1200, config.measure // 4),),
        rounds=1, iterations=1,
    )
    lines = ["Footnote-4 Promotion miss variants on mcf (Design A, multicast)"]
    for variant, result in rows.items():
        lines.append(
            f"  {variant:10s} hit rate {result.hit_rate:.3f}  "
            f"miss lat {result.average_miss_latency:6.1f}  "
            f"IPC {result.ipc:.3f}"
        )
    emit(report_dir, "promotion_variants", "\n".join(lines))
    # The paper's exact caveat: the cheap fills reduce miss latency but
    # "can evict the important data from the cache".
    assert rows["zero_copy"].average_miss_latency \
        < rows["recursive"].average_miss_latency
    assert rows["one_copy"].average_miss_latency \
        < rows["recursive"].average_miss_latency
    assert rows["zero_copy"].hit_rate < rows["recursive"].hit_rate
    assert rows["one_copy"].hit_rate < rows["recursive"].hit_rate
    # Net: recursive replacement wins on IPC, which is why the paper
    # implements it despite the longer miss.
    assert rows["recursive"].ipc >= rows["one_copy"].ipc
