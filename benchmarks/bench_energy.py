"""Energy analysis + on-demand power gating (the paper's future work)."""

from conftest import emit

from repro.core.system import NetworkedCacheSystem
from repro.power import EnergyMeter, GatingPolicy, simulate_gating
from repro.workloads import TraceGenerator, profile_by_name


def _run(design: str, scheme: str, measure: int):
    profile = profile_by_name("twolf")
    trace, warmup = TraceGenerator(profile, seed=2).generate_with_warmup(
        measure=measure
    )
    system = NetworkedCacheSystem(design=design, scheme=scheme)
    result = system.run(trace, profile, warmup=warmup)
    return system, result


def _sweep(measure: int):
    rows = {}
    meter = EnergyMeter()
    for design, scheme in (
        ("A", "multicast+promotion"),
        ("A", "unicast+fast_lru"),
        ("A", "multicast+fast_lru"),
        ("F", "multicast+fast_lru"),
    ):
        system, result = _run(design, scheme, measure)
        report = meter.measure(system, result)
        gating = simulate_gating(system, result, GatingPolicy(idle_threshold=2000))
        rows[(design, scheme)] = (report, gating)
    return rows


def test_energy_and_gating(benchmark, config, report_dir):
    rows = benchmark.pedantic(
        _sweep, args=(max(1500, config.measure // 3),), rounds=1, iterations=1
    )
    lines = ["Energy per L2 access (pJ) and on-demand gating outcomes"]
    for (design, scheme), (report, gating) in rows.items():
        fractions = report.fractions()
        lines.append(
            f"  {design}/{scheme:22s} {report.pj_per_access:8.0f} pJ/acc "
            f"(net {fractions['router'] + fractions['link']:.0%}, "
            f"bank {fractions['bank']:.0%}, leak {fractions['leakage']:.0%}) | "
            f"gated {gating.gated_fraction:.0%}, "
            f"wake +{gating.average_latency_penalty:.2f} cyc/acc"
        )
    emit(report_dir, "energy", "\n".join(lines))

    a_promo = rows[("A", "multicast+promotion")][0]
    a_fast = rows[("A", "multicast+fast_lru")][0]
    f_fast = rows[("F", "multicast+fast_lru")][0]
    unicast = rows[("A", "unicast+fast_lru")][0]

    # The halo's smaller network and die cut energy per access hard.
    assert f_fast.pj_per_access < 0.75 * a_fast.pj_per_access
    # Fast-LRU does not cost energy over Promotion at the same cast.
    assert a_fast.total_pj <= 1.1 * a_promo.total_pj
    # Multicast touches every bank of the set: more bank energy than the
    # sequential search (the paper's Section-7 caveat about multicast).
    assert a_fast.bank_pj > unicast.bank_pj

    # Gating: the unicast search leaves far more banks idle to gate.
    gating_unicast = rows[("A", "unicast+fast_lru")][1]
    gating_multicast = rows[("A", "multicast+fast_lru")][1]
    assert gating_unicast.gated_fraction > gating_multicast.gated_fraction
