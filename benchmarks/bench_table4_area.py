"""Table 4: area analysis of the network designs."""

from conftest import emit

from repro.experiments import table4_area


def test_table4_area(benchmark, report_dir):
    areas = benchmark.pedantic(table4_area.run, rounds=1, iterations=1)
    emit(report_dir, "table4_area", table4_area.render(areas))
    # Design A: the network (routers + links) claims about half the cache
    # area (paper: 52%).
    assert 0.40 <= areas["A"].network_fraction <= 0.60
    # Paper-close checkpoints.
    for key, (bank_pct, router_pct, link_pct, l2, chip) in (
        ("A", table4_area.PAPER_TABLE4["A"],),
        ("E", table4_area.PAPER_TABLE4["E"],),
    ):
        area = areas[key]
        assert abs(area.l2_mm2 - l2) / l2 < 0.12
        assert abs(100 * area.router_fraction - router_pct) < 4
    # E wastes most of its die; F does not (paper: 402/1602 vs 312/518).
    assert areas["E"].chip_mm2 > 3 * areas["E"].l2_mm2
    assert areas["F"].chip_mm2 < 2 * areas["F"].l2_mm2
    # The headline interconnect-area ratio (paper ~23%).
    assert table4_area.interconnect_ratio(areas) < 0.35
