"""CMP scaling (paper future work): mesh vs halo under shared load."""

from conftest import emit

from repro.experiments import cmp_scaling


def test_cmp_scaling(benchmark, config, report_dir):
    measure = max(1000, config.measure // 5)
    points = benchmark.pedantic(
        cmp_scaling.run, kwargs={"measure": measure}, rounds=1, iterations=1
    )
    emit(report_dir, "cmp_scaling", cmp_scaling.render(points))
    by_key = {(p.design, p.num_cores): p for p in points}
    for design in ("A", "F"):
        # Throughput grows with core count...
        assert by_key[(design, 2)].aggregate_ipc > by_key[(design, 1)].aggregate_ipc
        assert by_key[(design, 4)].aggregate_ipc > by_key[(design, 2)].aggregate_ipc
    # ...and the halo sustains it at lower latency at every count.
    for cores in (1, 2, 4):
        assert by_key[("F", cores)].average_latency \
            < by_key[("A", cores)].average_latency
        assert by_key[("F", cores)].aggregate_ipc \
            > by_key[("A", cores)].aggregate_ipc
