"""Ablations of the proposal's individual mechanisms (DESIGN.md §7)."""

from conftest import emit

from repro.experiments import ablations
from repro.experiments.common import ExperimentConfig


def _small(config: ExperimentConfig) -> ExperimentConfig:
    return config.scaled(max(1500, config.measure // 3))


def test_router_ablation(benchmark, config, report_dir):
    points = benchmark.pedantic(
        ablations.router_ablation, args=(_small(config),), rounds=1, iterations=1
    )
    emit(report_dir, "ablation_router",
         ablations.render(points, "Ablation: single-cycle vs pipelined router"))
    single, pipelined = points
    # The single-cycle router is the enabler: the pipeline costs real IPC.
    assert pipelined.geomean_ipc < single.geomean_ipc
    assert pipelined.mean_latency > 1.3 * single.mean_latency


def test_spike_queue_ablation(benchmark, config, report_dir):
    points = benchmark.pedantic(
        ablations.spike_queue_ablation, args=(_small(config),),
        rounds=1, iterations=1,
    )
    emit(report_dir, "ablation_spike_queue",
         ablations.render(points, "Ablation: halo spike queue depth"))
    by_depth = {p.label.split("-")[0]: p for p in points}
    # Two entries (the paper's choice) beat one; four adds little.
    assert by_depth["2"].geomean_ipc >= by_depth["1"].geomean_ipc
    gain_1_to_2 = by_depth["2"].geomean_ipc - by_depth["1"].geomean_ipc
    gain_2_to_4 = by_depth["4"].geomean_ipc - by_depth["2"].geomean_ipc
    assert gain_2_to_4 <= max(gain_1_to_2, 0.01)


def test_mechanism_factoring(benchmark, config, report_dir):
    points = benchmark.pedantic(
        ablations.mechanism_ablation, args=(_small(config),),
        rounds=1, iterations=1,
    )
    emit(report_dir, "ablation_mechanisms",
         ablations.render(points, "Ablation: factoring the proposal"))
    latencies = [p.mean_latency for p in points]
    # Each added mechanism reduces average latency.
    assert latencies[1] < latencies[0]          # Fast-LRU helps
    assert latencies[3] < latencies[2]          # halo helps
    assert points[3].geomean_ipc > points[0].geomean_ipc


def test_sampling_robustness(benchmark, config, report_dir):
    ratios = benchmark.pedantic(
        ablations.sampling_ablation, args=(_small(config),),
        rounds=1, iterations=1,
    )
    emit(report_dir, "ablation_sampling",
         "Halo/mesh IPC ratio vs sampled index space: "
         + ", ".join(f"{k}: {v:.2f}" for k, v in ratios.items()))
    values = list(ratios.values())
    # The halo wins under every sampling factor, by a similar margin.
    assert all(v > 1.02 for v in values)
    assert max(values) - min(values) < 0.25


def test_issue_model_robustness(benchmark, config, report_dir):
    ratios = benchmark.pedantic(
        ablations.issue_model_ablation, args=(_small(config),),
        rounds=1, iterations=1,
    )
    emit(report_dir, "ablation_issue_model",
         "Halo/mesh IPC ratio vs hide_cycles: "
         + ", ".join(f"{k}: {v:.2f}" for k, v in ratios.items()))
    values = list(ratios.values())
    assert all(v > 1.0 for v in values)


def test_spiral_spike_ablation(benchmark, config, report_dir):
    points = benchmark.pedantic(
        ablations.spiral_spike_ablation, args=(_small(config),),
        rounds=1, iterations=1,
    )
    emit(report_dir, "ablation_spiral",
         ablations.render(points, "Ablation: straight vs spiral halo spikes"))
    straight, spiral = points
    # Section 4's claim: the spiral's longer wires cost performance.
    assert spiral.mean_latency > straight.mean_latency
    assert spiral.geomean_ipc < straight.geomean_ipc
