"""Abstract-level combined claims (IPC +38%, interconnect area 23%)."""

from conftest import emit

from repro.experiments import headline
from repro.experiments.common import ExperimentConfig


def test_headline_claims(benchmark, config: ExperimentConfig, report_dir):
    result = benchmark.pedantic(headline.run, args=(config,), rounds=1, iterations=1)
    emit(report_dir, "headline", headline.render(result))
    # Full proposal vs mesh + Multicast Promotion (paper +38%; ours is
    # dominated by the halo term -- see EXPERIMENTS.md on the IPC gap).
    assert result.ipc_full_vs_baseline > 1.10
    # Multicast Fast-LRU alone (paper +20%).
    assert result.ipc_fastlru_vs_promotion > 1.0
    # Halo topology alone (paper +18% abstract / +13% Section 6.2).
    assert result.ipc_halo_vs_mesh > 1.05
    # Interconnect area of F vs A (paper ~23%).
    assert result.interconnect_area_ratio < 0.35
