"""Technology sensitivity: does the halo's win survive parameter shifts?"""

from conftest import emit

from repro.experiments import sensitivity
from repro.experiments.common import ExperimentConfig


def test_memory_latency_sensitivity(benchmark, config: ExperimentConfig, report_dir):
    cfg = config.scaled(max(1200, config.measure // 4))
    points = benchmark.pedantic(
        sensitivity.memory_latency_sweep, args=(cfg,), rounds=1, iterations=1
    )
    emit(report_dir, "sensitivity_memory",
         sensitivity.render(points, "Sensitivity: off-chip base latency"))
    # The halo wins at every memory speed.
    assert all(p.halo_ratio > 1.0 for p in points)


def test_wire_delay_sensitivity(benchmark, config: ExperimentConfig, report_dir):
    cfg = config.scaled(max(1200, config.measure // 4))
    points = benchmark.pedantic(
        sensitivity.wire_delay_sweep, args=(cfg,), rounds=1, iterations=1
    )
    emit(report_dir, "sensitivity_wire",
         sensitivity.render(points, "Sensitivity: wire delay scaling"))
    ratios = [p.halo_ratio for p in points]
    assert all(r > 1.0 for r in ratios)
    # Worse wires make the short-path halo matter more (the paper's bet).
    assert ratios[-1] >= ratios[0]
