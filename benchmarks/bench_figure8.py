"""Figure 8 (a/b/c): the five replacement schemes on Design A."""

from conftest import emit

from repro.experiments import figure8
from repro.experiments.common import ExperimentConfig


def test_figure8_replacement_schemes(benchmark, config: ExperimentConfig, report_dir):
    results = benchmark.pedantic(figure8.run, args=(config,), rounds=1, iterations=1)
    emit(report_dir, "figure8", figure8.render(results))
    ratios = figure8.summary(results)
    # Unicast LRU costs a little over Promotion (paper +4.4%)...
    assert 0.98 <= ratios["lru_vs_promotion"] <= 1.25
    # ...but Fast-LRU cuts it substantially (paper -30.2%).
    assert ratios["fastlru_vs_lru"] < 0.85
    # Multicast Fast-LRU strongly beats Unicast LRU (paper -46%).
    assert ratios["mc_fastlru_vs_lru"] < 0.85
    # ...including hit (paper -48%) and miss (paper -32%) latency.
    assert ratios["mc_fastlru_hit_vs_lru"] < 0.90
    assert ratios["mc_fastlru_miss_vs_lru"] < 0.85
    # And it beats Multicast Promotion in latency and IPC (paper -37%,
    # +20%; our synthetic traces reproduce the LRU-vs-Promotion hit-rate
    # gap only on the capacity-pressured benchmarks, so the measured IPC
    # gain is positive but smaller -- see EXPERIMENTS.md).
    assert ratios["mc_fastlru_vs_mc_promotion"] < 0.85
    assert ratios["mc_fastlru_ipc_gain"] > 1.0
