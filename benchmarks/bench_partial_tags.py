"""Partial-tag early miss detection (D-NUCA smart search) ablation."""

from conftest import emit

from repro.cache.partial_tags import PartialTagConfig
from repro.core.system import NetworkedCacheSystem
from repro.workloads import TraceGenerator, profile_by_name


def _sweep(measure: int):
    profile = profile_by_name("mcf")  # miss-heavy: where early detection pays
    trace, warmup = TraceGenerator(profile, seed=3).generate_with_warmup(
        measure=measure
    )
    rows = {}
    for early in (False, True):
        for scheme in ("unicast+lru", "multicast+fast_lru"):
            system = NetworkedCacheSystem(
                design="A", scheme=scheme, early_miss_detection=early
            )
            result = system.run(trace, profile, warmup=warmup)
            rows[(early, scheme)] = (result, system.partial_tags)
    return rows


def test_partial_tag_early_miss(benchmark, config, report_dir):
    rows = benchmark.pedantic(
        _sweep, args=(max(1500, config.measure // 3),), rounds=1, iterations=1
    )
    tag_config = PartialTagConfig(bits=6)
    storage = tag_config.storage_kib(sets=16 * 1024, associativity=16)
    lines = [
        "Partial-tag early miss detection on mcf (Design A)",
        f"controller storage cost: {storage:.0f} KiB "
        f"(6 bits x 16K sets x 16 ways)",
    ]
    for (early, scheme), (result, store) in rows.items():
        extra = ""
        if store is not None:
            extra = (f"  early-miss rate {store.early_miss_rate:.0%}, "
                     f"{store.false_positives} false positives")
        lines.append(
            f"  early={str(early):5s} {scheme:20s} "
            f"IPC {result.ipc:.3f}  avg {result.average_latency:6.1f}{extra}"
        )
    emit(report_dir, "partial_tags", "\n".join(lines))

    # Early detection never produces false negatives and catches most
    # misses with 6-bit tags.
    store = rows[(True, "unicast+lru")][1]
    assert store.early_miss_rate > 0.2
    # It pays on IPC for both schemes on a miss-heavy workload.
    assert rows[(True, "unicast+lru")][0].ipc \
        > rows[(False, "unicast+lru")][0].ipc
    assert rows[(True, "multicast+fast_lru")][0].ipc \
        > rows[(False, "multicast+fast_lru")][0].ipc
