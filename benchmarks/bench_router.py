"""Router microbenchmarks on the flit-level NoC (Section 3.1).

Not a paper figure, but the claims behind Fig. 1: the single-cycle router
moves a flit per hop per cycle (vs the classic pipelined router), and
chain multicast delivers a column in one traversal where unicast needs a
packet per destination.
"""

from conftest import emit

from repro.config import RouterConfig
from repro.noc import MeshTopology, Network, MessageType, Packet


def _drain_single(single_cycle: bool) -> int:
    mesh = MeshTopology(8, 8)
    net = Network(
        mesh,
        router_config=RouterConfig(single_cycle=single_cycle),
    )
    net.inject(Packet(MessageType.READ_REQUEST, source=(0, 0), destinations=((7, 7),)))
    net.run_until_drained()
    return net.stats.deliveries[0].latency


def _multicast_column() -> tuple[int, int]:
    mesh = MeshTopology(8, 8)
    net = Network(mesh)
    destinations = tuple((3, y) for y in range(8))
    net.inject(Packet(MessageType.READ_REQUEST, source=(3, 0), destinations=destinations))
    cycles = net.run_until_drained()
    return cycles, net.total_replications()


def _unicast_column() -> int:
    mesh = MeshTopology(8, 8)
    net = Network(mesh)
    for y in range(8):
        net.inject(
            Packet(MessageType.READ_REQUEST, source=(3, 0), destinations=((3, y),))
        )
    return net.run_until_drained()


def test_single_cycle_vs_pipelined(benchmark, report_dir):
    single = benchmark.pedantic(_drain_single, args=(True,), rounds=3, iterations=1)
    pipelined = _drain_single(False)
    emit(
        report_dir,
        "router_single_cycle",
        f"8x8 corner-to-corner latency: single-cycle {single} cycles, "
        f"pipelined {pipelined} cycles ({pipelined / single:.1f}x)",
    )
    # The single-cycle router cuts per-hop latency several-fold.
    assert single < pipelined
    assert pipelined / single > 2.0


def test_multicast_vs_unicast_column(benchmark, report_dir):
    (mc_cycles, replications) = benchmark.pedantic(
        _multicast_column, rounds=3, iterations=1
    )
    uc_cycles = _unicast_column()
    emit(
        report_dir,
        "router_multicast",
        f"column delivery to 8 banks: multicast {mc_cycles} cycles "
        f"({replications} replications), 8x unicast {uc_cycles} cycles",
    )
    assert replications >= 7  # one split per bank router except the last
    assert mc_cycles <= uc_cycles
