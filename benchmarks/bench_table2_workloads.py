"""Table 2: benchmark statistics and synthetic-trace fidelity."""

from conftest import emit

from repro.experiments import table2_workloads
from repro.experiments.common import ExperimentConfig


def test_table2_workloads(benchmark, config: ExperimentConfig, report_dir):
    rows = benchmark.pedantic(
        table2_workloads.run, args=(config,), rounds=1, iterations=1
    )
    emit(report_dir, "table2_workloads", table2_workloads.render(rows))
    assert len(rows) == 12
    for row in rows:
        # Generated traces must track the paper's measured rates.
        assert abs(row["trace_write_frac"]
                   - row["writes_M"] / (row["reads_M"] + row["writes_M"])) < 0.05
        assert row["trace_access_per_instr"] == __import__("pytest").approx(
            row["access_per_instr"], rel=0.15
        )
