"""Figure 10: halo floorplan geometry."""

from conftest import emit

from repro.experiments import fig10_layout


def test_fig10_halo_layout(benchmark, report_dir):
    results = benchmark.pedantic(fig10_layout.run, rounds=1, iterations=1)
    emit(report_dir, "fig10_layout", fig10_layout.render(results))
    segments = results["F"]["layout"]["segments"]
    # Tiles grow monotonically along the spike (64,64,128,256,512 KB).
    sides = [seg.side_mm for seg in segments]
    assert sides == sorted(sides)
    # Non-uniform banks waste several times less die than uniform ones
    # (paper: 6.3x).
    assert results["waste_ratio"] > 4
