"""Array-core benchmark: SoA wormhole core vs the object reference core.

Standalone (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_arraycore.py [--packets N]

Runs identical flit workloads through the object-model ``Network`` and
the struct-of-arrays ``ArrayNetwork`` (``repro.noc.arraycore``), checks
the two cores produce bit-identical observables -- cycle counts,
normalized delivery records, and every telemetry counter -- then reports
the per-cell speedup. Human-readable output goes to
``benchmarks/out/arraycore.txt``; the machine-readable ``array_core``
section is merged into ``BENCH_runtime.json`` at the repo root alongside
the engine-runtime numbers.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import RouterConfig
from repro.noc import MeshTopology, MessageType, Network, Packet
from repro.noc.arraycore import HAVE_NUMPY, ArrayNetwork
from repro.noc.topology import SimplifiedMeshTopology
from repro.validation.fuzzer import _core_digest

ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"


def _mesh_workload(packets: int, spacing: int) -> list:
    """Random unicast stream on a 16x16 mesh, one packet per *spacing*.

    ``spacing=2`` saturates the mesh (the SoA core's worst case: every
    cycle busy); ``spacing=130`` reproduces the cache-transaction pacing
    of :class:`repro.noc.protocol.FlitLevelCacheProtocol`, where long
    idle gaps between request/response legs dominate a cell and the
    array core's idle fast-forward pays off.
    """
    rng = random.Random(20070212)
    nodes = [(x, y) for x in range(16) for y in range(16)]
    specs = []
    for i in range(packets):
        source, destination = rng.sample(nodes, 2)
        specs.append(
            (MessageType.READ_REQUEST, source, (destination,), i * spacing)
        )
    return specs


def _multicast_workload(rounds: int, cols: int = 8, rows: int = 6) -> list:
    """Spine-to-column multicasts on a simplified mesh (Fig. 5(b) traffic).

    Every packet starts on the row-0 spine, so the workload respects the
    simplified mesh's legal-traffic enumeration while exercising the
    hybrid replication path on every column router.
    """
    specs = []
    for i in range(rounds):
        x = i % cols
        column = tuple((x, y) for y in range(rows))
        specs.append((MessageType.READ_REQUEST, (x, 0), column, i * 4))
    return specs


def _run(network, specs: list) -> tuple[float, tuple]:
    for message, source, destinations, at_cycle in specs:
        packet = Packet(message, source, destinations)
        network.schedule_injection(packet, at_cycle=at_cycle)
    t0 = time.perf_counter()
    network.run_until_drained(max_cycles=200_000)
    elapsed = time.perf_counter() - t0
    return elapsed, _core_digest(network)


def _bench_cell(name: str, make_topology, specs: list) -> dict:
    config = RouterConfig(single_cycle=True)
    object_s, object_digest = _run(
        Network(make_topology(), router_config=config), specs
    )
    array_s, array_digest = _run(
        ArrayNetwork(make_topology(), router_config=config), specs
    )
    identical = object_digest == array_digest
    assert identical, f"{name}: array core diverged from object core"
    return {
        "cell": name,
        "packets": len(specs),
        "cycles": object_digest[0],
        "deliveries": object_digest[3],
        "object_s": round(object_s, 3),
        "array_s": round(array_s, 4),
        "speedup": round(object_s / array_s, 1),
        "bit_identical": identical,
    }


def bench_array_core(packets: int) -> dict:
    """Both reference cells; returns the ``array_core`` payload section."""
    cells = [
        _bench_cell(
            "protocol_paced",
            lambda: MeshTopology(16, 16),
            _mesh_workload(max(packets // 4, 1), spacing=130),
        ),
        _bench_cell(
            "mesh16_saturated",
            lambda: MeshTopology(16, 16),
            _mesh_workload(packets, spacing=2),
        ),
        _bench_cell(
            "simplified_multicast",
            lambda: SimplifiedMeshTopology(8, 6),
            _multicast_workload(max(packets // 2, 1)),
        ),
    ]
    return {
        "packets": packets,
        "cells": cells,
        #: Headline number: the transaction-paced cell is how the engine
        #: actually exercises the flit core (sparse protocol legs).
        "per_cell_speedup": cells[0]["speedup"],
        "min_speedup": min(cell["speedup"] for cell in cells),
        "bit_identical": all(cell["bit_identical"] for cell in cells),
    }


def render(section: dict) -> str:
    lines = [
        "Array-core benchmark (object vs SoA wormhole core)",
        "==================================================",
        f"{'cell':<22}  {'packets':>7}  {'cycles':>7}  "
        f"{'object':>8}  {'array':>8}  {'speedup':>7}",
    ]
    for cell in section["cells"]:
        lines.append(
            f"{cell['cell']:<22}  {cell['packets']:>7}  {cell['cycles']:>7}  "
            f"{cell['object_s']:>7.3f}s  {cell['array_s']:>7.4f}s  "
            f"x{cell['speedup']:>6.1f}"
        )
    lines.append("")
    lines.append(
        f"bit-identical across cores: {section['bit_identical']}, "
        f"per-cell (protocol-paced) speedup x{section['per_cell_speedup']:.1f}, "
        f"min speedup x{section['min_speedup']:.1f}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=400,
                        help="unicast packets in the mesh cell (default 400)")
    args = parser.parse_args(argv)

    if not HAVE_NUMPY:
        print("numpy unavailable: array core cannot run; skipping benchmark")
        return 0

    section = bench_array_core(args.packets)
    text = render(section)
    print(text)

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "arraycore.txt").write_text(text + "\n", encoding="utf-8")

    bench_path = ROOT / "BENCH_runtime.json"
    payload = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    payload["array_core"] = section
    bench_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
