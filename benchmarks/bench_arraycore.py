"""Array-core benchmark: SoA wormhole core vs the object reference core.

Standalone (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_arraycore.py \
        [--packets N] [--vector {auto,on,off}] [--cell NAME] [--json-out P]

Runs identical flit workloads through the object-model ``Network`` and
the struct-of-arrays ``ArrayNetwork`` (``repro.noc.arraycore``), checks
the two cores produce bit-identical observables -- cycle counts,
normalized delivery records, and every telemetry counter -- then reports
the per-cell speedup plus a per-phase wall-time attribution from
``repro.perf.profiler`` (arrivals / inject / replication / switch) for
both cores. ``--vector`` selects the array core's sweep implementation
(``auto`` gates the whole-mesh NumPy passes on occupancy, ``on`` forces
them, ``off`` runs the scalar fallback); ``--cell`` restricts the run to
one cell, and ``--json-out`` writes the section to a standalone file
without touching the repo-level records -- together they form the CI
smoke that fails whenever a downsized saturated cell stops being
bit-identical. Without those flags, human-readable output goes to
``benchmarks/out/arraycore.txt`` and the machine-readable ``array_core``
section is merged into ``BENCH_runtime.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.config import RouterConfig
from repro.noc import MeshTopology, MessageType, Network, Packet
from repro.noc.arraycore import HAVE_NUMPY, ArrayNetwork
from repro.noc.topology import SimplifiedMeshTopology
from repro.perf import profiler
from repro.validation.fuzzer import _core_digest

ROOT = pathlib.Path(__file__).resolve().parents[1]
OUT_DIR = pathlib.Path(__file__).resolve().parent / "out"

#: --vector choice -> ArrayNetwork(vectorize=...) argument.
VECTOR_MODES = {"auto": None, "on": True, "off": False}


def _mesh_workload(packets: int, spacing: int) -> list:
    """Random unicast stream on a 16x16 mesh, one packet per *spacing*.

    ``spacing=2`` saturates the mesh (the SoA core's worst case: every
    cycle busy); ``spacing=130`` reproduces the cache-transaction pacing
    of :class:`repro.noc.protocol.FlitLevelCacheProtocol`, where long
    idle gaps between request/response legs dominate a cell and the
    array core's idle fast-forward pays off.
    """
    rng = random.Random(20070212)
    nodes = [(x, y) for x in range(16) for y in range(16)]
    specs = []
    for i in range(packets):
        source, destination = rng.sample(nodes, 2)
        specs.append(
            (MessageType.READ_REQUEST, source, (destination,), i * spacing)
        )
    return specs


def _multicast_workload(rounds: int, cols: int = 8, rows: int = 6) -> list:
    """Spine-to-column multicasts on a simplified mesh (Fig. 5(b) traffic).

    Every packet starts on the row-0 spine, so the workload respects the
    simplified mesh's legal-traffic enumeration while exercising the
    hybrid replication path on every column router.
    """
    specs = []
    for i in range(rounds):
        x = i % cols
        column = tuple((x, y) for y in range(rows))
        specs.append((MessageType.READ_REQUEST, (x, 0), column, i * 4))
    return specs


def _inject(network, specs: list) -> None:
    for message, source, destinations, at_cycle in specs:
        packet = Packet(message, source, destinations)
        network.schedule_injection(packet, at_cycle=at_cycle)


def _run(make_network, specs: list, core: str) -> tuple[float, tuple, dict]:
    """Time an unprofiled run, then re-run profiled for attribution.

    The timing run carries zero wrapper overhead, so the speedup table
    stays honest; the second run only feeds the per-phase breakdown.
    """
    network = make_network()
    _inject(network, specs)
    t0 = time.perf_counter()
    network.run_until_drained(max_cycles=200_000)
    elapsed = time.perf_counter() - t0
    digest = _core_digest(network)

    network = make_network()
    profile = profiler.attach(network, core=core)
    _inject(network, specs)
    network.run_until_drained(max_cycles=200_000)
    profiler.detach(network)
    phases = {
        phase: round(profile.seconds[phase], 4) for phase in profiler.PHASES
    }
    return elapsed, digest, phases


def _bench_cell(name: str, make_topology, specs: list, vector: str) -> dict:
    config = RouterConfig(single_cycle=True)
    vectorize = VECTOR_MODES[vector]
    object_s, object_digest, object_phases = _run(
        lambda: Network(make_topology(), router_config=config),
        specs, core="object",
    )
    array_s, array_digest, array_phases = _run(
        lambda: ArrayNetwork(
            make_topology(), router_config=config, vectorize=vectorize
        ),
        specs, core="array",
    )
    identical = object_digest == array_digest
    assert identical, f"{name}: array core diverged from object core"
    return {
        "cell": name,
        "packets": len(specs),
        "cycles": object_digest[0],
        "deliveries": object_digest[3],
        "object_s": round(object_s, 3),
        "array_s": round(array_s, 4),
        "speedup": round(object_s / array_s, 1),
        "bit_identical": identical,
        "vector": vector,
        "phases": {"object": object_phases, "array": array_phases},
    }


def bench_array_core(
    packets: int, vector: str = "auto", only_cell: str | None = None
) -> dict:
    """The reference cells; returns the ``array_core`` payload section."""
    cells = [
        (
            "protocol_paced",
            lambda: MeshTopology(16, 16),
            _mesh_workload(max(packets // 4, 1), spacing=130),
        ),
        (
            "mesh16_saturated",
            lambda: MeshTopology(16, 16),
            _mesh_workload(packets, spacing=2),
        ),
        (
            "simplified_multicast",
            lambda: SimplifiedMeshTopology(8, 6),
            _multicast_workload(max(packets // 2, 1)),
        ),
    ]
    if only_cell is not None:
        names = [name for name, _, _ in cells]
        if only_cell not in names:
            raise SystemExit(
                f"unknown cell {only_cell!r}; choose from {names}"
            )
        cells = [entry for entry in cells if entry[0] == only_cell]
    results = [
        _bench_cell(name, make_topology, specs, vector)
        for name, make_topology, specs in cells
    ]
    return {
        "packets": packets,
        "vector": vector,
        "cells": results,
        #: Headline number: the transaction-paced cell is how the engine
        #: actually exercises the flit core (sparse protocol legs).
        "per_cell_speedup": results[0]["speedup"],
        "min_speedup": min(cell["speedup"] for cell in results),
        "bit_identical": all(cell["bit_identical"] for cell in results),
    }


def render(section: dict) -> str:
    lines = [
        "Array-core benchmark (object vs SoA wormhole core, "
        f"vector={section['vector']})",
        "==================================================",
        f"{'cell':<22}  {'packets':>7}  {'cycles':>7}  "
        f"{'object':>8}  {'array':>8}  {'speedup':>7}",
    ]
    for cell in section["cells"]:
        lines.append(
            f"{cell['cell']:<22}  {cell['packets']:>7}  {cell['cycles']:>7}  "
            f"{cell['object_s']:>7.3f}s  {cell['array_s']:>7.4f}s  "
            f"x{cell['speedup']:>6.1f}"
        )
    lines.append("")
    lines.append("per-phase wall-time attribution (profiled rerun, seconds):")
    for cell in section["cells"]:
        for core in ("object", "array"):
            phases = cell["phases"][core]
            breakdown = "  ".join(
                f"{phase}={phases[phase]:.4f}" for phase in profiler.PHASES
            )
            lines.append(f"  {cell['cell']:<22} {core:<6} {breakdown}")
    lines.append("")
    lines.append(
        f"bit-identical across cores: {section['bit_identical']}, "
        f"per-cell (protocol-paced) speedup x{section['per_cell_speedup']:.1f}, "
        f"min speedup x{section['min_speedup']:.1f}"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--packets", type=int, default=400,
                        help="unicast packets in the mesh cell (default 400)")
    parser.add_argument("--vector", choices=sorted(VECTOR_MODES),
                        default="auto",
                        help="array-core sweeps: auto-gated, forced on, "
                             "or scalar fallback (default auto)")
    parser.add_argument("--cell", default=None,
                        help="run only this cell (e.g. mesh16_saturated)")
    parser.add_argument("--json-out", default=None,
                        help="write the section to this file and leave "
                             "BENCH_runtime.json / out/ untouched (CI smoke)")
    args = parser.parse_args(argv)

    if args.vector == "on" and not HAVE_NUMPY:
        print("numpy unavailable: cannot force vectorized sweeps; skipping")
        return 0

    section = bench_array_core(
        args.packets, vector=args.vector, only_cell=args.cell
    )
    text = render(section)
    print(text)

    if args.json_out is not None:
        pathlib.Path(args.json_out).write_text(
            json.dumps(section, indent=2) + "\n", encoding="utf-8"
        )
        return 0 if section["bit_identical"] else 1

    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "arraycore.txt").write_text(text + "\n", encoding="utf-8")

    bench_path = ROOT / "BENCH_runtime.json"
    payload = (
        json.loads(bench_path.read_text()) if bench_path.exists() else {}
    )
    payload["array_core"] = section
    bench_path.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    return 0 if section["bit_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
