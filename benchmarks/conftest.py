"""Shared fixtures for the benchmark harness.

``REPRO_BENCH_MEASURE`` scales the measured accesses per (benchmark,
design, scheme) cell; the default of 6000 keeps the full harness under a
few minutes while preserving every qualitative shape. Rendered tables are
written to ``benchmarks/out/`` so they survive pytest's output capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.common import ExperimentConfig

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    measure = int(os.environ.get("REPRO_BENCH_MEASURE", "6000"))
    return ExperimentConfig(measure=measure)


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def emit(report_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/out/."""
    print(text)
    (report_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
