"""Per-event energy parameters at 65 nm.

Constants are Cacti/Orion-flavored ballpark figures for a 65 nm process
at 5 GHz; what matters for the paper-style comparisons is their *ratios*
(bank accesses vs network traversals vs off-chip transfers), which follow
the usual order: an off-chip access costs ~three orders of magnitude more
than a flit hop, and bank access energy grows sub-linearly with capacity
like its area does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

KB = 1024


@dataclass(frozen=True)
class EnergyParams:
    """Energy per event (picojoules) and leakage (milliwatts per mm^2)."""

    #: Reading or writing one 64 KB bank once.
    bank_access_64kb_pj: float = 120.0
    #: Bank energy grows with capacity^exponent (bitline/wordline lengths).
    bank_capacity_exponent: float = 0.55
    #: One flit through one router (buffer write+read, arbitration, xbar).
    router_flit_pj: float = 5.2
    #: One flit over one mm of repeated global wire.
    link_flit_pj_per_mm: float = 1.9
    #: One 64 B block moved to/from off-chip memory.
    memory_access_pj: float = 15_000.0
    #: Leakage power density of SRAM-dominated area.
    leakage_mw_per_mm2: float = 1.1
    #: Energy to wake a gated bank (charging sleep transistors, restoring
    #: peripheral state).
    bank_wake_pj: float = 900.0

    def __post_init__(self) -> None:
        for name in (
            "bank_access_64kb_pj",
            "router_flit_pj",
            "link_flit_pj_per_mm",
            "memory_access_pj",
            "leakage_mw_per_mm2",
            "bank_wake_pj",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0 < self.bank_capacity_exponent <= 1:
            raise ConfigurationError("bank_capacity_exponent must be in (0, 1]")

    def bank_access_pj(self, capacity_bytes: int) -> float:
        """Dynamic energy of one access to a bank of *capacity_bytes*."""
        if capacity_bytes <= 0:
            raise ConfigurationError("capacity must be positive")
        scale = (capacity_bytes / (64 * KB)) ** self.bank_capacity_exponent
        return self.bank_access_64kb_pj * scale

    def link_flit_pj(self, length_mm: float) -> float:
        """Dynamic energy of one flit over a *length_mm* link."""
        if length_mm < 0:
            raise ConfigurationError("length must be non-negative")
        return self.link_flit_pj_per_mm * length_mm

    def leakage_pj(self, area_mm2: float, cycles: int,
                   frequency_ghz: float = 5.0) -> float:
        """Leakage energy of *area_mm2* powered for *cycles* core cycles."""
        if area_mm2 < 0 or cycles < 0:
            raise ConfigurationError("area and cycles must be non-negative")
        seconds = cycles / (frequency_ghz * 1e9)
        return self.leakage_mw_per_mm2 * area_mm2 * seconds * 1e9  # mW*s -> pJ
