"""Energy model of the networked cache (the paper's future-work item).

Section 7 names energy analysis and an "on-demand power control scheme
that can dynamically turn on/off a subset of cache systems" as future
work; this package implements both:

* :mod:`repro.power.params` -- per-event energies at 65 nm (bank access by
  capacity, router/link traversal per flit, memory access) and per-mm^2
  leakage;
* :mod:`repro.power.meter` -- post-run energy accounting over a
  :class:`~repro.core.system.NetworkedCacheSystem`'s resource counters;
* :mod:`repro.power.gating` -- on-demand bank gating: banks idle longer
  than a threshold are powered off and pay a wake-up penalty on the next
  access, trading leakage for latency.
"""

from repro.power.gating import GatingPolicy, GatingReport, simulate_gating
from repro.power.meter import EnergyMeter, EnergyReport
from repro.power.params import EnergyParams

__all__ = [
    "EnergyParams",
    "EnergyMeter",
    "EnergyReport",
    "GatingPolicy",
    "GatingReport",
    "simulate_gating",
]
