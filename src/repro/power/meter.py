"""Post-run energy accounting.

The transaction simulator already counts exactly the events the energy
model needs: every bank `Resource` grant is one bank access, every cycle
a channel `Resource` is busy is one flit-hop (a flit through the
downstream router plus the link span), and the memory model counts fills
and write-backs. The meter folds those counters into an energy report,
plus leakage over the run's cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.area.floorplan import FloorPlanner
from repro.core.system import NetworkedCacheSystem, RunResult
from repro.power.params import EnergyParams


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one run, by component (picojoules)."""

    bank_pj: float
    router_pj: float
    link_pj: float
    memory_pj: float
    leakage_pj: float
    accesses: int
    cycles: int

    @property
    def dynamic_pj(self) -> float:
        return self.bank_pj + self.router_pj + self.link_pj + self.memory_pj

    @property
    def total_pj(self) -> float:
        return self.dynamic_pj + self.leakage_pj

    @property
    def network_pj(self) -> float:
        """The interconnect's dynamic share (router + link)."""
        return self.router_pj + self.link_pj

    @property
    def pj_per_access(self) -> float:
        return self.total_pj / self.accesses if self.accesses else 0.0

    def fractions(self) -> dict[str, float]:
        total = self.total_pj
        if total == 0:
            return {k: 0.0 for k in ("bank", "router", "link", "memory", "leakage")}
        return {
            "bank": self.bank_pj / total,
            "router": self.router_pj / total,
            "link": self.link_pj / total,
            "memory": self.memory_pj / total,
            "leakage": self.leakage_pj / total,
        }


@dataclass
class EnergyMeter:
    """Meters a finished :class:`NetworkedCacheSystem` run."""

    params: EnergyParams = field(default_factory=EnergyParams)
    planner: FloorPlanner = field(default_factory=FloorPlanner)

    def measure(self, system: NetworkedCacheSystem, result: RunResult) -> EnergyReport:
        geometry = system.geometry
        topology = geometry.topology

        tile_sides: dict = {}
        capacities: dict = {}
        for column in range(geometry.num_columns):
            for descriptor in geometry.columns[column]:
                node = geometry.bank_node(column, descriptor.position)
                ports = self.planner._router_ports(topology, node)
                tile_sides[node] = self.planner.tile_side(
                    descriptor.capacity_bytes, ports
                )
                capacities[(column, descriptor.position)] = descriptor.capacity_bytes

        bank_pj = 0.0
        for key, resource in geometry._bank_resources.items():
            bank_pj += resource.grants * self.params.bank_access_pj(capacities[key])

        router_pj = 0.0
        link_pj = 0.0
        for (src, dst), resource in geometry._channel_resources.items():
            flit_hops = resource.busy_cycles
            router_pj += flit_hops * self.params.router_flit_pj
            length = max(tile_sides.get(src, 0.0), tile_sides.get(dst, 0.0))
            link_pj += flit_hops * self.params.link_flit_pj(length)

        memory_events = system.memory.reads + system.memory.writebacks
        memory_pj = memory_events * self.params.memory_access_pj

        area = self.planner.design_area(system.spec)
        leakage_pj = self.params.leakage_pj(area.l2_mm2, result.cycles)

        return EnergyReport(
            bank_pj=bank_pj,
            router_pj=router_pj,
            link_pj=link_pj,
            memory_pj=memory_pj,
            leakage_pj=leakage_pj,
            accesses=result.accesses,
            cycles=result.cycles,
        )
