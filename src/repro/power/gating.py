"""On-demand bank power gating (the paper's proposed future extension).

Policy: a bank whose idle time exceeds ``idle_threshold`` cycles is put to
sleep (leakage ~eliminated for the gated fraction); the next access pays a
``wake_latency`` penalty and a wake energy.

Rather than re-simulating with per-bank timelines, the policy is
evaluated analytically from each bank's measured access count over the
run, treating inter-access gaps as exponential (memoryless). For mean gap
``mu`` and threshold ``t0``:

* fraction of time gated      = exp(-t0 / mu)
  (each gap contributes its tail beyond t0; for the exponential the
  expected tail mass E[(gap - t0)+] / E[gap] is exactly exp(-t0/mu));
* expected wake-ups           = accesses * exp(-t0 / mu)
  (a gap triggers a wake-up iff it exceeded the threshold).

Banks never accessed during the run are gated the whole time for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.area.floorplan import FloorPlanner
from repro.core.system import NetworkedCacheSystem, RunResult
from repro.errors import ConfigurationError
from repro.power.params import EnergyParams


@dataclass(frozen=True)
class GatingPolicy:
    """Gate a bank after *idle_threshold* idle cycles."""

    idle_threshold: int = 2_000
    wake_latency: int = 3

    def __post_init__(self) -> None:
        if self.idle_threshold < 0:
            raise ConfigurationError("idle_threshold must be non-negative")
        if self.wake_latency < 0:
            raise ConfigurationError("wake_latency must be non-negative")


@dataclass(frozen=True)
class GatingReport:
    """Outcome of applying a gating policy to one run."""

    policy: GatingPolicy
    leakage_before_pj: float
    leakage_after_pj: float
    wake_energy_pj: float
    wakeups: float
    accesses: int
    gated_fraction: float

    @property
    def leakage_saved_pj(self) -> float:
        return self.leakage_before_pj - self.leakage_after_pj

    @property
    def net_saving_pj(self) -> float:
        return self.leakage_saved_pj - self.wake_energy_pj

    @property
    def average_latency_penalty(self) -> float:
        """Extra cycles per access from wake-ups."""
        if not self.accesses:
            return 0.0
        return self.wakeups * self.policy.wake_latency / self.accesses


def simulate_gating(
    system: NetworkedCacheSystem,
    result: RunResult,
    policy: GatingPolicy | None = None,
    params: EnergyParams | None = None,
    planner: FloorPlanner | None = None,
) -> GatingReport:
    """Evaluate *policy* against a finished run."""
    policy = policy or GatingPolicy()
    params = params or EnergyParams()
    planner = planner or FloorPlanner()
    geometry = system.geometry
    cycles = max(result.cycles, 1)

    bank_model = planner.bank_model
    total_weighted_off = 0.0  # sum of (bank area * gated fraction)
    total_bank_area = 0.0
    wakeups = 0.0
    for column in range(geometry.num_columns):
        for descriptor in geometry.columns[column]:
            area = bank_model.area_mm2(descriptor.capacity_bytes)
            total_bank_area += area
            key = (column, descriptor.position)
            resource = geometry._bank_resources.get(key)
            accesses = resource.grants if resource is not None else 0
            if accesses == 0:
                total_weighted_off += area  # gated for the whole run
                continue
            mean_gap = cycles / accesses
            off_fraction = math.exp(-policy.idle_threshold / mean_gap)
            total_weighted_off += area * off_fraction
            wakeups += accesses * off_fraction

    leakage_before = params.leakage_pj(total_bank_area, cycles)
    gated_fraction = (
        total_weighted_off / total_bank_area if total_bank_area else 0.0
    )
    leakage_after = leakage_before * (1.0 - gated_fraction)
    return GatingReport(
        policy=policy,
        leakage_before_pj=leakage_before,
        leakage_after_pj=leakage_after,
        wake_energy_pj=wakeups * params.bank_wake_pj,
        wakeups=wakeups,
        accesses=result.accesses,
        gated_fraction=gated_fraction,
    )
