"""Open-loop streaming workload service (DESIGN.md §15).

Multi-tenant request streams -- Zipf content popularity over per-tenant
address spaces, stationary Poisson / bursty / diurnal arrival processes
-- served by the flit-level fabric through bounded admission queues,
with rolling SLO telemetry (per-window p50/p95/p99 latency, goodput,
rejection rate, availability) on the windowed ``Series`` registry.
"""

from repro.stream.arrivals import (
    ARRIVAL_PROCESSES,
    MIX_NAMES,
    TENANT_MIXES,
    Request,
    TenantSpec,
    generate_arrivals,
    generate_tenant_arrivals,
    tenant_mix,
)
from repro.stream.engine import (
    StreamResult,
    StreamSpec,
    execute_stream_cell,
    stream_spec_for,
)
from repro.stream.service import (
    ADMISSION_POLICIES,
    REJECT_REASONS,
    StreamService,
    make_stream_series,
)

__all__ = [
    "ADMISSION_POLICIES",
    "ARRIVAL_PROCESSES",
    "MIX_NAMES",
    "REJECT_REASONS",
    "Request",
    "StreamResult",
    "StreamService",
    "StreamSpec",
    "TENANT_MIXES",
    "TenantSpec",
    "execute_stream_cell",
    "generate_arrivals",
    "generate_tenant_arrivals",
    "make_stream_series",
    "stream_spec_for",
    "tenant_mix",
]
