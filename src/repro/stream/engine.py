"""Experiment-engine integration of the streaming service.

A :class:`StreamSpec` is the streaming analogue of
:class:`~repro.experiments.runner.CellSpec`: plain picklable data that
fully determines one open-loop serving run, keyed into the same
in-process memo and persistent result cache, and executable in worker
processes. Importing this module registers :func:`execute_stream_cell`
with the engine's spec-executor registry; worker processes pick the
registration up automatically, because unpickling a ``StreamSpec``
imports this module.

The engine's reporting coordinates map as: ``design`` is the Table-3
design letter, ``scheme`` the admission policy, ``benchmark`` the named
tenant mix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields
from typing import Any

from repro import telemetry
from repro.errors import ConfigurationError
from repro.experiments import runner
from repro.noc.network import normalize_core
from repro.stream.arrivals import MIX_NAMES, generate_arrivals, tenant_mix
from repro.stream.service import ADMISSION_POLICIES, StreamService
from repro.telemetry.registry import MetricsRegistry


@dataclass(frozen=True, slots=True)
class StreamSpec:
    """One open-loop serving cell, as plain picklable data."""

    design: str
    #: Admission policy ("drop-tail" | "token-bucket").
    scheme: str
    #: Named tenant mix (see repro.stream.arrivals.TENANT_MIXES).
    benchmark: str
    seed: int
    cycles: int = 4000
    #: Offered-load multiplier on the mix's calibrated rates.
    load: float = 1.0
    queue_limit: int = 32
    max_outstanding: int = 8
    token_rate: float = 0.12
    token_burst: float = 8.0
    core: str = "object"
    window: int = 64
    drain: bool = True

    def key(self) -> tuple[object, ...]:
        """Stable cache key, namespaced apart from CellSpec's ``"cell"``."""
        return ("stream",) + tuple(
            (f.name, getattr(self, f.name)) for f in fields(self)
        )


def stream_spec_for(
    design: str,
    policy: str,
    mix: str,
    *,
    seed: int = 0,
    core: str | None = None,
    **overrides: Any,
) -> StreamSpec:
    """Build a validated :class:`StreamSpec` (normalizing the core name)."""
    if policy not in ADMISSION_POLICIES:
        raise ConfigurationError(
            f"unknown admission policy {policy!r}; known: {ADMISSION_POLICIES}"
        )
    if mix not in MIX_NAMES:
        raise ConfigurationError(
            f"unknown tenant mix {mix!r}; known: {', '.join(MIX_NAMES)}"
        )
    return StreamSpec(
        design=design,
        scheme=policy,
        benchmark=mix,
        seed=seed,
        core=normalize_core(core),
        **overrides,
    )


@dataclass
class StreamResult:
    """Result of one streaming cell (mirrors ``RunResult`` conventions)."""

    design: str
    scheme: str
    benchmark: str
    seed: int
    cycles: int
    offered: int
    admitted: int
    rejected: int
    completed: int
    quantiles: dict[str, float]
    goodput_per_kcycle: float
    availability: float
    rejection_rate: float
    summary: dict[str, Any] = field(repr=False)
    #: Telemetry snapshot merged into the global registry by run_cells.
    metrics: dict[str, Any] | None = field(
        default=None, repr=False, compare=False
    )
    provenance: dict[str, Any] | None = field(
        default=None, repr=False, compare=False
    )
    #: Wall seconds; excluded from equality so cached replays compare
    #: equal to fresh runs.
    wall_s: float | None = field(default=None, repr=False, compare=False)


def build_service(spec: StreamSpec) -> StreamService:
    """The :class:`StreamService` a spec describes (no arrivals yet)."""
    return StreamService(
        spec.design,
        core=spec.core,
        window=spec.window,
        policy=spec.scheme,
        queue_limit=spec.queue_limit,
        max_outstanding=spec.max_outstanding,
        token_rate=spec.token_rate,
        token_burst=spec.token_burst,
    )


def execute_stream_cell(spec: StreamSpec) -> StreamResult:
    """Run one streaming cell from scratch. Top-level and picklable."""
    started = time.perf_counter()
    tenants = tenant_mix(spec.benchmark, spec.load)
    requests = generate_arrivals(tenants, spec.cycles, spec.seed)
    service = build_service(spec)
    service.run(requests, spec.cycles, drain=spec.drain)
    registry = MetricsRegistry()
    service.publish_metrics(registry)
    summary = service.summary()
    result = StreamResult(
        design=spec.design,
        scheme=spec.scheme,
        benchmark=spec.benchmark,
        seed=spec.seed,
        cycles=spec.cycles,
        offered=summary["offered"],
        admitted=summary["admitted"],
        rejected=sum(summary["rejected"].values()),
        completed=summary["completed"],
        quantiles=summary["quantiles"],
        goodput_per_kcycle=summary["goodput_per_kcycle"],
        availability=summary["availability"],
        rejection_rate=summary["rejection_rate"],
        summary=summary,
        metrics=registry.snapshot(),
        provenance=telemetry.provenance_block(spec),
    )
    result.wall_s = time.perf_counter() - started
    return result


runner.register_spec_executor(StreamSpec, execute_stream_cell)
