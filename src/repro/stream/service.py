"""Long-lived streaming driver: open-loop arrivals on the flit fabric.

Couples the arrival schedules of :mod:`repro.stream.arrivals` to the
flit-level network (either simulation core) through a bounded admission
queue at the hub issue port. Unlike the closed-batch protocol driver
(:mod:`repro.noc.protocol`), the clock here is *open-loop*: arrivals
land on their own schedule whether or not the fabric has kept up, and a
request's SLO latency counts from its **arrival** cycle -- queueing
delay, admission throttling, and fabric congestion all show up in the
rolling p50/p95/p99.

Admission control (DESIGN.md §15):

* ``drop-tail`` -- reject when the admission queue holds
  ``queue_limit`` requests (reason ``queue_full``);
* ``token-bucket`` -- additionally meter admissions against a bucket of
  ``token_burst`` tokens refilled at ``token_rate`` tokens/cycle
  (reason ``throttled``), shedding load *before* the queue fills.

Each admitted request becomes one protocol transaction: a 1-flit
``READ_REQUEST`` from the hub to its content's bank; hits answer with a
5-flit ``HIT_DATA`` after the bank's tag latency, misses send a 1-flit
``MISS_NOTIFY`` to the hub, which triggers the memory leg
(``MEMORY_REQUEST`` / ``MEMORY_FILL`` packets on mesh designs; a timed
off-network completion over the hub's pin delay on halo designs, whose
hub *is* the memory attach point). At most ``max_outstanding``
transactions are in flight, so the issue port exerts backpressure on
the admission queue and the queue on the arrival stream.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.cache.bank import bank_descriptors_for_column
from repro.config import memory_access_latency
from repro.core.designs import design_spec
from repro.errors import ConfigurationError, SimulationError
from repro.noc.network import Delivery, make_network
from repro.noc.packet import MessageType, Packet
from repro.noc.topology import HUB, NodeId, spike_node
from repro.stream.arrivals import Request
from repro.telemetry.registry import (
    LATENCY_SLO_EDGES,
    MetricsRegistry,
    Series,
    quantiles_from_counts,
)

#: Recognized admission-control policies.
ADMISSION_POLICIES = ("drop-tail", "token-bucket")

#: Rejection reasons (counter name suffixes, stable across policies).
REJECT_REASONS = ("queue_full", "throttled")


def make_stream_series(window: int) -> dict[str, Series]:
    """The aggregate windowed series every streaming run records.

    Shared by the service and the report path so the names, windows, and
    (for the SLO histogram) edges cannot drift. Per-tenant series reuse
    the same shapes under ``stream.series.tenant.<name>.*``.
    """
    return {
        "stream.series.offered": Series(window),
        "stream.series.admitted": Series(window),
        "stream.series.rejected": Series(window),
        "stream.series.completed": Series(window),
        "stream.series.queue_depth": Series(window, "max"),
        "stream.series.latency": Series(window, "hist", LATENCY_SLO_EDGES),
    }


class StreamService:
    """Open-loop streaming front-end over one Table-3 design."""

    def __init__(
        self,
        design: str,
        *,
        core: str | None = None,
        window: int = 64,
        policy: str = "drop-tail",
        queue_limit: int = 32,
        max_outstanding: int = 8,
        token_rate: float = 0.12,
        token_burst: float = 8.0,
    ) -> None:
        if policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"unknown admission policy {policy!r}; "
                f"known: {ADMISSION_POLICIES}"
            )
        if window < 1:
            raise ConfigurationError("window must be a positive cycle count")
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be positive")
        if max_outstanding < 1:
            raise ConfigurationError("max_outstanding must be positive")
        if token_rate <= 0 or token_burst < 1:
            raise ConfigurationError("bad token-bucket parameters")
        self.spec = design_spec(design)
        self.topology = self.spec.topology_factory()
        self.network = make_network(self.topology, core=core, window=window)
        self.window = window
        self.policy = policy
        self.queue_limit = queue_limit
        self.max_outstanding = max_outstanding
        self.token_rate = token_rate
        self.token_burst = token_burst
        self.rows = self.spec.banks_per_column
        self.banks = bank_descriptors_for_column(
            list(self.spec.bank_capacities)
        )
        self.hub: NodeId = self.topology.core_attach
        self.memory: NodeId = self.topology.memory_attach
        #: Halo designs attach core and memory at the same hub router, so
        #: the memory leg cannot be a hub->hub packet; it is modeled as a
        #: timed completion over the spike-free pin path instead.
        self._halo_memory = self.hub == HUB

        self._queue: deque[Request] = deque()
        self._outstanding = 0
        self._tokens = float(token_burst)
        #: packet_id -> ("request"|"hit_data"|"miss_notify"|"mem_request"
        #: |"fill", transaction seq)
        self._roles: dict[int, tuple[str, int]] = {}
        #: transaction seq -> (request, bank depth)
        self._inflight: dict[int, tuple[Request, int]] = {}
        self._seq = 0
        #: Halo memory completions: (ready_cycle, seq) min-heap.
        self._memory_heap: list[tuple[int, int]] = []

        self.offered = 0
        self.admitted = 0
        self.completed = 0
        self.rejected = {reason: 0 for reason in REJECT_REASONS}
        self.queue_high_water = 0
        self._tenants: dict[str, dict[str, int]] = {}
        self._series = make_stream_series(window)
        self.network.on_delivery(self._on_delivery)

    # -- telemetry helpers --------------------------------------------------

    def _tenant(self, name: str) -> dict[str, int]:
        stats = self._tenants.get(name)
        if stats is None:
            stats = self._tenants[name] = {
                "offered": 0, "admitted": 0, "rejected": 0, "completed": 0,
            }
            prefix = f"stream.series.tenant.{name}"
            self._series[f"{prefix}.offered"] = Series(self.window)
            self._series[f"{prefix}.rejected"] = Series(self.window)
            self._series[f"{prefix}.completed"] = Series(self.window)
            self._series[f"{prefix}.latency"] = Series(
                self.window, "hist", LATENCY_SLO_EDGES
            )
        return stats

    # -- admission ----------------------------------------------------------

    def _admit(self, request: Request, cycle: int) -> None:
        stats = self._tenant(request.tenant)
        self.offered += 1
        stats["offered"] += 1
        self._series["stream.series.offered"].record(cycle)
        self._series[f"stream.series.tenant.{request.tenant}.offered"].record(
            cycle
        )
        reason = None
        if len(self._queue) >= self.queue_limit:
            reason = "queue_full"
        elif self.policy == "token-bucket" and self._tokens < 1.0:
            reason = "throttled"
        if reason is not None:
            self.rejected[reason] += 1
            stats["rejected"] += 1
            self._series["stream.series.rejected"].record(cycle)
            self._series[
                f"stream.series.tenant.{request.tenant}.rejected"
            ].record(cycle)
            return
        if self.policy == "token-bucket":
            self._tokens -= 1.0
        self.admitted += 1
        stats["admitted"] += 1
        self._series["stream.series.admitted"].record(cycle)
        self._queue.append(request)
        if len(self._queue) > self.queue_high_water:
            self.queue_high_water = len(self._queue)

    # -- issue / protocol legs ----------------------------------------------

    def _bank_node(self, column: int, position: int) -> NodeId:
        if self._halo_memory:
            return spike_node(column, position)
        return (column, position)

    def _depth(self, request: Request) -> int:
        if not request.hit:
            # Misses are decided at the LRU (deepest) bank, mirroring the
            # Fast-LRU column-combined miss report.
            return self.rows - 1
        return min(self.rows - 1, int(request.depth_unit * self.rows))

    def _issue_ready(self, cycle: int) -> None:
        while self._queue and self._outstanding < self.max_outstanding:
            request = self._queue.popleft()
            self._outstanding += 1
            seq = self._seq
            self._seq += 1
            depth = self._depth(request)
            self._inflight[seq] = (request, depth)
            packet = Packet(
                MessageType.READ_REQUEST,
                source=self.hub,
                destinations=(self._bank_node(request.column, depth),),
            )
            self._roles[packet.packet_id] = ("request", seq)
            self.network.inject(packet)

    def _on_delivery(self, delivery: Delivery) -> None:
        role = self._roles.pop(delivery.packet.packet_id, None)
        if role is None:
            return
        kind, seq = role
        request, depth = self._inflight[seq]
        if kind == "request":
            done = delivery.delivered_at + self.banks[depth].timing.tag_latency
            if request.hit:
                response = Packet(
                    MessageType.HIT_DATA,
                    source=self._bank_node(request.column, depth),
                    destinations=(self.hub,),
                )
                self._roles[response.packet_id] = ("hit_data", seq)
            else:
                response = Packet(
                    MessageType.MISS_NOTIFY,
                    source=self._bank_node(request.column, depth),
                    destinations=(self.hub,),
                )
                self._roles[response.packet_id] = ("miss_notify", seq)
            self.network.schedule_injection(response, done)
        elif kind == "miss_notify":
            if self._halo_memory:
                ready = (
                    delivery.delivered_at
                    + memory_access_latency()
                    + 2 * self.spec.memory_pin_delay
                )
                heapq.heappush(self._memory_heap, (ready, seq))
            else:
                packet = Packet(
                    MessageType.MEMORY_REQUEST,
                    source=self.hub,
                    destinations=(self.memory,),
                )
                self._roles[packet.packet_id] = ("mem_request", seq)
                self.network.schedule_injection(packet, delivery.delivered_at)
        elif kind == "mem_request":
            fill = Packet(
                MessageType.MEMORY_FILL,
                source=self.memory,
                destinations=(self.hub,),
            )
            self._roles[fill.packet_id] = ("fill", seq)
            self.network.schedule_injection(
                fill, delivery.delivered_at + memory_access_latency()
            )
        else:  # "hit_data" or "fill": data is back at the hub
            self._complete(seq, delivery.delivered_at)

    def _complete(self, seq: int, at_cycle: int) -> None:
        request, _ = self._inflight.pop(seq)
        self._outstanding -= 1
        latency = at_cycle - request.cycle
        stats = self._tenant(request.tenant)
        self.completed += 1
        stats["completed"] += 1
        self._series["stream.series.completed"].record(at_cycle)
        self._series["stream.series.latency"].record(at_cycle, latency)
        prefix = f"stream.series.tenant.{request.tenant}"
        self._series[f"{prefix}.completed"].record(at_cycle)
        self._series[f"{prefix}.latency"].record(at_cycle, latency)

    def _drain_memory_heap(self, cycle: int) -> None:
        while self._memory_heap and self._memory_heap[0][0] <= cycle:
            ready, seq = heapq.heappop(self._memory_heap)
            self._complete(seq, ready)

    # -- main loop ----------------------------------------------------------

    def _tick(self, cycle: int, arrivals: bool) -> None:
        if arrivals:
            self._tokens = min(
                self.token_burst, self._tokens + self.token_rate
            )
        self._drain_memory_heap(cycle)
        self._issue_ready(cycle)
        self._series["stream.series.queue_depth"].record(
            cycle, len(self._queue)
        )
        self.network.step()

    def run(
        self,
        requests: list[Request],
        cycles: int,
        *,
        drain: bool = True,
        max_drain_cycles: int = 200_000,
    ) -> None:
        """Serve *requests* over ``cycles`` open-loop cycles.

        With ``drain=True`` the service then stops admitting and runs the
        fabric until every in-flight transaction completes, so
        conservation (offered == admitted + rejected, admitted ==
        completed) holds exactly at return.
        """
        if cycles < 1:
            raise ConfigurationError("cycles must be positive")
        index = 0
        total = len(requests)
        while self.network.cycle < cycles:
            cycle = self.network.cycle
            while index < total and requests[index].cycle <= cycle:
                self._admit(requests[index], cycle)
                index += 1
            self._tick(cycle, arrivals=True)
        while index < total:
            # Arrivals stamped in the final cycle land after the budget;
            # account them as offered-and-rejected (service closed).
            self._admit(requests[index], cycles - 1)
            index += 1
        if not drain:
            return
        deadline = self.network.cycle + max_drain_cycles
        while (
            self._queue
            or self._outstanding
            or self._memory_heap
            or self.network.pending_work()
        ):
            if self.network.cycle >= deadline:
                raise SimulationError(
                    f"stream did not drain within {max_drain_cycles} "
                    f"cycles; {self._outstanding} outstanding, "
                    f"{len(self._queue)} queued\n"
                    + self.network.drain_diagnostic()
                )
            self._tick(self.network.cycle, arrivals=False)

    # -- reporting ----------------------------------------------------------

    def publish_metrics(self, registry: MetricsRegistry) -> None:
        """Publish stream counters + windowed SLO series, then the NoC's."""
        registry.counter("stream.offered").inc(self.offered)
        registry.counter("stream.admitted").inc(self.admitted)
        registry.counter("stream.completed").inc(self.completed)
        for reason in REJECT_REASONS:
            registry.counter(f"stream.rejected.{reason}").inc(
                self.rejected[reason]
            )
        registry.gauge("stream.queue.high_water").update_max(
            self.queue_high_water
        )
        for name in sorted(self._tenants):
            stats = self._tenants[name]
            for key in sorted(stats):
                registry.counter(f"stream.tenant.{name}.{key}").inc(
                    stats[key]
                )
        for name in sorted(self._series):
            local = self._series[name]
            registry.series(name, local.window, local.agg, local.edges).merge(
                local.snapshot()
            )
        self.network.publish_metrics(registry)

    def summary(self) -> dict:
        """Run-level SLO summary (totals, quantiles, goodput, availability).

        Values are pure functions of the run, so cached experiment-engine
        replays reproduce them bit-for-bit.
        """
        latency = self._series["stream.series.latency"]
        assert latency.edges is not None
        merged = [0] * (len(latency.edges) + 1)
        for counts in latency.windows.values():
            for i, count in enumerate(counts):
                merged[i] += count
        cycles = max(1, self.network.cycle)
        rejected = sum(self.rejected.values())
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected.copy(),
            "completed": self.completed,
            "queue_high_water": self.queue_high_water,
            "quantiles": quantiles_from_counts(latency.edges, merged),
            "goodput_per_kcycle": round(self.completed * 1000 / cycles, 3),
            "availability": (
                round(self.admitted / self.offered, 6) if self.offered else 1.0
            ),
            "rejection_rate": (
                round(rejected / self.offered, 6) if self.offered else 0.0
            ),
            "tenants": {
                name: dict(sorted(stats.items()))
                for name, stats in sorted(self._tenants.items())
            },
        }
