"""Open-loop multi-tenant request generation (DESIGN.md §15).

Every closed-batch workload in :mod:`repro.workloads` replays a fixed
trace; the streaming service instead draws *arrivals on their own clock*:
each tenant owns an independent request process (stationary Poisson,
on/off-modulated bursty, or slowly-modulated diurnal), a Zipf content
popularity over its private catalog, and a private slice of the address
space mapped onto the cache's bank-set columns. The simulator must keep
up with the offered load or visibly degrade -- admission control and SLO
telemetry live in :mod:`repro.stream.service`.

Determinism
-----------
Arrival generation is a pure function of ``(tenants, cycles, seed)``:

* every tenant draws from its **own** ``random.Random`` seeded by
  ``(seed, tenant name)`` -- string seeding is process-stable, and the
  per-tenant streams are disjoint by construction, so adding or removing
  a tenant never perturbs another tenant's arrivals (property-tested);
* time-varying rates (bursty, diurnal) are sampled by Lewis thinning
  against the process's peak rate, so one uniform draw per candidate
  decides acceptance and the schedule never depends on float summation
  order;
* the merged schedule is sorted by ``(cycle, tenant, sequence)``.

Content is classified at generation time: a request's column, hit/miss
verdict, and stack depth are functions of its Zipf rank only, so the
flit-level service replays the identical network schedule on every
simulation core (the cross-core bit-equality the fuzzer's ``stream``
family asserts).
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError

#: Recognized arrival processes.
ARRIVAL_PROCESSES = ("poisson", "bursty", "diurnal")

#: Columns (bank sets) the tenant address spaces scatter over.
NUM_COLUMNS = 16

#: Odd multiplier => bijective scatter modulo a power of two (the same
#: constant the trace generator uses).
_SCATTER = 0x9E3779B1


@dataclass(frozen=True, slots=True)
class TenantSpec:
    """One tenant's request process and content popularity.

    ``rate_per_kcycle`` is the mean offered load in requests per 1000
    sim-cycles; bursty tenants modulate it with exponential on/off
    periods (``burst_boost`` x during ON, floor x otherwise), diurnal
    tenants with a sinusoid of ``diurnal_period`` cycles.
    """

    name: str
    rate_per_kcycle: float
    process: str = "poisson"
    zipf_alpha: float = 0.9
    catalog_blocks: int = 512
    #: Leading Zipf-rank fraction of the catalog that is cache-resident;
    #: requests beyond it are global misses that go to memory.
    resident_fraction: float = 0.5
    #: Bursty process: mean cycles of one ON+OFF modulation period, the
    #: fraction of it spent ON, and the ON-rate multiplier.
    burst_period: int = 512
    burst_on_fraction: float = 0.25
    burst_boost: float = 4.0
    #: Diurnal process: sinusoid period (cycles) and relative amplitude.
    diurnal_period: int = 4096
    diurnal_amplitude: float = 0.8

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant needs a name")
        if self.process not in ARRIVAL_PROCESSES:
            raise ConfigurationError(
                f"unknown arrival process {self.process!r}; "
                f"known: {ARRIVAL_PROCESSES}"
            )
        if self.rate_per_kcycle <= 0:
            raise ConfigurationError("rate_per_kcycle must be positive")
        if self.catalog_blocks < 1:
            raise ConfigurationError("catalog_blocks must be positive")
        if not 0.0 < self.resident_fraction <= 1.0:
            raise ConfigurationError("resident_fraction must be in (0, 1]")
        if self.zipf_alpha < 0:
            raise ConfigurationError("zipf_alpha must be non-negative")
        if self.burst_period < 2 or not 0.0 < self.burst_on_fraction < 1.0:
            raise ConfigurationError("bad burst modulation parameters")
        if self.burst_boost < 1.0:
            raise ConfigurationError("burst_boost must be >= 1")
        if self.diurnal_period < 2 or not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ConfigurationError("bad diurnal modulation parameters")

    def scaled(self, load: float) -> "TenantSpec":
        """Same tenant at ``load`` x the offered rate."""
        if load <= 0:
            raise ConfigurationError("load factor must be positive")
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        values["rate_per_kcycle"] = self.rate_per_kcycle * load
        return TenantSpec(**values)


@dataclass(frozen=True, slots=True)
class Request:
    """One open-loop request, fully classified at generation time."""

    cycle: int
    tenant: str
    #: Bank-set column the content block maps to.
    column: int
    #: True when the block is cache-resident (served by a bank), False
    #: when it is a global miss that must go to memory.
    hit: bool
    #: Stack position of a hit in [0, 1): 0.0 = MRU-adjacent, ~1.0 = LRU
    #: -- hot Zipf ranks sit near the MRU bank, exactly the locality the
    #: Fast-LRU stack maintains. The service maps it onto its bank rows.
    depth_unit: float


def _tenant_rng(seed: int, tenant: str, stream: str) -> random.Random:
    """A process-stable RNG private to one (seed, tenant, stream)."""
    return random.Random(f"stream/{seed}/{tenant}/{stream}")


def _zipf_cumulative(catalog: int, alpha: float) -> list[float]:
    """Cumulative Zipf weights over ranks ``1..catalog``."""
    total = 0.0
    out: list[float] = []
    for rank in range(1, catalog + 1):
        total += rank ** -alpha
        out.append(total)
    return out


def _burst_windows(
    tenant: TenantSpec, cycles: int, rng: random.Random
) -> list[tuple[float, float]]:
    """Exponentially-distributed ON windows covering ``[0, cycles)``."""
    mean_on = tenant.burst_period * tenant.burst_on_fraction
    mean_off = tenant.burst_period * (1.0 - tenant.burst_on_fraction)
    windows: list[tuple[float, float]] = []
    t = rng.expovariate(1.0 / mean_off)
    while t < cycles:
        on = rng.expovariate(1.0 / mean_on)
        windows.append((t, t + on))
        t += on + rng.expovariate(1.0 / mean_off)
    return windows


def _peak_rate(tenant: TenantSpec) -> float:
    """The thinning envelope: the process's maximum instantaneous rate."""
    base = tenant.rate_per_kcycle / 1000.0
    if tenant.process == "bursty":
        return base * tenant.burst_boost
    if tenant.process == "diurnal":
        return base * (1.0 + tenant.diurnal_amplitude)
    return base


def _rate_at(
    tenant: TenantSpec, t: float, windows: list[tuple[float, float]]
) -> float:
    """Instantaneous arrival rate of *tenant* at cycle *t*."""
    base = tenant.rate_per_kcycle / 1000.0
    if tenant.process == "bursty":
        i = bisect.bisect_right(windows, (t, math.inf)) - 1
        if i >= 0 and windows[i][0] <= t < windows[i][1]:
            return base * tenant.burst_boost
        # OFF floor keeps the process open (never fully silent).
        return base * 0.25
    if tenant.process == "diurnal":
        phase = 2.0 * math.pi * t / tenant.diurnal_period
        return base * (1.0 + tenant.diurnal_amplitude * math.sin(phase))
    return base


def _classify(tenant: TenantSpec, rank: int) -> tuple[int, bool, float]:
    """Map a Zipf rank (1-based) to (column, hit, depth_unit).

    The column scatter is a bijective multiplicative hash offset by the
    tenant name, so tenants occupy disjoint address slices and rank never
    correlates with column. Residency follows rank: the hot head of the
    catalog hits (shallow for the hottest ranks), the cold tail misses.
    """
    offset = random.Random(f"stream/space/{tenant.name}").getrandbits(16)
    scattered = ((rank + offset) * _SCATTER) & 0xFFFFFFFF
    column = (scattered >> 4) % NUM_COLUMNS
    resident = max(1, int(tenant.catalog_blocks * tenant.resident_fraction))
    hit = rank <= resident
    depth_unit = (rank - 1) / resident if hit else 1.0
    return column, hit, min(depth_unit, 0.999999)


def generate_tenant_arrivals(
    tenant: TenantSpec, cycles: int, seed: int
) -> list[Request]:
    """Deterministic arrival schedule of one tenant over ``[0, cycles)``."""
    if cycles < 1:
        raise ConfigurationError("cycles must be positive")
    arrivals_rng = _tenant_rng(seed, tenant.name, "arrivals")
    content_rng = _tenant_rng(seed, tenant.name, "content")
    windows = (
        _burst_windows(
            tenant, cycles, _tenant_rng(seed, tenant.name, "burst")
        )
        if tenant.process == "bursty"
        else []
    )
    cumulative = _zipf_cumulative(tenant.catalog_blocks, tenant.zipf_alpha)
    total_weight = cumulative[-1]
    peak = _peak_rate(tenant)
    out: list[Request] = []
    t = 0.0
    while True:
        t += arrivals_rng.expovariate(peak)
        if t >= cycles:
            break
        # Lewis thinning: accept a candidate with probability rate/peak.
        if arrivals_rng.random() * peak > _rate_at(tenant, t, windows):
            continue
        rank = 1 + bisect.bisect_left(
            cumulative, content_rng.random() * total_weight
        )
        rank = min(rank, tenant.catalog_blocks)
        column, hit, depth_unit = _classify(tenant, rank)
        out.append(
            Request(
                cycle=int(t),
                tenant=tenant.name,
                column=column,
                hit=hit,
                depth_unit=depth_unit,
            )
        )
    return out


def generate_arrivals(
    tenants: tuple[TenantSpec, ...] | list[TenantSpec],
    cycles: int,
    seed: int,
) -> list[Request]:
    """Merged multi-tenant schedule, sorted by (cycle, tenant, order).

    Per-tenant sub-streams are generated independently (disjoint RNGs),
    so each tenant's slice of the merged schedule is identical to its
    solo schedule -- the disjointness property the hypothesis suite pins.
    """
    if not tenants:
        raise ConfigurationError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate tenant names: {sorted(names)}")
    merged: list[tuple[tuple[int, str, int], Request]] = []
    for tenant in sorted(tenants, key=lambda t: t.name):
        for order, request in enumerate(
            generate_tenant_arrivals(tenant, cycles, seed)
        ):
            merged.append(((request.cycle, tenant.name, order), request))
    merged.sort(key=lambda pair: pair[0])
    return [request for _, request in merged]


# -- named tenant mixes -------------------------------------------------------

#: Named multi-tenant mixes (the ``benchmark`` coordinate of a
#: :class:`~repro.stream.engine.StreamSpec`). Rates are calibrated so a
#: ``load=1.0`` run is comfortably below saturation on every design and
#: ``load >= 2.5`` pushes the hub admission queue into visible overload.
TENANT_MIXES: dict[str, tuple[TenantSpec, ...]] = {
    "solo-poisson": (
        TenantSpec("steady", rate_per_kcycle=45.0, process="poisson"),
    ),
    "duo-bursty": (
        TenantSpec(
            "media", rate_per_kcycle=55.0, process="bursty",
            zipf_alpha=1.1, catalog_blocks=384, burst_boost=5.0,
            burst_period=600, burst_on_fraction=0.2,
        ),
        TenantSpec(
            "search", rate_per_kcycle=30.0, process="poisson",
            zipf_alpha=0.8, catalog_blocks=768, resident_fraction=0.35,
        ),
    ),
    "trio-mixed": (
        TenantSpec(
            "api", rate_per_kcycle=35.0, process="poisson",
            zipf_alpha=1.0, catalog_blocks=512,
        ),
        TenantSpec(
            "batch", rate_per_kcycle=25.0, process="bursty",
            zipf_alpha=0.7, catalog_blocks=1024, resident_fraction=0.3,
            burst_boost=6.0, burst_period=900, burst_on_fraction=0.15,
        ),
        TenantSpec(
            "edge", rate_per_kcycle=20.0, process="diurnal",
            zipf_alpha=1.2, catalog_blocks=256, diurnal_period=2048,
        ),
    ),
}

MIX_NAMES = tuple(TENANT_MIXES)


def tenant_mix(name: str, load: float = 1.0) -> tuple[TenantSpec, ...]:
    """A named tenant mix, optionally scaled to ``load`` x its rates."""
    try:
        mix = TENANT_MIXES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown tenant mix {name!r}; known: {', '.join(MIX_NAMES)}"
        ) from None
    if load == 1.0:
        return mix
    return tuple(tenant.scaled(load) for tenant in mix)
