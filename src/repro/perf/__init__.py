"""Performance modeling: issue/stall model and latency statistics."""

from repro.perf.ipc import IssueModel
from repro.perf.metrics import LatencyAccumulator, LatencyStats

__all__ = ["IssueModel", "LatencyAccumulator", "LatencyStats"]
