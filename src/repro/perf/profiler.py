"""Wall-time sim-phase profiler for the flit cores.

Attributes wall-clock seconds to the four cycle phases both flit cores
share -- ``arrivals`` (link traversal landing), ``inject`` (source
queue -> VC), ``replication`` (multicast head splitting, the router's
route/VC-allocation stage), and ``switch`` (crossbar arbitration +
forwarding) -- so a slow drain can be blamed on a stage, and the object
and array cores can be compared stage by stage.

Zero overhead when off: :func:`attach` rebinds the network's phase
methods as *instance* attributes wrapping the originals with
``perf_counter`` bookkeeping. An unprofiled network carries no wrappers
at all -- its hot loops call the plain class methods -- so the
telemetry-off cost of this module is exactly zero. :func:`detach`
deletes the instance attributes, restoring the class methods.

Wall-times are host-dependent and inherently nondeterministic, so they
live in :class:`PhaseProfile` objects (and the ``RunResult.wall_s``
style side channel), never in the deterministic metrics registry --
the serial == ``--jobs N`` == cache-replay merge contract stays intact.
"""

from __future__ import annotations

import time
from typing import Any

#: Phase name -> the method both flit cores implement for it, in cycle
#: order. ``replication`` is the route/VC-allocation stage (multicast
#: head splitting); ``switch`` covers switch allocation + traversal.
PHASE_METHODS: dict[str, str] = {
    "arrivals": "_deliver_arrivals",
    "inject": "_inject_phase",
    "replication": "_replication_phase",
    "switch": "_switch_phase",
}

PHASES: tuple[str, ...] = tuple(PHASE_METHODS)


class PhaseProfile:
    """Accumulated wall-time and call counts per phase for one network."""

    __slots__ = ("core", "seconds", "calls")

    def __init__(self, core: str) -> None:
        self.core = core
        self.seconds: dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.calls: dict[str, int] = {phase: 0 for phase in PHASES}

    def total(self) -> float:
        return sum(self.seconds[phase] for phase in PHASES)

    def fractions(self) -> dict[str, float]:
        total = self.total()
        if total <= 0.0:
            return {phase: 0.0 for phase in PHASES}
        return {phase: self.seconds[phase] / total for phase in PHASES}

    def merge(self, other: "PhaseProfile") -> None:
        """Fold another profile of the same core into this one."""
        for phase in PHASES:
            self.seconds[phase] += other.seconds[phase]
            self.calls[phase] += other.calls[phase]

    def render(self) -> str:
        fractions = self.fractions()
        lines = [f"phase profile ({self.core} core, "
                 f"{self.total() * 1e3:.1f} ms attributed):"]
        for phase in PHASES:
            lines.append(
                f"  {phase:<12} {self.seconds[phase] * 1e3:9.2f} ms "
                f"({fractions[phase]:5.1%}, {self.calls[phase]} calls)"
            )
        return "\n".join(lines)


def _timed(original: Any, profile: PhaseProfile, phase: str) -> Any:
    perf = time.perf_counter
    seconds = profile.seconds
    calls = profile.calls

    def wrapper(*args: Any) -> Any:
        t0 = perf()
        try:
            return original(*args)
        finally:
            seconds[phase] += perf() - t0
            calls[phase] += 1

    return wrapper


def attach(network: Any, core: str | None = None) -> PhaseProfile:
    """Bind timing wrappers over *network*'s phase methods.

    Idempotence guard: attaching twice would stack wrappers and
    double-count, so a second attach raises.
    """
    if getattr(network, "_phase_profile", None) is not None:
        raise RuntimeError("network already has a phase profiler attached")
    if core is None:
        core = "array" if type(network).__name__ == "ArrayNetwork" else "object"
    profile = PhaseProfile(core)
    for phase, name in PHASE_METHODS.items():
        setattr(network, name, _timed(getattr(network, name), profile, phase))
    network._phase_profile = profile
    return profile


def detach(network: Any) -> PhaseProfile:
    """Remove the wrappers, restoring the plain class methods."""
    profile = getattr(network, "_phase_profile", None)
    if profile is None:
        raise RuntimeError("network has no phase profiler attached")
    for name in PHASE_METHODS.values():
        delattr(network, name)
    del network._phase_profile
    return profile


def profile_load(
    core: str,
    mesh_size: int = 6,
    cycles: int = 300,
    injection_rate: float = 0.3,
    seed: int = 1,
) -> PhaseProfile:
    """Run the standard uniform-random load through one core, profiled.

    A thin driver over :func:`repro.experiments.noc_load.run_load_point`'s
    traffic pattern; exists so ``repro validate --profile-phases`` has a
    fixed, comparable workload per core.
    """
    import random

    from repro.config import RouterConfig
    from repro.noc import MeshTopology, MessageType, Packet, make_network

    rng = random.Random(seed)
    topology = MeshTopology(mesh_size, mesh_size)
    network = make_network(
        topology, router_config=RouterConfig(single_cycle=True), core=core
    )
    profile = attach(network, core=core)
    nodes = sorted(topology.nodes)
    for _ in range(cycles):
        for node in nodes:
            if rng.random() < injection_rate:
                destination = rng.choice(nodes)
                if destination == node:
                    continue
                network.inject(
                    Packet(
                        MessageType.READ_REQUEST,
                        source=node,
                        destinations=(destination,),
                    )
                )
        network.step()
    network.run_until_drained(max_cycles=cycles * 200)
    detach(network)
    return profile
