"""Analytic core/issue model substituting for sim-alpha.

The paper drives its cache simulator with L2 access chunks produced by a
validated Alpha 21264 simulator and reports IPC. We model the core
analytically with a *blocking-read* retirement clock:

* instructions retire at the benchmark's perfect-L2 IPC while the L2 is
  not in the way;
* every L2 **read** is an L1 miss whose consumer stalls the pipeline:
  retirement cannot progress past the access until its data returns
  (minus ``hide_cycles`` the out-of-order window can overlap);
* **writes** are fire-and-forget (store buffer): they occupy cache and
  network resources but do not stall retirement.

``IPC = instructions / final retirement-clock value``

This collapses to the perfect IPC when L2 latency is zero and degrades
proportionally to (read rate x read latency) otherwise -- the regime the
paper's Figures 8/9 IPC deltas live in. Normalized-IPC comparisons are
insensitive to modest ``hide_cycles`` choices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class IssueModel:
    """Tracks the retirement clock and L2 access issue times."""

    perfect_ipc: float
    #: Cycles of L2 latency the out-of-order window hides per read.
    hide_cycles: int = 0
    instructions: int = 0
    _clock: float = 0.0
    _last_event: int = 0

    def __post_init__(self) -> None:
        if self.perfect_ipc <= 0:
            raise ConfigurationError("perfect_ipc must be positive")
        if self.hide_cycles < 0:
            raise ConfigurationError("hide_cycles must be non-negative")

    def issue_time(self, gap_instructions: int) -> int:
        """Cycle at which the next L2 access issues.

        *gap_instructions* is how many instructions retire between the
        previous access and this one.
        """
        if gap_instructions < 0:
            raise ConfigurationError("gap_instructions must be non-negative")
        self.instructions += gap_instructions
        self._clock += gap_instructions / self.perfect_ipc
        return int(self._clock)

    def complete(self, data_at_core: int, is_write: bool = False) -> None:
        """Record the data-return time of the access just issued.

        Reads block the retirement clock until their data returns (minus
        the hidden overlap); writes only record activity.
        """
        self._last_event = max(self._last_event, data_at_core)
        if is_write:
            return
        resume = data_at_core - self.hide_cycles
        if resume > self._clock:
            self._clock = float(resume)

    def finish(self, tail_instructions: int = 0) -> tuple[int, float]:
        """Close the run: returns ``(total_cycles, ipc)``.

        *tail_instructions* are instructions after the last L2 access.
        """
        if tail_instructions:
            self.instructions += tail_instructions
            self._clock += tail_instructions / self.perfect_ipc
        total = int(self._clock)
        if total <= 0:
            return 0, self.perfect_ipc
        return total, self.instructions / total

    def reset(self) -> None:
        self.instructions = 0
        self._clock = 0.0
        self._last_event = 0
