"""Streaming latency statistics with the Fig.-7 decomposition."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LatencyStats:
    """Frozen summary of one latency population."""

    count: int
    mean: float
    minimum: int
    maximum: int

    @staticmethod
    def empty() -> "LatencyStats":
        return LatencyStats(count=0, mean=0.0, minimum=0, maximum=0)


@dataclass
class LatencyAccumulator:
    """Accumulates access latencies split into hit/miss populations and
    into the bank / network / memory components of Figure 7."""

    total_count: int = 0
    total_sum: int = 0
    total_min: int | None = None
    total_max: int = 0
    hit_count: int = 0
    hit_sum: int = 0
    miss_count: int = 0
    miss_sum: int = 0
    bank_sum: int = 0
    network_sum: int = 0
    memory_sum: int = 0
    hits_per_bank: dict[int, int] = field(default_factory=dict)

    def record(self, latency: int, hit: bool, bank: int, network: int,
               memory: int, bank_position: int | None = None) -> None:
        self.total_count += 1
        self.total_sum += latency
        self.total_min = latency if self.total_min is None else min(self.total_min, latency)
        self.total_max = max(self.total_max, latency)
        if hit:
            self.hit_count += 1
            self.hit_sum += latency
            if bank_position is not None:
                self.hits_per_bank[bank_position] = (
                    self.hits_per_bank.get(bank_position, 0) + 1
                )
        else:
            self.miss_count += 1
            self.miss_sum += latency
        self.bank_sum += bank
        self.network_sum += network
        self.memory_sum += memory

    # -- summaries ----------------------------------------------------------

    @property
    def average_latency(self) -> float:
        return self.total_sum / self.total_count if self.total_count else 0.0

    @property
    def average_hit_latency(self) -> float:
        return self.hit_sum / self.hit_count if self.hit_count else 0.0

    @property
    def average_miss_latency(self) -> float:
        return self.miss_sum / self.miss_count if self.miss_count else 0.0

    @property
    def hit_rate(self) -> float:
        return self.hit_count / self.total_count if self.total_count else 0.0

    def breakdown(self) -> dict[str, float]:
        """Average cycles per access spent in bank / network / memory."""
        if not self.total_count:
            return {"bank": 0.0, "network": 0.0, "memory": 0.0}
        return {
            "bank": self.bank_sum / self.total_count,
            "network": self.network_sum / self.total_count,
            "memory": self.memory_sum / self.total_count,
        }

    def breakdown_fractions(self) -> dict[str, float]:
        """Share of the average latency per component (sums to 1)."""
        total = self.bank_sum + self.network_sum + self.memory_sum
        if total == 0:
            return {"bank": 0.0, "network": 0.0, "memory": 0.0}
        return {
            "bank": self.bank_sum / total,
            "network": self.network_sum / total,
            "memory": self.memory_sum / total,
        }

    def mru_hit_fraction(self) -> float:
        if not self.hit_count:
            return 0.0
        return self.hits_per_bank.get(0, 0) / self.hit_count

    def summary(self) -> LatencyStats:
        return LatencyStats(
            count=self.total_count,
            mean=self.average_latency,
            minimum=self.total_min or 0,
            maximum=self.total_max,
        )
