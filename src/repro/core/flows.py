"""Transaction flows of the networked cache (Figures 2 and 3).

Each access is executed as a composition of resource reservations over the
design's :class:`~repro.core.geometry.CacheGeometry`:

* **unicast search** walks the column bank by bank (Fig. 2); with Fast-LRU
  the evicted block rides along with the request as the wormhole body, so
  the next bank's tag match is gated by the head flit while the block
  follows (tag match overlaps replacement, Fig. 2(b));
* **multicast search** delivers the request to all banks of the column via
  the chain-replicating router and every bank tag-matches concurrently
  (Fig. 3);
* **replacement chains** move blocks between adjacent banks (LRU shifts,
  Promotion swaps, Fast-LRU's pipelined eviction chain);
* **miss handling** goes through the off-chip memory model, fills the MRU
  bank, and cut-through-forwards the block to the core.

Consistency rule: while an access's block movements are in flight, the bank
set's tags are unstable, so a subsequent access to the *same set* stalls
until the earlier one settles. This per-set serialization is precisely the
cost of LRU's long chains that Fast-LRU overlaps away.

The flows report a per-access :class:`AccessTiming` with the data-return
latency decomposed into bank, network, and memory components exactly as
Figure 7 plots them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.bankset import AccessOutcome
from repro.cache.memory import MemoryModel
from repro.cache.replacement import ReplacementPolicy
from repro.config import packet_flits
from repro.core.geometry import CacheGeometry
from repro.errors import ProtocolError
from repro.telemetry import trace as _trace
from repro.telemetry.registry import (
    CHAIN_DEPTH_EDGES,
    SPAN_CYCLE_EDGES,
    MetricsRegistry,
)

CONTROL = packet_flits(carries_block=False)
DATA = packet_flits(carries_block=True)

#: Latency-breakdown legs every transaction decomposes into
#: (DESIGN.md §14): admission wait, wormhole serialization, uncontended
#: router+wire hops, channel-grant queueing, bank service, and memory.
SPAN_LEGS = (
    "injection_queueing",
    "serialization",
    "hop_traversal",
    "network_queueing",
    "bank_service",
    "memory",
)


@dataclass(frozen=True, slots=True)
class Scheme:
    """One of the five evaluated scheme combinations."""

    multicast: bool
    policy: ReplacementPolicy

    @property
    def name(self) -> str:
        prefix = "multicast" if self.multicast else "unicast"
        return f"{prefix}+{self.policy.name}"

    @property
    def is_fast(self) -> bool:
        return self.policy.overlaps_replacement


@dataclass(slots=True)
class AccessTiming:
    """Timing of one access, with the Fig.-7 latency decomposition."""

    issued: int
    data_at_core: int
    completion: int
    hit: bool
    bank_position: int | None
    bank_cycles: int = 0
    memory_cycles: int = 0
    #: When the bank set's tags are stable again (all in-column block
    #: movement finished). A subsequent access to the *same set* cannot
    #: start earlier -- this is the serialization long LRU chains impose
    #: and Fast-LRU largely removes.
    settled: int = 0

    @property
    def latency(self) -> int:
        """Cycles from issue until the data (or write ack) reaches the core."""
        return self.data_at_core - self.issued

    @property
    def transaction_latency(self) -> int:
        """Cycles until the whole cache transaction completes, including
        replacement chains and the completion notification -- the latency
        Figure 8 plots (Fig. 2 counts its 21 vs 12 hops this way)."""
        return self.completion - self.issued

    @property
    def network_cycles(self) -> int:
        """Transaction cycles not spent in banks or memory: wires,
        routers, serialization, and queueing."""
        return max(0, self.transaction_latency - self.bank_cycles - self.memory_cycles)

    @property
    def occupancy(self) -> int:
        """Cycles until every induced movement (replacement, write-back,
        notifications) finished."""
        return self.completion - self.issued


class TransactionEngine:
    """Executes accesses against a geometry under one scheme."""

    def __init__(
        self,
        geometry: CacheGeometry,
        memory: MemoryModel,
        scheme: Scheme,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.geometry = geometry
        self.memory = memory
        self.scheme = scheme
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Per-access replacement-chain length in banks (Fast-LRU's whole
        #: point is keeping this off the critical path; the histogram shows
        #: it actually pipelining). The object survives registry resets.
        self._chain_depths = self.metrics.histogram(
            "cache.bankset.eviction_chain_depth", CHAIN_DEPTH_EDGES
        )
        #: Always-on per-leg latency-breakdown histograms (fixed edges, so
        #: they merge across cells). Like _chain_depths, the objects
        #: survive registry resets.
        self._span_hists = {
            leg: self.metrics.histogram(f"cache.span.{leg}", SPAN_CYCLE_EDGES)
            for leg in SPAN_LEGS
        }
        self._sink = _trace.NULL_SINK
        #: Per-column transaction slots: the cache controller admits one
        #: transaction per bank-set column at a time on meshes, and two per
        #: spike on halos (the paper's 2-entry spike issue queues). Each
        #: entry is the time that slot's transaction settles.
        slots = 2 if geometry.is_halo else 1
        self._column_slots: list[list[int]] = [
            [0] * slots for _ in range(geometry.num_columns)
        ]
        self._spine_bank_cycles = 0
        #: Core node the current access belongs to (CMP support); None
        #: means the geometry's default single core.
        self._core = None
        #: Transaction validators (see repro.validation.invariants): each
        #: sees ``on_transaction(column, outcome, timing)`` after every
        #: executed access. Empty in normal runs.
        self.validators: list = []

    def reset(self) -> None:
        """Forget per-column serialization state (fresh measurement window)."""
        for slots in self._column_slots:
            for i in range(len(slots)):
                slots[i] = 0

    # -- public entry -------------------------------------------------------

    def execute(
        self,
        column: int,
        outcome: AccessOutcome,
        issue_time: int,
        is_write: bool = False,
        set_index: int | None = None,
        core_node=None,
    ) -> AccessTiming:
        """Run the full protocol flow for one (already content-resolved)
        access and return its timing.

        *core_node* overrides the requesting core's attach point (CMP
        runs; defaults to the geometry's single core).

        The access first claims a transaction slot of its column: the
        controller keeps the bank-set tags consistent by admitting at most
        one in-flight transaction per column (two per halo spike), so a
        transaction's full settle time -- exactly what Fast-LRU shortens --
        gates the column's throughput.
        """
        self.geometry.floor_clock.advance(issue_time)
        self._spine_bank_cycles = 0
        self._core = core_node
        self._sink = sink = _trace.current_sink()
        slots = self._column_slots[column]
        slot = min(range(len(slots)), key=slots.__getitem__)
        start = max(issue_time, slots[slot])
        geometry = self.geometry
        queue0 = geometry.traversal_queue_cycles
        hop0 = geometry.traversal_hop_cycles
        ser0 = geometry.serialization_cycles
        fault_stats = getattr(self.geometry, "fault_stats", None)
        if fault_stats is not None:
            degraded_before = (
                fault_stats.rerouted_traversals + fault_stats.retries
            )
        t0 = self.geometry.enter_column(column, start)
        if self.scheme.multicast:
            timing = self._multicast_access(column, outcome, t0, is_write)
        else:
            timing = self._unicast_access(column, outcome, t0, is_write)
        if fault_stats is not None:
            # Accesses whose flow crossed a reroute or ran the transient
            # retry loop (per-access view of the per-traversal counters).
            degraded = (
                fault_stats.rerouted_traversals + fault_stats.retries
            ) > degraded_before
            if degraded:
                self.metrics.counter("cache.txn.degraded_accesses").inc()
        timing.issued = issue_time
        timing.bank_cycles = self._spine_bank_cycles
        if timing.settled < timing.data_at_core:
            timing.settled = timing.data_at_core
        slots[slot] = timing.settled
        self._record_spans(
            column, issue_time, sink, timing,
            injection_queueing=t0 - issue_time,
            serialization=geometry.serialization_cycles - ser0,
            hop_traversal=geometry.traversal_hop_cycles - hop0,
            network_queueing=geometry.traversal_queue_cycles - queue0,
        )
        if sink.enabled:
            sink.complete(
                "hit" if timing.hit else "miss", "cache.txn", issue_time,
                timing.completion - issue_time, tid=f"column-{column}",
                args={"bank": timing.bank_position,
                      "data_at_core": timing.data_at_core,
                      "settled": timing.settled, "write": is_write},
            )
        for validator in self.validators:
            validator.on_transaction(column, outcome, timing)
        return timing

    def execute_early_miss(
        self,
        column: int,
        outcome,
        issue_time: int,
        is_write: bool = False,
        core_node=None,
    ) -> AccessTiming:
        """Guaranteed-miss shortcut (partial-tag early miss detection).

        The controller already knows the access misses, so the memory
        request leaves the core immediately -- no column search. The fill
        and the recursive demotion chain still run normally.
        """
        self.geometry.floor_clock.advance(issue_time)
        self._spine_bank_cycles = 0
        self._core = core_node
        self._sink = sink = _trace.current_sink()
        slots = self._column_slots[column]
        slot = min(range(len(slots)), key=slots.__getitem__)
        start = max(issue_time, slots[slot])
        geometry = self.geometry
        queue0 = geometry.traversal_queue_cycles
        hop0 = geometry.traversal_hop_cycles
        ser0 = geometry.serialization_cycles
        t0 = self.geometry.enter_column(column, start)
        timing = self._finish_miss(
            column,
            outcome,
            miss_decided=t0,
            miss_source_pos=None,
            bank_cycles=0,
            is_write=is_write,
            chain_already_ran=False,
        )
        timing.issued = issue_time
        timing.bank_cycles = self._spine_bank_cycles
        if timing.settled < timing.data_at_core:
            timing.settled = timing.data_at_core
        slots[slot] = timing.settled
        self._record_spans(
            column, issue_time, sink, timing,
            injection_queueing=t0 - issue_time,
            serialization=geometry.serialization_cycles - ser0,
            hop_traversal=geometry.traversal_hop_cycles - hop0,
            network_queueing=geometry.traversal_queue_cycles - queue0,
        )
        if sink.enabled:
            sink.complete(
                "early_miss", "cache.txn", issue_time,
                timing.completion - issue_time, tid=f"column-{column}",
                args={"data_at_core": timing.data_at_core,
                      "settled": timing.settled, "write": is_write},
            )
        for validator in self.validators:
            validator.on_transaction(column, outcome, timing)
        return timing

    def _record_spans(
        self,
        column: int,
        issue_time: int,
        sink,
        timing: AccessTiming,
        *,
        injection_queueing: int,
        serialization: int,
        hop_traversal: int,
        network_queueing: int,
    ) -> None:
        """Roll one access's latency-breakdown legs into the ``cache.span``
        histograms and (when tracing) emit one span event per leg."""
        legs = (
            ("injection_queueing", injection_queueing),
            ("serialization", serialization),
            ("hop_traversal", hop_traversal),
            ("network_queueing", network_queueing),
            ("bank_service", timing.bank_cycles),
            ("memory", timing.memory_cycles),
        )
        hists = self._span_hists
        for leg, cycles in legs:
            hists[leg].record(cycles)
        if sink.enabled:
            tid = f"column-{column}"
            for leg, cycles in legs:
                sink.complete(leg, "cache.span", issue_time, cycles, tid=tid)

    # -- bank helpers ---------------------------------------------------------

    def _bank_latency(self, column: int, position: int, replace: bool) -> int:
        timing = self.geometry.bank(column, position).timing
        return timing.tag_replace_latency if replace else timing.tag_latency

    def _bank_acquire(
        self, column: int, position: int, time: int, replace: bool,
        charge: bool = True,
    ) -> tuple[int, int]:
        """Reserve the bank; returns (done, latency_charged).

        *charge* adds the latency to the access's spine bank-cycle count
        (set False for tag matches running in parallel off the spine).
        """
        latency = self._bank_latency(column, position, replace)
        start = self.geometry.bank_resource(column, position).acquire(time, latency)
        if charge:
            self._spine_bank_cycles += latency
        return start + latency, latency

    @staticmethod
    def _head(tail_arrival: int, flits: int) -> int:
        """Head-flit arrival given a full-packet (tail) arrival time."""
        return tail_arrival - (flits - 1)

    # -- unicast flows ----------------------------------------------------------

    def _unicast_access(
        self, column: int, outcome: AccessOutcome, t0: int, is_write: bool
    ) -> AccessTiming:
        banks = self.geometry.banks_per_column(column)
        hit_pos = outcome.bank if outcome.hit else None
        fast = self.scheme.is_fast

        # Sequential tag-match walk down the column (Fig. 2). With Fast-LRU
        # the evicted block rides as the wormhole body behind the request
        # head, so each next tag match is gated by the head flit only while
        # the bank stays busy for the tag+replacement time.
        bank_cycles = 0
        arrival = self.geometry.core_to_bank(column, 0, t0, CONTROL, core=self._core)
        position = 0
        tail_gap = 0  # how far the block body trails the head at this bank
        while True:
            is_hit_bank = hit_pos is not None and position == hit_pos
            replace = fast and not is_hit_bank
            done, charged = self._bank_acquire(column, position, arrival, replace)
            bank_cycles += charged
            if is_hit_bank or position == banks - 1:
                break
            if fast:
                tail = self.geometry.bank_to_bank(
                    column, position, position + 1, done, DATA
                )
                arrival = self._head(tail, DATA)
                tail_gap = DATA - 1
            else:
                arrival = self.geometry.bank_to_bank(
                    column, position, position + 1, done, CONTROL
                )
            position += 1

        if hit_pos is not None:
            timing = self._finish_hit(
                column, hit_pos, done, bank_cycles, is_write, multicast=False
            )
            if fast and hit_pos > 0:
                # The hit bank still absorbs the incoming evicted block
                # (its frame was freed by the departing hit block).
                absorb, _ = self._bank_acquire(
                    column, hit_pos, done + tail_gap, replace=True
                )
                timing.settled = max(timing.settled, absorb)
                timing.completion = max(timing.completion, absorb)
            return timing
        return self._finish_miss(
            column,
            outcome,
            miss_decided=done + tail_gap,
            miss_source_pos=banks - 1,
            bank_cycles=bank_cycles,
            is_write=is_write,
            chain_already_ran=fast,
            fast_chain_done=done + tail_gap,
        )

    # -- multicast flows ---------------------------------------------------------

    def _multicast_access(
        self, column: int, outcome: AccessOutcome, t0: int, is_write: bool
    ) -> AccessTiming:
        banks = self.geometry.banks_per_column(column)
        hit_pos = outcome.bank if outcome.hit else None
        fast = self.scheme.is_fast

        arrivals = self.geometry.multicast_column(column, t0, core=self._core)
        # All banks tag-match concurrently; the MRU bank of a Fast-LRU flow
        # additionally reads out its victim right after miss detection.
        done: list[int] = []
        for position in range(banks):
            is_hit_bank = hit_pos is not None and position == hit_pos
            evicts_now = fast and position == 0 and not is_hit_bank
            finish, _ = self._bank_acquire(
                column, position, arrivals[position], replace=evicts_now,
                charge=False,
            )
            done.append(finish)
        if self._sink.enabled:
            self._sink.complete(
                "multicast", "cache.txn", t0, max(done) - t0,
                tid=f"column-{column}",
                args={"banks": banks, "first_arrival": arrivals[0]},
            )

        if hit_pos is not None:
            hit_bank_latency = self._bank_latency(column, hit_pos, replace=False)
            self._spine_bank_cycles += hit_bank_latency
            timing = self._finish_hit(
                column,
                hit_pos,
                done[hit_pos],
                hit_bank_latency,
                is_write,
                multicast=True,
            )
            if fast and hit_pos > 0:
                chain_done = self._fast_chain(column, done, stop=hit_pos)
                timing.settled = max(timing.settled, chain_done)
                timing.completion = max(timing.completion, chain_done)
            return timing

        # Global miss: the core waits for all banks to report misses, then
        # invokes the memory (Fig. 3(b)/(d)). Since the multicast request
        # walks down the column, the LRU bank always reports last; we model
        # the per-bank notifications as combined in-column into one control
        # packet from the LRU bank (the others are subsumed by it and would
        # otherwise only add artificial reply-channel pressure).
        miss_decided, _ = self.geometry.bank_to_core(
            column, banks - 1, max(done), CONTROL, core=self._core
        )
        fast_chain_done = None
        if fast:
            fast_chain_done = self._fast_chain(column, done, stop=banks - 1)
        last_bank_latency = self._bank_latency(column, banks - 1, replace=False)
        self._spine_bank_cycles += last_bank_latency
        return self._finish_miss(
            column,
            outcome,
            miss_decided=miss_decided,
            miss_source_pos=None,  # the core issues the memory request
            bank_cycles=last_bank_latency,
            is_write=is_write,
            chain_already_ran=fast,
            fast_chain_done=fast_chain_done,
        )

    # -- shared hit/miss completion ----------------------------------------------

    def _finish_hit(
        self,
        column: int,
        hit_pos: int,
        hit_done: int,
        bank_cycles: int,
        is_write: bool,
        multicast: bool,
    ) -> AccessTiming:
        policy = self.scheme.policy.name
        reply_flits = CONTROL if is_write else DATA

        if policy == "promotion":
            data_at_core, _ = self.geometry.bank_to_core(
                column, hit_pos, hit_done, reply_flits, core=self._core
            )
            settled = hit_done
            completion = data_at_core
            if hit_pos > 0:
                # Swap with the next-closer bank: two one-hop block moves.
                up = self.geometry.bank_to_bank(
                    column, hit_pos, hit_pos - 1, hit_done, DATA
                )
                w_up, _ = self._bank_acquire(column, hit_pos - 1, up, replace=True)
                down = self.geometry.bank_to_bank(
                    column, hit_pos - 1, hit_pos, w_up, DATA
                )
                w_down, _ = self._bank_acquire(column, hit_pos, down, replace=True)
                settled = w_down
                notify, _ = self.geometry.bank_to_core(
                    column, hit_pos, w_down, CONTROL, core=self._core
                )
                completion = max(completion, notify)
            return AccessTiming(
                issued=0,
                data_at_core=data_at_core,
                completion=completion,
                hit=True,
                bank_position=hit_pos,
                bank_cycles=bank_cycles,
                settled=settled,
            )

        # LRU / Fast-LRU: the hit block is forwarded toward the core and
        # dropped off at the MRU frame on the way.
        data_at_core, waypoints = self.geometry.bank_to_core(
            column, hit_pos, hit_done, reply_flits, record_waypoints=True,
            core=self._core,
        )
        settled = hit_done
        completion = data_at_core
        if hit_pos > 0:
            mru_node = self.geometry.bank_node(column, 0)
            # Waypoints carry head arrivals; the write needs the tail.
            mru_arrival = waypoints.get(mru_node, self._head(data_at_core, reply_flits))
            mru_write, _ = self._bank_acquire(
                column, 0, mru_arrival + (DATA - 1), replace=True
            )
            settled = mru_write
            completion = max(completion, mru_write)
            if policy == "lru":
                # Classic LRU: sequential shift-down chain after the hit
                # block lands in the MRU bank (Fig. 2(a) moves (7)-(9)).
                chain_done = self._shift_chain(
                    column, start=mru_write, first=0, last=hit_pos
                )
                settled = chain_done
                notify, _ = self.geometry.bank_to_core(
                    column, hit_pos, chain_done, CONTROL, core=self._core
                )
                completion = max(completion, notify)
        return AccessTiming(
            issued=0,
            data_at_core=data_at_core,
            completion=completion,
            hit=True,
            bank_position=hit_pos,
            bank_cycles=bank_cycles,
            settled=settled,
        )

    def _finish_miss(
        self,
        column: int,
        outcome: AccessOutcome,
        miss_decided: int,
        miss_source_pos: int | None,
        bank_cycles: int,
        is_write: bool,
        chain_already_ran: bool,
        fast_chain_done: int | None = None,
    ) -> AccessTiming:
        banks = self.geometry.banks_per_column(column)

        # Memory request: from the last bank (unicast) or the core (multicast).
        if miss_source_pos is None:
            mem_request = self.geometry.core_to_memory(
                miss_decided, CONTROL, core=self._core
            )
        else:
            mem_request = self.geometry.bank_to_memory(
                column, miss_source_pos, miss_decided, CONTROL
            )
        _, data_ready = self.memory.read(mem_request)
        memory_cycles = data_ready - mem_request

        # Fill the MRU bank; the MRU router cut-through-forwards the block
        # to the core as its flits stream in.
        fill_tail = self.geometry.memory_to_bank(column, 0, data_ready, DATA)
        fill_write, _ = self._bank_acquire(column, 0, fill_tail, replace=True)
        if self._sink.enabled:
            self._sink.complete(
                "memory", "cache.txn", mem_request, memory_cycles,
                tid=f"column-{column}",
            )
            self._sink.complete(
                "mru_fill", "cache.txn", self._head(fill_tail, DATA),
                fill_write - self._head(fill_tail, DATA),
                tid=f"column-{column}",
            )
        data_at_core, _ = self.geometry.bank_to_core(
            column, 0, self._head(fill_tail, DATA), DATA, core=self._core
        )
        settled = fill_write
        completion = max(data_at_core, fill_write)

        if chain_already_ran:
            # Fast-LRU: every bank already shifted its block during the tag
            # phase; the MRU frame was empty awaiting this fill.
            chain_done = fast_chain_done if fast_chain_done is not None else fill_write
            chain_end = banks - 1
        else:
            # The fill displaces the MRU block and the stack demotes:
            # the whole column for recursive replacement (LRU and this
            # paper's Promotion), one bank for one-copy, none for
            # zero-copy (footnote 4 variants).
            miss_policy = getattr(self.scheme.policy, "miss_policy", "recursive")
            if miss_policy == "zero_copy":
                chain_end = 0
            elif miss_policy == "one_copy":
                chain_end = min(1, banks - 1)
            else:
                chain_end = banks - 1
            chain_done = self._shift_chain(
                column, start=fill_write, first=0, last=chain_end
            )
        settled = max(settled, chain_done)
        completion = max(completion, chain_done)

        # Dirty victim leaves its bank for memory (fire-and-forget: it
        # occupies channels and the memory pipe but does not extend the
        # transaction the core observes).
        if outcome.writeback_required:
            victim_bank = (
                outcome.victim_bank
                if outcome.victim_bank is not None
                else banks - 1
            )
            wb_arrival = self.geometry.bank_to_memory(
                column, victim_bank, chain_done, DATA
            )
            self.memory.writeback(wb_arrival)

        notify, _ = self.geometry.bank_to_core(
            column, chain_end, chain_done, CONTROL, core=self._core
        )
        completion = max(completion, notify)
        return AccessTiming(
            issued=0,
            data_at_core=data_at_core,
            completion=completion,
            hit=False,
            bank_position=None,
            bank_cycles=bank_cycles,
            memory_cycles=memory_cycles,
            settled=settled,
        )

    # -- replacement chains --------------------------------------------------------

    def _shift_chain(self, column: int, start: int, first: int, last: int) -> int:
        """Sequential demotion chain: bank i's block moves to bank i+1 for
        ``i = first..last-1`` (classic LRU shifts / Promotion's recursive
        replacement after a fill). Each link is gated by the head flit of
        the incoming block (cut-through: the tail streams into the frame
        while the next link's victim already departs)."""
        self._chain_depths.record(max(0, last - first))
        current = start
        for position in range(first, last):
            tail = self.geometry.bank_to_bank(
                column, position, position + 1, current, DATA
            )
            current, _ = self._bank_acquire(
                column, position + 1, self._head(tail, DATA), replace=True
            )
        if last <= first:
            return current
        # The last block's tail must fully land before the set settles.
        current += DATA - 1
        if self._sink.enabled:
            self._sink.complete(
                "chain", "cache.txn", start, current - start,
                tid=f"column-{column}", args={"links": last - first},
            )
        return current

    def _fast_chain(self, column: int, done: list[int], stop: int) -> int:
        """Fast-LRU eviction chain (Fig. 3): bank 0's victim moves to bank 1
        as soon as bank 0 detects its miss; each subsequent bank releases
        its own victim once it has both missed and received its
        predecessor's block. The chain is absorbed at bank *stop* (the hit
        bank's freed frame, or the LRU bank on a global miss)."""
        if stop <= 0:
            self._chain_depths.record(0)
            return done[0]
        self._chain_depths.record(stop)
        current = done[0]
        for position in range(1, stop + 1):
            tail = self.geometry.bank_to_bank(
                column, position - 1, position, current, DATA
            )
            ready = max(self._head(tail, DATA), done[position])
            current, _ = self._bank_acquire(column, position, ready, replace=True)
        current += DATA - 1
        if self._sink.enabled:
            self._sink.complete(
                "fast_chain", "cache.txn", done[0], current - done[0],
                tid=f"column-{column}", args={"links": stop},
            )
        return current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TransactionEngine(scheme={self.scheme.name})"


def make_scheme(name: str) -> Scheme:
    """Build a scheme from names like ``multicast+fast_lru``.

    Accepts common spelling variants case-insensitively: ``fastlru`` and
    ``fast-lru`` both mean ``fast_lru``, and the cast half may be
    abbreviated ``uc``/``mc``.
    """
    from repro.cache.replacement import policy_by_name, policy_names

    cast, sep, policy_name = name.strip().lower().partition("+")
    if not sep or not cast or not policy_name:
        raise ProtocolError(
            f"scheme name {name!r} must be '<cast>+<policy>', e.g. "
            f"'unicast+lru' or 'multicast+fast_lru' (casts: unicast, "
            f"multicast; policies: {', '.join(policy_names())})"
        )
    cast = {"uc": "unicast", "mc": "multicast"}.get(cast, cast)
    if cast not in ("unicast", "multicast"):
        raise ProtocolError(
            f"unknown cast {cast!r} in scheme {name!r}; accepted: "
            f"unicast (uc), multicast (mc)"
        )
    return Scheme(multicast=(cast == "multicast"), policy=policy_by_name(policy_name))


#: The five scheme combinations of Figure 8, in the paper's legend order.
FIGURE8_SCHEMES = (
    "unicast+promotion",
    "unicast+lru",
    "unicast+fast_lru",
    "multicast+promotion",
    "multicast+fast_lru",
)
