"""The paper's primary contribution: the co-designed networked cache.

* :mod:`repro.core.geometry` -- resource-aware path timing over a design's
  topology (channels, banks, spike queues as contended resources);
* :mod:`repro.core.flows` -- the transaction flows of Figures 2 and 3 for
  all five scheme combinations ({unicast, multicast} x {Promotion, LRU,
  Fast-LRU});
* :mod:`repro.core.designs` -- the six evaluated designs A-F (Table 3);
* :mod:`repro.core.system` -- :class:`NetworkedCacheSystem`, the end-to-end
  simulator a client drives with an access trace.
"""

from repro.core.designs import (
    DESIGN_NAMES,
    DesignSpec,
    design_a,
    design_b,
    design_c,
    design_d,
    design_e,
    design_f,
    make_design,
)
from repro.core.flows import AccessTiming, Scheme, TransactionEngine
from repro.core.geometry import CacheGeometry
from repro.core.system import NetworkedCacheSystem, RunResult

__all__ = [
    "CacheGeometry",
    "Scheme",
    "AccessTiming",
    "TransactionEngine",
    "DesignSpec",
    "DESIGN_NAMES",
    "design_a",
    "design_b",
    "design_c",
    "design_d",
    "design_e",
    "design_f",
    "make_design",
    "NetworkedCacheSystem",
    "RunResult",
]
