"""Resource-aware timing geometry of one cache design.

Bridges the topology (where banks sit, which channels exist) and the
transaction flows (who talks to whom, when). Every channel and every bank
is a FCFS :class:`~repro.sim.resource.Resource`; halo spike queues are
2-entry :class:`~repro.sim.resource.OccupancyTracker` instances (the paper
gives each spike a small issue queue). Traversals reserve each channel on
the path for the packet's flit count, so concurrent transactions contend
exactly where the paper says they do: the row the core sits on, the bank
columns, and the memory channel.
"""

from __future__ import annotations

import itertools

from repro.cache.bank import BankDescriptor
from repro.config import RouterConfig, packet_flits
from repro.errors import ConfigurationError
from repro.noc.routing import RouteComputer, routing_for
from repro.noc.topology import HaloTopology, NodeId, Topology, spike_node
from repro.sim.resource import FloorClock, OccupancyTracker, Resource


class CacheGeometry:
    """Physical layout + contention state of one design."""

    def __init__(
        self,
        topology: Topology,
        columns: list[list[BankDescriptor]],
        routing: RouteComputer | None = None,
        router_config: RouterConfig | None = None,
        spike_queue_entries: int = 2,
    ) -> None:
        self.topology = topology
        self.columns = columns
        self.routing = routing or routing_for(topology)
        self.router_config = router_config or RouterConfig()
        self.is_halo = isinstance(topology, HaloTopology)
        if topology.core_attach is None or topology.memory_attach is None:
            raise ConfigurationError("topology must define core/memory attach points")
        self.core_node: NodeId = topology.core_attach
        self.memory_node: NodeId = topology.memory_attach
        self.memory_pin_delay = topology.memory_pin_delay

        #: Shared lower bound on future request times; lets every resource
        #: prune its past reservations in O(1) amortized.
        self.floor_clock = FloorClock()
        self._channel_resources: dict[tuple[NodeId, NodeId], Resource] = {}
        self._bank_resources: dict[tuple[int, int], Resource] = {}
        #: (src, dst) -> tuple of (channel resource, hop cost, hop node):
        #: routes are a pure function of the topology, so each pair's path,
        #: per-hop costs, and channel resources are resolved exactly once.
        self._plans: dict[
            tuple[NodeId, NodeId], tuple[tuple[Resource, int, NodeId], ...]
        ] = {}
        self._spike_queues: dict[int, OccupancyTracker] | None = None
        if self.is_halo:
            self._spike_queues = {
                s: OccupancyTracker(spike_queue_entries, name=f"spike-queue-{s}")
                for s in range(len(columns))
            }
        #: Uncontended path cost per (src, dst), filled lazily with _plans.
        self._plan_costs: dict[tuple[NodeId, NodeId], int] = {}
        #: Per-(column, entry node) total uncontended cost of the multicast
        #: replication chain, resolved once.
        self._multicast_costs: dict[tuple[int, NodeId], int] = {}
        #: Cycles multicast deliveries lost to channel contention -- the
        #: transaction-level analogue of replica-blocked router cycles.
        self.multicast_blocked_cycles = 0
        #: Latency-breakdown accumulators over every traversal: cycles a
        #: head flit waited for channel grants (queueing), uncontended
        #: router+wire hop cost, and wormhole serialization (flits - 1).
        #: Flows snapshot these before/after each access to attribute
        #: per-transaction legs (DESIGN.md §14).
        self.traversal_queue_cycles = 0
        self.traversal_hop_cycles = 0
        self.serialization_cycles = 0
        self._validate()

    def _validate(self) -> None:
        for col in range(len(self.columns)):
            for descriptor in self.columns[col]:
                node = self.bank_node(col, descriptor.position)
                if node not in self.topology.nodes:
                    raise ConfigurationError(
                        f"bank ({col},{descriptor.position}) maps to missing "
                        f"node {node}"
                    )

    # -- layout -------------------------------------------------------------

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def banks_per_column(self, column: int) -> int:
        return len(self.columns[column])

    def bank(self, column: int, position: int) -> BankDescriptor:
        return self.columns[column][position]

    def bank_node(self, column: int, position: int) -> NodeId:
        """Topology node of the router attached to a bank."""
        if self.is_halo:
            return spike_node(column, position)
        return (column, position)

    # -- resources ----------------------------------------------------------

    def channel_resource(self, src: NodeId, dst: NodeId) -> Resource:
        key = (src, dst)
        resource = self._channel_resources.get(key)
        if resource is None:
            self.topology.channel(src, dst)  # validates existence
            resource = Resource(name=f"ch{src}->{dst}", floor_clock=self.floor_clock)
            self._channel_resources[key] = resource
        return resource

    def bank_resource(self, column: int, position: int) -> Resource:
        key = (column, position)
        resource = self._bank_resources.get(key)
        if resource is None:
            resource = Resource(name=f"bank{key}", floor_clock=self.floor_clock)
            self._bank_resources[key] = resource
        return resource

    def spike_queue(self, column: int) -> OccupancyTracker:
        if self._spike_queues is None:
            raise ConfigurationError("spike queues exist only on halo designs")
        return self._spike_queues[column]

    def reset_contention(self) -> None:
        """Clear all resource occupancy (fresh run, same layout)."""
        self.floor_clock.reset()
        self.multicast_blocked_cycles = 0
        self.traversal_queue_cycles = 0
        self.traversal_hop_cycles = 0
        self.serialization_cycles = 0
        for resource in self._channel_resources.values():
            resource.reset()
        for resource in self._bank_resources.values():
            resource.reset()
        if self._spike_queues is not None:
            for tracker in self._spike_queues.values():
                tracker.reset()

    def publish_metrics(self, registry) -> None:
        """Export contention counters into a telemetry registry.

        The transaction-level model has no explicit VCs; a channel grant
        that could not start at its requested cycle is the analogue of a
        failed same-cycle VC allocation, so channel waits are published
        under the ``noc.router`` names the flit-level router also uses.
        """
        channels = self._channel_resources.values()
        registry.counter("noc.router.vc_alloc_failures").set(
            sum(r.waits for r in channels)
        )
        registry.counter("noc.router.vc_alloc_wait_cycles").set(
            sum(r.queued_cycles for r in channels)
        )
        registry.counter("noc.router.channel_busy_cycles").set(
            sum(r.busy_cycles for r in channels)
        )
        registry.counter("noc.router.multicast_replica_blocked_cycles").set(
            self.multicast_blocked_cycles
        )
        registry.counter("noc.traversal.queue_cycles").set(
            self.traversal_queue_cycles
        )
        registry.counter("noc.traversal.hop_cycles").set(
            self.traversal_hop_cycles
        )
        registry.counter("noc.traversal.serialization_cycles").set(
            self.serialization_cycles
        )
        # Per-link congestion: one row per channel that carried traffic
        # (the resource dict is lazy, so unused channels never appear).
        # These rows are the heatmap substrate for `repro report`.
        for key in sorted(self._channel_resources, key=str):
            resource = self._channel_resources[key]
            if not resource.grants:
                continue
            src, dst = key
            link = f"{src}->{dst}"
            registry.counter(f"noc.link.grants.{link}").set(resource.grants)
            registry.counter(f"noc.link.busy_cycles.{link}").set(
                resource.busy_cycles
            )
            if resource.queued_cycles:
                registry.counter(f"noc.link.wait_cycles.{link}").set(
                    resource.queued_cycles
                )
        banks = self._bank_resources.values()
        registry.counter("cache.bank.grants").set(sum(r.grants for r in banks))
        registry.counter("cache.bank.busy_cycles").set(
            sum(r.busy_cycles for r in banks)
        )
        registry.counter("cache.bank.wait_cycles").set(
            sum(r.queued_cycles for r in banks)
        )
        if self._spike_queues is not None:
            trackers = self._spike_queues.values()
            registry.counter("noc.spike.queue_waits").set(
                sum(t.waits for t in trackers)
            )
            registry.counter("noc.spike.queue_wait_cycles").set(
                sum(t.queued_cycles for t in trackers)
            )

    # -- timing primitives ----------------------------------------------------

    def hop_cost(self, src: NodeId, dst: NodeId) -> int:
        """Uncontended head-flit cost of one hop: router + wire."""
        channel = self.topology.channel(src, dst)
        return self.router_config.hop_latency + channel.wire_delay

    def _plan(self, src: NodeId, dst: NodeId) -> tuple[tuple[Resource, int, NodeId], ...]:
        """Resolved traversal plan for (src, dst): one (channel resource,
        hop cost, hop node) triple per hop, computed once per geometry."""
        plan = tuple(
            (
                self.channel_resource(hop_src, hop_dst),
                self.hop_cost(hop_src, hop_dst),
                hop_dst,
            )
            for hop_src, hop_dst in itertools.pairwise(
                self.routing.path(self.topology, src, dst)
            )
        )
        self._plans[(src, dst)] = plan
        return plan

    def traverse(
        self,
        src: NodeId,
        dst: NodeId,
        time: int,
        flits: int,
        record_waypoints: bool = False,
    ) -> tuple[int, dict[NodeId, int]]:
        """Move a *flits*-flit packet from *src* to *dst* starting at *time*.

        Each channel on the routed path is reserved FCFS for *flits* cycles
        (wormhole serialization). Returns ``(arrival, waypoints)`` where
        *arrival* is when the complete packet is available at *dst* and
        *waypoints* maps intermediate nodes to head-flit arrival times
        (only filled when *record_waypoints*).
        """
        if src == dst:
            return time, {}
        plan = self._plans.get((src, dst))
        if plan is None:
            plan = self._plan(src, dst)
        head = time
        queued = 0
        hop_cycles = 0
        if record_waypoints:
            waypoints: dict[NodeId, int] = {}
            last = len(plan) - 1
            for i, (resource, cost, node) in enumerate(plan):
                granted = resource.acquire(head, flits)
                queued += granted - head
                hop_cycles += cost
                head = granted + cost
                if i < last:
                    waypoints[node] = head
            self.traversal_queue_cycles += queued
            self.traversal_hop_cycles += hop_cycles
            self.serialization_cycles += flits - 1
            return head + (flits - 1), waypoints
        for resource, cost, _ in plan:
            granted = resource.acquire(head, flits)
            queued += granted - head
            hop_cycles += cost
            head = granted + cost
        self.traversal_queue_cycles += queued
        self.traversal_hop_cycles += hop_cycles
        self.serialization_cycles += flits - 1
        return head + (flits - 1), {}

    def multicast_column(
        self, column: int, time: int, core: NodeId | None = None
    ) -> list[int]:
        """Deliver one multicast request flit to every bank of a column.

        Models the Section-3.1 chain replication: the flit travels from the
        core toward the column, and at every bank router a replica ejects
        while the original continues to the next bank. Returns the request
        arrival time at each bank position.
        """
        flits = packet_flits(carries_block=False)
        arrivals: list[int] = []
        head = time
        src = core if core is not None else self.core_node
        chain_cost = self._multicast_costs.get((column, src))
        if chain_cost is None:
            chain_cost = self._multicast_chain_cost(column, src, flits)
        for position in range(self.banks_per_column(column)):
            dst = self.bank_node(column, position)
            arrival, _ = self.traverse(src, dst, head, flits)
            arrivals.append(arrival)
            head = arrival
            src = dst
        # A grant never starts before its request, so each segment's actual
        # arrival >= its uncontended arrival; the chain's total slip is the
        # final arrival minus the zero-contention chain cost.
        self.multicast_blocked_cycles += head - time - chain_cost
        return arrivals

    def _multicast_chain_cost(
        self, column: int, src: NodeId, flits: int
    ) -> int:
        """Total uncontended cost of the column's replication chain."""
        entry = src
        total = 0
        for position in range(self.banks_per_column(column)):
            dst = self.bank_node(column, position)
            total += self._uncontended_cost(src, dst, flits)
            src = dst
        self._multicast_costs[(column, entry)] = total
        return total

    def _uncontended_cost(self, src: NodeId, dst: NodeId, flits: int) -> int:
        """Zero-contention traversal cost of (src, dst) for *flits* flits."""
        if src == dst:
            return 0
        cost = self._plan_costs.get((src, dst))
        if cost is None:
            plan = self._plans.get((src, dst))
            if plan is None:
                plan = self._plan(src, dst)
            cost = sum(hop_cost for _, hop_cost, _ in plan)
            self._plan_costs[(src, dst)] = cost
        return cost + (flits - 1)

    # -- common endpoints -----------------------------------------------------

    def core_to_bank(
        self,
        column: int,
        position: int,
        time: int,
        flits: int,
        core: NodeId | None = None,
    ) -> int:
        src = core if core is not None else self.core_node
        arrival, _ = self.traverse(
            src, self.bank_node(column, position), time, flits
        )
        return arrival

    def bank_to_bank(
        self, column: int, src_pos: int, dst_pos: int, time: int, flits: int
    ) -> int:
        arrival, _ = self.traverse(
            self.bank_node(column, src_pos),
            self.bank_node(column, dst_pos),
            time,
            flits,
        )
        return arrival

    def bank_to_core(
        self,
        column: int,
        position: int,
        time: int,
        flits: int,
        record_waypoints: bool = False,
        core: NodeId | None = None,
    ) -> tuple[int, dict[NodeId, int]]:
        dst = core if core is not None else self.core_node
        return self.traverse(
            self.bank_node(column, position),
            dst,
            time,
            flits,
            record_waypoints=record_waypoints,
        )

    def core_to_memory(
        self, time: int, flits: int, core: NodeId | None = None
    ) -> int:
        src = core if core is not None else self.core_node
        arrival, _ = self.traverse(src, self.memory_node, time, flits)
        return arrival + self.memory_pin_delay

    def memory_to_bank(
        self, column: int, position: int, time: int, flits: int
    ) -> int:
        arrival, _ = self.traverse(
            self.memory_node,
            self.bank_node(column, position),
            time + self.memory_pin_delay,
            flits,
        )
        return arrival

    def bank_to_memory(
        self, column: int, position: int, time: int, flits: int
    ) -> int:
        arrival, _ = self.traverse(
            self.bank_node(column, position), self.memory_node, time, flits
        )
        return arrival + self.memory_pin_delay

    def enter_column(self, column: int, time: int) -> int:
        """Admission step before a request leaves the core.

        On halo designs the request first claims one of the spike's queue
        entries; on meshes admission is immediate.
        """
        if self._spike_queues is None:
            return time
        return self.spike_queue(column).acquire(time, 1) + 1
