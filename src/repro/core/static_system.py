"""Static NUCA system: the paper's Section-2 baseline, end to end.

Every access goes straight to its home bank (no search, no migration):

    core --request--> home bank --data/miss--> core / memory

Uses the same geometry, contention resources, memory model, and issue
model as the D-NUCA systems so the comparison isolates the *policy*.
"""

from __future__ import annotations

from repro.cache.bankset import BankSetStats
from repro.cache.memory import MemoryModel
from repro.cache.static_nuca import StaticNUCAArray
from repro.cache.address import AddressMapper
from repro.core.designs import DesignSpec, design_spec
from repro.core.flows import CONTROL, DATA, AccessTiming
from repro.core.system import RunResult
from repro.errors import ConfigurationError
from repro.perf.ipc import IssueModel
from repro.perf.metrics import LatencyAccumulator
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.trace import Trace


class StaticNUCASystem:
    """S-NUCA over the same fabric as the D-NUCA designs."""

    scheme_name = "static-nuca"

    def __init__(
        self,
        design: str | DesignSpec = "A",
        mapper: AddressMapper | None = None,
    ) -> None:
        self.spec = design_spec(design) if isinstance(design, str) else design
        self.geometry = self.spec.build()
        self.mapper = mapper or AddressMapper()
        self.array = StaticNUCAArray(
            columns=self.geometry.num_columns,
            banks_per_column=self.geometry.banks_per_column(0),
        )
        self.memory = MemoryModel()
        self.memory.channel.floor_clock = self.geometry.floor_clock

    def _bank_acquire(self, column: int, position: int, time: int,
                      replace: bool) -> tuple[int, int]:
        timing = self.geometry.bank(column, position).timing
        latency = timing.tag_replace_latency if replace else timing.tag_latency
        start = self.geometry.bank_resource(column, position).acquire(
            time, latency
        )
        return start + latency, latency

    def _access_timing(self, column: int, bank: int, hit: bool,
                       writeback: bool, issue_time: int,
                       is_write: bool) -> AccessTiming:
        self.geometry.floor_clock.advance(issue_time)
        arrival = self.geometry.core_to_bank(column, bank, issue_time, CONTROL)
        done, charged = self._bank_acquire(column, bank, arrival, replace=not hit)
        memory_cycles = 0
        if hit:
            reply = CONTROL if is_write else DATA
            data_at_core, _ = self.geometry.bank_to_core(column, bank, done, reply)
            completion = data_at_core
        else:
            mem_request = self.geometry.bank_to_memory(column, bank, done, CONTROL)
            _, ready = self.memory.read(mem_request)
            memory_cycles = ready - mem_request
            fill = self.geometry.memory_to_bank(column, bank, ready, DATA)
            fill_done, extra = self._bank_acquire(column, bank, fill, replace=True)
            charged += extra
            data_at_core, _ = self.geometry.bank_to_core(
                column, bank, fill - (DATA - 1), DATA
            )
            completion = max(data_at_core, fill_done)
            if writeback:
                wb = self.geometry.bank_to_memory(column, bank, fill_done, DATA)
                self.memory.writeback(wb)
        return AccessTiming(
            issued=issue_time,
            data_at_core=data_at_core,
            completion=completion,
            hit=hit,
            bank_position=bank if hit else None,
            bank_cycles=charged,
            memory_cycles=memory_cycles,
            settled=completion,
        )

    def run(
        self,
        trace: Trace,
        profile: BenchmarkProfile | None = None,
        perfect_ipc: float | None = None,
        warmup: int | None = None,
        hide_cycles: int = 0,
    ) -> RunResult:
        """Same contract as :meth:`NetworkedCacheSystem.run`."""
        if profile is not None:
            perfect_ipc = profile.perfect_l2_ipc
        if perfect_ipc is None:
            raise ConfigurationError("run() needs a profile or perfect_ipc")
        if warmup is None:
            warmup = len(trace) // 3
        if warmup >= len(trace):
            raise ConfigurationError("warmup must leave accesses to measure")

        issue = IssueModel(perfect_ipc=perfect_ipc, hide_cycles=hide_cycles)
        latency = LatencyAccumulator()
        stats = BankSetStats()

        for i, access in enumerate(trace):
            decoded = self.mapper.decode(access.address)
            outcome = self.array.access(decoded, access.is_write)
            if i < warmup:
                if i == warmup - 1:
                    self.memory.reset()
                    self.geometry.reset_contention()
                    self.array.hits = 0
                    self.array.misses = 0
                continue
            stats.record(outcome)
            issue_time = issue.issue_time(access.gap_instructions)
            bank = self.array.home_bank(decoded)
            timing = self._access_timing(
                decoded.column,
                bank,
                hit=outcome.hit,
                writeback=outcome.writeback_required,
                issue_time=issue_time,
                is_write=access.is_write,
            )
            issue.complete(timing.data_at_core, is_write=access.is_write)
            latency.record(
                latency=timing.transaction_latency,
                hit=timing.hit,
                bank=timing.bank_cycles,
                network=timing.network_cycles,
                memory=timing.memory_cycles,
                bank_position=timing.bank_position,
            )

        cycles, ipc = issue.finish()
        return RunResult(
            design=self.spec.key,
            scheme=self.scheme_name,
            benchmark=trace.name,
            accesses=latency.total_count,
            instructions=issue.instructions,
            cycles=cycles,
            ipc=ipc,
            latency=latency,
            content=stats,
            memory_reads=self.memory.reads,
            memory_writebacks=self.memory.writebacks,
        )
