"""The six evaluated network designs (Table 3).

=======  ==================================  =====================
Design   Interconnection network             Bank size
=======  ==================================  =====================
A        16 x 16 mesh                        uniform (64 KB)
B        16 x 16 simplified mesh             uniform (64 KB)
C        16 x 4 simplified mesh              uniform (256 KB)
D        16 x 5 simplified mesh              non-uniform
E        16-spike halo (spike length 16)     uniform (64 KB)
F        16-spike halo (spike length 5)      non-uniform
=======  ==================================  =====================

All designs implement the same 16 MB, 16-way, 16-bank-set-group cache; they
differ in topology, bank granularity, and wire delays. Designs E/F place
the memory controller at the hub, paying 16 / 9 extra wire cycles to the
off-chip pins (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.cache.bank import NON_UNIFORM_COLUMN, bank_descriptors_for_column
from repro.core.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.noc.topology import (
    HaloTopology,
    MeshTopology,
    SimplifiedMeshTopology,
    Topology,
)

NUM_COLUMNS = 16
KB = 1024


@dataclass(frozen=True)
class DesignSpec:
    """Static description of one Table-3 design."""

    key: str
    label: str
    network: str
    bank_capacities: tuple[int, ...]
    topology_factory: Callable[[], Topology] = field(compare=False)
    #: Extra wire cycles between memory controller and off-chip pins.
    memory_pin_delay: int = 0

    @property
    def banks_per_column(self) -> int:
        return len(self.bank_capacities)

    @property
    def total_capacity(self) -> int:
        return NUM_COLUMNS * sum(self.bank_capacities)

    @property
    def uniform(self) -> bool:
        return len(set(self.bank_capacities)) == 1

    def build(
        self,
        router_config=None,
        spike_queue_entries: int = 2,
    ) -> CacheGeometry:
        """Materialize the geometry (topology + bank descriptors).

        *router_config* overrides the router microarchitecture (e.g. the
        classic pipelined router for ablations); *spike_queue_entries*
        sizes the halo spike issue queues (the paper uses 2).
        """
        topology = self.topology_factory()
        columns = [
            bank_descriptors_for_column(list(self.bank_capacities))
            for _ in range(NUM_COLUMNS)
        ]
        return CacheGeometry(
            topology,
            columns,
            router_config=router_config,
            spike_queue_entries=spike_queue_entries,
        )


def _mesh_a() -> Topology:
    # Wire delays derive from the 64 KB bank's Table-1 entry (1 cycle).
    return MeshTopology(
        NUM_COLUMNS,
        16,
        core_column=8,
        memory_column=8,
        row_bank_capacities=[64 * KB] * 16,
    )


def _mesh_b() -> Topology:
    return SimplifiedMeshTopology(
        NUM_COLUMNS,
        16,
        core_column=8,
        memory_column=9,
        row_bank_capacities=[64 * KB] * 16,
    )


def _mesh_c() -> Topology:
    return SimplifiedMeshTopology(
        NUM_COLUMNS,
        4,
        core_column=8,
        memory_column=9,
        row_bank_capacities=[256 * KB] * 4,
    )


def _mesh_d() -> Topology:
    # Horizontal delay pinned to the 512 KB bank's 3 cycles (Section 6.2).
    return SimplifiedMeshTopology(
        NUM_COLUMNS,
        5,
        core_column=8,
        memory_column=9,
        row_bank_capacities=list(NON_UNIFORM_COLUMN),
        horizontal_wire_delay=3,
    )


def _halo_e() -> Topology:
    return HaloTopology(
        NUM_COLUMNS,
        16,
        position_bank_capacities=[64 * KB] * 16,
        memory_pin_delay=16,
    )


def _halo_f() -> Topology:
    return HaloTopology(
        NUM_COLUMNS,
        5,
        position_bank_capacities=list(NON_UNIFORM_COLUMN),
        memory_pin_delay=9,
    )


design_a = DesignSpec(
    key="A",
    label="16x16 mesh (64KB bank)",
    network="16x16 mesh",
    bank_capacities=(64 * KB,) * 16,
    topology_factory=_mesh_a,
)

design_b = DesignSpec(
    key="B",
    label="16x16 simpl. mesh (64KB bank)",
    network="16x16 simplified mesh",
    bank_capacities=(64 * KB,) * 16,
    topology_factory=_mesh_b,
)

design_c = DesignSpec(
    key="C",
    label="16x4 simpl. mesh (256KB bank)",
    network="16x4 simplified mesh",
    bank_capacities=(256 * KB,) * 4,
    topology_factory=_mesh_c,
)

design_d = DesignSpec(
    key="D",
    label="16x5 simpl. mesh (non-uniform bank)",
    network="16x5 simplified mesh",
    bank_capacities=NON_UNIFORM_COLUMN,
    topology_factory=_mesh_d,
)

design_e = DesignSpec(
    key="E",
    label="16-spike halo (64KB bank)",
    network="16-spike halo (length 16)",
    bank_capacities=(64 * KB,) * 16,
    topology_factory=_halo_e,
    memory_pin_delay=16,
)

design_f = DesignSpec(
    key="F",
    label="5-spike halo (non-uniform bank)",
    network="16-spike halo (length 5)",
    bank_capacities=NON_UNIFORM_COLUMN,
    topology_factory=_halo_f,
    memory_pin_delay=9,
)

_DESIGNS = {spec.key: spec for spec in
            (design_a, design_b, design_c, design_d, design_e, design_f)}

DESIGN_NAMES = tuple(_DESIGNS)


def design_spec(key: str) -> DesignSpec:
    """Look up a Table-3 design by its letter."""
    try:
        return _DESIGNS[key.upper()]
    except KeyError:
        raise ConfigurationError(
            f"unknown design {key!r}; known: {', '.join(DESIGN_NAMES)}"
        ) from None


def make_design(key: str) -> CacheGeometry:
    """Build the geometry of design *key* ('A'..'F')."""
    return design_spec(key).build()
