"""End-to-end networked cache system: the package's main entry point.

Composes a Table-3 design, a replacement scheme, the contents model, the
off-chip memory, and the transaction flows, and runs an access trace
through them:

    >>> from repro.core import NetworkedCacheSystem
    >>> from repro.workloads import profile_by_name, generate_trace
    >>> profile = profile_by_name("art")
    >>> system = NetworkedCacheSystem(design="A", scheme="multicast+fast_lru")
    >>> result = system.run(generate_trace(profile, 2000), profile)
    >>> result.average_latency > 0
    True
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.address import AddressMapper
from repro.cache.array import CacheArray
from repro.cache.bankset import BankSetStats
from repro.cache.memory import MemoryModel
from repro.cache.partial_tags import PartialTagConfig, PartialTagStore
from repro.core.designs import DesignSpec, design_spec
from repro.core.flows import Scheme, TransactionEngine, make_scheme
from repro.core.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.perf.ipc import IssueModel
from repro.perf.metrics import LatencyAccumulator
from repro.telemetry.registry import (
    LATENCY_SLO_EDGES,
    MetricsRegistry,
    Series,
)
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.trace import Trace


def make_system_series(
    registry: MetricsRegistry, window: int
) -> dict[str, Series]:
    """Register the transaction-level windowed series.

    Windows are keyed by the access's *issue sim-cycle* (never
    wall-clock), so serial, parallel, and cache-replay sweeps of the same
    cells merge to byte-identical series.
    """
    return {
        "accesses": registry.series("cache.series.accesses", window),
        "hits": registry.series("cache.series.hits", window),
        "bank_cycles": registry.series("cache.series.bank_cycles", window),
        "network_cycles": registry.series(
            "cache.series.network_cycles", window
        ),
        "memory_cycles": registry.series("cache.series.memory_cycles", window),
        "latency": registry.series(
            "cache.series.latency", window, "hist", LATENCY_SLO_EDGES
        ),
    }


@dataclass
class RunResult:
    """Everything a benchmark harness needs from one trace run."""

    design: str
    scheme: str
    benchmark: str
    accesses: int
    instructions: int
    cycles: int
    ipc: float
    latency: LatencyAccumulator = field(repr=False)
    content: BankSetStats = field(repr=False)
    memory_reads: int = 0
    memory_writebacks: int = 0
    #: Digest of the cache array's final contents (differential oracle
    #: observable); part of equality so divergent contents never compare
    #: equal across serial/parallel/cached evaluations.
    contents_digest: str | None = None
    #: Telemetry snapshot of the measurement window (deterministic dict);
    #: excluded from equality so the bit-identical cache contract holds.
    metrics: dict | None = field(default=None, repr=False, compare=False)
    #: Run provenance block (config fingerprint, seed, scheme, ...).
    provenance: dict | None = field(default=None, repr=False, compare=False)
    #: Wall-clock seconds spent computing this cell (None when replayed
    #: from cache); never part of equality or the cache fingerprint.
    wall_s: float | None = field(default=None, repr=False, compare=False)

    @property
    def average_latency(self) -> float:
        return self.latency.average_latency

    @property
    def average_hit_latency(self) -> float:
        return self.latency.average_hit_latency

    @property
    def average_miss_latency(self) -> float:
        return self.latency.average_miss_latency

    @property
    def hit_rate(self) -> float:
        return self.latency.hit_rate

    def breakdown_fractions(self) -> dict[str, float]:
        return self.latency.breakdown_fractions()


class NetworkedCacheSystem:
    """A complete design + scheme instance ready to run traces."""

    def __init__(
        self,
        design: str | DesignSpec = "A",
        scheme: str | Scheme = "multicast+fast_lru",
        mapper: AddressMapper | None = None,
        router_config=None,
        spike_queue_entries: int = 2,
        early_miss_detection: bool = False,
        partial_tag_bits: int = 6,
        window: int = 0,
    ) -> None:
        self.spec = design_spec(design) if isinstance(design, str) else design
        self.scheme = make_scheme(scheme) if isinstance(scheme, str) else scheme
        self.geometry: CacheGeometry = self.spec.build(
            router_config=router_config,
            spike_queue_entries=spike_queue_entries,
        )
        self.mapper = mapper or AddressMapper()
        self.array = CacheArray(
            self.geometry.columns, self.scheme.policy, self.mapper
        )
        self.memory = MemoryModel()
        self.memory.channel.floor_clock = self.geometry.floor_clock
        self.engine = TransactionEngine(self.geometry, self.memory, self.scheme)
        #: Windowed metric series sampled every *window* issue-cycles
        #: (0 = off). The Series objects live in the engine registry and
        #: survive its warm-up reset, like the engine's histograms.
        self.window = int(window)
        self._series = (
            make_system_series(self.engine.metrics, self.window)
            if self.window > 0
            else None
        )
        #: Optional partial-tag early miss detection (D-NUCA smart search).
        self.partial_tags: PartialTagStore | None = None
        if early_miss_detection:
            self.partial_tags = PartialTagStore(
                PartialTagConfig(bits=partial_tag_bits)
            )

    # -- single-access convenience ------------------------------------------

    def access(self, address: int, at: int = 0, is_write: bool = False):
        """Run one access; returns its :class:`AccessTiming`."""
        decoded = self.mapper.decode(address)
        outcome = self.array.access(decoded, is_write)
        return self.engine.execute(decoded.column, outcome, at, is_write)

    # -- trace runs ------------------------------------------------------------

    def run(
        self,
        trace: Trace,
        profile: BenchmarkProfile | None = None,
        perfect_ipc: float | None = None,
        warmup: int | None = None,
        hide_cycles: int = 0,
    ) -> RunResult:
        """Run *trace* through the system and aggregate the results.

        The first *warmup* accesses (default: a third of the trace) update
        cache contents without timing, standing in for the paper's 100 M
        warm-up instructions. Either *profile* or *perfect_ipc* must supply
        the core's ideal IPC.
        """
        if profile is not None:
            perfect_ipc = profile.perfect_l2_ipc
        if perfect_ipc is None:
            raise ConfigurationError("run() needs a profile or perfect_ipc")
        if warmup is None:
            warmup = len(trace) // 3
        if warmup >= len(trace):
            raise ConfigurationError("warmup must leave accesses to measure")

        issue = IssueModel(perfect_ipc=perfect_ipc, hide_cycles=hide_cycles)
        latency = LatencyAccumulator()

        for i, access in enumerate(trace):
            decoded = self.mapper.decode(access.address)
            early_miss = False
            if self.partial_tags is not None and i >= warmup:
                state = self.array.set_state(decoded.column, decoded.index)
                hit_way = state.find(decoded.tag)
                early_miss = self.partial_tags.is_guaranteed_miss(
                    state, decoded.tag, actual_hit=hit_way is not None
                )
            outcome = self.array.access(decoded, access.is_write)
            if i < warmup:
                if i == warmup - 1:
                    # Measurement starts fresh after warm-up.
                    self.array.stats = BankSetStats()
                    self.memory.reset()
                    self.geometry.reset_contention()
                    self.engine.reset()
                    self.engine.metrics.reset()
                continue
            issue_time = issue.issue_time(access.gap_instructions)
            if early_miss:
                timing = self.engine.execute_early_miss(
                    decoded.column, outcome, issue_time, access.is_write
                )
            else:
                timing = self.engine.execute(
                    decoded.column, outcome, issue_time, access.is_write
                )
            issue.complete(timing.data_at_core, is_write=access.is_write)
            latency.record(
                latency=timing.transaction_latency,
                hit=timing.hit,
                bank=timing.bank_cycles,
                network=timing.network_cycles,
                memory=timing.memory_cycles,
                bank_position=timing.bank_position,
            )
            series = self._series
            if series is not None:
                series["accesses"].record(issue_time)
                if timing.hit:
                    series["hits"].record(issue_time)
                series["bank_cycles"].record(issue_time, timing.bank_cycles)
                series["network_cycles"].record(
                    issue_time, timing.network_cycles
                )
                series["memory_cycles"].record(
                    issue_time, timing.memory_cycles
                )
                series["latency"].record(
                    issue_time, timing.transaction_latency
                )

        cycles, ipc = issue.finish()
        return RunResult(
            design=self.spec.key,
            scheme=self.scheme.name,
            benchmark=trace.name,
            accesses=latency.total_count,
            instructions=issue.instructions,
            cycles=cycles,
            ipc=ipc,
            latency=latency,
            content=self.array.stats,
            memory_reads=self.memory.reads,
            memory_writebacks=self.memory.writebacks,
            contents_digest=self.array.contents_digest(),
            metrics=self._collect_metrics(),
        )

    def _collect_metrics(self) -> dict:
        """Snapshot every metric source into the engine's registry.

        The snapshot is a plain sorted-key dict: deterministic, picklable,
        and mergeable into any other registry (serial and parallel batch
        runs fold these per-cell snapshots identically).
        """
        registry = self.engine.metrics
        self.geometry.publish_metrics(registry)
        self.array.stats.publish_metrics(registry)
        registry.counter("cache.memory.reads").set(self.memory.reads)
        registry.counter("cache.memory.writebacks").set(self.memory.writebacks)
        if self.partial_tags is not None:
            registry.counter("cache.partial_tags.early_misses").set(
                self.partial_tags.early_misses
            )
        return registry.snapshot()
