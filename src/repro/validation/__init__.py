"""Validation harness: invariant checkers, differential oracle, fuzzer.

Three layers of defense against silently-wrong simulation:

* :mod:`repro.validation.invariants` -- checkers installed on a *live*
  network / cache / transaction engine that raise
  :class:`~repro.errors.ValidationError` at the cycle an invariant breaks
  (flit and credit conservation, XYX channel ordering, multicast delivery
  completeness, block conservation, timing causality, stall watchdogs);
* :mod:`repro.validation.differential` -- the same seeded trace through
  the experiment engine and through a checked in-process replay, diffed on
  hit/miss outcomes and final bank contents, plus a flit-level
  re-enactment of sampled transactions checked against the
  transaction-level model's hop assumptions;
* :mod:`repro.validation.fuzzer` -- ``repro validate --fuzz N`` samples
  random geometries, bank-set shapes, traffic, and traces, runs them
  under the checkers, and shrinks any failure to a minimal
  ready-to-paste pytest repro.
"""

from repro.validation.differential import (
    LegResult,
    OracleReport,
    Tolerances,
    run_oracle,
)
from repro.validation.fuzzer import (
    AnalysisCase,
    CacheCase,
    FuzzFailure,
    FuzzReport,
    NocCase,
    OracleCase,
    PacketSpec,
    case_to_pytest,
    fuzz,
    generate_case,
    run_case,
    shrink_case,
    shrink_list,
)
from repro.validation.invariants import (
    BlockConservationChecker,
    ChannelOrderChecker,
    CreditConservationChecker,
    FlitConservationChecker,
    MulticastDeliveryChecker,
    NetworkChecker,
    SimulatorWatchdog,
    TransactionTimingChecker,
    default_network_checkers,
    run_with_checkers,
)

__all__ = [
    "AnalysisCase",
    "BlockConservationChecker",
    "CacheCase",
    "ChannelOrderChecker",
    "CreditConservationChecker",
    "FlitConservationChecker",
    "FuzzFailure",
    "FuzzReport",
    "LegResult",
    "MulticastDeliveryChecker",
    "NetworkChecker",
    "NocCase",
    "OracleCase",
    "OracleReport",
    "PacketSpec",
    "SimulatorWatchdog",
    "Tolerances",
    "TransactionTimingChecker",
    "case_to_pytest",
    "default_network_checkers",
    "fuzz",
    "generate_case",
    "run_case",
    "run_oracle",
    "run_with_checkers",
    "shrink_case",
    "shrink_list",
]
