"""Invariant checkers installable on live simulations.

Network-side checkers subclass :class:`NetworkChecker` and are attached
with :meth:`Network.install_checker`; they observe injections, switch
traversals, multicast replications, deliveries, and cycle boundaries, and
raise :class:`~repro.errors.ValidationError` the moment an invariant
breaks -- at the cycle it breaks, not when the run's aggregate statistics
finally look wrong.

Checked invariants:

* **flit conservation** -- injected + replicated flits always equal
  ejected + buffered + in-flight flits;
* **credit conservation** -- for every channel, upstream credits plus
  downstream buffer occupancy plus flits on the wire equal the buffer
  depth (the credit flow-control loop never leaks or mints a slot);
* **XYX channel ordering** -- every granted channel's Fig. 5(b)
  enumeration number strictly exceeds the holder's (the online form of
  the deadlock-freedom proof); replicas inherit their original's number;
* **multicast delivery completeness** -- every destination of every
  injected packet is delivered exactly once (duplicates already raise in
  the network itself);
* **block conservation** -- a bank set's contents change by exactly
  {+filled tag, -victim tag} per access, no block duplicated or dropped
  across an eviction chain, with an independent shadow-LRU ordering oracle
  for LRU/Fast-LRU;
* **transaction timing sanity** -- per-access timings are causally
  ordered and consistent with the content outcome;
* **deadlock/livelock watchdogs** -- a checked network run aborts when no
  flit makes progress for a stall window, and a kernel watchdog keys off
  the causality guard (time can never go backward, so a simulator
  executing events without ``now`` advancing is livelocked).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import ValidationError
from repro.noc.router import EJECT, INJECT
from repro.noc.routing import xyx_channel_number
from repro.noc.topology import SimplifiedMeshTopology


class NetworkChecker:
    """Base class: every hook is a no-op; subclasses override a subset."""

    name = "checker"

    def on_inject(self, network, packet) -> None:
        pass

    def on_switch(self, router, in_port, forward, cycle) -> None:
        pass

    def on_replicate(
        self, router, original, replica, borrow_port, borrow_vc, cycle
    ) -> None:
        pass

    def on_delivery(self, delivery) -> None:
        pass

    def after_cycle(self, network, cycle) -> None:
        pass

    def on_packet_lost(self, network, packet, destinations) -> None:
        """Fault injection destroyed *packet*'s deliveries to *destinations*."""

    def final_check(self, network) -> None:
        pass


class FlitConservationChecker(NetworkChecker):
    """Injected + replicated == ejected + buffered + in flight, each cycle."""

    name = "flit-conservation"

    def after_cycle(self, network, cycle) -> None:
        routers = network.routers.values()
        created = network.stats.flits_injected + sum(
            r.stats.replications for r in routers
        )
        ejected = sum(r.stats.flits_ejected for r in routers)
        buffered = network.total_buffered_flits()
        in_flight = network.in_flight_flits()
        dropped = network.stats.flits_dropped
        if created != ejected + buffered + in_flight + dropped:
            raise ValidationError(
                f"flit conservation broken at cycle {cycle}: "
                f"{created} created != {ejected} ejected + "
                f"{buffered} buffered + {in_flight} in flight + "
                f"{dropped} dropped"
            )

    def final_check(self, network) -> None:
        if network.total_buffered_flits():
            raise ValidationError(
                f"{network.total_buffered_flits()} flits still buffered "
                "after the network drained"
            )


class CreditConservationChecker(NetworkChecker):
    """Per-channel credit loop accounting, checked every cycle.

    For each channel ``u -> v`` and VC ``i``: the credits ``u`` holds, plus
    the occupancy of ``v``'s input VC, plus flits on the wire toward that
    VC, must equal the configured buffer depth. Multicast replication
    steals an upstream credit exactly when it occupies the borrowed VC, so
    the identity survives replication too.
    """

    name = "credit-conservation"

    def after_cycle(self, network, cycle) -> None:
        depth = network.router_config.buffer_depth
        in_flight: Counter = Counter()
        for batch in network._arrivals.values():
            for dst, in_port, vc_index, _flit in batch:
                in_flight[(dst, in_port, vc_index)] += 1
        for node, router in network.routers.items():
            for (out_port, vc_index), credits in router.credits.items():
                downstream = network.routers[out_port]
                occupancy = len(downstream.inputs[node][vc_index].fifo)
                wire = in_flight[(out_port, node, vc_index)]
                if credits + occupancy + wire != depth:
                    raise ValidationError(
                        f"credit conservation broken on {node}->{out_port} "
                        f"vc {vc_index} at cycle {cycle}: {credits} credits "
                        f"+ {occupancy} buffered + {wire} on wire "
                        f"!= depth {depth}"
                    )


class ChannelOrderChecker(NetworkChecker):
    """Online XYX deadlock-freedom: grants must ascend the enumeration.

    Tracks the Fig. 5(b) number of the channel each flit currently holds;
    every switch traversal onto a new channel must strictly increase it
    (Dally & Seitz: an acyclic channel dependency graph cannot deadlock).
    Replicas inherit the holder's number, and ejection releases it.
    """

    name = "xyx-channel-order"

    def __init__(self, topology) -> None:
        if not isinstance(topology, SimplifiedMeshTopology):
            raise ValidationError(
                "the XYX channel enumeration is defined on simplified "
                f"meshes; got {topology.name!r}"
            )
        self.cols = topology.cols
        self.rows = topology.rows
        self._held: dict[int, int] = {}
        self.grants_checked = 0

    def on_switch(self, router, in_port, forward, cycle) -> None:
        flit_id = forward.flit.flit_id
        if forward.out_port == EJECT:
            self._held.pop(flit_id, None)
            return
        granted = xyx_channel_number(
            self.cols, self.rows, router.node, forward.out_port
        )
        held = self._held.get(flit_id)
        if held is not None and granted <= held:
            raise ValidationError(
                f"XYX channel-order violation at {router.node} cycle "
                f"{cycle}: flit {flit_id} holds channel #{held} but was "
                f"granted #{granted} ({router.node}->{forward.out_port}); "
                "the enumeration must strictly increase along every path"
            )
        self._held[flit_id] = granted
        self.grants_checked += 1

    def on_replicate(
        self, router, original, replica, borrow_port, borrow_vc, cycle
    ) -> None:
        held = self._held.get(original.flit_id)
        if held is not None:
            self._held[replica.flit_id] = held


class MulticastDeliveryChecker(NetworkChecker):
    """Every destination of every injected packet is delivered once."""

    name = "multicast-delivery"

    def __init__(self) -> None:
        self._expected: set[tuple[int, object]] = set()
        self._delivered: Counter = Counter()
        #: (packet, destination) pairs destroyed by declared fault
        #: injection; these are exempt from the completeness check.
        self._lost: set[tuple[int, object]] = set()

    def on_inject(self, network, packet) -> None:
        for destination in packet.destinations:
            self._expected.add((packet.packet_id, destination))

    def on_packet_lost(self, network, packet, destinations) -> None:
        for destination in destinations:
            key = (packet.packet_id, destination)
            if key in self._expected and not self._delivered[key]:
                self._expected.discard(key)
                self._lost.add(key)

    def on_delivery(self, delivery) -> None:
        key = (delivery.packet.packet_id, delivery.destination)
        self._delivered[key] += 1
        if key not in self._expected:
            raise ValidationError(
                f"packet {key[0]} delivered to {key[1]}, which was never "
                "one of its destinations"
            )
        if self._delivered[key] > 1:
            raise ValidationError(
                f"packet {key[0]} delivered to {key[1]} "
                f"{self._delivered[key]} times"
            )

    def missing(self) -> list[tuple[int, object]]:
        return sorted(
            (key for key in self._expected if not self._delivered[key]),
            key=str,
        )

    def final_check(self, network) -> None:
        missing = self.missing()
        if missing:
            raise ValidationError(
                f"{len(missing)} (packet, destination) deliveries never "
                f"completed: {missing[:8]}"
            )


def default_network_checkers(topology) -> list[NetworkChecker]:
    """The checker set appropriate for *topology* (XYX order only applies
    to simplified meshes, where the Fig. 5(b) enumeration is defined)."""
    checkers: list[NetworkChecker] = [
        FlitConservationChecker(),
        CreditConservationChecker(),
        MulticastDeliveryChecker(),
    ]
    if isinstance(topology, SimplifiedMeshTopology):
        checkers.append(ChannelOrderChecker(topology))
    return checkers


def run_with_checkers(
    network,
    max_cycles: int = 20_000,
    stall_limit: int = 300,
) -> int:
    """Drive *network* until drained under its installed checkers.

    Unlike ``run_until_drained`` this aborts as soon as no flit makes
    progress for *stall_limit* consecutive cycles (a deadlock or a lost
    flit stalls immediately instead of burning ``max_cycles``), then runs
    every checker's ``final_check``. Returns the cycles consumed.
    """
    start = network.cycle
    stall_anchor = network.cycle
    last_signature = None
    while network.pending_work():
        if network.cycle - start >= max_cycles:
            raise ValidationError(
                f"checked network run exceeded {max_cycles} cycles; "
                f"outstanding: {network.outstanding_deliveries()[:8]}"
            )
        network.step()
        routers = network.routers.values()
        signature = (
            network.stats.flits_injected,
            sum(r.stats.flits_ejected for r in routers),
            sum(r.stats.flits_forwarded for r in routers),
            sum(r.stats.replications for r in routers),
            network.stats.flits_dropped,
        )
        if signature != last_signature:
            last_signature = signature
            stall_anchor = network.cycle
            continue
        # Timed injections, scheduled fault activations, and armed retry
        # deadlines all count as legitimately waiting, not a stall.
        upcoming = network.next_wakeup()
        if upcoming is not None and upcoming >= network.cycle:
            stall_anchor = network.cycle  # legitimately waiting
            continue
        if network.cycle - stall_anchor >= stall_limit:
            raise ValidationError(
                f"no forward progress for {stall_limit} cycles (cycle "
                f"{network.cycle}); suspected deadlock or lost flit; "
                f"outstanding: {network.outstanding_deliveries()[:8]}"
            )
    for checker in network.checkers:
        checker.final_check(network)
    return network.cycle - start


# -- cache-content and transaction checkers ---------------------------------


class BlockConservationChecker:
    """Content-model invariant: accesses conserve the block multiset.

    On every access the after-state must equal the before-state plus the
    filled tag (on a miss) minus the victim's tag (when one was evicted);
    no tag may ever appear twice in one set. For LRU and Fast-LRU an
    independent shadow recency list additionally pins the exact ordering
    and the victim identity (Fast-LRU is *content-wise* LRU -- its whole
    trick is timing).

    Install on a :class:`~repro.cache.array.CacheArray` via its
    ``validator`` attribute, or drive :meth:`check` directly.
    """

    name = "block-conservation"

    def __init__(self, shadow_lru: bool = False) -> None:
        self.shadow_lru = shadow_lru
        self._shadow: dict[object, list[int]] = {}
        self.checked = 0

    def on_access(self, address, before, state, outcome) -> None:
        self.check(address.tag, before, state, outcome, key=address.set_key)

    def check(self, tag, before, state, outcome, key=None) -> None:
        after = Counter(state.resident_tags())
        duplicated = [t for t, n in after.items() if n > 1]
        if duplicated:
            raise ValidationError(
                f"block(s) {duplicated} duplicated in set {key} after "
                f"accessing tag {tag}"
            )
        expected = Counter(before)
        if not outcome.hit:
            expected[tag] += 1
            if outcome.victim is not None:
                if expected[outcome.victim.tag] <= 0:
                    raise ValidationError(
                        f"set {key} evicted tag {outcome.victim.tag}, "
                        "which was not resident"
                    )
                expected[outcome.victim.tag] -= 1
        expected = +expected  # drop zero entries
        if after != expected:
            raise ValidationError(
                f"block conservation broken in set {key} accessing tag "
                f"{tag}: expected {sorted(expected.elements())}, found "
                f"{sorted(after.elements())} "
                f"(hit={outcome.hit}, victim={outcome.victim})"
            )
        if self.shadow_lru:
            self._check_shadow(tag, state, outcome, key)
        self.checked += 1

    def _check_shadow(self, tag, state, outcome, key) -> None:
        shadow = self._shadow.setdefault(key, [])
        if outcome.hit:
            shadow.remove(tag)
            shadow.insert(0, tag)
        else:
            shadow.insert(0, tag)
            victim_tag = None
            if len(shadow) > state.associativity:
                victim_tag = shadow.pop()
            found_victim = None if outcome.victim is None else outcome.victim.tag
            if victim_tag != found_victim:
                raise ValidationError(
                    f"set {key}: shadow LRU expected victim {victim_tag}, "
                    f"policy evicted {found_victim}"
                )
        resident = state.resident_tags()
        if resident != shadow:
            raise ValidationError(
                f"set {key}: contents diverged from shadow LRU ordering "
                f"after tag {tag}: policy {resident} != shadow {shadow}"
            )


class TransactionTimingChecker:
    """Per-transaction causality and outcome-consistency checks.

    Install on a :class:`~repro.core.flows.TransactionEngine` via its
    ``validators`` list.
    """

    name = "transaction-timing"

    def __init__(self) -> None:
        self.checked = 0

    def on_transaction(self, column, outcome, timing) -> None:
        problems = []
        if timing.data_at_core < timing.issued:
            problems.append("data returned before issue")
        if timing.completion < timing.data_at_core:
            problems.append("completed before data returned")
        if timing.settled < timing.data_at_core:
            problems.append("settled before data returned")
        if timing.bank_cycles < 0 or timing.memory_cycles < 0:
            problems.append("negative latency component")
        if timing.hit != outcome.hit:
            problems.append(
                f"timing says hit={timing.hit}, contents say {outcome.hit}"
            )
        if timing.hit and timing.bank_position != outcome.bank:
            problems.append(
                f"hit bank mismatch: timing {timing.bank_position}, "
                f"contents {outcome.bank}"
            )
        if not timing.hit and timing.memory_cycles <= 0:
            problems.append("miss with no memory cycles")
        if problems:
            raise ValidationError(
                f"transaction timing invalid on column {column}: "
                + "; ".join(problems)
                + f" (timing={timing})"
            )
        self.checked += 1


class SimulatorWatchdog:
    """Kernel livelock watchdog keyed off the causality guard.

    The event queue's guard proves time never moves backward; therefore a
    simulator that executes events while ``now`` stays pinned is making no
    causal progress. Attaching the watchdog sets ``simulator.watchdog``;
    it trips after *max_events_per_cycle* consecutive events at one time.
    """

    name = "simulator-watchdog"

    def __init__(self, simulator, max_events_per_cycle: int = 100_000) -> None:
        self.simulator = simulator
        self.max_events_per_cycle = max_events_per_cycle
        self._anchor_time: int | None = None
        self._events_at_anchor = 0
        self._hook = self._after_event
        simulator.watchdog = self._hook

    def _after_event(self) -> None:
        now = self.simulator.now
        if now != self._anchor_time:
            self._anchor_time = now
            self._events_at_anchor = 0
        self._events_at_anchor += 1
        if self._events_at_anchor > self.max_events_per_cycle:
            raise ValidationError(
                f"livelock: {self._events_at_anchor} events executed at "
                f"time {now} without the clock advancing (causality floor "
                f"{self.simulator.last_event_time})"
            )

    def detach(self) -> None:
        if self.simulator.watchdog is self._hook:
            self.simulator.watchdog = None


_ = INJECT  # re-exported port names are part of checker call sites
