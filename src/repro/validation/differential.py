"""Differential oracle: the same trace through two independent models.

One seeded trace is evaluated twice:

* the **engine path** -- :func:`repro.experiments.runner.run_cells` on the
  cell's spec, which exercises the memo, the persistent result cache, and
  the worker-pool fan-out exactly as figure drivers do;
* the **checked replay** -- a fresh :class:`NetworkedCacheSystem` walking
  the identical trace in-process with the content and transaction
  invariant checkers installed.

The two runs are diffed on hit/miss outcomes, final bank contents (the
contents digest), and aggregate counters; then a deterministic sample of
the replay's measured transactions is re-enacted leg by leg on the real
flit-level network over the same topology, comparing each delivered hop
count against the transaction-level geometry model's assumption
(``routing.hops(src, dst) + 1`` -- the ejection switch also counts a hop).
Divergence within the declared :class:`Tolerances` passes; anything else
is reported, making silent drift between the two models loud.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.noc.arraycore import HAVE_NUMPY, ArrayNetwork
from repro.noc.network import Network
from repro.noc.packet import MessageType, Packet
from repro.validation.invariants import (
    BlockConservationChecker,
    TransactionTimingChecker,
    default_network_checkers,
    run_with_checkers,
)


@dataclass(frozen=True)
class Tolerances:
    """Declared acceptable divergence between the two model paths."""

    #: Absolute difference allowed in measured hit counts.
    hit_count: int = 0
    #: Require bit-identical final cache contents digests.
    contents_exact: bool = True
    #: Allowed |delivered - predicted| hops per flit-level leg.
    hop_slack: int = 0


@dataclass
class LegResult:
    """One protocol leg re-enacted on the flit-level network."""

    transaction: int
    leg: str
    source: object
    destination: object
    predicted_hops: int
    delivered_hops: int

    @property
    def ok_within(self) -> bool:  # pragma: no cover - trivial alias
        return self.predicted_hops == self.delivered_hops


@dataclass
class OracleReport:
    """Everything :func:`run_oracle` observed, diffable and printable."""

    design: str
    scheme: str
    benchmark: str
    measure: int
    seed: int
    engine_source: str = "computed"
    accesses: int = 0
    engine_hits: int = 0
    replay_hits: int = 0
    engine_digest: str | None = None
    replay_digest: str | None = None
    conservation_checks: int = 0
    timing_checks: int = 0
    legs: list[LegResult] = field(default_factory=list)
    #: Flit legs replayed on *both* cores and compared cycle-for-cycle
    #: (0 when NumPy is unavailable and the array core is skipped).
    array_legs: int = 0
    divergences: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary_line(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.divergences)} DIVERGENCES"
        return (
            f"oracle {self.design}/{self.scheme}/{self.benchmark} "
            f"measure={self.measure} seed={self.seed}: {verdict} "
            f"({self.accesses} accesses, {self.conservation_checks} content "
            f"checks, {len(self.legs)} flit legs, "
            f"{self.array_legs} array-core cross-checks)"
        )

    def render(self) -> str:
        lines = [self.summary_line()]
        lines.append(
            f"  engine[{self.engine_source}] hits={self.engine_hits} "
            f"digest={self.engine_digest}"
        )
        lines.append(
            f"  replay[checked]  hits={self.replay_hits} "
            f"digest={self.replay_digest}"
        )
        for leg in self.legs:
            mark = "ok" if leg.delivered_hops == leg.predicted_hops else "!!"
            lines.append(
                f"  [{mark}] txn {leg.transaction} {leg.leg}: "
                f"{leg.source}->{leg.destination} predicted "
                f"{leg.predicted_hops} hops, delivered {leg.delivered_hops}"
            )
        for divergence in self.divergences:
            lines.append(f"  DIVERGENCE: {divergence}")
        return "\n".join(lines)


class _TransactionRecorder:
    """Transaction validator that just remembers what ran (for sampling)."""

    def __init__(self) -> None:
        self.rows: list[tuple[int, bool, int | None]] = []

    def on_transaction(self, column, outcome, timing) -> None:
        self.rows.append((column, timing.hit, timing.bank_position))


def _sample_indices(count: int, sample: int) -> list[int]:
    """Evenly spread, deterministic, unique indices into ``range(count)``."""
    if count <= 0 or sample <= 0:
        return []
    if sample >= count:
        return list(range(count))
    step = (count - 1) / (sample - 1) if sample > 1 else 0
    return sorted({round(i * step) for i in range(sample)})


def _protocol_legs(system, column: int, hit: bool, bank_position):
    """The (name, source, destination(s)) legs of one cache transaction.

    Mirrors the Section 5 message flows the transaction-level model costs:
    the multicast scheme broadcasts the request down the column; unicast
    walks it bank to bank. Misses add the notify / memory round trip.
    """
    geometry = system.geometry
    nbanks = geometry.banks_per_column(column)
    core = geometry.core_node
    memory = geometry.memory_node
    bank = lambda p: geometry.bank_node(column, p)  # noqa: E731
    legs: list[tuple[str, MessageType, object, tuple]] = []
    if system.scheme.multicast:
        targets = tuple(dict.fromkeys(bank(p) for p in range(nbanks)))
        legs.append(("mc_request", MessageType.READ_REQUEST, core, targets))
    else:
        walk_end = bank_position if hit and bank_position is not None else nbanks - 1
        previous = core
        for position in range(walk_end + 1):
            legs.append(
                ("uc_request", MessageType.READ_REQUEST, previous, (bank(position),))
            )
            previous = bank(position)
    if hit and bank_position is not None:
        legs.append(("hit_data", MessageType.HIT_DATA, bank(bank_position), (core,)))
    else:
        legs.append(("miss_notify", MessageType.MISS_NOTIFY, bank(nbanks - 1), (core,)))
        legs.append(("memory_request", MessageType.MEMORY_REQUEST, core, (memory,)))
        legs.append(("memory_fill", MessageType.MEMORY_FILL, memory, (bank(0),)))
        legs.append(("fill_data", MessageType.HIT_DATA, bank(0), (core,)))
    return legs


def _replay_legs_on_network(system, sampled, report, hop_slack: int) -> None:
    """Re-enact each sampled transaction's legs on a checked flit network."""
    topology = system.geometry.topology
    routing = system.geometry.routing
    network = Network(topology)
    for checker in default_network_checkers(topology):
        network.install_checker(checker)
    for txn_index, (column, hit, bank_position) in sampled:
        for leg_name, message, source, destinations in _protocol_legs(
            system, column, hit, bank_position
        ):
            already = len(network.stats.deliveries)
            network.inject(Packet(message, source, destinations))
            run_with_checkers(network)
            for delivery in network.stats.deliveries[already:]:
                predicted = (
                    routing.hops(topology, source, delivery.destination) + 1
                )
                report.legs.append(
                    LegResult(
                        transaction=txn_index,
                        leg=leg_name,
                        source=source,
                        destination=delivery.destination,
                        predicted_hops=predicted,
                        delivered_hops=delivery.hops,
                    )
                )
                if abs(delivery.hops - predicted) > hop_slack:
                    report.divergences.append(
                        f"txn {txn_index} {leg_name} {source}->"
                        f"{delivery.destination}: flit level delivered "
                        f"{delivery.hops} hops, transaction model assumes "
                        f"{predicted}"
                    )


def _crosscheck_array_core(system, sampled, report) -> None:
    """Replay the sampled legs on both flit cores and diff cycle timings.

    Every delivery's (destination, injection cycle, delivery cycle, hop
    count) must match bit-for-bit between the object core and the
    struct-of-arrays core; packet ids are process-global counters and are
    deliberately not compared. Skipped without NumPy.
    """
    if not HAVE_NUMPY:
        return
    topology = system.geometry.topology
    observed: dict[str, list[tuple]] = {}
    for name, network in (
        ("object", Network(topology)),
        ("array", ArrayNetwork(topology)),
    ):
        rows: list[tuple] = []
        for txn_index, (column, hit, bank_position) in sampled:
            for leg_name, message, source, destinations in _protocol_legs(
                system, column, hit, bank_position
            ):
                already = len(network.stats.deliveries)
                network.inject(Packet(message, source, destinations))
                network.run_until_drained()
                for delivery in network.stats.deliveries[already:]:
                    rows.append(
                        (
                            txn_index,
                            leg_name,
                            str(source),
                            str(delivery.destination),
                            delivery.injected_at,
                            delivery.delivered_at,
                            delivery.hops,
                        )
                    )
        observed[name] = rows
    if observed["object"] != observed["array"]:
        mismatches = [
            (obj, arr)
            for obj, arr in zip(observed["object"], observed["array"])
            if obj != arr
        ]
        detail = (
            f"first mismatch {mismatches[0]}"
            if mismatches
            else f"row counts {len(observed['object'])} vs "
            f"{len(observed['array'])}"
        )
        report.divergences.append(
            f"array core diverged from object core on replayed flit legs "
            f"({detail})"
        )
    report.array_legs = len(observed["object"])


def run_oracle(
    design: str = "A",
    scheme: str = "multicast+fast_lru",
    benchmark: str = "art",
    measure: int = 240,
    seed: int = 1,
    sample: int = 4,
    tolerances: Tolerances | None = None,
    core: str = "object",
) -> OracleReport:
    """Differentially validate one cell; returns the full report.

    The engine path goes through :func:`run_cells` (so cached and pooled
    results are what gets validated -- exactly what figures consume), the
    replay path runs fresh under invariant checkers, and *sample* measured
    transactions are re-enacted at flit level.
    """
    from repro.core.system import NetworkedCacheSystem
    from repro.experiments.common import ExperimentConfig
    from repro.experiments.runner import (
        last_batch,
        run_cells,
        spec_for,
        trace_with_warmup,
    )
    from repro.workloads.profiles import profile_by_name

    tolerances = tolerances or Tolerances()
    config = ExperimentConfig(measure=measure, seed=seed, core=core)
    spec = spec_for(design, scheme, benchmark, config)
    report = OracleReport(
        design=spec.design,
        scheme=spec.scheme,
        benchmark=spec.benchmark,
        measure=measure,
        seed=seed,
    )

    # Engine path: through the memo / persistent cache / worker fan-out.
    engine_result = run_cells([spec])[0]
    batch = last_batch()
    if batch is not None and batch.cells:
        report.engine_source = batch.cells[-1].source
    report.engine_hits = engine_result.content.hits
    report.engine_digest = engine_result.contents_digest

    # Checked replay: identical trace, fresh system, invariants installed.
    trace, warmup = trace_with_warmup(spec)
    profile = profile_by_name(spec.benchmark)
    system = NetworkedCacheSystem(design=spec.design, scheme=spec.scheme)
    conservation = BlockConservationChecker(
        shadow_lru=system.scheme.policy.name in ("lru", "fast_lru")
    )
    timing_checker = TransactionTimingChecker()
    recorder = _TransactionRecorder()
    system.array.validator = conservation
    system.engine.validators.extend([timing_checker, recorder])
    replay_result = system.run(trace, profile, warmup=warmup)
    report.accesses = replay_result.accesses
    report.replay_hits = replay_result.content.hits
    report.replay_digest = replay_result.contents_digest
    report.conservation_checks = conservation.checked
    report.timing_checks = timing_checker.checked

    # Diff the two content-model outcomes.
    if abs(report.engine_hits - report.replay_hits) > tolerances.hit_count:
        report.divergences.append(
            f"hit counts diverge beyond tolerance {tolerances.hit_count}: "
            f"engine {report.engine_hits}, replay {report.replay_hits}"
        )
    if engine_result.content.misses != replay_result.content.misses and (
        abs(engine_result.content.misses - replay_result.content.misses)
        > tolerances.hit_count
    ):
        report.divergences.append(
            f"miss counts diverge: engine {engine_result.content.misses}, "
            f"replay {replay_result.content.misses}"
        )
    if tolerances.contents_exact and report.engine_digest != report.replay_digest:
        report.divergences.append(
            f"final bank contents diverge: engine digest "
            f"{report.engine_digest}, replay {report.replay_digest}"
        )
    if engine_result.accesses != replay_result.accesses:
        report.divergences.append(
            f"measured access counts diverge: engine "
            f"{engine_result.accesses}, replay {replay_result.accesses}"
        )

    # Flit-level re-enactment of a deterministic transaction sample.
    sampled = [
        (i, recorder.rows[i]) for i in _sample_indices(len(recorder.rows), sample)
    ]
    _replay_legs_on_network(system, sampled, report, tolerances.hop_slack)
    _crosscheck_array_core(system, sampled, report)
    return report
