"""Seeded fuzzer: random geometries, traffic, and traces under checkers.

``fuzz(n, seed)`` samples cases from eight families:

* **noc** -- a random mesh / simplified-mesh / halo geometry with random
  unicast and multicast packets at random injection cycles, driven to
  drain under the full network checker set (conservation, credit loop,
  XYX channel order, delivery completeness, stall watchdog);
* **cache** -- a random bank-set shape (associativity, bank grouping) and
  replacement policy fed a random access sequence in a deliberately tiny
  tag space (collisions are where eviction-chain bugs live) under the
  block-conservation and shadow-LRU checkers;
* **oracle** -- a random Table-3 design / scheme / benchmark cell at a
  small measure length through :func:`repro.validation.run_oracle`;
* **faults** -- a noc-family geometry and traffic with a seeded fault
  plan (link cuts, VC failures, transient flit loss) installed through
  :func:`repro.faults.install_resilience`, checking that degraded
  routing plus timeout/retransmit drains the run with every tracked
  message delivered or explicitly abandoned;
* **analysis** -- a randomized rule-violating source snippet (wall-clock
  read, unseeded RNG, mutable default, bare except, ...) that
  :func:`repro.analysis.analyze_source` must flag with the expected
  rule -- the lint engine fuzz-tests itself;
* **arraycore** -- a noc-family geometry and traffic (half the cases
  sampled at saturated / near-saturated injection rates around the
  knee) replayed on the object core and every array-core mode --
  scalar fallback always, auto and forced-vector sweeps when NumPy is
  present (:class:`repro.noc.arraycore.ArrayNetwork`) -- diffing
  normalized deliveries, stats, and telemetry counters bit-for-bit;
* **telemetry** -- a noc-family geometry and traffic replayed on both
  cores with a random windowed-series sample size, requiring the full
  published registry snapshots (series windows, per-link flit counts,
  per-VC occupancy, credit stalls) to be byte-identical across cores
  and order-independent under merge;
* **stream** -- a random multi-tenant open-loop mix (random rates,
  Zipf skews, catalogs, and arrival processes) served through
  :class:`repro.stream.service.StreamService` on a random design and
  admission policy, checking admission conservation
  (offered == admitted + rejected == completed + rejected after
  drain), object-core determinism under re-run, cross-core snapshot
  byte-equality, and merge order-independence of the SLO telemetry.

Every case is a plain dataclass whose ``repr`` round-trips, so a failing
case shrinks (greedy delta-debugging over its packets / accesses /
measure) and is emitted as a ready-to-paste pytest function.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.errors import ValidationError
from repro.validation.invariants import (
    BlockConservationChecker,
    default_network_checkers,
    run_with_checkers,
)

#: Message names usable for fuzz traffic (mix of 1- and 5-flit packets).
_UNICAST_MESSAGES = ("read_request", "hit_data", "memory_fill", "writeback")
_CONTROL_MESSAGES = ("read_request", "miss_notify", "completion_notify")

_POLICY_CHOICES = (
    "lru",
    "fast_lru",
    "promotion:recursive",
    "promotion:zero_copy",
    "promotion:one_copy",
)

_ORACLE_DESIGNS = ("A", "B", "C", "D", "E", "F")
_ORACLE_SCHEMES = (
    "multicast+fast_lru",
    "multicast+promotion",
    "unicast+lru",
    "unicast+fast_lru",
)
_ORACLE_BENCHMARKS = ("art", "twolf", "mcf")


# -- case shapes (reprs must round-trip: they become emitted repros) ---------


@dataclass(frozen=True)
class PacketSpec:
    """One fuzz packet: message name, endpoints, and injection cycle."""

    message: str
    source: tuple
    destinations: tuple
    inject_cycle: int = 0


@dataclass(frozen=True)
class NocCase:
    """A random network geometry plus its traffic."""

    kind: str  # "mesh" | "simplified" | "halo"
    cols: int
    rows: int
    packets: tuple = ()


@dataclass(frozen=True)
class CacheCase:
    """A random bank-set shape plus its access sequence."""

    policy: str  # a _POLICY_CHOICES entry
    bank_of_way: tuple = (0,)
    accesses: tuple = ()  # of (tag, is_write)


@dataclass(frozen=True)
class OracleCase:
    """One differential-oracle cell."""

    design: str
    scheme: str
    benchmark: str
    measure: int
    seed: int
    sample: int = 2


@dataclass(frozen=True)
class AnalysisCase:
    """A generated source snippet that must trip one lint rule.

    Fuzzes the static-analysis engine itself: the snippet contains a
    known violation (wall-clock read, unseeded RNG, mutable default,
    bare except, ...) with randomized identifiers and literals, and the
    case fails if :func:`repro.analysis.analyze_source` does not report
    the expected rule.
    """

    rule: str
    module: str
    source: str


@dataclass(frozen=True)
class ArraycoreCase:
    """A random geometry + traffic replayed on both flit cores.

    The object core is the reference; the struct-of-arrays core must
    produce bit-identical cycle counts, per-delivery timings/hops, and
    telemetry counters. Packet ids are process-global counters, so the
    digest keys deliveries by injection order instead.
    """

    kind: str  # "mesh" | "simplified" | "halo"
    cols: int
    rows: int
    single_cycle: bool = True
    packets: tuple = ()


@dataclass(frozen=True)
class TelemetryCase:
    """A random geometry + traffic with windowed series on both cores.

    Runs the same traffic through the object core and (when NumPy is
    present) the array core with a random ``--window`` size, publishes
    each into a fresh registry, and requires the full snapshots --
    windowed series, per-link counters, per-VC occupancy, credit
    stalls -- to be byte-identical across cores and for the merge of
    the per-core snapshots to be independent of merge order (the
    telemetry triangle's associativity leg).
    """

    kind: str  # "mesh" | "simplified" | "halo"
    cols: int
    rows: int
    window: int = 16
    single_cycle: bool = True
    packets: tuple = ()


@dataclass(frozen=True)
class StreamCase:
    """A random open-loop tenant mix served under admission control.

    ``mix`` holds one ``(name, rate_per_kcycle, zipf_alpha,
    catalog_blocks, process)`` tuple per tenant -- primitives only, so
    the repr round-trips into an emitted pytest repro. The case runs on
    both simulation cores and fails on any conservation break,
    determinism break, or cross-core telemetry divergence.
    """

    design: str  # a Table-3 design key (mesh / simplified / halo)
    mix: tuple = ()
    cycles: int = 600
    policy: str = "drop-tail"
    queue_limit: int = 8
    max_outstanding: int = 4
    window: int = 32
    seed: int = 0


@dataclass(frozen=True)
class FaultsCase:
    """A random geometry + sampled fault plan + traffic under recovery.

    Exercises the whole resilience stack: sampled link/transient faults,
    degraded routing, injection filtering, timeout/retransmit -- all under
    the full network checker set. The run must drain with every tracked
    message either delivered or explicitly abandoned.
    """

    kind: str  # "mesh" | "simplified" | "halo"
    cols: int
    rows: int
    link_rate: float = 0.0
    vc_rate: float = 0.0
    transient_rate: float = 0.0
    fault_seed: int = 0
    at_cycle: int = 0
    packets: tuple = ()


# -- generation ---------------------------------------------------------------


def _build_topology(case: NocCase):
    from repro.noc.topology import (
        HaloTopology,
        MeshTopology,
        SimplifiedMeshTopology,
    )

    if case.kind == "mesh":
        return MeshTopology(case.cols, case.rows)
    if case.kind == "simplified":
        return SimplifiedMeshTopology(case.cols, case.rows)
    if case.kind == "halo":
        return HaloTopology(case.cols, case.rows)
    raise ValidationError(f"unknown noc case kind {case.kind!r}")


def _xyx_legal(src: tuple, dst: tuple) -> bool:
    """True when src->dst traffic respects the Fig. 5(b) enumeration on a
    simplified mesh (same column, or an endpoint on the row-0 spine)."""
    return src[0] == dst[0] or src[1] == 0 or dst[1] == 0


def _make_noc_case(rng: random.Random) -> NocCase:
    kind = rng.choice(("mesh", "simplified", "halo"))
    cols = rng.randint(2, 5)
    rows = rng.randint(2, 5)
    topology = _build_topology(NocCase(kind, cols, rows))
    nodes = sorted(topology.nodes, key=str)
    row0 = [n for n in nodes if not isinstance(n[0], str) and n[1] == 0]
    packets = []
    for _ in range(rng.randint(1, 10)):
        inject_cycle = rng.randint(0, 20)
        multicast = kind != "mesh" and rng.random() < 0.4
        if multicast:
            source = rng.choice(row0) if kind == "simplified" else rng.choice(nodes)
            width = rng.randint(2, min(6, len(nodes)))
            destinations = tuple(sorted(rng.sample(nodes, width), key=str))
            message = rng.choice(_CONTROL_MESSAGES)
        else:
            while True:
                source = rng.choice(nodes)
                destination = rng.choice(nodes)
                if kind != "simplified" or _xyx_legal(source, destination):
                    break
            destinations = (destination,)
            message = rng.choice(_UNICAST_MESSAGES)
        packets.append(PacketSpec(message, source, destinations, inject_cycle))
    return NocCase(kind, cols, rows, tuple(packets))


def _make_cache_case(rng: random.Random) -> CacheCase:
    associativity = rng.randint(2, 16)
    num_banks = rng.randint(1, associativity)
    bank_of_way = tuple(
        sorted(min(way * num_banks // associativity, num_banks - 1)
               for way in range(associativity))
    )
    policy = rng.choice(_POLICY_CHOICES)
    accesses = tuple(
        (rng.randint(0, 7), rng.random() < 0.25)
        for _ in range(rng.randint(4, 40))
    )
    return CacheCase(policy, bank_of_way, accesses)


def _make_oracle_case(rng: random.Random) -> OracleCase:
    return OracleCase(
        design=rng.choice(_ORACLE_DESIGNS),
        scheme=rng.choice(_ORACLE_SCHEMES),
        benchmark=rng.choice(_ORACLE_BENCHMARKS),
        measure=rng.choice((90, 120, 150, 180, 210, 240)),
        seed=rng.randint(1, 5),
        sample=2,
    )


def _make_arraycore_case(rng: random.Random) -> ArraycoreCase:
    base = _make_noc_case(rng)
    single_cycle = rng.random() < 0.7
    if rng.random() < 0.5:
        # Sparse protocol-paced traffic: the original family.
        return ArraycoreCase(
            kind=base.kind,
            cols=base.cols,
            rows=base.rows,
            single_cycle=single_cycle,
            packets=base.packets,
        )
    # Saturated / near-saturated load point: a dense stream injected at
    # rates sampled around the saturation knee (one packet every 1-3
    # cycles), optionally hotspotted toward a single node so ejection
    # tree contention pushes a mesh past the knee even at rate 1.
    topology = _build_topology(NocCase(base.kind, base.cols, base.rows))
    nodes = sorted(topology.nodes, key=str)
    row0 = [n for n in nodes if not isinstance(n[0], str) and n[1] == 0]
    spacing = rng.choice((1, 1, 2, 3))
    hotspot = rng.choice((0.0, 0.35, 0.6)) if base.kind == "mesh" else 0.0
    hot = rng.choice(nodes)
    packets = []
    for i in range(rng.randint(30, 120)):
        multicast = base.kind != "mesh" and rng.random() < 0.3
        if multicast:
            source = (
                rng.choice(row0) if base.kind == "simplified"
                else rng.choice(nodes)
            )
            width = rng.randint(2, min(6, len(nodes)))
            destinations = tuple(sorted(rng.sample(nodes, width), key=str))
            message = rng.choice(_CONTROL_MESSAGES)
        else:
            while True:
                source = rng.choice(nodes)
                if hotspot and source != hot and rng.random() < hotspot:
                    destination = hot
                else:
                    destination = rng.choice(nodes)
                if source == destination:
                    continue
                if base.kind != "simplified" or _xyx_legal(source, destination):
                    break
            destinations = (destination,)
            message = rng.choice(_UNICAST_MESSAGES)
        packets.append(PacketSpec(message, source, destinations, i * spacing))
    return ArraycoreCase(
        kind=base.kind,
        cols=base.cols,
        rows=base.rows,
        single_cycle=single_cycle,
        packets=tuple(packets),
    )


def _make_telemetry_case(rng: random.Random) -> TelemetryCase:
    base = _make_noc_case(rng)
    return TelemetryCase(
        kind=base.kind,
        cols=base.cols,
        rows=base.rows,
        window=rng.choice((2, 4, 8, 16, 32, 64, 128)),
        single_cycle=rng.random() < 0.7,
        packets=base.packets,
    )


def _make_faults_case(rng: random.Random) -> FaultsCase:
    base = _make_noc_case(rng)
    # Rates stay modest: per-flit-traversal transients compound over
    # hops x flits, and the point is recovery coverage, not exhaustion.
    link_rate = rng.choice((0.0, 0.08, 0.15, 0.25))
    vc_rate = rng.choice((0.0, 0.0, 0.1))
    transient_rate = rng.choice((0.0, 0.02, 0.05))
    if link_rate == vc_rate == transient_rate == 0.0:
        link_rate = 0.15
    return FaultsCase(
        kind=base.kind,
        cols=base.cols,
        rows=base.rows,
        link_rate=link_rate,
        vc_rate=vc_rate,
        transient_rate=transient_rate,
        fault_seed=rng.randint(0, 99),
        at_cycle=rng.choice((0, 0, rng.randint(1, 12))),
        packets=base.packets,
    )


#: Tenant names for generated stream mixes (order = tenant count).
_STREAM_TENANTS = ("alfa", "bravo", "chad")

#: One design per topology family keeps stream cases cheap but covers
#: the mesh, simplified-mesh, and halo service paths (C is the small
#: 16x4 design; F exercises the off-network halo memory leg).
_STREAM_DESIGNS = ("A", "C", "F")


def _make_stream_case(rng: random.Random) -> StreamCase:
    from repro.stream.arrivals import ARRIVAL_PROCESSES
    from repro.stream.service import ADMISSION_POLICIES

    mix = tuple(
        (
            _STREAM_TENANTS[i],
            float(rng.randint(10, 60)),
            rng.choice((0.6, 0.8, 0.9, 1.1)),
            rng.choice((64, 128, 256, 512)),
            rng.choice(ARRIVAL_PROCESSES),
        )
        for i in range(rng.randint(1, len(_STREAM_TENANTS)))
    )
    return StreamCase(
        design=rng.choice(_STREAM_DESIGNS),
        mix=mix,
        cycles=rng.choice((400, 600, 800, 1200)),
        policy=rng.choice(ADMISSION_POLICIES),
        queue_limit=rng.randint(4, 16),
        max_outstanding=rng.randint(2, 8),
        window=rng.choice((16, 32, 64)),
        seed=rng.randint(0, 99),
    )


#: Identifier pool for generated analysis snippets.
_ANALYSIS_NAMES = ("probe", "sweep", "drain", "refill", "collect", "replay")

#: (rule, module template, source template). Literal braces in source
#: templates are doubled for str.format; ``{n}`` is a random identifier,
#: ``{v}`` a random small integer.
_ANALYSIS_TEMPLATES = (
    ("det-wallclock", "repro.experiments.{n}",
     "import time\n\n\ndef {n}_stamp():\n    return time.time()\n"),
    ("det-wallclock", "repro.core.{n}",
     "from datetime import datetime\n\nSTARTED = datetime.now()\n"),
    ("tel-window-simtime", "repro.experiments.{n}",
     "import time\n\n\ndef {n}_sample(series):\n"
     "    series.record(int(time.monotonic()), {v})\n"),
    ("tel-window-simtime", "repro.perf.{n}",
     "from time import perf_counter\n\n\ndef {n}_push(registry):\n"
     "    registry.series('{n}', {v}).record(perf_counter())\n"),
    ("det-unseeded-random", "repro.workloads.{n}",
     "import random\n\n\ndef {n}_pick(items):\n"
     "    return random.choice(items[:{v}])\n"),
    ("det-unseeded-random", "repro.experiments.{n}",
     "import random\n\n_RNG = random.Random()\n"),
    ("det-id-order", "repro.noc.{n}",
     "def {n}_order(items):\n    return sorted(items, key=id)\n"),
    ("det-id-order", "repro.cache.{n}",
     "def {n}_seen(items):\n    return {{id(x) for x in items}}\n"),
    ("det-set-iter", "repro.sim.{n}",
     "def {n}_visit(handler):\n    for node in {{1, 2, {v}}}:\n"
     "        handler(node)\n"),
    ("det-set-iter", "repro.noc.{n}",
     "def {n}_fan(links):\n    return [hop for hop in set(links)]\n"),
    ("det-unseeded-random", "repro.noc.{n}",
     "import numpy\n\n\ndef {n}_jitter(n):\n"
     "    return numpy.random.standard_normal({v})\n"),
    ("det-unordered-reduce", "repro.noc.{n}",
     "def {n}_total(flits):\n"
     "    return sum({{f.latency for f in flits[:{v}]}})\n"),
    ("det-unordered-reduce", "repro.sim.{n}",
     "import math\n\n\ndef {n}_energy(extra):\n"
     "    return math.fsum({{0.5, 1.5, extra, {v}}})\n"),
    ("proc-spec-pickle", "repro.experiments.{n}",
     "from dataclasses import dataclass\n\n\n@dataclass(frozen=True)\n"
     "class {c}Spec:\n    tag: str\n    table: dict\n"),
    ("proc-worker-global-write", "repro.experiments.{n}",
     "from concurrent.futures import ProcessPoolExecutor\n\n_SEEN = {{}}\n"
     "\n\ndef {n}_work(item):\n    _SEEN[item] = True\n    return item\n"
     "\n\ndef {n}_run(items):\n    with ProcessPoolExecutor() as pool:\n"
     "        futures = [pool.submit({n}_work, x) for x in items]\n"
     "    return [f.result() for f in futures]\n"),
    ("proc-mutable-default", "repro.experiments.{n}",
     "def {n}_gather(x, acc=[]):\n    acc.append(x)\n    return acc\n"),
    ("proc-mutable-default", "repro.workloads.{n}",
     "def {n}_index(key, table={{}}):\n    return table.setdefault(key, {v})\n"),
    ("tel-registry-only", "repro.noc.{n}",
     "from repro.telemetry import Counter\n\n{n}_hits = Counter()\n"),
    ("tel-sink-only", "repro.experiments.{n}",
     "from repro.telemetry import JsonlTraceSink\n\n"
     "sink = JsonlTraceSink('{n}.jsonl')\n"),
    ("tel-wallclock-payload", "repro.telemetry.{n}",
     "import time\n\n\ndef {n}_stamp():\n    return time.time()\n"),
    ("tel-wallclock-payload", "repro.telemetry.{n}",
     "import os\n\n\ndef {n}_tag():\n    return os.getpid()\n"),
    ("exc-bare", "repro.experiments.{n}",
     "def {n}_guard(thunk):\n    try:\n        return thunk()\n"
     "    except:\n        return None\n"),
    ("exc-silent", "repro.experiments.{n}",
     "def {n}_try(thunk):\n    try:\n        thunk()\n"
     "    except Exception:\n        pass\n"),
    ("exc-broad-hotpath", "repro.sim.{n}",
     "def {n}_step(event, log):\n    try:\n        event()\n"
     "    except Exception as exc:\n        log(exc)\n"),
    ("exc-taxonomy", "repro.cache.{n}",
     "def {n}_check(x):\n    if x < 0:\n"
     "        raise RuntimeError('negative: %d' % x)\n    return x\n"),
    # Dataflow family: taint must survive an intermediate assignment ...
    ("df-taint-telemetry", "repro.noc.{n}",
     "import time\n\n\ndef {n}_publish(registry):\n"
     "    stamp = time.time()\n"
     "    registry.gauge('{n}.stamp').set(stamp)\n"),
    # ... a hop through a local helper into sim-state ...
    ("df-taint-state", "repro.sim.{n}",
     "import time\n\n\ndef {n}_now():\n    return time.monotonic()\n\n\n"
     "class {c}Clock:\n    def tick(self):\n        self.at = {n}_now()\n"),
    # ... and an id() flowing into a cache-key spec field.
    ("df-taint-spec", "repro.experiments.{n}",
     "from repro.experiments.runner import CellSpec\n\n\n"
     "def {n}_spec(design):\n"
     "    return CellSpec(design=design, scheme='lru',\n"
     "                    benchmark='art', seed=id(design))\n"),
    # One key pattern registered under two metric kinds.
    ("cat-key-collision", "repro.noc.{n}",
     "def {n}_publish(registry):\n"
     "    registry.counter('{n}.flow').inc({v})\n"
     "    registry.gauge('{n}.flow').set({v})\n"),
    # A reordered step() phase sequence in the array-core anchor module.
    ("contract-core-divergence", "repro.noc.arraycore",
     "class {c}Core:\n"
     "    def step(self):\n"
     "        self._deliver_arrivals(0)\n"
     "        self._inject_phase(0)\n"
     "        self._switch_phase(0)\n"
     "        self._replication_phase(0)\n\n"
     "    def _inject_phase(self, cycle):\n"
     "        pass\n"),
)


def _make_analysis_case(rng: random.Random) -> AnalysisCase:
    rule, module_template, source_template = rng.choice(_ANALYSIS_TEMPLATES)
    name = rng.choice(_ANALYSIS_NAMES)
    values = {"n": name, "v": rng.randint(2, 9), "c": name.capitalize()}
    return AnalysisCase(
        rule=rule,
        module=module_template.format(**values),
        source=source_template.format(**values),
    )


_FAMILY_MAKERS = {
    "noc": _make_noc_case,
    "cache": _make_cache_case,
    "oracle": _make_oracle_case,
    "faults": _make_faults_case,
    "analysis": _make_analysis_case,
    "arraycore": _make_arraycore_case,
    "telemetry": _make_telemetry_case,
    "stream": _make_stream_case,
}

DEFAULT_FAMILIES = (
    "noc", "cache", "faults", "analysis", "arraycore", "noc", "telemetry",
    "cache", "oracle", "arraycore", "telemetry", "stream",
)


def generate_case(family: str, rng: random.Random):
    """One random case of *family* ('noc' | 'cache' | 'oracle' | 'faults')."""
    try:
        maker = _FAMILY_MAKERS[family]
    except KeyError:
        raise ValidationError(
            f"unknown fuzz family {family!r}; known: {sorted(_FAMILY_MAKERS)}"
        ) from None
    return maker(rng)


# -- execution ----------------------------------------------------------------


def _run_noc_case(case: NocCase) -> None:
    from repro.noc.network import Network
    from repro.noc.packet import MessageType, Packet

    topology = _build_topology(case)
    network = Network(topology)
    for checker in default_network_checkers(topology):
        network.install_checker(checker)
    for spec in case.packets:
        packet = Packet(
            MessageType(spec.message), spec.source, tuple(spec.destinations)
        )
        network.schedule_injection(packet, at_cycle=spec.inject_cycle)
    run_with_checkers(network, max_cycles=20_000, stall_limit=300)


def _core_digest(network) -> tuple:
    """Core-independent fingerprint of a drained network's observables.

    Packet/flit ids are process-global counters that differ between two
    runs, so deliveries are keyed by (created_at, source, first-seen
    order) instead of ``packet_id``.
    """
    order: dict = {}
    rows = []
    for delivery in network.stats.deliveries:
        pid = delivery.packet.packet_id
        if pid not in order:
            order[pid] = (
                delivery.packet.created_at,
                str(delivery.packet.source),
                len(order),
            )
        rows.append(
            (
                order[pid],
                str(delivery.destination),
                delivery.injected_at,
                delivery.delivered_at,
                delivery.hops,
            )
        )
    rows.sort()
    counters: dict[str, object] = {}

    class _Metric:
        def __init__(self, name: str, high_water: bool) -> None:
            self.name = name
            self.high_water = high_water

        def inc(self, value) -> None:
            counters[self.name] = counters.get(self.name, 0) + value

        def update_max(self, value) -> None:
            counters[self.name] = max(counters.get(self.name, 0), value)

    class _SeriesSink:
        def __init__(self, name: str) -> None:
            self.name = name

        def merge(self, snapshot) -> None:
            # Windowed series content joins the digest verbatim, so two
            # cores with matching counters but diverging time-resolved
            # windows still fingerprint differently.
            counters[f"series::{self.name}"] = repr(snapshot)

    class _Registry:
        def counter(self, name: str) -> _Metric:
            return _Metric(name, False)

        def gauge(self, name: str) -> _Metric:
            return _Metric(name, True)

        def series(self, name: str, window, agg, edges) -> _SeriesSink:
            return _SeriesSink(name)

    network.publish_metrics(_Registry())
    stats = network.stats
    return (
        stats.cycles,
        stats.packets_injected,
        stats.flits_injected,
        stats.packets_delivered,
        tuple(rows),
        tuple(sorted(counters.items())),
    )


def _run_arraycore_case(case: ArraycoreCase) -> None:
    from repro.config import RouterConfig
    from repro.noc.arraycore import HAVE_NUMPY, ArrayNetwork
    from repro.noc.network import Network
    from repro.noc.packet import MessageType, Packet

    def run(factory) -> tuple:
        topology = _build_topology(NocCase(case.kind, case.cols, case.rows))
        network = factory(
            topology, RouterConfig(single_cycle=bool(case.single_cycle))
        )
        for spec in case.packets:
            packet = Packet(
                MessageType(spec.message), spec.source, tuple(spec.destinations)
            )
            network.schedule_injection(packet, at_cycle=spec.inject_cycle)
        network.run_until_drained(max_cycles=20_000)
        return _core_digest(network)

    # The scalar fallback sweeps run everywhere; the auto and forced
    # whole-mesh vector sweeps join the diff when NumPy is present.
    variants = [
        ("array-scalar",
         lambda t, c: ArrayNetwork(t, router_config=c, vectorize=False)),
    ]
    if HAVE_NUMPY:
        variants.append(
            ("array-auto", lambda t, c: ArrayNetwork(t, router_config=c))
        )
        variants.append(
            ("array-vector",
             lambda t, c: ArrayNetwork(t, router_config=c, vectorize=True))
        )
    reference = run(lambda t, c: Network(t, router_config=c))
    for label, factory in variants:
        digest = run(factory)
        if digest == reference:
            continue
        fields_ = (
            "cycles", "packets_injected", "flits_injected",
            "packets_delivered", "deliveries", "counters",
        )
        diffs = [
            name
            for name, obj, arr in zip(fields_, reference, digest)
            if obj != arr
        ]
        raise ValidationError(
            f"{label} diverged from object core on {', '.join(diffs)}: "
            f"object={reference!r} array={digest!r}"
        )


def _run_telemetry_case(case: TelemetryCase) -> None:
    import json

    from repro.config import RouterConfig
    from repro.noc.arraycore import ArrayNetwork
    from repro.noc.network import Network
    from repro.noc.packet import MessageType, Packet
    from repro.telemetry.registry import MetricsRegistry

    # Without NumPy the array core degrades to its scalar sweeps, so the
    # cross-core telemetry diff runs in every environment.
    cores = [("object", Network), ("array", ArrayNetwork)]
    snapshots = {}
    for name, cls in cores:
        topology = _build_topology(NocCase(case.kind, case.cols, case.rows))
        network = cls(
            topology,
            router_config=RouterConfig(single_cycle=bool(case.single_cycle)),
            window=case.window,
        )
        for spec in case.packets:
            packet = Packet(
                MessageType(spec.message), spec.source, tuple(spec.destinations)
            )
            network.schedule_injection(packet, at_cycle=spec.inject_cycle)
        network.run_until_drained(max_cycles=20_000)
        registry = MetricsRegistry()
        network.publish_metrics(registry)
        snapshots[name] = registry.snapshot()
    if len(snapshots) == 2:
        texts = {
            name: json.dumps(snap, sort_keys=True)
            for name, snap in snapshots.items()
        }
        if texts["object"] != texts["array"]:
            diffs = sorted(
                key
                for key in set(snapshots["object"]) | set(snapshots["array"])
                if snapshots["object"].get(key) != snapshots["array"].get(key)
            )
            raise ValidationError(
                "windowed telemetry diverged between cores on: "
                + ", ".join(diffs[:8])
            )
    forward, reverse = MetricsRegistry(), MetricsRegistry()
    ordered = [snapshots[name] for name, _ in cores]
    for snap in ordered:
        forward.merge(snap)
    for snap in reversed(ordered):
        reverse.merge(snap)
    if forward.snapshot() != reverse.snapshot():
        raise ValidationError(
            "telemetry merge is order-dependent: forward != reverse fold "
            "of the per-core snapshots"
        )


def _run_stream_case(case: StreamCase) -> None:
    import json

    from repro.stream.arrivals import TenantSpec, generate_arrivals
    from repro.stream.service import StreamService
    from repro.telemetry.registry import MetricsRegistry

    tenants = tuple(
        TenantSpec(
            name,
            rate_per_kcycle=rate,
            process=process,
            zipf_alpha=alpha,
            catalog_blocks=catalog,
        )
        for name, rate, alpha, catalog, process in case.mix
    )
    requests = generate_arrivals(tenants, case.cycles, case.seed)

    def run(core: str) -> dict:
        service = StreamService(
            case.design,
            core=core,
            window=case.window,
            policy=case.policy,
            queue_limit=case.queue_limit,
            max_outstanding=case.max_outstanding,
        )
        service.run(requests, case.cycles)
        rejected = sum(service.rejected.values())
        if service.offered != service.admitted + rejected:
            raise ValidationError(
                f"admission conservation broke on {core} core: "
                f"offered {service.offered} != admitted {service.admitted} "
                f"+ rejected {rejected}"
            )
        if service.admitted != service.completed:
            raise ValidationError(
                f"drain left work behind on {core} core: admitted "
                f"{service.admitted} != completed {service.completed}"
            )
        registry = MetricsRegistry()
        service.publish_metrics(registry)
        return registry.snapshot()

    snapshots = {core: run(core) for core in ("object", "array")}
    texts = {
        core: json.dumps(snap, sort_keys=True)
        for core, snap in snapshots.items()
    }
    if texts["object"] != texts["array"]:
        diffs = sorted(
            key
            for key in set(snapshots["object"]) | set(snapshots["array"])
            if snapshots["object"].get(key) != snapshots["array"].get(key)
        )
        raise ValidationError(
            "stream telemetry diverged between cores on: "
            + ", ".join(diffs[:8])
        )
    if json.dumps(run("object"), sort_keys=True) != texts["object"]:
        raise ValidationError(
            "stream service is nondeterministic: object-core re-run "
            "produced a different snapshot"
        )
    forward, reverse = MetricsRegistry(), MetricsRegistry()
    ordered = [snapshots["object"], snapshots["array"]]
    for snap in ordered:
        forward.merge(snap)
    for snap in reversed(ordered):
        reverse.merge(snap)
    if forward.snapshot() != reverse.snapshot():
        raise ValidationError(
            "stream telemetry merge is order-dependent: forward != "
            "reverse fold of the per-core snapshots"
        )


def _make_policy(name: str):
    from repro.cache.replacement import PromotionPolicy, policy_by_name

    if name.startswith("promotion:"):
        return PromotionPolicy(miss_policy=name.split(":", 1)[1])
    return policy_by_name(name)


def _run_cache_case(case: CacheCase) -> None:
    from repro.cache.bankset import BankSetState

    policy = _make_policy(case.policy)
    state = BankSetState(list(case.bank_of_way))
    checker = BlockConservationChecker(
        shadow_lru=policy.name in ("lru", "fast_lru")
    )
    for tag, is_write in case.accesses:
        before = state.resident_tags()
        outcome = policy.access(state, tag, bool(is_write))
        checker.check(tag, before, state, outcome, key=case.bank_of_way)


def _run_faults_case(case: FaultsCase) -> None:
    from repro.faults import FaultPlan, install_resilience
    from repro.noc.network import Network
    from repro.noc.packet import MessageType, Packet

    topology = _build_topology(NocCase(case.kind, case.cols, case.rows))
    network = Network(topology)
    for checker in default_network_checkers(topology):
        network.install_checker(checker)
    plan = FaultPlan.sample(
        topology,
        link_rate=case.link_rate,
        vc_rate=case.vc_rate,
        transient_rate=case.transient_rate,
        seed=case.fault_seed,
        at_cycle=case.at_cycle,
    )
    _, recovery = install_resilience(network, plan, seed=case.fault_seed)
    for spec in case.packets:
        packet = Packet(
            MessageType(spec.message), spec.source, tuple(spec.destinations)
        )
        network.schedule_injection(packet, at_cycle=spec.inject_cycle)
    run_with_checkers(network, max_cycles=60_000, stall_limit=1000)
    if recovery.outstanding_messages():
        raise ValidationError(
            f"{recovery.outstanding_messages()} tracked message(s) neither "
            "delivered nor abandoned after drain"
        )


def _run_analysis_case(case: AnalysisCase) -> None:
    from repro.analysis import analyze_source

    findings = analyze_source(
        "<fuzz>", case.source, module=case.module
    )
    flagged = sorted({finding.rule for finding in findings})
    if case.rule not in flagged:
        raise ValidationError(
            f"analysis rule {case.rule!r} missed a violating snippet "
            f"(flagged: {flagged or 'nothing'}):\n{case.source}"
        )


def _run_oracle_case(case: OracleCase) -> None:
    from repro.validation.differential import run_oracle

    report = run_oracle(
        design=case.design,
        scheme=case.scheme,
        benchmark=case.benchmark,
        measure=case.measure,
        seed=case.seed,
        sample=case.sample,
    )
    if not report.ok:
        raise ValidationError(
            "differential oracle diverged:\n  " + "\n  ".join(report.divergences)
        )


def run_case(case) -> None:
    """Execute one fuzz case; raises on any invariant violation."""
    if isinstance(case, NocCase):
        _run_noc_case(case)
    elif isinstance(case, CacheCase):
        _run_cache_case(case)
    elif isinstance(case, OracleCase):
        _run_oracle_case(case)
    elif isinstance(case, FaultsCase):
        _run_faults_case(case)
    elif isinstance(case, ArraycoreCase):
        _run_arraycore_case(case)
    elif isinstance(case, TelemetryCase):
        _run_telemetry_case(case)
    elif isinstance(case, StreamCase):
        _run_stream_case(case)
    elif isinstance(case, AnalysisCase):
        _run_analysis_case(case)
    else:
        raise ValidationError(f"not a fuzz case: {case!r}")


# -- shrinking ----------------------------------------------------------------


def shrink_list(items: list, still_fails) -> list:
    """Greedy delta debugging: drop chunks, then singles, while failing."""
    items = list(items)
    chunk = max(1, len(items) // 2)
    while chunk >= 1:
        i = 0
        while i < len(items):
            candidate = items[:i] + items[i + chunk:]
            if candidate and still_fails(candidate):
                items = candidate
            else:
                i += chunk
        chunk //= 2
    return items


def _fails(case) -> bool:
    try:
        run_case(case)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        raise
    except Exception:
        return True
    return False


def shrink_case(case):
    """Smallest still-failing variant of a known-failing *case*."""
    if isinstance(case, NocCase):
        packets = shrink_list(
            list(case.packets),
            lambda kept: _fails(replace(case, packets=tuple(kept))),
        )
        case = replace(case, packets=tuple(packets))
        shrunk_packets = []
        for i, packet in enumerate(case.packets):
            if len(packet.destinations) > 1:
                others = list(case.packets)

                def fails_with(dsts, i=i, others=others, packet=packet):
                    others[i] = replace(packet, destinations=tuple(dsts))
                    return _fails(replace(case, packets=tuple(others)))

                kept = shrink_list(list(packet.destinations), fails_with)
                packet = replace(packet, destinations=tuple(kept))
            shrunk_packets.append(packet)
        candidate = replace(case, packets=tuple(shrunk_packets))
        return candidate if _fails(candidate) else case
    if isinstance(case, CacheCase):
        accesses = shrink_list(
            list(case.accesses),
            lambda kept: _fails(replace(case, accesses=tuple(kept))),
        )
        return replace(case, accesses=tuple(accesses))
    if isinstance(case, OracleCase):
        for measure in (30, 60, 90, 120, 180):
            if measure >= case.measure:
                break
            candidate = replace(case, measure=measure)
            if _fails(candidate):
                return candidate
        return case
    if isinstance(case, (ArraycoreCase, TelemetryCase)):
        packets = shrink_list(
            list(case.packets),
            lambda kept: _fails(replace(case, packets=tuple(kept))),
        )
        return replace(case, packets=tuple(packets))
    if isinstance(case, StreamCase):
        mix = shrink_list(
            list(case.mix),
            lambda kept: _fails(replace(case, mix=tuple(kept))),
        )
        case = replace(case, mix=tuple(mix))
        for cycles in (100, 200, 400, 800):
            if cycles >= case.cycles:
                break
            candidate = replace(case, cycles=cycles)
            if _fails(candidate):
                return candidate
        return case
    if isinstance(case, FaultsCase):
        packets = shrink_list(
            list(case.packets),
            lambda kept: _fails(replace(case, packets=tuple(kept))),
        )
        case = replace(case, packets=tuple(packets))
        # Try switching whole fault classes off while the case still fails.
        for knob in ("transient_rate", "vc_rate", "link_rate"):
            if getattr(case, knob) == 0.0:
                continue
            candidate = replace(case, **{knob: 0.0})
            if _fails(candidate):
                case = candidate
        return case
    return case


# -- reporting ----------------------------------------------------------------


_CASE_IMPORTS = {
    NocCase: "NocCase, PacketSpec",
    CacheCase: "CacheCase",
    OracleCase: "OracleCase",
    FaultsCase: "FaultsCase, PacketSpec",
    AnalysisCase: "AnalysisCase",
    ArraycoreCase: "ArraycoreCase, PacketSpec",
    TelemetryCase: "TelemetryCase, PacketSpec",
    StreamCase: "StreamCase",
}


def case_to_pytest(case, error: str = "") -> str:
    """A standalone pytest module body reproducing *case*."""
    names = _CASE_IMPORTS[type(case)]
    lines = [f"from repro.validation.fuzzer import {names}, run_case", "", ""]
    lines.append("def test_fuzz_repro():")
    if error:
        lines.append(f"    # fails with: {error}")
    lines.append(f"    case = {case!r}")
    lines.append("    run_case(case)")
    return "\n".join(lines) + "\n"


@dataclass
class FuzzFailure:
    """One failing fuzz case, shrunk and rendered as a pytest repro."""

    index: int
    family: str
    case: object
    error_type: str
    error: str
    shrunk: object = None
    repro: str = ""

    def render(self) -> str:
        lines = [
            f"case #{self.index} ({self.family}): {self.error_type}: {self.error}",
            f"  original: {self.case!r}",
            f"  shrunk:   {self.shrunk!r}",
            "  repro (paste into tests/validation/):",
        ]
        lines += ["    " + line for line in self.repro.splitlines()]
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz` campaign."""

    cases_run: int
    seed: int
    families: tuple
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_line(self) -> str:
        verdict = "all passed" if self.ok else f"{len(self.failures)} FAILED"
        return (
            f"fuzz: {self.cases_run} cases (seed {self.seed}, families "
            f"{'/'.join(sorted(set(self.families)))}): {verdict}"
        )

    def render(self) -> str:
        lines = [self.summary_line()]
        for failure in self.failures:
            lines.append(failure.render())
        return "\n".join(lines)


def fuzz(
    n: int,
    seed: int = 1,
    families: tuple = DEFAULT_FAMILIES,
) -> FuzzReport:
    """Run *n* seeded fuzz cases; shrink and report every failure.

    Case *i* draws from ``families[i % len(families)]`` with its own
    deterministic RNG, so any single failing index reproduces in
    isolation regardless of what ran before it.
    """
    report = FuzzReport(cases_run=n, seed=seed, families=tuple(families))
    for i in range(n):
        family = families[i % len(families)]
        rng = random.Random(f"{seed}/{i}/{family}")
        case = generate_case(family, rng)
        try:
            run_case(case)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            raise
        except Exception as exc:
            shrunk = shrink_case(case)
            error = f"{exc}"
            report.failures.append(
                FuzzFailure(
                    index=i,
                    family=family,
                    case=case,
                    error_type=type(exc).__name__,
                    error=error,
                    shrunk=shrunk,
                    repro=case_to_pytest(shrunk, error=error.splitlines()[0]),
                )
            )
    return report
