"""Routing algorithms: XY, deadlock-free XYX (Fig. 5), and spike routing.

Route computers map ``(current node, destination node)`` to the next node;
the output port of a router is identified with the neighbor it reaches.
``None`` means the flit has arrived and must be ejected (the *Internal*
channel of Fig. 5(a)).

Coordinates follow :mod:`repro.noc.topology`: ``y`` grows downward, away
from the core row (y = 0), so ``Y+`` is the request direction down a bank
column and ``Y-`` is the reply direction back toward the core/memory row.
"""

from __future__ import annotations

import enum
from typing import Iterable

import networkx as nx

from repro.errors import RoutingError
from repro.noc.topology import HUB, HaloTopology, NodeId, Topology


class Direction(enum.Enum):
    """Physical-channel directions of a mesh router (plus local port)."""

    X_PLUS = "X+"
    X_MINUS = "X-"
    Y_PLUS = "Y+"
    Y_MINUS = "Y-"
    LOCAL = "internal"


def mesh_step(node: NodeId, direction: Direction) -> NodeId:
    """Neighbor of *node* in *direction* (mesh coordinates)."""
    x, y = node
    if direction is Direction.X_PLUS:
        return (x + 1, y)
    if direction is Direction.X_MINUS:
        return (x - 1, y)
    if direction is Direction.Y_PLUS:
        return (x, y + 1)
    if direction is Direction.Y_MINUS:
        return (x, y - 1)
    return node


class RouteComputer:
    """Base interface: pick the next node toward *destination*."""

    name = "route"

    def next_hop(
        self, topology: Topology, current: NodeId, destination: NodeId
    ) -> NodeId | None:
        raise NotImplementedError

    def path(
        self, topology: Topology, source: NodeId, destination: NodeId
    ) -> list[NodeId]:
        """Full node path ``[source, ..., destination]``.

        Raises :class:`RoutingError` if the algorithm selects a channel the
        topology does not provide, or fails to make progress.
        """
        path = [source]
        current = source
        limit = topology.num_nodes + 1
        while current != destination:
            nxt = self.next_hop(topology, current, destination)
            if nxt is None:
                raise RoutingError(
                    f"{self.name}: stalled at {current} before reaching {destination}"
                )
            if not topology.has_channel(current, nxt):
                raise RoutingError(
                    f"{self.name}: selected missing channel {current}->{nxt} "
                    f"in {topology.name}"
                )
            path.append(nxt)
            current = nxt
            if len(path) > limit:
                raise RoutingError(
                    f"{self.name}: path exceeds node count "
                    f"({source}->{destination}); routing loop"
                )
        return path

    def hops(self, topology: Topology, source: NodeId, destination: NodeId) -> int:
        """Number of channel traversals from source to destination."""
        return len(self.path(topology, source, destination)) - 1


class XYRouting(RouteComputer):
    """Dimension-ordered XY routing: resolve X fully, then Y."""

    name = "XY"

    def direction(self, current: NodeId, destination: NodeId) -> Direction:
        x, y = current
        dx, dy = destination
        if dx > x:
            return Direction.X_PLUS
        if dx < x:
            return Direction.X_MINUS
        if dy > y:
            return Direction.Y_PLUS
        if dy < y:
            return Direction.Y_MINUS
        return Direction.LOCAL

    def next_hop(
        self, topology: Topology, current: NodeId, destination: NodeId
    ) -> NodeId | None:
        direction = self.direction(current, destination)
        if direction is Direction.LOCAL:
            return None
        return mesh_step(current, direction)


class XYXRouting(RouteComputer):
    """The paper's deadlock-free XYX routing (Fig. 5(a)).

    Moving *away* from the core row (``Yoffset >= 0``) routes X first then
    Y+; moving back toward it routes Y- first, finishing with X along the
    destination row. On the simplified mesh this confines every horizontal
    hop to the first row for the cache's traffic patterns.
    """

    name = "XYX"

    def direction(self, current: NodeId, destination: NodeId) -> Direction:
        x_offset = destination[0] - current[0]
        y_offset = destination[1] - current[1]
        if y_offset >= 0:
            if x_offset > 0:
                return Direction.X_PLUS
            if x_offset < 0:
                return Direction.X_MINUS
            if y_offset == 0:
                return Direction.LOCAL
            return Direction.Y_PLUS
        return Direction.Y_MINUS

    def next_hop(
        self, topology: Topology, current: NodeId, destination: NodeId
    ) -> NodeId | None:
        direction = self.direction(current, destination)
        if direction is Direction.LOCAL:
            return None
        return mesh_step(current, direction)


class SpikeRouting(RouteComputer):
    """Routing on a halo: along the spike, through the hub across spikes."""

    name = "spike"

    def next_hop(
        self, topology: Topology, current: NodeId, destination: NodeId
    ) -> NodeId | None:
        if current == destination:
            return None
        if current == HUB:
            if destination == HUB:
                return None
            _, spike, _ = destination
            return ("spike", spike, 0)
        _, cur_spike, cur_pos = current
        if destination == HUB:
            return HUB if cur_pos == 0 else ("spike", cur_spike, cur_pos - 1)
        _, dst_spike, dst_pos = destination
        if dst_spike != cur_spike:
            # Cross-spike traffic funnels through the hub.
            return HUB if cur_pos == 0 else ("spike", cur_spike, cur_pos - 1)
        if dst_pos > cur_pos:
            return ("spike", cur_spike, cur_pos + 1)
        return ("spike", cur_spike, cur_pos - 1)


def routing_for(topology: Topology) -> RouteComputer:
    """Pick the natural route computer for *topology*.

    Full meshes use XY (Design A); simplified meshes require XYX (Designs
    B-D); halos use spike routing (Designs E-F).
    """
    from repro.noc.topology import MeshTopology, SimplifiedMeshTopology

    if isinstance(topology, HaloTopology):
        return SpikeRouting()
    if isinstance(topology, SimplifiedMeshTopology):
        return XYXRouting()
    if isinstance(topology, MeshTopology):
        return XYRouting()
    raise RoutingError(f"no default routing for topology {topology.name!r}")


def xyx_channel_number(cols: int, rows: int, src: NodeId, dst: NodeId) -> int:
    """Total channel enumeration proving XYX deadlock freedom (Fig. 5(b)).

    Every XYX path is either an X-phase followed by a Y+ phase, or a
    Y- phase followed by an X phase. Numbering the three channel classes in
    layers -- all Y- channels lowest, then X channels, then Y+ channels --
    with coordinate-monotone numbers inside each class makes every legal
    path follow strictly increasing channel numbers, so the channel
    dependency graph is acyclic and the routing is deadlock-free.
    """
    (sx, sy), (dx, dy) = src, dst
    if sx == dx:
        if dy == sy - 1:  # Y- channel
            return sx * (rows - 1) + (rows - 1 - sy)
        if dy == sy + 1:  # Y+ channel
            base = cols * (rows - 1) + 2 * rows * (cols - 1)
            return base + sx * (rows - 1) + sy
    elif sy == dy:
        if dx == sx + 1:  # X+ channel
            base = cols * (rows - 1)
            return base + sy * (cols - 1) + sx
        if dx == sx - 1:  # X- channel
            base = cols * (rows - 1) + rows * (cols - 1)
            return base + sy * (cols - 1) + (cols - 1 - sx)
    raise RoutingError(f"{src}->{dst} is not a mesh channel")


def xyx_path_channel_numbers(
    cols: int, rows: int, path: Iterable[NodeId]
) -> list[int]:
    """Fig. 5(b) enumeration number of each channel along a node path.

    A legal XYX path must yield a strictly increasing list -- the online
    form of the deadlock-freedom argument that the validation checkers
    enforce per switch traversal.
    """
    nodes = list(path)
    return [
        xyx_channel_number(cols, rows, src, dst)
        for src, dst in zip(nodes, nodes[1:])
    ]


def channel_dependency_graph(
    topology: Topology,
    routing: RouteComputer,
    pairs: Iterable[tuple[NodeId, NodeId]] | None = None,
) -> "nx.DiGraph":
    """Build the channel dependency graph induced by *routing*.

    Nodes are directed channels ``(src, dst)``; an edge from channel ``a``
    to channel ``b`` exists when some routed path holds ``a`` while
    requesting ``b`` (i.e. uses them consecutively). Wormhole routing is
    deadlock-free iff this graph is acyclic (Dally & Seitz).
    """
    graph = nx.DiGraph()
    for channel in topology.channels():
        graph.add_node((channel.src, channel.dst))
    if pairs is None:
        nodes = sorted(topology.nodes)
        pairs = ((s, d) for s in nodes for d in nodes if s != d)
    for source, destination in pairs:
        path = routing.path(topology, source, destination)
        for i in range(len(path) - 2):
            graph.add_edge(
                (path[i], path[i + 1]),
                (path[i + 1], path[i + 2]),
            )
    return graph


def is_deadlock_free(
    topology: Topology,
    routing: RouteComputer,
    pairs: Iterable[tuple[NodeId, NodeId]] | None = None,
) -> bool:
    """True when *routing*'s channel dependency graph is acyclic."""
    return nx.is_directed_acyclic_graph(
        channel_dependency_graph(topology, routing, pairs)
    )
