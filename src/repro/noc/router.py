"""The single-cycle multicasting wormhole router (Section 3.1, Fig. 1).

Microarchitecture modeled:

* one input unit per physical channel (PC), each with ``num_vcs`` virtual
  channels of ``buffer_depth`` flits, plus an injection PC and an ejection
  output;
* VCs of one PC share a single crossbar input port, so at most one flit per
  input PC wins switch allocation per cycle, and each output port accepts
  one flit per cycle;
* credit-based flow control toward each downstream input VC;
* the single-cycle optimizations (lookahead routing, buffer bypassing,
  speculative switch allocation, arbitration precomputation) are modeled
  collectively as a one-cycle switch traversal with zero extra pipeline
  wait (``RouterConfig.single_cycle``); the classic pipelined router instead
  delays flits ``hop_latency - 1`` cycles before they may compete;
* hybrid multicast replication: when a (single-flit) multicast head needs
  to leave through several output ports, a replica is copied into a free VC
  of a *different, less-utilized* input PC -- consuming that PC's upstream
  credit -- and the two flits proceed independently (asynchronously). If no
  free VC exists anywhere, forwarding blocks and retries next cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import RouterConfig
from repro.errors import ProtocolError, SimulationError
from repro.noc.buffer import VirtualChannel, make_input_unit
from repro.noc.flit import Flit
from repro.noc.routing import RouteComputer
from repro.noc.topology import NodeId, Topology

INJECT = "inject"
EJECT = "eject"


@dataclass
class RouterStats:
    """Counters kept by each router."""

    flits_forwarded: int = 0
    flits_ejected: int = 0
    replications: int = 0
    replication_blocked_cycles: int = 0
    switch_conflicts: int = 0
    #: Head flits that found no free downstream VC with credit this cycle.
    vc_alloc_failures: int = 0
    #: Flits that crossed the router on their first eligible cycle with an
    #: otherwise-empty VC -- the single-cycle buffer-bypass case.
    buffer_bypass_hits: int = 0
    #: Head flits whose VC allocation and switch traversal landed in the
    #: same cycle (the speculative switch-allocation win).
    speculative_switch_wins: int = 0


@dataclass
class _Forward:
    """A flit leaving through an output port this cycle."""

    flit: Flit
    out_port: object
    out_vc: int | None


class Router:
    """One wormhole router instance bound to a topology node."""

    def __init__(
        self,
        node: NodeId,
        topology: Topology,
        routing: RouteComputer,
        config: RouterConfig,
    ) -> None:
        self.node = node
        self.topology = topology
        self.routing = routing
        self.config = config
        self.stats = RouterStats()

        in_ports = list(topology.predecessors(node)) + [INJECT]
        self.inputs: dict[object, list[VirtualChannel]] = {
            port: make_input_unit(port, config.num_vcs, config.buffer_depth)
            for port in in_ports
        }
        self.out_ports: list[object] = list(topology.successors(node)) + [EJECT]
        #: Free buffer slots at the downstream input VC for each output.
        self.credits: dict[tuple[object, int], int] = {
            (port, vc): config.buffer_depth
            for port in topology.successors(node)
            for vc in range(config.num_vcs)
        }
        #: Upstream router objects, wired by the Network (for credit return
        #: and replication credit stealing).
        self.upstream: dict[object, "Router"] = {}
        #: Downstream router objects, wired by the Network (for VC status).
        self.downstream: dict[object, "Router"] = {}

        #: Cycles a buffered body/tail flit sat blocked on downstream
        #: credit, keyed by (out_port, out_vc) -- the spatial congestion
        #: signal behind the ``noc.vc.credit_stall_cycles`` metrics.
        self.credit_stalls: dict[tuple[object, int], int] = {}
        self._rr_in: dict[object, int] = {port: 0 for port in self.inputs}
        self._rr_out: dict[object, int] = {port: 0 for port in self.out_ports}
        #: Arbitration tie-break ranks, precomputed so the switch-allocation
        #: hot loop never re-stringifies port names.
        self._in_rank: dict[object, str] = {port: str(port) for port in in_ports}
        #: Validation observers (installed via Network.install_checker);
        #: notified after each committed switch traversal and each
        #: multicast replication. Empty in normal runs.
        self.observers: list = []

    # -- wiring ------------------------------------------------------------

    def connect(self, neighbors: dict[NodeId, "Router"]) -> None:
        """Bind upstream/downstream router references."""
        for port in self.inputs:
            if port != INJECT and port in neighbors:
                self.upstream[port] = neighbors[port]
        for port in self.out_ports:
            if port != EJECT and port in neighbors:
                self.downstream[port] = neighbors[port]

    # -- credit flow ------------------------------------------------------

    def return_credit(self, from_node: NodeId, vc_index: int) -> None:
        """Downstream freed one slot of our channel toward *from_node*."""
        key = (from_node, vc_index)
        self.credits[key] += 1
        if self.credits[key] > self.config.buffer_depth:
            raise SimulationError(f"credit overflow on {self.node}->{from_node}")

    def _pop(self, port: object, vc: VirtualChannel) -> Flit:
        """Pop a flit and return the freed slot's credit upstream."""
        flit = vc.pop()
        if port != INJECT:
            upstream = self.upstream.get(port)
            if upstream is not None:
                upstream.return_credit(self.node, vc.index)
        return flit

    # -- route computation --------------------------------------------------

    def _output_groups(self, flit: Flit) -> dict[object, tuple]:
        """Group the head flit's destinations by required output port."""
        node = self.node
        next_hop = self.routing.next_hop
        topology = self.topology
        groups: dict[object, list] = {}
        for destination in flit.destinations:
            if destination == node:
                port = EJECT
            else:
                port = next_hop(topology, node, destination)
            groups.setdefault(port, []).append(destination)
        return {port: tuple(dsts) for port, dsts in groups.items()}

    # -- multicast replication (Section 3.1 hybrid scheme) ------------------

    def replication_phase(self, cycle: int) -> None:
        """Split multicast heads that need several output ports.

        The continuing group stays in its VC; each extra group is cloned
        into a free VC of a different PC (less-utilized PCs preferred),
        stealing that PC's upstream credit so flow control stays sound.
        """
        for port, unit in self.inputs.items():
            for vc in unit:
                fifo = vc.fifo
                if not fifo:
                    continue
                flit = fifo[0]
                if not flit.is_multicast or flit.eligible_at > cycle:
                    continue
                if not flit.kind.is_head or not flit.kind.is_tail:
                    raise ProtocolError(
                        "multicast packets must be single-flit in this domain"
                    )
                groups = self._output_groups(flit)
                if len(groups) <= 1:
                    continue
                self._split_multicast(port, vc, flit, groups, cycle)

    def _split_multicast(
        self,
        port: object,
        vc: VirtualChannel,
        flit: Flit,
        groups: dict[object, tuple],
        cycle: int,
    ) -> None:
        # Keep the non-eject (continuing) group in place when one exists;
        # replicas carry the remaining groups.
        ordered = sorted(groups.items(), key=lambda kv: kv[0] == EJECT)
        _, keep_dsts = ordered[0]
        extra_groups = ordered[1:]
        borrowed: list[tuple[object, VirtualChannel, tuple]] = []
        for _, destinations in extra_groups:
            slot = self._find_replication_vc(exclude=port, also_exclude=borrowed)
            if slot is None:
                self.stats.replication_blocked_cycles += 1
                return  # block: retry whole split next cycle
            borrowed.append((slot[0], slot[1], destinations))
        # Commit: narrow the original and install replicas.
        flit.destinations = keep_dsts
        for borrow_port, borrow_vc, destinations in borrowed:
            replica = flit.clone_for(destinations)
            replica.eligible_at = cycle + 1  # replication takes the cycle
            upstream = self.upstream.get(borrow_port)
            if upstream is not None:
                key = (self.node, borrow_vc.index)
                if upstream.credits[key] <= 0:
                    raise SimulationError(
                        "replication chose a VC without upstream credit"
                    )
                upstream.credits[key] -= 1
            borrow_vc.push(replica)
            self.stats.replications += 1
            for observer in self.observers:
                observer.on_replicate(
                    self, flit, replica, borrow_port, borrow_vc, cycle
                )

    def _find_replication_vc(
        self, exclude: object, also_exclude: list
    ) -> tuple[object, VirtualChannel] | None:
        """Free VC of a different PC; less-utilized PCs preferred."""
        taken = {  # repro: allow[det-id-order] -- membership test only; the set is never iterated or sorted, so address order cannot leak
            id(vc) for _, vc, _ in also_exclude
        }

        def utilization(port: object) -> int:
            return sum(1 for vc in self.inputs[port] if not vc.is_free)

        candidates = sorted(
            (port for port in self.inputs if port != exclude),
            key=lambda p: (utilization(p), p == INJECT, str(p)),
        )
        for port in candidates:
            for vc in self.inputs[port]:
                if id(vc) in taken or not vc.is_free:
                    continue
                upstream = self.upstream.get(port)
                if upstream is not None and upstream.credits[(self.node, vc.index)] <= 0:
                    continue
                return port, vc
        return None

    # -- switch allocation --------------------------------------------------

    def _candidate_for_port(self, port: object, cycle: int) -> _Forward | None:
        """Pick at most one ready VC of input PC *port* (round-robin)."""
        unit = self.inputs[port]
        n = len(unit)
        start = self._rr_in[port]
        vc_ready = self._vc_ready
        for offset in range(n):
            vc = unit[(start + offset) % n]
            if not vc.fifo:
                continue
            forward = vc_ready(vc, cycle)
            if forward is not None:
                self._rr_in[port] = (start + offset + 1) % n
                return forward
        return None

    def _vc_ready(self, vc: VirtualChannel, cycle: int) -> _Forward | None:
        flit = vc.head()
        if flit is None or flit.eligible_at > cycle:
            return None
        if flit.kind.is_head:
            groups = self._output_groups(flit)
            if flit.is_multicast and len(groups) > 1:
                return None  # must replicate first
            (out_port, _), = groups.items()
            if out_port == EJECT:
                return _Forward(flit, EJECT, None)
            out_vc = self._allocate_downstream_vc(out_port, flit)
            if out_vc is None:
                self.stats.vc_alloc_failures += 1
                return None
            return _Forward(flit, out_port, out_vc)
        # Body/tail flit: follows the wormhole's allocated route.
        if vc.out_port == EJECT:
            return _Forward(flit, EJECT, None)
        if vc.out_port is None or vc.out_vc is None:
            return None  # head has not been switched yet
        if self.credits[(vc.out_port, vc.out_vc)] <= 0:
            key = (vc.out_port, vc.out_vc)
            self.credit_stalls[key] = self.credit_stalls.get(key, 0) + 1
            return None
        return _Forward(flit, vc.out_port, vc.out_vc)

    def _allocate_downstream_vc(self, out_port: object, flit: Flit) -> int | None:
        """Find a free downstream VC with credit (VC allocation)."""
        downstream = self.downstream.get(out_port)
        if downstream is None:
            raise SimulationError(f"no downstream router on port {out_port}")
        unit = downstream.inputs[self.node]
        for vc in unit:
            if vc.is_free and self.credits[(out_port, vc.index)] > 0:
                return vc.index
        return None

    def switch_phase(self, cycle: int) -> list[_Forward]:
        """Arbitrate the crossbar; pop and return this cycle's winners."""
        candidate = self._candidate_for_port
        by_input: dict[object, _Forward] = {}
        for port, unit in self.inputs.items():
            for vc in unit:
                if vc.fifo:
                    break
            else:
                continue  # every VC of this input PC is empty
            forward = candidate(port, cycle)
            if forward is not None:
                by_input[port] = forward
        if not by_input:
            return []

        winners: list[_Forward] = []
        rr_out = self._rr_out
        in_rank = self._in_rank
        observers = self.observers
        # Round-robin over output ports for fairness.
        for out_port in self.out_ports:
            contenders = [
                (port, fwd)
                for port, fwd in by_input.items()
                if fwd.out_port == out_port
            ]
            if not contenders:
                continue
            if len(contenders) > 1:
                self.stats.switch_conflicts += len(contenders) - 1
                pick = rr_out[out_port] % len(contenders)
                contenders.sort(key=lambda item: in_rank[item[0]])
                port, forward = contenders[pick]
            else:
                port, forward = contenders[0]
            rr_out[out_port] = rr_out[out_port] + 1
            committed = self._commit(port, forward, cycle)
            for observer in observers:
                observer.on_switch(self, port, committed, cycle)
            winners.append(committed)
        return winners

    def _commit(self, port: object, forward: _Forward, cycle: int) -> _Forward:
        """Perform the switch traversal for a winning flit."""
        unit = self.inputs[port]
        vc = next(v for v in unit if v.head() is forward.flit)
        if self.config.single_cycle and forward.flit.eligible_at == cycle:
            # Crossed on its first eligible cycle: with an empty VC behind
            # it this is a buffer bypass; a head flit additionally won its
            # VC allocation and the switch in the same (speculative) cycle.
            if len(vc.fifo) == 1:
                self.stats.buffer_bypass_hits += 1
            if forward.flit.kind.is_head and forward.out_port != EJECT:
                self.stats.speculative_switch_wins += 1
        flit = self._pop(port, vc)
        flit.hops += 1
        if forward.out_port == EJECT:
            self.stats.flits_ejected += 1
            if flit.kind.is_head and not flit.kind.is_tail:
                # Body flits of this wormhole must also eject here.
                vc.out_port = EJECT
                vc.out_vc = None
            return forward
        self.stats.flits_forwarded += 1
        key = (forward.out_port, forward.out_vc)
        if self.credits[key] <= 0:
            raise SimulationError("switched a flit without credit")
        self.credits[key] -= 1
        if flit.kind.is_head:
            # Reserve the downstream VC for this wormhole.
            downstream = self.downstream[forward.out_port]
            downstream_vc = downstream.inputs[self.node][forward.out_vc]
            if not flit.kind.is_tail:
                vc_after = vc  # multi-flit: body flits keep following
                vc_after.out_port = forward.out_port
                vc_after.out_vc = forward.out_vc
            if downstream_vc.active_packet not in (None, flit.packet.packet_id):
                raise SimulationError("downstream VC reserved by another packet")
            downstream_vc.active_packet = flit.packet.packet_id
        return forward

    # -- introspection ------------------------------------------------------

    def publish_metrics(self, registry, prefix: str = "noc.router") -> None:
        """Accumulate this router's counters into a telemetry registry.

        Counters are summed across routers under *prefix*; per-VC buffer
        occupancy feeds the ``noc.buffer.max_occupancy`` high-water gauge.
        """
        stats = self.stats
        registry.counter(f"{prefix}.flits_forwarded").inc(stats.flits_forwarded)
        registry.counter(f"{prefix}.flits_ejected").inc(stats.flits_ejected)
        registry.counter(f"{prefix}.replications").inc(stats.replications)
        registry.counter(f"{prefix}.multicast_replica_blocked_cycles").inc(
            stats.replication_blocked_cycles
        )
        registry.counter(f"{prefix}.switch_conflicts").inc(stats.switch_conflicts)
        registry.counter(f"{prefix}.vc_alloc_failures").inc(stats.vc_alloc_failures)
        registry.counter(f"{prefix}.buffer_bypass_hits").inc(
            stats.buffer_bypass_hits
        )
        registry.counter(f"{prefix}.speculative_switch_wins").inc(
            stats.speculative_switch_wins
        )
        occupancy = registry.gauge("noc.buffer.max_occupancy")
        for unit in self.inputs.values():
            for vc in unit:
                occupancy.update_max(vc.max_occupancy)
        self._publish_spatial(registry)

    def _publish_spatial(self, registry) -> None:
        """Per-(router, port, vc) congestion metrics (DESIGN.md §14).

        Only nonzero entries are published so snapshots stay sparse on
        large meshes; names embed the node/port/vc key.
        """
        node = self.node
        if self.stats.replication_blocked_cycles:
            registry.counter(
                f"noc.router.replication_blocked.{node}"
            ).inc(self.stats.replication_blocked_cycles)
        for port in self.inputs:
            for vc in self.inputs[port]:
                if vc.max_occupancy:
                    registry.gauge(
                        f"noc.vc.max_occupancy.{node}.{port}.vc{vc.index}"
                    ).update_max(vc.max_occupancy)
        for (out_port, out_vc) in sorted(self.credit_stalls, key=str):
            registry.counter(
                f"noc.vc.credit_stall_cycles.{node}->{out_port}.vc{out_vc}"
            ).inc(self.credit_stalls[(out_port, out_vc)])

    def occupied_vcs(self) -> int:
        """Number of input VCs currently holding or reserved by a packet."""
        return sum(
            1 for unit in self.inputs.values() for vc in unit if not vc.is_free
        )

    def buffered_flits(self) -> int:
        return sum(vc.occupancy for unit in self.inputs.values() for vc in unit)
