"""Struct-of-arrays wormhole core: the object model without the objects.

:class:`ArrayNetwork` reimplements :class:`repro.noc.network.Network` /
:class:`repro.noc.router.Router` with every piece of hot state -- flits,
VC bookkeeping, FIFO slots, credits -- held in flat preallocated buffers
indexed by small integers instead of per-flit / per-VC Python objects:

* routers, ports, and destinations become dense integer ids derived from
  the topology in the *same iteration order* the object core uses, so
  every arbitration tie-break lands identically;
* each (router, input port) pair is an *input unit*; VC ``v`` of unit
  ``u`` is global VC ``u * num_vcs + v`` and owns ``buffer_depth``
  contiguous slots of one flat ring-buffer array;
* flits live in a growable struct-of-arrays pool (parallel ``array``
  columns plus one list column for destination tuples); a "flit" is an
  integer row index;
* route lookups go through a lazily filled flat next-hop table, one
  machine int per (router, destination) pair.

The cycle loop only visits routers that actually hold flits, and
:meth:`ArrayNetwork.run_until_drained` fast-forwards across cycles where
the fabric is provably idle (nothing buffered, nothing to inject) --
both are pure reorderings of no-ops, so counters and timings match the
object core bit for bit.

When NumPy is available (``HAVE_NUMPY``) the per-cycle inner sweeps --
link arrivals and the switch-allocation candidate scan -- additionally
run as whole-mesh vectorized passes over the same flat columns (see
DESIGN.md section 13). The vectorized switch pass evaluates every
occupied input unit against the cycle-start state and *proves*, per
unit, whether that early answer is identical to the answer the
sequential object-core sweep would produce at the unit's turn; units it
cannot prove stable (their credit / downstream-VC gates could be
re-opened by a pop at an earlier-ranked router in the same sweep) fall
back to the exact scalar evaluation at their position in router order.
Arbitration, commits, and link traversal replay in the object core's
router order either way, so phase order, stringified-port tie-breaks,
round-robin pointers, and every side-effect counter stay bit-identical.
Without NumPy the same scalar loops run alone: the array core degrades
gracefully instead of refusing to construct.

The equivalence contract is enforced by ``tests/noc/test_arraycore.py``,
``tests/noc/test_arraycore_saturation.py``, the differential oracle, and
the ``arraycore`` fuzzer family.

Checkers and fault controllers hook per-object state and are
intentionally unsupported here; install them on the object core.
"""

from __future__ import annotations

import importlib.util
from array import array
from collections import deque
from typing import Any, Callable

from repro.config import RouterConfig
from repro.errors import ProtocolError, SimulationError
from repro.noc.network import Delivery, NetworkStats
from repro.noc.packet import Packet
from repro.noc.router import EJECT, INJECT
from repro.noc.routing import RouteComputer, routing_for
from repro.noc.topology import NodeId, Topology
from repro.telemetry import trace as _trace

HAVE_NUMPY = importlib.util.find_spec("numpy") is not None

#: Sentinel in the next-hop table: route not computed yet.
_UNROUTED = -9
#: Next-hop values at or below this encode "no channel to that node"
#: (the object core raises at VC allocation time; so do we).
_INVALID_BASE = -100
#: Buffered flits below which the vectorized switch pass costs more than
#: the scalar sweep it replaces: the whole-mesh pass has a few hundred
#: microseconds of fixed NumPy-dispatch cost per cycle, while the scalar
#: scan costs a few microseconds per occupied unit, so the pass only
#: pays off at multi-hundred-flit occupancy (measured crossover).
_VECTOR_SWITCH_THRESHOLD = 512
#: Arrival-batch size below which the scalar delivery loop is faster
#: than the vectorized one (measured crossover ~128 flits; the vector
#: path wins >2x at 1000-flit batches).
_VECTOR_ARRIVAL_THRESHOLD = 128

#: A switch-allocation candidate: (in_local, out_local, out_vc, flit, gvc).
_Cand = tuple[int, int, int, int, int]


class FlitPool:
    """Growable struct-of-arrays flit storage; a flit is a row index.

    Columns mirror :class:`repro.noc.flit.Flit` minus the identity
    fields the simulation never branches on (``flit_id`` is repr-only in
    the object core). ``destinations`` holds tuples of *destination node
    ids* (ints), empty for body/tail flits; ``dest0`` / ``is_mc``
    denormalize its first element and multicast bit into flat columns the
    sweeps (scalar and vectorized) can read without touching the list.
    ``group_node`` caches which router the ``groups`` column was computed
    for (-1 = stale).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise SimulationError("flit pool capacity must be positive")
        self.capacity = capacity
        self.size = 0
        self.packet: array[int] = array("q", bytes(8 * capacity))
        self.is_head: array[int] = array("b", bytes(capacity))
        self.is_tail: array[int] = array("b", bytes(capacity))
        self.index: array[int] = array("i", bytes(4 * capacity))
        self.injected_at: array[int] = array("q", bytes(8 * capacity))
        self.hops: array[int] = array("i", bytes(4 * capacity))
        self.eligible_at: array[int] = array("q", bytes(8 * capacity))
        self.destinations: list[tuple[int, ...]] = [()] * capacity
        #: First destination id (-1 for body/tail flits); kept in sync
        #: with ``destinations`` so unicast route lookups skip the list.
        self.dest0: array[int] = array("i", bytes(4 * capacity))
        #: 1 when the flit is a head with >1 destinations (the multicast
        #: communication-type bit); gates replication and marks the flit
        #: too complex for the vectorized single-destination route path.
        self.is_mc: array[int] = array("b", bytes(capacity))
        self.group_node: array[int] = array("i", bytes(4 * capacity))
        self.groups: list[list[tuple[int, tuple[int, ...]]]] = [[]] * capacity

    def _grow(self) -> None:
        extra = self.capacity
        self.packet.extend(bytes(8 * extra))
        self.is_head.extend(bytes(extra))
        self.is_tail.extend(bytes(extra))
        self.index.extend(bytes(4 * extra))
        self.injected_at.extend(bytes(8 * extra))
        self.hops.extend(bytes(4 * extra))
        self.eligible_at.extend(bytes(8 * extra))
        self.destinations.extend([()] * extra)
        self.dest0.extend(bytes(4 * extra))
        self.is_mc.extend(bytes(extra))
        self.group_node.extend(bytes(4 * extra))
        self.groups.extend([[]] * extra)
        self.capacity += extra

    def alloc(
        self,
        packet_row: int,
        head: bool,
        tail: bool,
        index: int,
        destinations: tuple[int, ...],
        injected_at: int,
        hops: int,
        eligible_at: int,
    ) -> int:
        """Append one flit row; doubles the buffers when full."""
        if self.size == self.capacity:
            self._grow()
        f = self.size
        self.size = f + 1
        self.packet[f] = packet_row
        self.is_head[f] = 1 if head else 0
        self.is_tail[f] = 1 if tail else 0
        self.index[f] = index
        self.injected_at[f] = injected_at
        self.hops[f] = hops
        self.eligible_at[f] = eligible_at
        self.destinations[f] = destinations
        self.dest0[f] = destinations[0] if destinations else -1
        self.is_mc[f] = 1 if head and len(destinations) > 1 else 0
        self.group_node[f] = -1
        return f

    def narrow(self, flit: int, destinations: tuple[int, ...]) -> None:
        """Replace a head flit's destination set (multicast splitting)."""
        self.destinations[flit] = destinations
        self.dest0[flit] = destinations[0] if destinations else -1
        self.is_mc[flit] = 1 if len(destinations) > 1 else 0
        self.group_node[flit] = -1


class ArrayNetwork:
    """Drop-in flit-level network on the struct-of-arrays core.

    Mirrors the :class:`~repro.noc.network.Network` client API (inject,
    timed injections, step/run/run_until_drained, delivery callbacks,
    stats, metrics) and is bit-identical to it on every healthy
    workload.

    ``vectorize`` selects the sweep implementation: ``None`` (default)
    enables the whole-mesh NumPy passes when NumPy is importable and the
    fabric is busy enough for them to pay off; ``True`` forces them on
    every non-empty cycle (raises :class:`SimulationError` without
    NumPy); ``False`` runs the pure-Python scalar sweeps, which need no
    NumPy at all. All three modes are bit-identical.
    """

    def __init__(
        self,
        topology: Topology,
        routing: RouteComputer | None = None,
        router_config: RouterConfig | None = None,
        window: int = 0,
        vectorize: bool | None = None,
    ) -> None:
        if vectorize and not HAVE_NUMPY:
            raise SimulationError(
                "vectorized sweeps require numpy; "
                "use vectorize=False (or core='array-scalar') without it"
            )
        self._vector = HAVE_NUMPY if vectorize is None else bool(vectorize)
        if self._vector:
            import numpy

            self._np: Any = numpy
        else:
            self._np = None
        if vectorize:  # forced: vectorize every non-empty cycle
            self._switch_threshold = 0
            self._arrival_threshold = 0
        else:  # auto: only when the fixed whole-mesh pass cost pays off
            self._switch_threshold = _VECTOR_SWITCH_THRESHOLD
            self._arrival_threshold = _VECTOR_ARRIVAL_THRESHOLD

        self.topology = topology
        self.routing = routing or routing_for(topology)
        self.router_config = router_config or RouterConfig()
        cfg = self.router_config
        self._vcs = cfg.num_vcs
        self._depth = cfg.buffer_depth
        self._hop_wait = cfg.hop_latency - 1
        self._single_cycle = cfg.single_cycle

        # Node ids follow the exact iteration order the object core uses
        # to build its router dict, so arbitration tie-breaks agree.
        self._nodes: list[NodeId] = list(topology.nodes)
        self._node_index: dict[NodeId, int] = {
            node: i for i, node in enumerate(self._nodes)
        }
        n = len(self._nodes)
        self._geometry()

        self.cycle = 0
        self.stats = NetworkStats()
        # Router-level counters, summed across the fabric (the object
        # core only ever exposes them summed or per-run totals).
        self.flits_forwarded = 0
        self.flits_ejected = 0
        self.replications = 0
        self.replication_blocked_cycles = 0
        self.switch_conflicts = 0
        self.vc_alloc_failures = 0
        self.buffer_bypass_hits = 0
        self.speculative_switch_wins = 0

        self.pool = FlitPool()
        #: Packet rows: the real Packet objects (deliveries hand them back).
        self._packets: list[Packet] = []
        self._packet_dests: list[tuple[int, ...]] = []
        self._packet_nflits: list[int] = []
        #: packet_id per packet row (the vectorized arrival pass reads
        #: these through a NumPy view instead of Packet attributes).
        self._packet_pid: array[int] = array("q")

        #: Lazily filled next-hop table, one machine int per (router,
        #: destination) pair. A plain ``array`` on purpose: single-cell
        #: reads are ~3x faster than NumPy scalar indexing, and the
        #: vectorized pass reads it through a shared-memory view anyway.
        self._route: array[int] = array("i", [_UNROUTED]) * (n * n)

        #: cycle -> [(dst_router, in_local, vc, flit)] link arrivals
        self._arrivals: dict[int, list[tuple[int, int, int, int]]] = {}
        #: router -> FIFO of packet rows awaiting the inject port; entries
        #: are created on first use and persist when drained (iteration
        #: order matches the object core's defaultdict).
        self._inject_queues: dict[int, deque[int]] = {}
        #: Routers whose inject queue is currently non-empty.
        self._inject_ready: set[int] = set()
        #: cycle -> [(packet, node)] future injections
        self._timed_injections: dict[int, list[tuple[Packet, NodeId | None]]] = {}
        #: (router, packet_id) -> (remaining flit rows, target global VC)
        self._inject_progress: dict[tuple[int, int], tuple[deque[int], int]] = {}
        #: (packet_id, destination id) -> flits still to eject there
        self._pending_ejects: dict[tuple[int, int], int] = {}
        self._eject_meta: dict[tuple[int, int], Packet] = {}
        self._delivered_callbacks: list[Callable[[Delivery], None]] = []
        self._lost_callbacks: list[Callable[[Packet, tuple, str], None]] = []
        self._wakeup_sources: list[Callable[[], int | None]] = []
        #: Routers currently buffering at least one flit.
        self._active: set[int] = set()
        self._sink = _trace.current_sink()
        #: High-water packet depth of each router's inject queue.
        self._inject_depth_hw: dict[int, int] = {}
        #: Windowed metric series keyed by sim-cycle windows; None when
        #: off (same names/windows as the object core via make_noc_series).
        self.window = int(window)
        if self.window > 0:
            from repro.noc.network import make_noc_series

            self._series = make_noc_series(self.window)
        else:
            self._series = None
        if self._vector:
            self._build_views()

    # -- static geometry ----------------------------------------------------

    def _geometry(self) -> None:
        """Precompute every per-router table the cycle loop indexes."""
        topology = self.topology
        vcs = self._vcs
        depth = self._depth
        #: per router: predecessor node ids, in object-core input order
        self._in_nodes: list[list[int]] = []
        #: per router: successor node ids, in object-core output order
        self._out_nodes: list[list[int]] = []
        #: local input index of the INJECT pseudo-port (last input)
        self._inject_local: list[int] = []
        #: local output index of the EJECT pseudo-port (last output)
        self._eject_local: list[int] = []
        for node in self._nodes:
            preds = [self._node_index[p] for p in topology.predecessors(node)]
            succs = [self._node_index[s] for s in topology.successors(node)]
            self._in_nodes.append(preds)
            self._out_nodes.append(succs)
            self._inject_local.append(len(preds))
            self._eject_local.append(len(succs))

        #: unit id of (router, local input); units are numbered router by
        #: router, port by port, INJECT last -- matching input dict order.
        self._unit_base: list[int] = []
        #: channel id of (router, local output); EJECT has no channel.
        self._chan_base: list[int] = []
        units = 0
        chans = 0
        for r in range(len(self._nodes)):
            self._unit_base.append(units)
            self._chan_base.append(chans)
            units += len(self._in_nodes[r]) + 1
            chans += len(self._out_nodes[r])
        self._num_units = units
        self._num_chans = chans

        #: local input index of node ``src`` at router ``dst``
        in_local: list[dict[int, int]] = [
            {src: i for i, src in enumerate(self._in_nodes[r])}
            for r in range(len(self._nodes))
        ]
        #: local output index of node ``dst`` at router ``src``
        self._out_local: list[dict[int, int]] = [
            {dst: o for o, dst in enumerate(self._out_nodes[r])}
            for r in range(len(self._nodes))
        ]
        self._in_local = in_local

        #: per (router, local output): downstream unit id, wire delay,
        #: and the receiving router/local-input pair
        self._down_unit: list[list[int]] = []
        self._wire_delay: list[list[int]] = []
        for r, node in enumerate(self._nodes):
            down: list[int] = []
            wires: list[int] = []
            for dst in self._out_nodes[r]:
                down.append(self._unit_base[dst] + in_local[dst][r])
                channel = topology.channel(node, self._nodes[dst])
                wires.append(channel.wire_delay)
            self._down_unit.append(down)
            self._wire_delay.append(wires)

        #: per (router, local input != inject): channel id at the upstream
        #: router for credit return / replication credit stealing
        self._up_chan: list[list[int]] = []
        for r in range(len(self._nodes)):
            ups: list[int] = []
            for src in self._in_nodes[r]:
                ups.append(self._chan_base[src] + self._out_local[src][r])
            self._up_chan.append(ups)

        #: arbitration rank of each local input: position in the
        #: str(port)-sorted order the object core's contender sort uses
        self._in_sort_rank: list[list[int]] = []
        #: replication tie-rank: (port == INJECT, str(port)) order
        self._repl_rank: list[list[int]] = []
        for r in range(len(self._nodes)):
            names = [str(self._nodes[p]) for p in self._in_nodes[r]] + [INJECT]
            order = sorted(range(len(names)), key=lambda i: names[i])
            rank = [0] * len(names)
            for position, i in enumerate(order):
                rank[i] = position
            self._in_sort_rank.append(rank)
            inject = self._inject_local[r]
            order = sorted(
                range(len(names)), key=lambda i: (i == inject, names[i])
            )
            rank = [0] * len(names)
            for position, i in enumerate(order):
                rank[i] = position
            self._repl_rank.append(rank)

        # Flat mutable state: one slot per global VC / credit channel.
        self._credit: array[int] = array("i", [depth] * (chans * vcs))
        #: Cycles a buffered body/tail flit sat blocked on downstream
        #: credit, per (channel, vc) -- mirrors Router.credit_stalls.
        self._credit_stall: array[int] = array("q", bytes(8 * chans * vcs))
        #: Flits placed on each wire, per channel id -- per-link
        #: utilization (mirrors Network._link_flits).
        self._link_flits: array[int] = array("q", bytes(8 * chans))
        #: Replication-blocked cycles per router (the scalar total stays
        #: authoritative for the summed noc.router counter).
        self._repl_blocked: array[int] = array(
            "q", bytes(8 * len(self._nodes))
        )
        self._vc_len: array[int] = array("i", bytes(4 * units * vcs))
        self._vc_head: array[int] = array("i", bytes(4 * units * vcs))
        self._vc_active: array[int] = array("q", [-1] * (units * vcs))
        self._vc_out_local: array[int] = array("i", [-1] * (units * vcs))
        self._vc_out_vc: array[int] = array("i", [-1] * (units * vcs))
        self._vc_max_occ: array[int] = array("i", bytes(4 * units * vcs))
        self._slots: array[int] = array("i", bytes(4 * units * vcs * depth))
        self._rr_in: array[int] = array("i", bytes(4 * units))
        self._rr_out: array[int] = array("q", bytes(8 * (chans + len(self._nodes))))
        #: rr slot of (router, local output); EJECT gets the tail slots
        self._rr_out_base: list[int] = [
            self._chan_base[r] + r for r in range(len(self._nodes))
        ]
        #: flits buffered per router (drives the active-router set)
        self._router_occ: array[int] = array("i", bytes(4 * len(self._nodes)))
        #: flits buffered per input unit (skips empty PCs in the sweeps)
        self._unit_len: array[int] = array("i", bytes(4 * units))
        #: buffered multicast heads per router (gates replication sweeps)
        self._router_mc: array[int] = array("i", bytes(4 * len(self._nodes)))
        #: buffered multicast heads fabric-wide (skips the whole phase)
        self._mc_total = 0
        #: buffered flits fabric-wide (gates the vectorized switch pass)
        self._buffered = 0

    def _build_views(self) -> None:
        """NumPy views over the flat state plus static geometry tables.

        Views share memory with the ``array`` columns (``frombuffer``),
        so scalar writes are visible to vectorized reads and vice versa.
        Only fixed-size arrays get persistent views; growable pool
        columns are viewed per pass (see :meth:`_pool_views`) because a
        live buffer export would make ``array.extend`` raise.
        """
        np = self._np
        self._v_vc_len = np.frombuffer(self._vc_len, dtype=np.intc)
        self._v_vc_head = np.frombuffer(self._vc_head, dtype=np.intc)
        self._v_vc_active = np.frombuffer(self._vc_active, dtype=np.longlong)
        self._v_vc_out_local = np.frombuffer(self._vc_out_local, dtype=np.intc)
        self._v_vc_out_vc = np.frombuffer(self._vc_out_vc, dtype=np.intc)
        self._v_vc_max_occ = np.frombuffer(self._vc_max_occ, dtype=np.intc)
        self._v_slots = np.frombuffer(self._slots, dtype=np.intc)
        self._v_credit = np.frombuffer(self._credit, dtype=np.intc)
        self._v_credit_stall = np.frombuffer(
            self._credit_stall, dtype=np.longlong
        )
        self._v_rr_in = np.frombuffer(self._rr_in, dtype=np.intc)
        self._v_unit_len = np.frombuffer(self._unit_len, dtype=np.intc)
        self._v_router_occ = np.frombuffer(self._router_occ, dtype=np.intc)
        self._v_router_mc = np.frombuffer(self._router_mc, dtype=np.intc)
        self._v_route = np.frombuffer(self._route, dtype=np.intc)

        n = len(self._nodes)
        units = self._num_units
        unit_router = np.empty(units, dtype=np.int64)
        unit_local = np.empty(units, dtype=np.int64)
        unit_eject = np.empty(units, dtype=np.int64)
        for r in range(n):
            base = self._unit_base[r]
            stop = base + self._inject_local[r] + 1
            unit_router[base:stop] = r
            unit_local[base:stop] = np.arange(stop - base)
            unit_eject[base:stop] = self._eject_local[r]
        self._g_unit_router = unit_router
        self._g_unit_local = unit_local
        self._g_unit_eject = unit_eject
        self._g_unit_base = np.asarray(self._unit_base, dtype=np.int64)
        self._g_chan_base = np.asarray(self._chan_base, dtype=np.int64)
        chan_down_unit = np.empty(self._num_chans, dtype=np.int64)
        chan_down_router = np.empty(self._num_chans, dtype=np.int64)
        for r in range(n):
            base = self._chan_base[r]
            for o, dst in enumerate(self._out_nodes[r]):
                chan_down_unit[base + o] = self._down_unit[r][o]
                chan_down_router[base + o] = dst
        self._g_chan_down_unit = chan_down_unit
        self._g_chan_down_router = chan_down_router
        self._g_arange_vcs = np.arange(self._vcs, dtype=np.int64)

    def _pool_views(self) -> tuple[Any, Any, Any, Any]:
        """Fresh views of the growable pool columns the sweeps read.

        Built per pass and dropped with the caller's frame: a persistent
        export would block :meth:`FlitPool._grow` (``array.extend``
        raises while a buffer export is alive). No pool growth happens
        while these views exist -- the sweeps never allocate flits.
        """
        np = self._np
        pool = self.pool
        return (
            np.frombuffer(pool.eligible_at, dtype=np.longlong),
            np.frombuffer(pool.is_head, dtype=np.int8),
            np.frombuffer(pool.is_mc, dtype=np.int8),
            np.frombuffer(pool.dest0, dtype=np.intc),
        )

    # -- client API ---------------------------------------------------------

    def set_trace_sink(self, sink: Any) -> None:
        """Swap the flit-event trace sink (None = the null sink)."""
        self._sink = sink if sink is not None else _trace.NULL_SINK

    def on_delivery(self, callback: Callable[[Delivery], None]) -> None:
        """Register ``callback(delivery)`` fired on each packet delivery."""
        self._delivered_callbacks.append(callback)

    def install_checker(self, checker: Any) -> None:
        """Invariant checkers hook per-object router state; the SoA core
        has none. Run checked workloads on the object core instead."""
        raise SimulationError(
            "validation checkers are not supported on the array core; "
            "use core='object' for checked runs"
        )

    @property
    def checkers(self) -> tuple:
        return ()

    def install_fault_controller(self, controller: Any) -> None:
        """Fault controllers mutate per-object VC state; unsupported here."""
        raise SimulationError(
            "fault injection is not supported on the array core; "
            "use core='object' for fault campaigns"
        )

    @property
    def fault_controller(self) -> None:
        return None

    def on_packet_lost(self, callback: Callable[[Packet, tuple, str], None]) -> None:
        """Accepted for API parity; the array core never loses packets
        (no fault controller can be installed)."""
        self._lost_callbacks.append(callback)

    def register_wakeup_source(self, source: Callable[[], int | None]) -> None:
        """Register a zero-arg callable returning the next cycle at which
        new work appears (or ``None``); see :meth:`next_wakeup`."""
        self._wakeup_sources.append(source)

    def schedule_injection(
        self, packet: Packet, at_cycle: int, node: NodeId | None = None
    ) -> None:
        """Queue *packet* for injection at a future cycle."""
        if at_cycle < self.cycle:
            raise SimulationError(
                f"cannot inject at {at_cycle}; current cycle is {self.cycle}"
            )
        self._timed_injections.setdefault(at_cycle, []).append((packet, node))

    def inject(self, packet: Packet, node: NodeId | None = None) -> None:
        """Queue *packet* for injection at *node* (default: its source)."""
        target = packet.source if node is None else node
        r = self._node_index.get(target)
        if r is None:
            raise SimulationError(f"injection node {target} not in topology")
        try:
            dests = tuple(self._node_index[d] for d in packet.destinations)
        except KeyError as exc:
            raise SimulationError(
                f"destination {exc.args[0]} not in topology"
            ) from None
        packet.created_at = self.cycle
        row = len(self._packets)
        self._packets.append(packet)
        self._packet_dests.append(dests)
        self._packet_nflits.append(int(packet.num_flits))
        self._packet_pid.append(int(packet.packet_id))
        queue = self._inject_queues.get(r)
        if queue is None:
            queue = deque()
            self._inject_queues[r] = queue
        queue.append(row)
        self._inject_ready.add(r)
        if len(queue) > self._inject_depth_hw.get(r, 0):
            self._inject_depth_hw[r] = len(queue)
        self.stats.packets_injected += 1
        if self._sink.enabled:
            self._sink.instant(
                "inject", "noc.flit", self.cycle, tid=target,
                args={"packet": packet.packet_id,
                      "destinations": [str(d) for d in packet.destinations]},
            )
        nflits = self._packet_nflits[row]
        pid = int(packet.packet_id)
        for dest in dests:
            key = (pid, dest)
            self._pending_ejects[key] = nflits
            self._eject_meta[key] = packet

    # -- cycle loop ---------------------------------------------------------

    def step(self) -> None:
        """Advance the network one clock cycle."""
        cycle = self.cycle
        timed = self._timed_injections.pop(cycle, None)
        if timed is not None:
            for packet, node in timed:
                self.inject(packet, node)
        self._deliver_arrivals(cycle)
        self._inject_phase(cycle)
        if self._active:
            order = sorted(self._active)
            self._replication_phase(cycle, order)
            self._switch_phase(cycle, order)
        self.cycle = cycle + 1
        self.stats.cycles = self.cycle

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def run_until_drained(self, max_cycles: int = 100_000) -> int:
        """Step until every injected packet has been fully delivered.

        Identical contract to the object core, plus an idle fast-forward:
        when nothing is buffered or waiting to inject, every cycle until
        the next arrival / timed injection is a no-op, so the clock jumps
        straight there (capped so the *max_cycles* timeout still fires at
        the same cycle it would have).
        """
        start = self.cycle
        while self._pending_ejects or self._queues_nonempty():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"network did not drain within {max_cycles} cycles; "
                    f"{len(self._pending_ejects)} deliveries outstanding\n"
                    + self.drain_diagnostic()
                )
            if (
                not self._active
                and not self._inject_progress
                and not self._inject_ready
            ):
                horizon = start + max_cycles
                target = horizon
                if self._arrivals:
                    target = min(min(self._arrivals), target)
                if self._timed_injections:
                    target = min(min(self._timed_injections), target)
                if target > self.cycle:
                    self.cycle = target
                    self.stats.cycles = self.cycle
                    continue
            self.step()
        return self.cycle - start

    # -- inspection ---------------------------------------------------------

    def idle(self) -> bool:
        """True when no flit is buffered, in flight, or awaiting injection."""
        return (
            not self._pending_ejects
            and not self._queues_nonempty()
            and not self._arrivals
        )

    def pending_work(self) -> bool:
        """True while any injected packet still has flits to deliver."""
        return bool(self._pending_ejects) or self._queues_nonempty()

    def next_timed_injection(self) -> int | None:
        """Earliest cycle a scheduled future injection fires (None = none)."""
        return min(self._timed_injections) if self._timed_injections else None

    def next_wakeup(self) -> int | None:
        """Earliest cycle at which new work appears in an idle network."""
        times = [self.next_timed_injection()]
        times.extend(source() for source in self._wakeup_sources)
        live = [t for t in times if t is not None]
        return min(live) if live else None

    def dropped_flits(self) -> int:
        """Always zero: fault injection cannot run on the array core."""
        return self.stats.flits_dropped

    def outstanding_deliveries(self) -> list[tuple[int, NodeId, int]]:
        """Undelivered ``(packet_id, destination, flits_remaining)`` rows."""
        return sorted(
            (
                (pid, self._nodes[dest], n)
                for (pid, dest), n in self._pending_ejects.items()
            ),
            key=str,
        )

    def in_flight_flits(self) -> int:
        """Flits currently crossing links (scheduled future arrivals)."""
        return sum(len(batch) for batch in self._arrivals.values())

    def total_buffered_flits(self) -> int:
        return sum(self._router_occ)

    def total_replications(self) -> int:
        return self.replications

    def total_replication_blocked(self) -> int:
        return self.replication_blocked_cycles

    def drain_diagnostic(self) -> str:
        """Human-readable snapshot of why the network has not drained."""
        lines = [f"drain diagnostic at cycle {self.cycle}:"]
        undelivered = self.outstanding_deliveries()
        lines.append(f"  undelivered deliveries ({len(undelivered)}):")
        for pid, dst, remaining in undelivered[:50]:
            meta = self._eject_meta.get((pid, self._node_index[dst]))
            kind = meta.message.value if meta is not None else "?"
            lines.append(
                f"    packet {pid} ({kind}) -> {dst}: "
                f"{remaining} flit(s) outstanding"
            )
        if len(undelivered) > 50:
            lines.append(f"    ... and {len(undelivered) - 50} more")
        holders = sorted((r for r in self._active), key=lambda r: str(self._nodes[r]))
        lines.append(f"  routers holding traffic ({len(holders)}):")
        vcs = self._vcs
        for r in holders:
            for p in range(self._inject_local[r] + 1):
                unit = self._unit_base[r] + p
                port = INJECT if p == self._inject_local[r] else (
                    self._nodes[self._in_nodes[r][p]]
                )
                for vc in range(vcs):
                    gvc = unit * vcs + vc
                    if not self._vc_len[gvc] and self._vc_active[gvc] < 0:
                        continue
                    if self._vc_len[gvc]:
                        head = self._slots[gvc * self._depth + self._vc_head[gvc]]
                        pid = self._packets[self.pool.packet[head]].packet_id
                        state = f"{self._vc_len[gvc]} flit(s) of packet {pid}"
                    else:
                        state = f"reserved for packet {self._vc_active[gvc]}"
                    lines.append(
                        f"    router {self._nodes[r]} in_port {port} "
                        f"vc {vc}: {state}"
                    )
        queued = {
            self._nodes[r]: [self._packets[row].packet_id for row in queue]
            for r, queue in self._inject_queues.items()
            if queue
        }
        if queued:
            lines.append(f"  inject queues: {queued}")
        if self._inject_progress:
            lines.append(
                "  partially injected: "
                + str(
                    sorted(
                        (str(self._nodes[r]), pid)
                        for r, pid in self._inject_progress
                    )
                )
            )
        in_flight = self.in_flight_flits()
        if in_flight:
            lines.append(f"  flits on wires: {in_flight}")
        if self._timed_injections:
            lines.append(
                f"  next timed injection at cycle {self.next_timed_injection()}"
            )
        return "\n".join(lines)

    def publish_metrics(self, registry: Any) -> None:
        """Export the same metric names/values as the object core."""
        registry.counter("noc.network.cycles").inc(self.stats.cycles)
        registry.counter("noc.network.packets_injected").inc(
            self.stats.packets_injected
        )
        registry.counter("noc.network.flits_injected").inc(
            self.stats.flits_injected
        )
        registry.counter("noc.network.packets_delivered").inc(
            self.stats.packets_delivered
        )
        registry.gauge("noc.network.max_latency").update_max(
            self.stats.max_latency
        )
        if self.stats.flits_dropped:
            registry.counter("noc.network.flits_dropped").inc(
                self.stats.flits_dropped
            )
        if self.stats.packets_lost:
            registry.counter("noc.network.packets_lost").inc(
                self.stats.packets_lost
            )
        prefix = "noc.router"
        registry.counter(f"{prefix}.flits_forwarded").inc(self.flits_forwarded)
        registry.counter(f"{prefix}.flits_ejected").inc(self.flits_ejected)
        registry.counter(f"{prefix}.replications").inc(self.replications)
        registry.counter(f"{prefix}.multicast_replica_blocked_cycles").inc(
            self.replication_blocked_cycles
        )
        registry.counter(f"{prefix}.switch_conflicts").inc(self.switch_conflicts)
        registry.counter(f"{prefix}.vc_alloc_failures").inc(
            self.vc_alloc_failures
        )
        registry.counter(f"{prefix}.buffer_bypass_hits").inc(
            self.buffer_bypass_hits
        )
        registry.counter(f"{prefix}.speculative_switch_wins").inc(
            self.speculative_switch_wins
        )
        occupancy = registry.gauge("noc.buffer.max_occupancy")
        occupancy.update_max(max(self._vc_max_occ, default=0))
        self._publish_spatial(registry)

    def _publish_spatial(self, registry: Any) -> None:
        """Emit the per-(router, port, vc) metrics bit-identically to the
        object core's ``Router._publish_spatial`` / network-level block."""
        from repro.noc.network import publish_noc_series

        vcs = self._vcs
        nodes = self._nodes
        for r, node in enumerate(nodes):
            if self._repl_blocked[r]:
                registry.counter(
                    f"noc.router.replication_blocked.{node}"
                ).inc(self._repl_blocked[r])
            for p in range(self._inject_local[r] + 1):
                port: Any = (
                    INJECT
                    if p == self._inject_local[r]
                    else nodes[self._in_nodes[r][p]]
                )
                base = (self._unit_base[r] + p) * vcs
                for vc in range(vcs):
                    occ = self._vc_max_occ[base + vc]
                    if occ:
                        registry.gauge(
                            f"noc.vc.max_occupancy.{node}.{port}.vc{vc}"
                        ).update_max(occ)
            for out_local, dst in enumerate(self._out_nodes[r]):
                chan = self._chan_base[r] + out_local
                out_port = nodes[dst]
                for vc in range(vcs):
                    stalls = self._credit_stall[chan * vcs + vc]
                    if stalls:
                        registry.counter(
                            "noc.vc.credit_stall_cycles."
                            f"{node}->{out_port}.vc{vc}"
                        ).inc(stalls)
        for r, node in enumerate(nodes):
            for out_local, dst in enumerate(self._out_nodes[r]):
                count = self._link_flits[self._chan_base[r] + out_local]
                if count:
                    registry.counter(
                        f"noc.link.flits.{node}->{nodes[dst]}"
                    ).inc(count)
        hub = getattr(self.topology, "core_attach", None)
        hub_r = self._node_index.get(hub) if hub is not None else None
        for r in self._inject_depth_hw:
            depth = self._inject_depth_hw[r]
            registry.gauge(
                f"noc.inject_queue.max_depth.{nodes[r]}"
            ).update_max(depth)
            if r == hub_r:
                registry.gauge("noc.hub.issue_queue_depth").update_max(depth)
        publish_noc_series(registry, self._series)

    # -- internals ----------------------------------------------------------

    def _queues_nonempty(self) -> bool:
        return (
            bool(self._inject_ready)
            or bool(self._inject_progress)
            or bool(self._timed_injections)
        )

    def _push(self, r: int, gvc: int, flit: int) -> None:
        """Buffer a flit in a VC; head flits claim the VC."""
        length = self._vc_len[gvc]
        if length >= self._depth:
            raise SimulationError(
                f"VC overflow at router {self._nodes[r]} gvc {gvc}: "
                "credit flow control violated"
            )
        pid = self._packets[self.pool.packet[flit]].packet_id
        active = self._vc_active[gvc]
        if self.pool.is_head[flit]:
            if active >= 0 and active != pid:
                raise SimulationError(
                    f"head flit of packet {pid} entered VC held by "
                    f"packet {active}"
                )
            self._vc_active[gvc] = pid
        elif active != pid:
            raise SimulationError(
                "body flit entered a VC not allocated to its packet"
            )
        slot = gvc * self._depth + (self._vc_head[gvc] + length) % self._depth
        self._slots[slot] = flit
        self._vc_len[gvc] = length + 1
        if length + 1 > self._vc_max_occ[gvc]:
            self._vc_max_occ[gvc] = length + 1
        self._unit_len[gvc // self._vcs] += 1
        if self.pool.is_mc[flit]:
            self._router_mc[r] += 1
            self._mc_total += 1
        self._buffered += 1
        occ = self._router_occ[r] + 1
        self._router_occ[r] = occ
        if occ == 1:
            self._active.add(r)

    def _pop(self, r: int, p: int, gvc: int) -> int:
        """Pop a VC's head flit, returning the freed slot's credit."""
        length = self._vc_len[gvc]
        if not length:
            raise SimulationError("pop from empty VC")
        head = self._vc_head[gvc]
        flit = self._slots[gvc * self._depth + head]
        self._vc_head[gvc] = (head + 1) % self._depth
        self._vc_len[gvc] = length - 1
        if self.pool.is_tail[flit]:
            self._vc_active[gvc] = -1
            self._vc_out_local[gvc] = -1
            self._vc_out_vc[gvc] = -1
        self._unit_len[gvc // self._vcs] -= 1
        if self.pool.is_mc[flit]:
            self._router_mc[r] -= 1
            self._mc_total -= 1
        self._buffered -= 1
        if p != self._inject_local[r]:
            self._return_credit(self._up_chan[r][p], gvc % self._vcs, r)
        occ = self._router_occ[r] - 1
        self._router_occ[r] = occ
        if not occ:
            self._active.discard(r)
        return flit

    def _return_credit(self, chan: int, vc: int, r: int) -> None:
        key = chan * self._vcs + vc
        credit = self._credit[key] + 1
        if credit > self._depth:
            raise SimulationError(
                f"credit overflow on channel into {self._nodes[r]}"
            )
        self._credit[key] = credit

    def _next_local(self, r: int, dest: int) -> int:
        """Local output toward *dest* from router *r* (lazy route table)."""
        key = r * len(self._nodes) + dest
        cached = self._route[key]
        if cached != _UNROUTED:
            return cached
        hop = self.routing.next_hop(
            self.topology, self._nodes[r], self._nodes[dest]
        )
        hop_index = self._node_index.get(hop)
        local = (
            self._out_local[r].get(hop_index, _INVALID_BASE - dest)
            if hop_index is not None
            else _INVALID_BASE - dest
        )
        self._route[key] = local
        return local

    def _output_groups(self, r: int, flit: int) -> list[tuple[int, tuple[int, ...]]]:
        """Group a head flit's destinations by required local output.

        Cached per (flit, router); invalidated when the flit moves or its
        destination set is narrowed by replication.
        """
        pool = self.pool
        if pool.group_node[flit] == r:
            return pool.groups[flit]
        eject = self._eject_local[r]
        grouped: dict[int, list[int]] = {}
        for dest in pool.destinations[flit]:
            port = eject if dest == r else self._next_local(r, dest)
            grouped.setdefault(port, []).append(dest)
        groups = [(port, tuple(dests)) for port, dests in grouped.items()]
        pool.groups[flit] = groups
        pool.group_node[flit] = r
        return groups

    # -- link traversal (arrival delivery) ----------------------------------

    def _deliver_arrivals(self, cycle: int) -> None:
        batch = self._arrivals.pop(cycle, None)
        if batch is None:
            return
        if (
            self._vector
            and len(batch) >= self._arrival_threshold
            and not self._sink.enabled
        ):
            self._deliver_arrivals_vector(batch, cycle)
            return
        pool = self.pool
        vcs = self._vcs
        for r, p, vc, flit in batch:
            pool.eligible_at[flit] = cycle + self._hop_wait
            self._push(r, (self._unit_base[r] + p) * vcs + vc, flit)
            if self._sink.enabled:
                self._sink.instant(
                    "traverse", "noc.flit", cycle, tid=self._nodes[r],
                    args={
                        "packet": self._packets[pool.packet[flit]].packet_id,
                        "vc": vc,
                        "from": str(self._nodes[self._in_nodes[r][p]]),
                        "hops": pool.hops[flit],
                    },
                )

    def _deliver_arrivals_vector(
        self, batch: list[tuple[int, int, int, int]], cycle: int
    ) -> None:
        """Whole-batch link traversal: the ``_push`` loop as array ops.

        Exact because at most one flit per cycle arrives at any (unit,
        vc) -- each input unit maps 1:1 to one upstream channel, a
        channel carries at most one flit per cycle (one switch winner per
        output port), and its wire delay is constant -- so every scatter
        below writes disjoint cells and the batch order cannot matter.
        Validation failures replay through the scalar loop to raise the
        identical diagnostics.
        """
        np = self._np
        vcs = self._vcs
        depth = self._depth
        cols = np.array(batch, dtype=np.int64).T
        rs, ps, vc_arr, flits = cols[0], cols[1], cols[2], cols[3]
        gvc = (self._g_unit_base[rs] + ps) * vcs + vc_arr
        vlen = self._v_vc_len[gvc].astype(np.int64)
        pool = self.pool
        pkt_rows = np.frombuffer(pool.packet, dtype=np.longlong)[flits]
        pids = np.frombuffer(self._packet_pid, dtype=np.longlong)[pkt_rows]
        heads = np.frombuffer(pool.is_head, dtype=np.int8)[flits] != 0
        active = self._v_vc_active[gvc]
        claim_bad = np.where(
            heads, (active >= 0) & (active != pids), active != pids
        )
        if (vlen >= depth).any() or claim_bad.any():
            # Replay sequentially so the error message (and any partial
            # state before the raise) matches the scalar path exactly.
            eligible = pool.eligible_at
            for r, p, vc, flit in batch:
                eligible[flit] = cycle + self._hop_wait
                self._push(r, (self._unit_base[r] + p) * vcs + vc, flit)
            raise SimulationError("unreachable: scalar replay must raise")
        np.frombuffer(pool.eligible_at, dtype=np.longlong)[flits] = (
            cycle + self._hop_wait
        )
        slot = gvc * depth + (self._v_vc_head[gvc] + vlen) % depth
        self._v_slots[slot] = flits
        newlen = vlen + 1
        self._v_vc_len[gvc] = newlen
        self._v_vc_max_occ[gvc] = np.maximum(self._v_vc_max_occ[gvc], newlen)
        self._v_vc_active[gvc[heads]] = pids[heads]
        # One arrival per unit (see docstring), so a plain scatter-add is
        # exact for unit_len; routers can repeat across units.
        self._v_unit_len[gvc // vcs] += 1
        np.add.at(self._v_router_occ, rs, 1)
        mc = np.frombuffer(pool.is_mc, dtype=np.int8)[flits] != 0
        if mc.any():
            np.add.at(self._v_router_mc, rs[mc], 1)
            self._mc_total += int(mc.sum())
        self._buffered += len(batch)
        self._active.update(rs.tolist())

    def _inject_phase(self, cycle: int) -> None:
        """Move at most one flit per router from its inject queue to a VC."""
        progress = self._inject_progress
        ready = self._inject_ready
        if not progress and not ready:
            return
        vcs = self._vcs
        pool = self.pool
        if progress:
            routers = set(ready)
            for r, _pid in progress:
                routers.add(r)
            order = sorted(routers)
        else:
            order = sorted(ready)
        for r in order:
            queue = self._inject_queues.get(r)
            progressed = False
            if progress:
                for key in [k for k in progress if k[0] == r]:
                    flits, gvc = progress[key]
                    if self._vc_len[gvc] < self._depth:
                        flit = flits.popleft()
                        pool.eligible_at[flit] = cycle + self._hop_wait
                        self._push(r, gvc, flit)
                        self.stats.flits_injected += 1
                        if self._series is not None:
                            self._series["noc.series.flits_injected"].record(
                                cycle
                            )
                        progressed = True
                    if not flits:
                        del progress[key]
                    if progressed:
                        break
            if progressed or not queue:
                continue
            row = queue[0]
            unit = self._unit_base[r] + self._inject_local[r]
            free = -1
            for vc in range(vcs):
                gvc = unit * vcs + vc
                if self._vc_active[gvc] < 0 and not self._vc_len[gvc]:
                    free = gvc
                    break
            if free < 0:
                continue
            queue.popleft()
            if not queue:
                ready.discard(r)
            packet = self._packets[row]
            nflits = self._packet_nflits[row]
            dests = self._packet_dests[row]
            head = pool.alloc(
                row, True, nflits == 1, 0, dests, cycle,
                0, cycle + self._hop_wait,
            )
            self._push(r, free, head)
            self.stats.flits_injected += 1
            if self._series is not None:
                self._series["noc.series.flits_injected"].record(cycle)
            if nflits > 1:
                rest: deque[int] = deque()
                for i in range(1, nflits):
                    rest.append(
                        pool.alloc(
                            row, False, i == nflits - 1, i, (), cycle, 0, 0
                        )
                    )
                self._inject_progress[(r, int(packet.packet_id))] = (rest, free)

    # -- multicast replication ---------------------------------------------

    def _replication_phase(self, cycle: int, order: list[int]) -> None:
        """Split multicast heads that need several output ports."""
        if not self._mc_total:
            return
        for r in order:
            if self._router_mc[r]:
                self._replicate_router(r, cycle)

    def _replicate_router(self, r: int, cycle: int) -> None:
        vcs = self._vcs
        depth = self._depth
        pool = self.pool
        unit_base = self._unit_base[r]
        unit_len = self._unit_len
        base = unit_base * vcs
        for p in range(self._inject_local[r] + 1):
            if not unit_len[unit_base + p]:
                continue
            for vc in range(vcs):
                gvc = base + p * vcs + vc
                if not self._vc_len[gvc]:
                    continue
                flit = self._slots[gvc * depth + self._vc_head[gvc]]
                if not pool.is_mc[flit]:
                    continue
                if pool.eligible_at[flit] > cycle:
                    continue
                if not pool.is_head[flit] or not pool.is_tail[flit]:
                    raise ProtocolError(
                        "multicast packets must be single-flit in this domain"
                    )
                groups = self._output_groups(r, flit)
                if len(groups) <= 1:
                    continue
                self._split_multicast(r, p, gvc, flit, groups, cycle)

    def _split_multicast(
        self,
        r: int,
        p: int,
        gvc: int,
        flit: int,
        groups: list[tuple[int, tuple[int, ...]]],
        cycle: int,
    ) -> None:
        eject = self._eject_local[r]
        ordered = sorted(groups, key=lambda kv: kv[0] == eject)
        keep_dsts = ordered[0][1]
        borrowed: list[tuple[int, int, tuple[int, ...]]] = []
        taken: list[int] = []
        for _, destinations in ordered[1:]:
            slot = self._find_replication_vc(r, p, taken)
            if slot is None:
                self.replication_blocked_cycles += 1
                self._repl_blocked[r] += 1
                return  # block: retry whole split next cycle
            borrowed.append((slot[0], slot[1], destinations))
            taken.append(slot[1])
        pool = self.pool
        pool.narrow(flit, keep_dsts)
        if len(keep_dsts) <= 1:  # the kept group is no longer a multicast
            self._router_mc[r] -= 1
            self._mc_total -= 1
        row = pool.packet[flit]
        for borrow_p, borrow_gvc, destinations in borrowed:
            replica = pool.alloc(
                row, True, True, pool.index[flit], destinations,
                pool.injected_at[flit], pool.hops[flit], cycle + 1,
            )
            if borrow_p != self._inject_local[r]:
                chan = self._up_chan[r][borrow_p]
                key = chan * self._vcs + borrow_gvc % self._vcs
                if self._credit[key] <= 0:
                    raise SimulationError(
                        "replication chose a VC without upstream credit"
                    )
                self._credit[key] = self._credit[key] - 1
            self._push(r, borrow_gvc, replica)
            self.replications += 1

    def _find_replication_vc(
        self, r: int, exclude: int, taken: list[int]
    ) -> tuple[int, int] | None:
        """Free VC of a different PC; less-utilized PCs preferred."""
        vcs = self._vcs
        base = self._unit_base[r] * vcs
        inject = self._inject_local[r]
        repl_rank = self._repl_rank[r]

        def utilization(p: int) -> int:
            busy = 0
            for vc in range(vcs):
                gvc = base + p * vcs + vc
                if self._vc_active[gvc] >= 0 or self._vc_len[gvc]:
                    busy += 1
            return busy

        candidates = sorted(
            (p for p in range(inject + 1) if p != exclude),
            key=lambda p: (utilization(p), repl_rank[p]),
        )
        for p in candidates:
            for vc in range(vcs):
                gvc = base + p * vcs + vc
                if gvc in taken:
                    continue
                if self._vc_active[gvc] >= 0 or self._vc_len[gvc]:
                    continue
                if p != inject:
                    chan = self._up_chan[r][p]
                    if self._credit[chan * vcs + vc] <= 0:
                        continue
                return p, gvc
        return None

    # -- switch allocation --------------------------------------------------

    def _candidate_for_port(self, r: int, p: int, cycle: int) -> _Cand | None:
        """Pick at most one ready VC of input PC *p* (round-robin).

        Returns ``(in_local, out_local, out_vc, flit, gvc)``; ``out_vc``
        is -1 for ejection.
        """
        vcs = self._vcs
        unit = self._unit_base[r] + p
        base = unit * vcs
        start = self._rr_in[unit]
        vc_len = self._vc_len
        vc_ready = self._vc_ready
        for offset in range(vcs):
            vc = (start + offset) % vcs
            if not vc_len[base + vc]:
                continue
            forward = vc_ready(r, p, base + vc, cycle)
            if forward is not None:
                self._rr_in[unit] = (start + offset + 1) % vcs
                return forward
        return None

    def _vc_ready(self, r: int, p: int, gvc: int, cycle: int) -> _Cand | None:
        if not self._vc_len[gvc]:
            return None
        pool = self.pool
        flit = self._slots[gvc * self._depth + self._vc_head[gvc]]
        if pool.eligible_at[flit] > cycle:
            return None
        eject = self._eject_local[r]
        if pool.is_head[flit]:
            if pool.is_mc[flit]:
                groups = self._output_groups(r, flit)
                if len(groups) > 1:
                    return None  # must replicate first
                out_local = groups[0][0]
                if out_local == eject:
                    return (p, eject, -1, flit, gvc)
            else:
                # Unicast fast path: one destination, no grouping dict.
                dest = pool.dest0[flit]
                if dest == r:
                    return (p, eject, -1, flit, gvc)
                out_local = self._next_local(r, dest)
            if out_local < 0:
                port = self.routing.next_hop(
                    self.topology, self._nodes[r],
                    self._nodes[_INVALID_BASE - out_local],
                )
                raise SimulationError(f"no downstream router on port {port}")
            out_vc = self._allocate_downstream_vc(r, out_local)
            if out_vc < 0:
                self.vc_alloc_failures += 1
                return None
            return (p, out_local, out_vc, flit, gvc)
        # Body/tail flit: follows the wormhole's allocated route.
        out_local = self._vc_out_local[gvc]
        if out_local == eject:
            return (p, eject, -1, flit, gvc)
        out_vc = self._vc_out_vc[gvc]
        if out_local < 0 or out_vc < 0:
            return None  # head has not been switched yet
        chan = self._chan_base[r] + out_local
        if self._credit[chan * self._vcs + out_vc] <= 0:
            self._credit_stall[chan * self._vcs + out_vc] += 1
            return None
        return (p, out_local, out_vc, flit, gvc)

    def _allocate_downstream_vc(self, r: int, out_local: int) -> int:
        """Find a free downstream VC with credit (VC allocation)."""
        vcs = self._vcs
        down_base = self._down_unit[r][out_local] * vcs
        credit_base = (self._chan_base[r] + out_local) * vcs
        for vc in range(vcs):
            gvc = down_base + vc
            if (
                self._vc_active[gvc] < 0
                and not self._vc_len[gvc]
                and self._credit[credit_base + vc] > 0
            ):
                return vc
        return -1

    def _sweep_candidates(
        self, cycle: int
    ) -> tuple[dict[int, _Cand], set[int]] | None:
        """Whole-mesh switch-allocation pre-filter against cycle-start state.

        Evaluates the round-robin input-VC scan, route lookup, credit
        gates, and downstream VC allocation for *every* occupied input
        unit in one batch of array ops, then classifies each unit:

        * **stable with candidate** -- every VC the scan examined (all
          round-robin offsets up to and including the first passing one)
          has a verdict that provably cannot change before the unit's
          router takes its sequential turn. The precomputed candidate IS
          the answer; its round-robin pointer advance and failure-counter
          side effects are applied here.
        * **stable without candidate** -- same proof, no VC passed; the
          unit is skipped at its turn (side effects applied here).
        * **live** (returned in the second element) -- some examined VC's
          verdict depends on external state a pop at an earlier-ranked
          router could still change this sweep (its credit / downstream
          gate could be re-opened, or its head is a multicast the
          grouping dict must resolve). These re-run the exact scalar
          evaluation at their turn.

        Stability hinges on the sweep's write pattern: between the cycle
        start and router ``r``'s turn, the only cross-router writes are
        pops at routers ``d < r``, which *free* resources (return credit
        on the ``r -> d`` channel, release VCs of ``r``'s dedicated input
        unit at ``d``). A unit's own state cannot change before its turn,
        failing gates can only flip if such a pop exists (``d < r`` and
        ``d`` held flits at cycle start), and a passing gate whose
        allocation picked VC 0 cannot be changed by freeing. Everything
        else is conservatively classified live.
        """
        np = self._np
        vcs = self._vcs
        depth = self._depth
        units = np.nonzero(self._v_unit_len)[0]
        k = int(units.size)
        if not k:
            return None
        arange_v = self._g_arange_vcs
        gvc = units[:, None] * vcs + arange_v[None, :]
        vlen = self._v_vc_len[gvc]
        has = vlen > 0
        head_slot = gvc * depth + self._v_vc_head[gvc]
        flit = np.where(has, self._v_slots[head_slot].astype(np.int64), 0)
        p_elig, p_head, p_mc, p_dest0 = self._pool_views()
        r_col = self._g_unit_router[units][:, None]
        eject_col = self._g_unit_eject[units][:, None]
        act = has & (p_elig[flit] <= cycle)
        is_head = p_head[flit] != 0
        head_act = act & is_head
        body_act = act & ~is_head

        # Heads: multicast -> live (grouping dict); unicast -> flat route.
        mc = head_act & (p_mc[flit] != 0)
        uni = head_act & ~mc
        dest = p_dest0[flit].astype(np.int64)
        self_dest = uni & (dest == r_col)
        routed = uni & ~self_dest
        n = len(self._nodes)
        route_key = np.where(routed & (dest >= 0), r_col * n + dest, 0)
        route = self._v_route[route_key].astype(np.int64)
        unrouted = routed & (route == _UNROUTED)
        if unrouted.any():
            # Warm the lazy route table for cold (router, dest) pairs up
            # front: _next_local caches a pure function of the topology,
            # so filling early is value-identical to the scalar path
            # filling at each unit's turn.
            cold_r = np.broadcast_to(r_col, dest.shape)[unrouted].tolist()
            cold_d = dest[unrouted].tolist()
            for fr, fd in zip(cold_r, cold_d):
                self._next_local(fr, fd)
            route = self._v_route[route_key].astype(np.int64)
        invalid = routed & (route < 0)  # scalar path raises on these
        head_sw = routed & ~invalid
        complex_cell = mc | invalid

        # Bodies: follow the wormhole's allocated (out_local, out_vc).
        b_out = self._v_vc_out_local[gvc].astype(np.int64)
        b_vc = self._v_vc_out_vc[gvc].astype(np.int64)
        body_eject = body_act & (b_out == eject_col)
        body_sw = body_act & ~body_eject & (b_out >= 0) & (b_vc >= 0)

        # External gates for cells that target a real output channel.
        gated = head_sw | body_sw
        out_local = np.where(head_sw, route, np.where(body_sw, b_out, 0))
        chan = np.where(gated, self._g_chan_base[r_col] + out_local, 0)
        cbase = chan * vcs
        body_ok = self._v_credit[np.where(body_sw, cbase + b_vc, 0)] > 0
        body_pass = body_sw & body_ok
        body_fail = body_sw & ~body_ok
        down_unit = np.where(gated, self._g_chan_down_unit[chan], 0)
        idx3 = (down_unit * vcs)[:, :, None] + arange_v[None, None, :]
        cidx3 = cbase[:, :, None] + arange_v[None, None, :]
        alloc_free = (
            (self._v_vc_active[idx3] < 0)
            & (self._v_vc_len[idx3] == 0)
            & (self._v_credit[cidx3] > 0)
        )
        alloc_any = alloc_free.any(axis=2)
        alloc_vc = alloc_free.argmax(axis=2)  # first free+credited VC
        head_pass = head_sw & alloc_any
        head_fail = head_sw & ~alloc_any

        # A failing (or non-first-VC-allocating) gate is only unstable if
        # a pop at an earlier-ranked router could re-open it this sweep.
        # The only pops that touch r's gates pop from r's dedicated input
        # unit at the downstream router (returning credit on r's channel
        # and freeing that unit's VCs), so the reopen test is per
        # down-unit VC: a VC with nothing buffered at cycle start cannot
        # be popped, hence cannot flip the verdict it gates.
        down_router = np.where(gated, self._g_chan_down_router[chan], 0)
        earlier = gated & (down_router < r_col)
        occ3 = self._v_vc_len[idx3] > 0
        body_reopen = body_fail & (
            self._v_vc_len[np.where(body_sw, down_unit * vcs + b_vc, 0)] > 0
        )
        fail_reopen = head_fail & occ3.any(axis=2)
        pick_reopen = head_pass & (
            occ3 & (arange_v[None, None, :] < alloc_vc[:, :, None])
        ).any(axis=2)
        sensitive = complex_cell | (
            earlier & (body_reopen | fail_reopen | pick_reopen)
        )

        cand = self_dest | body_eject | head_pass | body_pass
        out_vc = np.where(
            head_pass, alloc_vc, np.where(body_pass, b_vc, -1)
        )
        out_final = np.where(self_dest | body_eject, eject_col, out_local)

        # Round-robin first-match scan, in each unit's rotated VC order.
        start = self._v_rr_in[units].astype(np.int64)
        offs = (start[:, None] + arange_v[None, :]) % vcs
        cand_rot = np.take_along_axis(cand, offs, axis=1)
        first = cand_rot.argmax(axis=1)
        any_cand = cand_rot.any(axis=1)
        limit = np.where(any_cand, first, vcs - 1)
        examined = arange_v[None, :] <= limit[:, None]
        sens_rot = np.take_along_axis(sensitive, offs, axis=1)
        live_unit = (sens_rot & examined).any(axis=1)
        stable = ~live_unit

        # Side effects of the examined, stable cells (the scalar sweep
        # would apply these at each unit's turn; they are pure sums).
        ex_stable = examined & stable[:, None]
        fail_rot = np.take_along_axis(head_fail, offs, axis=1)
        failures = int((fail_rot & ex_stable).sum())
        if failures:
            self.vc_alloc_failures += failures
        stall_rot = np.take_along_axis(body_fail, offs, axis=1)
        stall_mask = stall_rot & ex_stable
        if stall_mask.any():
            stall_key = np.take_along_axis(
                np.where(body_fail, cbase + b_vc, 0), offs, axis=1
            )
            np.add.at(self._v_credit_stall, stall_key[stall_mask], 1)
        granted = stable & any_cand
        if granted.any():
            self._v_rr_in[units[granted]] = (
                (start[granted] + first[granted] + 1) % vcs
            ).astype(np.intc)

        # Python-side decision table for the sequential walk.
        pick_vc = np.take_along_axis(offs, first[:, None], axis=1)[:, 0]
        rows = np.arange(k)
        c_p = self._g_unit_local[units].tolist()
        c_out = out_final[rows, pick_vc].tolist()
        c_vc = out_vc[rows, pick_vc].tolist()
        c_flit = flit[rows, pick_vc].tolist()
        c_gvc = gvc[rows, pick_vc].tolist()
        units_l = units.tolist()
        granted_l = granted.tolist()
        live_l = live_unit.tolist()
        pre: dict[int, _Cand] = {}
        live: set[int] = set()
        for i in range(k):
            if granted_l[i]:
                pre[units_l[i]] = (
                    c_p[i], c_out[i], c_vc[i], c_flit[i], c_gvc[i]
                )
            elif live_l[i]:
                live.add(units_l[i])
        return pre, live

    def _switch_phase(self, cycle: int, order: list[int]) -> None:
        """Arbitrate every crossbar in router order; commit the winners.

        When the vectorized pre-filter ran, units it proved stable use
        their precomputed candidates and the rest re-evaluate live; the
        arbitration/commit walk itself always runs in the object core's
        sequential router order, so intra-cycle credit visibility -- a
        pop at router ``d`` freeing resources routers ``> d`` see in the
        same sweep -- is preserved exactly.
        """
        pre: dict[int, _Cand] | None = None
        live: set[int] = set()
        if self._vector and self._buffered >= self._switch_threshold:
            swept = self._sweep_candidates(cycle)
            if swept is not None:
                pre, live = swept
        for r in order:
            winners = self._switch_router(r, cycle, pre, live)
            for winner in winners:
                self._handle_forward(r, winner, cycle)

    def _switch_router(
        self,
        r: int,
        cycle: int,
        pre: dict[int, _Cand] | None,
        live: set[int],
    ) -> tuple[_Cand, ...] | list[_Cand]:
        """Arbitrate one crossbar; commit and return this cycle's winners."""
        candidates: list[_Cand] = []
        unit_base = self._unit_base[r]
        unit_len = self._unit_len
        if pre is None:
            candidate = self._candidate_for_port
            for p in range(self._inject_local[r] + 1):
                if not unit_len[unit_base + p]:
                    continue
                forward = candidate(r, p, cycle)
                if forward is not None:
                    candidates.append(forward)
        else:
            for p in range(self._inject_local[r] + 1):
                unit = unit_base + p
                if not unit_len[unit]:
                    continue
                cached = pre.get(unit)
                if cached is not None:
                    candidates.append(cached)
                elif unit in live:
                    forward = self._candidate_for_port(r, p, cycle)
                    if forward is not None:
                        candidates.append(forward)
        if not candidates:
            return ()
        if len(candidates) == 1:
            # One input PC competing: it wins its output unopposed, but
            # the output's round-robin pointer still advances.
            winner = candidates[0]
            slot = self._rr_out_base[r] + winner[1]
            self._rr_out[slot] = self._rr_out[slot] + 1
            self._commit(r, winner, cycle)
            return candidates
        by_out: dict[int, list[_Cand]] = {}
        for forward in candidates:
            by_out.setdefault(forward[1], []).append(forward)
        winners: list[_Cand] = []
        rank = self._in_sort_rank[r]
        rr_out = self._rr_out
        base_slot = self._rr_out_base[r]
        for out_local in sorted(by_out):
            contenders = by_out[out_local]
            slot = base_slot + out_local
            if len(contenders) > 1:
                self.switch_conflicts += len(contenders) - 1
                contenders.sort(key=lambda c: rank[c[0]])
                winner = contenders[rr_out[slot] % len(contenders)]
            else:
                winner = contenders[0]
            rr_out[slot] = rr_out[slot] + 1
            self._commit(r, winner, cycle)
            winners.append(winner)
        return winners

    def _commit(self, r: int, forward: _Cand, cycle: int) -> None:
        """Perform the switch traversal for a winning flit."""
        p, out_local, out_vc, flit, gvc = forward
        pool = self.pool
        eject = self._eject_local[r]
        if self._single_cycle and pool.eligible_at[flit] == cycle:
            if self._vc_len[gvc] == 1:
                self.buffer_bypass_hits += 1
            if pool.is_head[flit] and out_local != eject:
                self.speculative_switch_wins += 1
        self._pop(r, p, gvc)
        pool.hops[flit] = pool.hops[flit] + 1
        if out_local == eject:
            self.flits_ejected += 1
            if pool.is_head[flit] and not pool.is_tail[flit]:
                # Body flits of this wormhole must also eject here.
                self._vc_out_local[gvc] = eject
                self._vc_out_vc[gvc] = -1
            return
        self.flits_forwarded += 1
        key = (self._chan_base[r] + out_local) * self._vcs + out_vc
        if self._credit[key] <= 0:
            raise SimulationError("switched a flit without credit")
        self._credit[key] = self._credit[key] - 1
        if pool.is_head[flit]:
            # Reserve the downstream VC for this wormhole.
            down_gvc = self._down_unit[r][out_local] * self._vcs + out_vc
            if not pool.is_tail[flit]:
                self._vc_out_local[gvc] = out_local
                self._vc_out_vc[gvc] = out_vc
            pid = self._packets[pool.packet[flit]].packet_id
            active = self._vc_active[down_gvc]
            if active >= 0 and active != pid:
                raise SimulationError("downstream VC reserved by another packet")
            self._vc_active[down_gvc] = pid

    def _handle_forward(self, r: int, forward: _Cand, cycle: int) -> None:
        _, out_local, out_vc, flit, _ = forward
        if out_local == self._eject_local[r]:
            if self._series is not None:
                self._series["noc.series.flits_ejected"].record(cycle)
            self._eject(r, flit, cycle)
            return
        self._link_flits[self._chan_base[r] + out_local] += 1
        if self._series is not None:
            self._series["noc.series.flits_forwarded"].record(cycle)
        arrival = cycle + self._wire_delay[r][out_local] + 1
        dst = self._out_nodes[r][out_local]
        entry = (dst, self._in_local[dst][r], out_vc, flit)
        batch = self._arrivals.get(arrival)
        if batch is None:
            self._arrivals[arrival] = [entry]
        else:
            batch.append(entry)

    def _eject(self, r: int, flit: int, cycle: int) -> None:
        pool = self.pool
        ejected_at = cycle + 1  # crossing the ejection channel
        packet = self._packets[pool.packet[flit]]
        if self._sink.enabled:
            self._sink.instant(
                "eject", "noc.flit", ejected_at, tid=self._nodes[r],
                args={"packet": packet.packet_id, "hops": pool.hops[flit]},
            )
        pid = int(packet.packet_id)
        for dest in pool.destinations[flit] or (r,):
            key = (pid, dest)
            if key not in self._pending_ejects:
                raise SimulationError(
                    f"unexpected ejection of packet {pid} at {self._nodes[dest]}"
                )
            remaining = self._pending_ejects[key] - 1
            if remaining:
                self._pending_ejects[key] = remaining
                continue
            del self._pending_ejects[key]
            meta = self._eject_meta.pop(key)
            injected = pool.injected_at[flit]
            delivery = Delivery(
                packet=meta,
                destination=self._nodes[dest],
                injected_at=injected if injected else int(meta.created_at),
                delivered_at=ejected_at,
                hops=pool.hops[flit],
            )
            self.stats.deliveries.append(delivery)
            if self._series is not None:
                self._series["noc.series.packets_delivered"].record(
                    delivery.delivered_at
                )
                self._series["noc.series.latency"].record(
                    delivery.delivered_at, delivery.latency
                )
            if self._sink.enabled:
                self._sink.complete(
                    "packet", "noc.packet", delivery.injected_at,
                    delivery.latency, tid=self._nodes[dest],
                    args={"packet": meta.packet_id,
                          "source": str(meta.source),
                          "hops": delivery.hops},
                )
            for callback in self._delivered_callbacks:
                callback(delivery)
