"""Flits: the unit of link-level flow control (Section 5 flitization).

A flit is 128 bits (the link is 16 B wide) and carries overhead fields:
type (2 b), size (7 b), routing (8 b), and communication type (1 b). A
control packet (address only) is a single flit; a block-carrying packet is
five flits.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import config

if TYPE_CHECKING:
    from repro.noc.packet import Packet

_flit_ids = itertools.count()


class FlitType(enum.Enum):
    """Position of a flit inside its packet (the 2-bit `type` field)."""

    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    #: A packet that fits in one flit is simultaneously head and tail.
    HEAD_TAIL = "head_tail"

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


@dataclass
class Flit:
    """One 128-bit flit in flight.

    ``destinations`` is carried on head flits; for a unicast packet it has a
    single element. The multicast router narrows it as replicas split off.
    """

    packet: "Packet"
    kind: FlitType
    index: int
    destinations: tuple[object, ...] = ()
    flit_id: int = field(default_factory=lambda: next(_flit_ids))
    injected_at: int | None = None
    ejected_at: int | None = None
    hops: int = 0
    #: First cycle the flit may compete for switch allocation (set on
    #: arrival; models the non-switch pipeline stages of the router).
    eligible_at: int = 0

    @property
    def is_multicast(self) -> bool:
        """The 1-bit communication-type field."""
        return len(self.destinations) > 1

    @property
    def size_bits(self) -> int:
        """Total flit size on the wire, including overhead fields."""
        return config.FLIT_SIZE_BITS

    @property
    def payload_bits(self) -> int:
        """Bits available for address/data after the overhead fields."""
        return config.FLIT_SIZE_BITS - config.FLIT_OVERHEAD_BITS

    def clone_for(self, destinations: tuple[object, ...]) -> "Flit":
        """Replicate this flit for a subset of destinations (multicasting).

        The replica is a distinct flit (new id, zeroed hop count continues
        from the current value) belonging to the same packet.
        """
        return Flit(
            packet=self.packet,
            kind=self.kind,
            index=self.index,
            destinations=tuple(destinations),
            injected_at=self.injected_at,
            hops=self.hops,
            eligible_at=self.eligible_at,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flit(id={self.flit_id}, pkt={self.packet.packet_id}, "
            f"{self.kind.value}, dst={self.destinations})"
        )
