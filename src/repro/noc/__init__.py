"""Flit-level wormhole network-on-chip substrate.

Implements the paper's router microarchitecture (Section 3.1) and network
fabric: virtual-channel wormhole routers with credit-based flow control,
the single-cycle optimizations (lookahead routing, buffer bypassing,
speculative switch allocation, arbitration precomputation are modeled
collectively as a one-cycle hop), and hybrid multicast replication into
free VCs of less-utilized physical channels.
"""

from repro.noc.flit import Flit, FlitType
from repro.noc.packet import MessageType, Packet
from repro.noc.routing import (
    Direction,
    RouteComputer,
    XYRouting,
    XYXRouting,
    channel_dependency_graph,
    xyx_channel_number,
)
from repro.noc.topology import (
    Channel,
    HaloTopology,
    MeshTopology,
    SimplifiedMeshTopology,
    Topology,
)
from repro.noc.arraycore import HAVE_NUMPY, ArrayNetwork, FlitPool
from repro.noc.network import (
    CORES,
    Network,
    NetworkStats,
    make_network,
    normalize_core,
)
from repro.noc.router import Router

__all__ = [
    "Flit",
    "FlitType",
    "MessageType",
    "Packet",
    "Direction",
    "RouteComputer",
    "XYRouting",
    "XYXRouting",
    "xyx_channel_number",
    "channel_dependency_graph",
    "Topology",
    "Channel",
    "MeshTopology",
    "SimplifiedMeshTopology",
    "HaloTopology",
    "Network",
    "NetworkStats",
    "Router",
    "ArrayNetwork",
    "FlitPool",
    "HAVE_NUMPY",
    "CORES",
    "make_network",
    "normalize_core",
]
