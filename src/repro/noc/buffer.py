"""Input virtual-channel buffers with wormhole semantics.

Each physical channel (PC) of a router owns :data:`repro.config.VCS_PER_PC`
virtual channels, each a FIFO of :data:`repro.config.FLIT_BUFFER_DEPTH`
flits. A VC is *allocated* to one packet from its head flit's arrival until
its tail flit departs; body flits of a wormhole never interleave with other
packets inside a VC.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.noc.flit import Flit


@dataclass
class VirtualChannel:
    """One VC FIFO plus its wormhole bookkeeping."""

    port: object
    index: int
    depth: int
    fifo: deque[Flit] = field(default_factory=deque)
    #: Packet currently occupying the VC (None = free).
    active_packet: int | None = None
    #: Output port allocated to the active packet (set when its head flit
    #: wins switch allocation; body flits inherit it).
    out_port: object | None = None
    #: Downstream VC allocated to the active packet.
    out_vc: int | None = None
    #: Most flits ever buffered at once (occupancy high-water mark).
    max_occupancy: int = 0
    #: A failed VC accepts no new packets and buffers no new flits
    #: (set by :mod:`repro.faults` when a VC fault activates).
    failed: bool = False

    @property
    def is_free(self) -> bool:
        """A VC is free for a new packet when idle, drained, and healthy."""
        return self.active_packet is None and not self.fifo and not self.failed

    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def has_space(self) -> bool:
        return not self.failed and len(self.fifo) < self.depth

    def head(self) -> Flit | None:
        return self.fifo[0] if self.fifo else None

    def push(self, flit: Flit) -> None:
        """Buffer an arriving flit; head flits claim the VC."""
        if not self.has_space:
            raise SimulationError(
                f"VC overflow at port {self.port} vc {self.index}: "
                "credit flow control violated"
            )
        if flit.kind.is_head:
            # A head flit may enter a VC that is free or one already
            # reserved for its own packet (upstream reserves at switch time).
            if self.active_packet not in (None, flit.packet.packet_id):
                raise SimulationError(
                    f"head flit of packet {flit.packet.packet_id} entered VC "
                    f"held by packet {self.active_packet}"
                )
            self.active_packet = flit.packet.packet_id
        else:
            if self.active_packet != flit.packet.packet_id:
                raise SimulationError(
                    "body flit entered a VC not allocated to its packet"
                )
        self.fifo.append(flit)
        if len(self.fifo) > self.max_occupancy:
            self.max_occupancy = len(self.fifo)

    def pop(self) -> Flit:
        """Remove the head flit; tail flits release the VC."""
        if not self.fifo:
            raise SimulationError("pop from empty VC")
        flit = self.fifo.popleft()
        if flit.kind.is_tail:
            self.active_packet = None
            self.out_port = None
            self.out_vc = None
        return flit


def make_input_unit(port: object, num_vcs: int, depth: int) -> list[VirtualChannel]:
    """Create the VC set of one physical input channel."""
    return [VirtualChannel(port=port, index=i, depth=depth) for i in range(num_vcs)]
