"""Packets and the cache-protocol message vocabulary (Section 5).

The networked cache does not use separate address/data buses: every message
is a packet of flits. Address-only messages (requests, notifications) fit in
one flit; block-carrying messages (write requests, replacement transfers,
memory fills, hit-data forwarding) are five flits.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro import config
from repro.errors import ProtocolError
from repro.noc.flit import Flit, FlitType

_packet_ids = itertools.count()


class MessageType(enum.Enum):
    """Every message class exchanged in the cache protocol (Figs. 2-4)."""

    READ_REQUEST = "read_request"
    WRITE_REQUEST = "write_request"
    #: Evicted block pushed to the next-farther bank (Fast-LRU chain) or a
    #: block demoted/swapped by LRU/Promotion.
    REPLACEMENT = "replacement"
    #: Requested block forwarded from the hit bank to the MRU bank / core.
    HIT_DATA = "hit_data"
    #: New block delivered from memory to the MRU bank.
    MEMORY_FILL = "memory_fill"
    #: Dirty victim written back from the LRU bank to memory.
    WRITEBACK = "writeback"
    #: Per-bank miss notification to the core (multicast tag match).
    MISS_NOTIFY = "miss_notify"
    #: Hit notification to the core.
    HIT_NOTIFY = "hit_notify"
    #: Replacement-completion notification.
    COMPLETION_NOTIFY = "completion_notify"
    #: Request from the cache controller to the memory controller.
    MEMORY_REQUEST = "memory_request"

    @property
    def carries_block(self) -> bool:
        """True for the 5-flit messages that move a 64 B block."""
        return self in _BLOCK_CARRYING


_BLOCK_CARRYING = frozenset(
    {
        MessageType.WRITE_REQUEST,
        MessageType.REPLACEMENT,
        MessageType.HIT_DATA,
        MessageType.MEMORY_FILL,
        MessageType.WRITEBACK,
    }
)


@dataclass
class Packet:
    """A protocol message travelling the network as a wormhole of flits."""

    message: MessageType
    source: object
    destinations: tuple
    address: int = 0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    created_at: int = 0
    payload: object = None

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ProtocolError("packet needs at least one destination")
        if self.is_multicast and self.message.carries_block:
            raise ProtocolError(
                "only single-flit control packets may be multicast; "
                f"{self.message.value} carries a block"
            )

    @property
    def is_multicast(self) -> bool:
        return len(self.destinations) > 1

    @property
    def num_flits(self) -> int:
        """Flit count per Section 5: 1 control flit or 5 block flits."""
        return config.packet_flits(self.message.carries_block)

    def flits(self) -> list[Flit]:
        """Materialize the packet's flits for the flit-level simulator."""
        count = self.num_flits
        if count == 1:
            return [
                Flit(
                    packet=self,
                    kind=FlitType.HEAD_TAIL,
                    index=0,
                    destinations=tuple(self.destinations),
                )
            ]
        out: list[Flit] = []
        for i in range(count):
            if i == 0:
                kind = FlitType.HEAD
            elif i == count - 1:
                kind = FlitType.TAIL
            else:
                kind = FlitType.BODY
            out.append(
                Flit(
                    packet=self,
                    kind=kind,
                    index=i,
                    destinations=tuple(self.destinations) if i == 0 else (),
                )
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, {self.message.value}, "
            f"{self.source}->{self.destinations})"
        )
