"""Cache-protocol execution on the flit-level network.

Drives the *actual* Fig. 3 message sequences -- chain-multicast request,
per-bank tag matches, the pipelined eviction chain, hit-data return, miss
notification, memory access, fill, and forward -- as real packets through
the cycle-accurate router fabric. This closes the loop between the two
simulation fidelities: the transaction-level engine's timings are
validated against this protocol-level ground truth in
``tests/test_protocol_validation.py``.

Banks are modeled as reactive endpoints: a delivery callback schedules
the bank's response packets ``tag_latency`` (or ``tag_replace_latency``)
cycles later via :meth:`Network.schedule_injection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.bank import BankDescriptor, bank_descriptors_for_column
from repro.config import memory_access_latency
from repro.errors import ProtocolError
from repro.noc.network import Delivery, make_network
from repro.noc.packet import MessageType, Packet
from repro.noc.topology import MeshTopology, NodeId


@dataclass
class ProtocolTrace:
    """Timing record of one protocol-level access.

    Raw event timestamps live in ``*_at`` fields (``None`` until the event
    happens); the guarded properties raise :class:`ProtocolError` instead
    of surfacing ``None`` into arithmetic, like :attr:`data_latency`.
    """

    issued: int
    request_arrivals: dict[int, int] = field(default_factory=dict)
    data_at_core: int | None = None
    chain_done_at: int | None = None
    memory_requested_at: int | None = None

    @property
    def data_latency(self) -> int:
        if self.data_at_core is None:
            raise ProtocolError("access has not completed")
        return self.data_at_core - self.issued

    @property
    def chain_done(self) -> int:
        if self.chain_done_at is None:
            raise ProtocolError("eviction chain has not completed")
        return self.chain_done_at

    @property
    def memory_requested(self) -> int:
        if self.memory_requested_at is None:
            raise ProtocolError("memory has not been requested")
        return self.memory_requested_at


class FlitLevelCacheProtocol:
    """Executes Multicast Fast-LRU accesses on a flit-level mesh."""

    def __init__(
        self,
        cols: int = 16,
        rows: int = 16,
        bank_capacity: int = 64 * 1024,
        core: str | None = None,
    ) -> None:
        self.topology = MeshTopology(cols, rows, core_column=cols // 2,
                                     memory_column=cols // 2)
        self.network = make_network(self.topology, core=core)
        self.core: NodeId = self.topology.core_attach
        self.memory: NodeId = self.topology.memory_attach
        self.rows = rows
        self.banks: list[BankDescriptor] = bank_descriptors_for_column(
            [bank_capacity] * rows
        )
        self.network.on_delivery(self._on_delivery)
        self._column: int | None = None
        self._hit_depth: int | None = None
        self._trace: ProtocolTrace | None = None
        self._packet_roles: dict[int, tuple] = {}

    # -- public API -----------------------------------------------------------

    def attach_resilience(self, plan, *, seed: int = 0, policy=None,
                          verify: bool = True):
        """Install a fault plan plus end-to-end recovery on this protocol.

        Retransmitted packets adopt the lost packet's protocol role, so a
        lost Fast-LRU eviction-chain leg (a ``REPLACEMENT`` hop) is
        re-issued and the chain completes instead of silently dropping the
        evicted block -- block conservation stays green under faults.
        Returns ``(injector, recovery)``.
        """
        from repro.faults.recovery import install_resilience

        injector, recovery = install_resilience(
            self.network, plan, seed=seed, policy=policy, verify=verify
        )
        recovery.on_retransmit(self._adopt_role)
        return injector, recovery

    def _adopt_role(self, lost: Packet, clone: Packet) -> None:
        role = self._packet_roles.get(lost.packet_id)
        if role is not None:
            self._packet_roles[clone.packet_id] = role

    def run_hit(self, column: int, depth: int) -> ProtocolTrace:
        """One Multicast Fast-LRU hit at bank *depth* of *column*."""
        if not 0 <= depth < self.rows:
            raise ProtocolError(f"depth {depth} out of range")
        return self._run(column, hit_depth=depth)

    def run_miss(self, column: int) -> ProtocolTrace:
        """One global miss in *column* (all banks miss)."""
        return self._run(column, hit_depth=None)

    # -- orchestration ----------------------------------------------------------

    def _run(self, column: int, hit_depth: int | None) -> ProtocolTrace:
        self._column = column
        self._hit_depth = hit_depth
        self._trace = ProtocolTrace(issued=self.network.cycle)
        request = Packet(
            MessageType.READ_REQUEST,
            source=self.core,
            destinations=tuple((column, row) for row in range(self.rows)),
        )
        self._packet_roles[request.packet_id] = ("request",)
        self.network.inject(request)
        self.network.run_until_drained(max_cycles=50_000)
        trace = self._trace
        if trace.data_at_core is None:
            raise ProtocolError("protocol run ended without data delivery")
        return trace

    def _bank_node(self, position: int) -> NodeId:
        return (self._column, position)

    def _tag_done(self, position: int, arrival: int, replace: bool) -> int:
        timing = self.banks[position].timing
        latency = timing.tag_replace_latency if replace else timing.tag_latency
        return arrival + latency

    # -- reactive endpoints ------------------------------------------------------

    def _on_delivery(self, delivery: Delivery) -> None:
        role = self._packet_roles.get(delivery.packet.packet_id)
        if role is None:
            return
        kind = role[0]
        if kind == "request":
            self._on_request_arrival(delivery)
        elif kind == "evict":
            self._on_evict_arrival(delivery, source_position=role[1])
        elif kind == "hit_data":
            self._trace.data_at_core = delivery.delivered_at
        elif kind == "miss_notify":
            self._on_miss_decided(delivery)
        elif kind == "mem_request":
            self._on_memory_request(delivery)
        elif kind == "fill":
            self._on_fill(delivery)
        elif kind == "fill_forward":
            self._trace.data_at_core = delivery.delivered_at

    def _on_request_arrival(self, delivery: Delivery) -> None:
        position = delivery.destination[1]
        self._trace.request_arrivals[position] = delivery.delivered_at
        hit_depth = self._hit_depth
        if hit_depth is not None and position == hit_depth:
            done = self._tag_done(position, delivery.delivered_at, replace=False)
            packet = Packet(MessageType.HIT_DATA,
                            source=self._bank_node(position),
                            destinations=(self.core,))
            self._packet_roles[packet.packet_id] = ("hit_data",)
            self.network.schedule_injection(packet, done)
            return
        if position == 0:
            # The MRU bank evicts right after detecting its miss (Fig. 3).
            done = self._tag_done(position, delivery.delivered_at, replace=True)
            self._send_evict(0, done)
        if hit_depth is None and position == self.rows - 1:
            # LRU bank reports the (column-combined) miss to the core.
            done = self._tag_done(position, delivery.delivered_at, replace=False)
            packet = Packet(MessageType.MISS_NOTIFY,
                            source=self._bank_node(position),
                            destinations=(self.core,))
            self._packet_roles[packet.packet_id] = ("miss_notify",)
            self.network.schedule_injection(packet, done)

    def _send_evict(self, position: int, at_cycle: int) -> None:
        stop = self._hit_depth if self._hit_depth is not None else self.rows - 1
        if position >= stop:
            self._trace.chain_done_at = at_cycle
            return
        packet = Packet(MessageType.REPLACEMENT,
                        source=self._bank_node(position),
                        destinations=(self._bank_node(position + 1),))
        self._packet_roles[packet.packet_id] = ("evict", position)
        self.network.schedule_injection(packet, at_cycle)

    def _on_evict_arrival(self, delivery: Delivery, source_position: int) -> None:
        position = source_position + 1
        request_seen = self._trace.request_arrivals.get(position, 0)
        timing = self.banks[position].timing
        ready = max(delivery.delivered_at, request_seen)
        done = ready + timing.tag_replace_latency
        self._send_evict(position, done)

    def _on_miss_decided(self, delivery: Delivery) -> None:
        packet = Packet(MessageType.MEMORY_REQUEST, source=self.core,
                        destinations=(self.memory,))
        self._packet_roles[packet.packet_id] = ("mem_request",)
        self.network.schedule_injection(packet, delivery.delivered_at)

    def _on_memory_request(self, delivery: Delivery) -> None:
        self._trace.memory_requested_at = delivery.delivered_at
        ready = delivery.delivered_at + memory_access_latency()
        packet = Packet(MessageType.MEMORY_FILL, source=self.memory,
                        destinations=(self._bank_node(0),))
        self._packet_roles[packet.packet_id] = ("fill",)
        self.network.schedule_injection(packet, ready)

    def _on_fill(self, delivery: Delivery) -> None:
        packet = Packet(MessageType.HIT_DATA, source=self._bank_node(0),
                        destinations=(self.core,))
        self._packet_roles[packet.packet_id] = ("fill_forward",)
        self.network.schedule_injection(packet, delivery.delivered_at)
