"""Network topologies: mesh, simplified mesh, and halo (Section 4).

Conventions
-----------
Mesh nodes are ``(x, y)`` with ``x`` the column (0..cols-1, left to right)
and ``y`` the row (0..rows-1, **top to bottom**). The core attaches to the
top row (y = 0); in the baseline mesh the memory attaches to the bottom row.
``Y+`` therefore points *away* from the core, down a bank column — exactly
the direction data requests travel.

Halo nodes are ``("hub",)`` for the core-side hub and ``("spike", s, i)``
for position ``i`` (0 = MRU, closest to the hub) on spike ``s``.

Every channel is unidirectional and carries a wire delay in cycles (Table 1
ties wire delay to the bank size of the traversed tile).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BankTiming
from repro.errors import TopologyError

NodeId = tuple

HUB: NodeId = ("hub",)


def spike_node(spike: int, position: int) -> NodeId:
    """Node id of position *position* (0 = MRU) on halo spike *spike*."""
    return ("spike", spike, position)


@dataclass(frozen=True)
class Channel:
    """A unidirectional link between two routers."""

    src: NodeId
    dst: NodeId
    wire_delay: int = 1
    #: 'horizontal' | 'vertical' | 'spike' | 'hub'
    orientation: str = "vertical"

    def __post_init__(self) -> None:
        if self.wire_delay < 0:
            raise TopologyError("wire_delay must be non-negative")
        if self.src == self.dst:
            raise TopologyError("self-loop channels are not allowed")


class Topology:
    """A directed graph of routers with per-channel wire delays."""

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: set[NodeId] = set()
        self._channels: dict[tuple[NodeId, NodeId], Channel] = {}
        self._out: dict[NodeId, list[NodeId]] = {}
        self._in: dict[NodeId, list[NodeId]] = {}
        #: Router the core's injection/ejection port attaches to.
        self.core_attach: NodeId | None = None
        #: Router the memory controller attaches to.
        self.memory_attach: NodeId | None = None
        #: Extra wire cycles between the memory controller and the off-chip
        #: pins (relevant for halo designs where the controller sits in the
        #: center of the die: 16 cycles uniform / 9 cycles non-uniform).
        self.memory_pin_delay: int = 0

    # -- construction -----------------------------------------------------

    def add_node(self, node: NodeId) -> None:
        self._nodes.add(node)
        self._out.setdefault(node, [])
        self._in.setdefault(node, [])

    def add_channel(
        self,
        src: NodeId,
        dst: NodeId,
        wire_delay: int = 1,
        orientation: str = "vertical",
    ) -> Channel:
        """Add one unidirectional channel; both endpoints must exist."""
        if src not in self._nodes or dst not in self._nodes:
            raise TopologyError(f"channel endpoints must be nodes: {src}->{dst}")
        if (src, dst) in self._channels:
            raise TopologyError(f"duplicate channel {src}->{dst}")
        channel = Channel(src, dst, wire_delay, orientation)
        self._channels[(src, dst)] = channel
        self._out[src].append(dst)
        self._in[dst].append(src)
        return channel

    def add_bidirectional(
        self,
        a: NodeId,
        b: NodeId,
        wire_delay: int = 1,
        orientation: str = "vertical",
    ) -> None:
        self.add_channel(a, b, wire_delay, orientation)
        self.add_channel(b, a, wire_delay, orientation)

    # -- queries ----------------------------------------------------------

    @property
    def nodes(self) -> frozenset:
        return frozenset(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def channels(self) -> tuple[Channel, ...]:
        return tuple(self._channels.values())

    @property
    def num_channels(self) -> int:
        """Number of unidirectional channels."""
        return len(self._channels)

    @property
    def num_links(self) -> int:
        """Number of physical links; a bidirectional pair counts as one."""
        seen = set()
        links = 0
        for src, dst in self._channels:
            if (dst, src) in seen:
                continue
            seen.add((src, dst))
            links += 1
        return links

    def has_channel(self, src: NodeId, dst: NodeId) -> bool:
        return (src, dst) in self._channels

    def channel(self, src: NodeId, dst: NodeId) -> Channel:
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise TopologyError(f"no channel {src}->{dst} in {self.name}") from None

    def successors(self, node: NodeId) -> tuple[NodeId, ...]:
        return tuple(self._out.get(node, ()))

    def predecessors(self, node: NodeId) -> tuple[NodeId, ...]:
        return tuple(self._in.get(node, ()))

    def link_inventory(self) -> dict[str, int]:
        """Count unidirectional channels per orientation class."""
        inventory: dict[str, int] = {}
        for channel in self._channels.values():
            inventory[channel.orientation] = inventory.get(channel.orientation, 0) + 1
        return inventory


class MeshTopology(Topology):
    """A full 2D mesh (Design A fabric).

    ``row_bank_capacities`` optionally gives the bank capacity of each row so
    wire delays follow Table 1 (Design D non-uniform meshes); otherwise all
    channels use ``uniform_wire_delay``.
    """

    def __init__(
        self,
        cols: int,
        rows: int,
        core_column: int | None = None,
        memory_column: int | None = None,
        uniform_wire_delay: int = 1,
        row_bank_capacities: list[int] | None = None,
        horizontal_wire_delay: int | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"mesh-{cols}x{rows}")
        if cols < 1 or rows < 1:
            raise TopologyError("mesh needs at least one column and one row")
        if row_bank_capacities is not None and len(row_bank_capacities) != rows:
            raise TopologyError("row_bank_capacities must have one entry per row")
        self.cols = cols
        self.rows = rows
        self.row_bank_capacities = row_bank_capacities
        self._vertical_delays = self._compute_vertical_delays(
            rows, uniform_wire_delay, row_bank_capacities
        )
        if horizontal_wire_delay is None:
            horizontal_wire_delay = max(self._vertical_delays, default=uniform_wire_delay)
        self.horizontal_wire_delay = horizontal_wire_delay

        for x in range(cols):
            for y in range(rows):
                self.add_node((x, y))
        self._build_links()

        core_column = cols // 2 if core_column is None else core_column
        memory_column = cols // 2 if memory_column is None else memory_column
        if not 0 <= core_column < cols or not 0 <= memory_column < cols:
            raise TopologyError("core/memory columns out of range")
        #: Core attaches at the center of the top row, memory at the center
        #: of the bottom row (Section 5), "to evenly distribute traffic".
        self.core_attach = (core_column, 0)
        self.memory_attach = (memory_column, rows - 1)

    @staticmethod
    def _compute_vertical_delays(
        rows: int,
        uniform_wire_delay: int,
        row_bank_capacities: list[int] | None,
    ) -> list[int]:
        """Per-row wire delay: crossing the tile of row ``y`` costs the
        Table-1 wire delay of that row's bank size."""
        if row_bank_capacities is None:
            return [uniform_wire_delay] * rows
        return [
            BankTiming.for_capacity(capacity).wire_delay
            for capacity in row_bank_capacities
        ]

    def vertical_delay(self, y_from: int, y_to: int) -> int:
        """Wire delay of the vertical hop entering row ``max(y_from, y_to)``'s
        tile when moving down, or leaving it when moving up; we charge the
        delay of the farther-from-core row, whose tile the wire spans."""
        return self._vertical_delays[max(y_from, y_to)]

    def _build_links(self) -> None:
        for x in range(self.cols):
            for y in range(self.rows):
                if x + 1 < self.cols:
                    self.add_bidirectional(
                        (x, y),
                        (x + 1, y),
                        wire_delay=self.horizontal_wire_delay
                        if self.row_bank_capacities is not None
                        else self._vertical_delays[y],
                        orientation="horizontal",
                    )
                if y + 1 < self.rows:
                    self.add_bidirectional(
                        (x, y),
                        (x, y + 1),
                        wire_delay=self.vertical_delay(y, y + 1),
                        orientation="vertical",
                    )

    # -- Section 4 link-count formulas (paper's analytical claims) --------

    @staticmethod
    def paper_total_links(n: int) -> int:
        """Total link count of an n x n mesh as stated in Section 4."""
        return 4 * (n - 1) ** 2

    @staticmethod
    def paper_removable_links(n: int) -> int:
        """Horizontal links removable by the Fig. 4(b) minimization."""
        return (n - 2) ** 2

    @staticmethod
    def paper_underutilized_links(n: int) -> int:
        """Footnote-2 count of remaining underutilized links."""
        return n * (n - 2) + 2 * (n - 1)


class SimplifiedMeshTopology(MeshTopology):
    """The simplified mesh of Designs B, C, D (Fig. 6(b)).

    All vertical links are kept (bidirectional). Horizontal links survive
    only in the first row (where requests fan out from the core and replies
    converge back). The memory controller moves next to the core on the top
    row, so no bank-to-memory traffic ever needs a mid-mesh horizontal hop;
    with XYX routing the fabric stays fully connected for the cache's
    communication patterns.
    """

    def __init__(
        self,
        cols: int,
        rows: int,
        core_column: int | None = None,
        memory_column: int | None = None,
        uniform_wire_delay: int = 1,
        row_bank_capacities: list[int] | None = None,
        horizontal_wire_delay: int | None = None,
        name: str | None = None,
    ) -> None:
        core_column = cols // 2 if core_column is None else core_column
        if memory_column is None:
            # Memory controller placed next to the core (Design B).
            memory_column = core_column + 1 if core_column + 1 < cols else core_column - 1
        super().__init__(
            cols,
            rows,
            core_column=core_column,
            memory_column=memory_column,
            uniform_wire_delay=uniform_wire_delay,
            row_bank_capacities=row_bank_capacities,
            horizontal_wire_delay=horizontal_wire_delay,
            name=name or f"simplified-mesh-{cols}x{rows}",
        )
        self.memory_attach = (memory_column, 0)

    def _build_links(self) -> None:
        for x in range(self.cols):
            for y in range(self.rows):
                if x + 1 < self.cols and y == 0:
                    self.add_bidirectional(
                        (x, y),
                        (x + 1, y),
                        wire_delay=self.horizontal_wire_delay
                        if self.row_bank_capacities is not None
                        else self._vertical_delays[y],
                        orientation="horizontal",
                    )
                if y + 1 < self.rows:
                    self.add_bidirectional(
                        (x, y),
                        (x, y + 1),
                        wire_delay=self.vertical_delay(y, y + 1),
                        orientation="vertical",
                    )


class HaloTopology(Topology):
    """The halo network (Designs E and F, Fig. 6(c)/(d)).

    The core is a hub from which ``num_spikes`` linear spikes branch; spike
    position 0 holds the MRU bank so every MRU bank is exactly one hop from
    the core. ``position_bank_capacities`` gives the bank size at each spike
    position (identical across spikes), which sets the per-hop wire delays
    via Table 1. The memory controller sits at the hub with
    ``memory_pin_delay`` extra cycles of wire to the off-chip pins.
    """

    def __init__(
        self,
        num_spikes: int,
        spike_length: int,
        position_bank_capacities: list[int] | None = None,
        memory_pin_delay: int = 0,
        wire_delay_scale: int = 1,
        name: str | None = None,
    ) -> None:
        """*wire_delay_scale* > 1 models a curved (spiral) spike layout,
        whose wires are longer than the straight layout's (Section 4: 'the
        spiral spike layout incurs the longer wire delay than the straight
        spike layout')."""
        super().__init__(name or f"halo-{num_spikes}x{spike_length}")
        if wire_delay_scale < 1:
            raise TopologyError("wire_delay_scale must be >= 1")
        if num_spikes < 1 or spike_length < 1:
            raise TopologyError("halo needs >=1 spike of length >=1")
        if (
            position_bank_capacities is not None
            and len(position_bank_capacities) != spike_length
        ):
            raise TopologyError(
                "position_bank_capacities must have one entry per spike position"
            )
        self.num_spikes = num_spikes
        self.spike_length = spike_length
        self.position_bank_capacities = position_bank_capacities
        if position_bank_capacities is None:
            self._position_delays = [wire_delay_scale] * spike_length
        else:
            self._position_delays = [
                wire_delay_scale * BankTiming.for_capacity(capacity).wire_delay
                for capacity in position_bank_capacities
            ]

        self.add_node(HUB)
        for s in range(num_spikes):
            for i in range(spike_length):
                self.add_node(spike_node(s, i))
            self.add_bidirectional(
                HUB,
                spike_node(s, 0),
                wire_delay=self._position_delays[0],
                orientation="hub",
            )
            for i in range(spike_length - 1):
                self.add_bidirectional(
                    spike_node(s, i),
                    spike_node(s, i + 1),
                    wire_delay=self._position_delays[i + 1],
                    orientation="spike",
                )

        self.core_attach = HUB
        self.memory_attach = HUB
        self.memory_pin_delay = memory_pin_delay

    def position_delay(self, position: int) -> int:
        """Wire delay of the hop that enters spike *position*'s tile."""
        return self._position_delays[position]
