"""Cycle-accurate flit-level network simulator.

Ties :class:`~repro.noc.router.Router` instances together over a
:class:`~repro.noc.topology.Topology`, moves flits across links with their
wire delays, tracks injection queues, and records per-packet delivery
statistics. One :meth:`Network.step` is one clock cycle.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import RouterConfig
from repro.errors import SimulationError
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.router import EJECT, INJECT, Router
from repro.noc.routing import RouteComputer, routing_for
from repro.noc.topology import NodeId, Topology
from repro.telemetry import trace as _trace

if TYPE_CHECKING:
    from repro.noc.arraycore import ArrayNetwork
    from repro.telemetry.registry import Series


@dataclass
class Delivery:
    """One completed (packet, destination) delivery."""

    packet: Packet
    destination: NodeId
    injected_at: int
    delivered_at: int
    hops: int

    @property
    def latency(self) -> int:
        return self.delivered_at - self.injected_at


@dataclass
class NetworkStats:
    """Aggregate statistics of a simulation run."""

    cycles: int = 0
    packets_injected: int = 0
    flits_injected: int = 0
    #: In-fabric flits destroyed by fault injection (drops and purges).
    flits_dropped: int = 0
    #: Loss events: a (packet, destination-set) that will never deliver.
    packets_lost: int = 0
    deliveries: list[Delivery] = field(default_factory=list)

    @property
    def packets_delivered(self) -> int:
        return len(self.deliveries)

    @property
    def average_latency(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.latency for d in self.deliveries) / len(self.deliveries)

    @property
    def max_latency(self) -> int:
        return max((d.latency for d in self.deliveries), default=0)

    @property
    def average_hops(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.hops for d in self.deliveries) / len(self.deliveries)


#: Recognized flit-core selectors (see :func:`make_network`).
CORES = ("object", "array", "array-scalar")


def normalize_core(core: str | None) -> str:
    """Validate and default a ``core=`` selector ("object" when None)."""
    if core is None:
        return "object"
    if core not in CORES:
        raise SimulationError(
            f"unknown flit core {core!r}; expected one of {CORES}"
        )
    return core


def make_network(
    topology: Topology,
    routing: RouteComputer | None = None,
    router_config: RouterConfig | None = None,
    core: str | None = None,
    window: int = 0,
) -> "Network | ArrayNetwork":
    """Build a flit-level network on the selected simulation core.

    ``core="object"`` (the default) returns the reference
    :class:`Network`; ``core="array"`` returns the struct-of-arrays
    :class:`repro.noc.arraycore.ArrayNetwork`, which is bit-identical on
    healthy workloads but supports neither checkers nor fault
    controllers and uses its vectorized NumPy sweeps when NumPy is
    importable; ``core="array-scalar"`` pins the array core to its
    pure-Python scalar sweeps (the no-NumPy fallback path, also
    bit-identical). ``window`` > 0 enables windowed metric series
    sampled every that many sim-cycles.
    """
    resolved = normalize_core(core)
    if resolved != "object":
        from repro.noc.arraycore import ArrayNetwork

        return ArrayNetwork(
            topology, routing, router_config, window=window,
            vectorize=False if resolved == "array-scalar" else None,
        )
    return Network(topology, routing, router_config, window=window)


def make_noc_series(window: int) -> dict[str, "Series"]:
    """The windowed series both flit cores record, keyed by metric name.

    Shared so the two cores cannot drift: same names, same windows, same
    aggregations, same (fixed) latency edges.
    """
    from repro.telemetry.registry import LATENCY_SLO_EDGES, Series

    return {
        "noc.series.flits_injected": Series(window),
        "noc.series.flits_forwarded": Series(window),
        "noc.series.flits_ejected": Series(window),
        "noc.series.packets_delivered": Series(window),
        "noc.series.latency": Series(window, "hist", LATENCY_SLO_EDGES),
    }


def publish_noc_series(registry, series: dict[str, "Series"] | None) -> None:
    """Merge a core's windowed series into *registry* (no-op when off)."""
    if not series:
        return
    for name in sorted(series):
        local = series[name]
        registry.series(name, local.window, local.agg, local.edges).merge(
            local.snapshot()
        )


class Network:
    """A complete flit-level on-chip network instance."""

    def __init__(
        self,
        topology: Topology,
        routing: RouteComputer | None = None,
        router_config: RouterConfig | None = None,
        window: int = 0,
    ) -> None:
        self.topology = topology
        self.routing = routing or routing_for(topology)
        self.router_config = router_config or RouterConfig()
        self.routers: dict[NodeId, Router] = {
            node: Router(node, topology, self.routing, self.router_config)
            for node in topology.nodes
        }
        for router in self.routers.values():
            router.connect(self.routers)

        self.cycle = 0
        self.stats = NetworkStats()
        #: cycle -> list of (node, in_port, vc_index, flit) arrivals
        self._arrivals: dict[int, list] = defaultdict(list)
        #: per-router FIFO of packets waiting to enter the inject port
        self._inject_queues: dict[NodeId, deque] = defaultdict(deque)
        #: cycle -> [(packet, node)] future injections (protocol timing)
        self._timed_injections: dict[int, list] = defaultdict(list)
        #: (node, packet) -> flits remaining to inject
        self._inject_progress: dict[tuple[NodeId, int], deque] = {}
        #: (packet_id, destination) -> flits still to eject there
        self._pending_ejects: dict[tuple[int, NodeId], int] = {}
        self._eject_meta: dict[tuple[int, NodeId], Packet] = {}
        self._delivered_callbacks: list = []
        #: Installed validation checkers (see repro.validation.invariants);
        #: empty in normal runs so the hook sites cost one truthiness test.
        self._checkers: list = []
        #: Installed fault controller (see repro.faults.models); None in
        #: healthy runs so every hook site costs one identity test.
        self._fault = None
        #: ``callback(packet, destinations, reason)`` fired on packet loss.
        self._lost_callbacks: list = []
        #: Zero-arg callables returning the next cycle at which an idle
        #: network has scheduled work (retry deadlines, fault activations).
        self._wakeup_sources: list = []
        #: Trace sink captured at construction; the NullSink fast path
        #: reduces every per-flit event site to one attribute check.
        self._sink = _trace.current_sink()
        #: Flits placed on each (src, dst) wire -- per-link utilization.
        self._link_flits: dict[tuple[NodeId, NodeId], int] = {}
        #: High-water packet depth of each router's inject queue.
        self._inject_depth_hw: dict[NodeId, int] = {}
        #: Windowed metric series keyed by sim-cycle windows; None when
        #: off, so every recording site costs one identity test.
        self.window = int(window)
        self._series = make_noc_series(self.window) if self.window > 0 else None

    def set_trace_sink(self, sink) -> None:
        """Swap the flit-event trace sink (None = the null sink)."""
        self._sink = sink if sink is not None else _trace.NULL_SINK

    # -- client API ---------------------------------------------------------

    def on_delivery(self, callback) -> None:
        """Register ``callback(delivery)`` fired on each packet delivery."""
        self._delivered_callbacks.append(callback)

    def install_checker(self, checker) -> None:
        """Attach a validation checker to this network and its routers.

        The checker's ``on_inject``/``after_cycle``/``on_delivery`` hooks
        fire from the network, ``on_switch``/``on_replicate`` from every
        router, and ``final_check`` when a checked run drains (see
        :func:`repro.validation.run_with_checkers`).
        """
        self._checkers.append(checker)
        for router in self.routers.values():
            router.observers.append(checker)
        self.on_delivery(checker.on_delivery)

    @property
    def checkers(self) -> tuple:
        return tuple(self._checkers)

    def install_fault_controller(self, controller) -> None:
        """Attach a fault controller (see :mod:`repro.faults.models`).

        The controller's ``on_cycle_start`` hook fires at the top of every
        :meth:`step`, ``admit`` filters each :meth:`inject`, and
        ``filter_forward`` may drop any flit crossing a link. Only one
        controller may be installed per network.
        """
        if self._fault is not None:
            raise SimulationError("a fault controller is already installed")
        self._fault = controller
        controller.attach(self)
        if hasattr(controller, "next_event"):
            self.register_wakeup_source(controller.next_event)

    @property
    def fault_controller(self):
        return self._fault

    def on_packet_lost(self, callback) -> None:
        """Register ``callback(packet, destinations, reason)`` fired when a
        fault destroys a packet's chance of delivering to *destinations*."""
        self._lost_callbacks.append(callback)

    def register_wakeup_source(self, source) -> None:
        """Register a zero-arg callable returning the next cycle at which
        new work appears (or ``None``); see :meth:`next_wakeup`."""
        self._wakeup_sources.append(source)

    def schedule_injection(
        self, packet: Packet, at_cycle: int, node: NodeId | None = None
    ) -> None:
        """Queue *packet* for injection at a future cycle (e.g. after a
        bank's tag-match latency in a protocol simulation)."""
        if at_cycle < self.cycle:
            raise SimulationError(
                f"cannot inject at {at_cycle}; current cycle is {self.cycle}"
            )
        self._timed_injections[at_cycle].append((packet, node))

    def inject(self, packet: Packet, node: NodeId | None = None) -> None:
        """Queue *packet* for injection at *node* (default: its source)."""
        node = packet.source if node is None else node
        if node not in self.routers:
            raise SimulationError(f"injection node {node} not in topology")
        if self._fault is not None and not self._fault.admit(self, packet, node):
            # Never entered the fabric: no flits, credits, or pending
            # ejects to unwind -- just tell the loss listeners.
            for callback in self._lost_callbacks:
                callback(packet, packet.destinations, "rejected_at_injection")
            return
        packet.created_at = self.cycle
        queue = self._inject_queues[node]
        queue.append(packet)
        if len(queue) > self._inject_depth_hw.get(node, 0):
            self._inject_depth_hw[node] = len(queue)
        self.stats.packets_injected += 1
        if self._sink.enabled:
            self._sink.instant(
                "inject", "noc.flit", self.cycle, tid=node,
                args={"packet": packet.packet_id,
                      "destinations": [str(d) for d in packet.destinations]},
            )
        for destination in packet.destinations:
            key = (packet.packet_id, destination)
            self._pending_ejects[key] = packet.num_flits
            self._eject_meta[key] = packet
        for checker in self._checkers:
            checker.on_inject(self, packet)

    def step(self) -> None:
        """Advance the network one clock cycle."""
        cycle = self.cycle
        if self._fault is not None:
            self._fault.on_cycle_start(self, cycle)
        for packet, node in self._timed_injections.pop(cycle, ()):
            self.inject(packet, node)
        self._deliver_arrivals(cycle)
        self._inject_phase(cycle)
        self._replication_phase(cycle)
        self._switch_phase(cycle)
        for checker in self._checkers:
            checker.after_cycle(self, cycle)
        self.cycle += 1
        self.stats.cycles = self.cycle

    def _replication_phase(self, cycle: int) -> None:
        """Split multicast heads that need several output ports."""
        for router in self.routers.values():
            router.replication_phase(cycle)

    def _switch_phase(self, cycle: int) -> None:
        """Arbitrate every crossbar; route winners to links or ejection."""
        for node, router in self.routers.items():
            for forward in router.switch_phase(cycle):
                self._handle_forward(node, forward, cycle)

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def run_until_drained(self, max_cycles: int = 100_000) -> int:
        """Step until every injected packet has been fully delivered.

        Returns the cycle count consumed. Raises if the network fails to
        drain within *max_cycles* (e.g. a deadlock or livelock).
        """
        start = self.cycle
        while self._pending_ejects or self._inject_queues_nonempty():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"network did not drain within {max_cycles} cycles; "
                    f"{len(self._pending_ejects)} deliveries outstanding\n"
                    + self.drain_diagnostic()
                )
            self.step()
        return self.cycle - start

    def drain_diagnostic(self) -> str:
        """Human-readable snapshot of why the network has not drained.

        Lists undelivered packets (id, destination, flits remaining), the
        exact VC each buffered flit sits in, queued injections, flits on
        wires, and the routers currently holding traffic.
        """
        lines = [f"drain diagnostic at cycle {self.cycle}:"]
        undelivered = self.outstanding_deliveries()
        lines.append(f"  undelivered deliveries ({len(undelivered)}):")
        for pid, dst, remaining in undelivered[:50]:
            meta = self._eject_meta.get((pid, dst))
            kind = meta.message.value if meta is not None else "?"
            lines.append(
                f"    packet {pid} ({kind}) -> {dst}: "
                f"{remaining} flit(s) outstanding"
            )
        if len(undelivered) > 50:
            lines.append(f"    ... and {len(undelivered) - 50} more")
        stalled = []
        for node in sorted(self.routers, key=str):
            router = self.routers[node]
            held = [
                (port, vc)
                for port, unit in router.inputs.items()
                for vc in unit
                if vc.fifo or vc.active_packet is not None
            ]
            if held:
                stalled.append((node, held))
        lines.append(f"  routers holding traffic ({len(stalled)}):")
        for node, held in stalled:
            for port, vc in held:
                head = vc.head()
                state = (
                    f"{len(vc.fifo)} flit(s) of packet {head.packet.packet_id}"
                    if head is not None
                    else f"reserved for packet {vc.active_packet}"
                )
                lines.append(
                    f"    router {node} in_port {port} vc {vc.index}: {state}"
                    + (" [failed]" if vc.failed else "")
                )
        queued = {
            node: [p.packet_id for p in queue]
            for node, queue in self._inject_queues.items()
            if queue
        }
        if queued:
            lines.append(f"  inject queues: {queued}")
        if self._inject_progress:
            lines.append(
                "  partially injected: "
                + str(sorted((str(n), pid) for n, pid in self._inject_progress))
            )
        in_flight = self.in_flight_flits()
        if in_flight:
            lines.append(f"  flits on wires: {in_flight}")
        if self._timed_injections:
            lines.append(
                f"  next timed injection at cycle {self.next_timed_injection()}"
            )
        return "\n".join(lines)

    def idle(self) -> bool:
        """True when no flit is buffered, in flight, or awaiting injection."""
        return (
            not self._pending_ejects
            and not self._inject_queues_nonempty()
            and not self._arrivals
        )

    def pending_work(self) -> bool:
        """True while any injected packet still has flits to deliver."""
        return bool(self._pending_ejects) or self._inject_queues_nonempty()

    def next_timed_injection(self) -> int | None:
        """Earliest cycle a scheduled future injection fires (None = none)."""
        return min(self._timed_injections) if self._timed_injections else None

    def next_wakeup(self) -> int | None:
        """Earliest cycle at which new work appears in an idle network:
        timed injections plus any registered wakeup source (fault
        activations, retry deadlines)."""
        times = [self.next_timed_injection()]
        times.extend(source() for source in self._wakeup_sources)
        live = [t for t in times if t is not None]
        return min(live) if live else None

    def dropped_flits(self) -> int:
        """Flits destroyed by fault injection so far."""
        return self.stats.flits_dropped

    def outstanding_deliveries(self) -> list[tuple[int, NodeId, int]]:
        """Undelivered ``(packet_id, destination, flits_remaining)`` rows."""
        return sorted(
            ((pid, dst, n) for (pid, dst), n in self._pending_ejects.items()),
            key=str,
        )

    def in_flight_flits(self) -> int:
        """Flits currently crossing links (scheduled future arrivals)."""
        return sum(len(batch) for batch in self._arrivals.values())

    # -- internals ------------------------------------------------------------

    def _inject_queues_nonempty(self) -> bool:
        return (
            any(self._inject_queues.values())
            or bool(self._inject_progress)
            or bool(self._timed_injections)
        )

    def _deliver_arrivals(self, cycle: int) -> None:
        for node, in_port, vc_index, flit in self._arrivals.pop(cycle, ()):  # noqa: B020
            router = self.routers[node]
            flit.eligible_at = cycle + (self.router_config.hop_latency - 1)
            router.inputs[in_port][vc_index].push(flit)
            if self._sink.enabled:
                self._sink.instant(
                    "traverse", "noc.flit", cycle, tid=node,
                    args={"packet": flit.packet.packet_id, "vc": vc_index,
                          "from": str(in_port), "hops": flit.hops},
                )

    def _inject_phase(self, cycle: int) -> None:
        """Move at most one flit per router from its inject queue to a VC."""
        for node, queue in self._inject_queues.items():
            router = self.routers[node]
            progressed = False
            # Continue partially injected packets first (wormhole order).
            for key, flits in list(self._inject_progress.items()):
                if key[0] != node:
                    continue
                vc = flits[0][1]
                flit = flits[0][0]
                if vc.has_space:
                    flits.popleft()
                    flit.eligible_at = cycle + (self.router_config.hop_latency - 1)
                    vc.push(flit)
                    self.stats.flits_injected += 1
                    if self._series is not None:
                        self._series["noc.series.flits_injected"].record(cycle)
                    progressed = True
                if not flits:
                    del self._inject_progress[key]
                if progressed:
                    break
            if progressed or not queue:
                continue
            packet = queue[0]
            unit = router.inputs[INJECT]
            free = next((vc for vc in unit if vc.is_free), None)
            if free is None:
                continue
            queue.popleft()
            flits = packet.flits()
            head = flits[0]
            head.injected_at = cycle
            for flit in flits:
                flit.injected_at = cycle
            head.eligible_at = cycle + (self.router_config.hop_latency - 1)
            free.push(head)
            self.stats.flits_injected += 1
            if self._series is not None:
                self._series["noc.series.flits_injected"].record(cycle)
            if len(flits) > 1:
                self._inject_progress[(node, packet.packet_id)] = deque(
                    (flit, free) for flit in flits[1:]
                )

    def _handle_forward(self, node: NodeId, forward, cycle: int) -> None:
        flit = forward.flit
        if forward.out_port == EJECT:
            if self._series is not None:
                self._series["noc.series.flits_ejected"].record(cycle)
            self._eject(node, flit, cycle)
            return
        if self._fault is not None:
            reason = self._fault.filter_forward(self, node, forward, cycle)
            if reason is not None:
                self._drop_forward(node, forward, reason)
                return
        link = (node, forward.out_port)
        self._link_flits[link] = self._link_flits.get(link, 0) + 1
        if self._series is not None:
            self._series["noc.series.flits_forwarded"].record(cycle)
        wire_delay = self.topology.channel(node, forward.out_port).wire_delay
        arrival = cycle + wire_delay + 1
        self._arrivals[arrival].append(
            (forward.out_port, node, forward.out_vc, flit)
        )

    # -- fault handling -----------------------------------------------------

    def _drop_forward(self, node: NodeId, forward, reason: str) -> None:
        """Destroy an in-hand flit that just won switch traversal.

        The switch already consumed a downstream credit and (for a head)
        reserved the downstream VC; both are undone so the credit identity
        stays exact. A multi-flit wormhole loses its remaining flits too.
        """
        flit = forward.flit
        self.routers[node].return_credit(forward.out_port, forward.out_vc)
        if flit.kind.is_head:
            downstream_vc = (
                self.routers[forward.out_port].inputs[node][forward.out_vc]
            )
            if downstream_vc.active_packet == flit.packet.packet_id and (
                not downstream_vc.fifo
            ):
                downstream_vc.active_packet = None
                downstream_vc.out_port = None
                downstream_vc.out_vc = None
        self.stats.flits_dropped += 1
        if self._sink.enabled:
            self._sink.instant(
                "drop", "noc.flit", self.cycle, tid=node,
                args={"packet": flit.packet.packet_id, "reason": reason},
            )
        if flit.packet.num_flits == 1:
            # Single-flit packet (possibly one replica of a multicast):
            # only this flit's destination branch is lost.
            self._cancel_deliveries(flit.packet, flit.destinations, reason)
        else:
            # Multi-flit wormholes are unicast; the packet is unrecoverable.
            self.purge_packet(flit.packet, reason)

    def sever_channel(self, src: NodeId, dst: NodeId, reason: str) -> None:
        """A link fault just activated on ``src -> dst``: destroy the flits
        currently crossing that wire. Future attempts to use the channel
        are dropped at forward time by the fault controller."""
        doomed = [
            entry
            for batch in self._arrivals.values()
            for entry in batch
            if entry[0] == dst and entry[1] == src
        ]
        self._destroy_wire_flits(doomed, reason)

    def fail_vc(self, node: NodeId, in_port, vc_index: int, reason: str) -> None:
        """A VC fault just activated: mark the VC failed and destroy any
        packet resident in, reserved on, or in flight toward it."""
        vc = self.routers[node].inputs[in_port][vc_index]
        vc.failed = True
        head = vc.head()
        if head is not None:
            if head.packet.num_flits > 1:
                self.purge_packet(head.packet, reason)
            else:
                count = len(vc.fifo)
                vc.fifo.clear()
                self.stats.flits_dropped += count
                if in_port != INJECT:
                    upstream = self.routers[node].upstream.get(in_port)
                    if upstream is not None:
                        for _ in range(count):
                            upstream.return_credit(node, vc.index)
                self._cancel_deliveries(head.packet, head.destinations, reason)
        doomed = [
            entry
            for batch in self._arrivals.values()
            for entry in batch
            if entry[0] == node and entry[1] == in_port and entry[2] == vc_index
        ]
        self._destroy_wire_flits(doomed, reason)
        if vc.active_packet is not None:
            # Reservation by a wormhole whose remaining flits are upstream
            # or in hand; purge the whole packet so nothing chases the VC.
            packet = self._packet_by_id(vc.active_packet)
            if packet is not None:
                self.purge_packet(packet, reason)
            vc.active_packet = None
            vc.out_port = None
            vc.out_vc = None

    def _destroy_wire_flits(self, doomed: list, reason: str) -> None:
        for entry in doomed:
            dst, sender, vc_index, flit = entry
            if flit.packet.num_flits > 1:
                self.purge_packet(flit.packet, reason)  # removes entry too
                continue
            if not self._remove_arrival(entry):
                continue
            self.routers[sender].return_credit(dst, vc_index)
            self.stats.flits_dropped += 1
            down_vc = self.routers[dst].inputs[sender][vc_index]
            if down_vc.active_packet == flit.packet.packet_id and (
                not down_vc.fifo
            ):
                down_vc.active_packet = None
                down_vc.out_port = None
                down_vc.out_vc = None
            self._cancel_deliveries(flit.packet, flit.destinations, reason)

    def _remove_arrival(self, entry) -> bool:
        for arrival, batch in list(self._arrivals.items()):
            if entry in batch:
                batch.remove(entry)
                if not batch:
                    del self._arrivals[arrival]
                return True
        return False

    def _packet_by_id(self, pid: int) -> Packet | None:
        for (p, _dst), packet in self._eject_meta.items():
            if p == pid:
                return packet
        return None

    def purge_packet(self, packet: Packet, reason: str) -> None:
        """Atomically remove every trace of *packet* from the fabric.

        Flits are deleted from inject queues, wires, and VC buffers with a
        synthesized credit return per buffered/in-flight flit (mirroring the
        pop that will now never happen), VC reservations held by the packet
        are released, and its remaining delivery expectations are cancelled
        with an ``on_packet_lost`` notification.
        """
        pid = packet.packet_id
        for queue in self._inject_queues.values():
            if any(p.packet_id == pid for p in queue):
                remaining = [p for p in queue if p.packet_id != pid]
                queue.clear()
                queue.extend(remaining)
        for key in [k for k in self._inject_progress if k[1] == pid]:
            del self._inject_progress[key]
        for at_cycle in list(self._timed_injections):
            batch = self._timed_injections[at_cycle]
            kept = [(p, n) for p, n in batch if p.packet_id != pid]
            if len(kept) != len(batch):
                if kept:
                    self._timed_injections[at_cycle] = kept
                else:
                    del self._timed_injections[at_cycle]
        for arrival in list(self._arrivals):
            batch = self._arrivals[arrival]
            kept = []
            for entry in batch:
                dst, sender, vc_index, flit = entry
                if flit.packet.packet_id == pid:
                    self.routers[sender].return_credit(dst, vc_index)
                    self.stats.flits_dropped += 1
                else:
                    kept.append(entry)
            if kept:
                self._arrivals[arrival] = kept
            else:
                del self._arrivals[arrival]
        for router in self.routers.values():
            for port, unit in router.inputs.items():
                for vc in unit:
                    if vc.fifo and vc.fifo[0].packet.packet_id == pid:
                        count = len(vc.fifo)
                        vc.fifo.clear()
                        self.stats.flits_dropped += count
                        if port != INJECT:
                            upstream = router.upstream.get(port)
                            if upstream is not None:
                                for _ in range(count):
                                    upstream.return_credit(
                                        router.node, vc.index
                                    )
                    if vc.active_packet == pid:
                        vc.active_packet = None
                        vc.out_port = None
                        vc.out_vc = None
        lost = tuple(
            dst for (p, dst) in self._pending_ejects if p == pid
        )
        self._cancel_deliveries(packet, lost, reason)

    def _cancel_deliveries(
        self, packet: Packet, destinations, reason: str
    ) -> None:
        """Cancel pending delivery expectations and notify listeners."""
        lost = []
        for destination in destinations:
            key = (packet.packet_id, destination)
            if key in self._pending_ejects:
                del self._pending_ejects[key]
                self._eject_meta.pop(key, None)
                lost.append(destination)
        if not lost:
            return
        self.stats.packets_lost += 1
        lost = tuple(lost)
        for checker in self._checkers:
            checker.on_packet_lost(self, packet, lost)
        for callback in self._lost_callbacks:
            callback(packet, lost, reason)

    def _eject(self, node: NodeId, flit: Flit, cycle: int) -> None:
        flit.ejected_at = cycle + 1  # crossing the ejection channel
        if self._sink.enabled:
            self._sink.instant(
                "eject", "noc.flit", flit.ejected_at, tid=node,
                args={"packet": flit.packet.packet_id, "hops": flit.hops},
            )
        for destination in flit.destinations or (node,):
            key = (flit.packet.packet_id, destination)
            if key not in self._pending_ejects:
                raise SimulationError(
                    f"unexpected ejection of packet {flit.packet.packet_id} "
                    f"at {destination}"
                )
            self._pending_ejects[key] -= 1
            if self._pending_ejects[key] == 0:
                del self._pending_ejects[key]
                packet = self._eject_meta.pop(key)
                delivery = Delivery(
                    packet=packet,
                    destination=destination,
                    injected_at=flit.injected_at or packet.created_at,
                    delivered_at=flit.ejected_at,
                    hops=flit.hops,
                )
                self.stats.deliveries.append(delivery)
                if self._series is not None:
                    self._series["noc.series.packets_delivered"].record(
                        delivery.delivered_at
                    )
                    self._series["noc.series.latency"].record(
                        delivery.delivered_at, delivery.latency
                    )
                if self._sink.enabled:
                    self._sink.complete(
                        "packet", "noc.packet", delivery.injected_at,
                        delivery.latency, tid=destination,
                        args={"packet": packet.packet_id,
                              "source": str(packet.source),
                              "hops": delivery.hops},
                    )
                for callback in self._delivered_callbacks:
                    callback(delivery)

    # -- aggregate inspection ---------------------------------------------

    def publish_metrics(self, registry) -> None:
        """Export network-level and summed per-router counters."""
        registry.counter("noc.network.cycles").inc(self.stats.cycles)
        registry.counter("noc.network.packets_injected").inc(
            self.stats.packets_injected
        )
        registry.counter("noc.network.flits_injected").inc(
            self.stats.flits_injected
        )
        registry.counter("noc.network.packets_delivered").inc(
            self.stats.packets_delivered
        )
        registry.gauge("noc.network.max_latency").update_max(
            self.stats.max_latency
        )
        if self.stats.flits_dropped:
            registry.counter("noc.network.flits_dropped").inc(
                self.stats.flits_dropped
            )
        if self.stats.packets_lost:
            registry.counter("noc.network.packets_lost").inc(
                self.stats.packets_lost
            )
        for node in sorted(self.routers, key=str):
            self.routers[node].publish_metrics(registry)
        for link in sorted(self._link_flits, key=str):
            src, dst = link
            registry.counter(f"noc.link.flits.{src}->{dst}").inc(
                self._link_flits[link]
            )
        hub = getattr(self.topology, "core_attach", None)
        for node in sorted(self._inject_depth_hw, key=str):
            depth = self._inject_depth_hw[node]
            registry.gauge(f"noc.inject_queue.max_depth.{node}").update_max(
                depth
            )
            if node == hub:
                registry.gauge("noc.hub.issue_queue_depth").update_max(depth)
        publish_noc_series(registry, self._series)

    def total_buffered_flits(self) -> int:
        return sum(router.buffered_flits() for router in self.routers.values())

    def total_replications(self) -> int:
        return sum(r.stats.replications for r in self.routers.values())

    def total_replication_blocked(self) -> int:
        return sum(
            r.stats.replication_blocked_cycles for r in self.routers.values()
        )
