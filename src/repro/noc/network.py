"""Cycle-accurate flit-level network simulator.

Ties :class:`~repro.noc.router.Router` instances together over a
:class:`~repro.noc.topology.Topology`, moves flits across links with their
wire delays, tracks injection queues, and records per-packet delivery
statistics. One :meth:`Network.step` is one clock cycle.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from repro.config import RouterConfig
from repro.errors import SimulationError
from repro.noc.flit import Flit
from repro.noc.packet import Packet
from repro.noc.router import EJECT, INJECT, Router
from repro.noc.routing import RouteComputer, routing_for
from repro.noc.topology import NodeId, Topology
from repro.telemetry import trace as _trace


@dataclass
class Delivery:
    """One completed (packet, destination) delivery."""

    packet: Packet
    destination: NodeId
    injected_at: int
    delivered_at: int
    hops: int

    @property
    def latency(self) -> int:
        return self.delivered_at - self.injected_at


@dataclass
class NetworkStats:
    """Aggregate statistics of a simulation run."""

    cycles: int = 0
    packets_injected: int = 0
    flits_injected: int = 0
    deliveries: list[Delivery] = field(default_factory=list)

    @property
    def packets_delivered(self) -> int:
        return len(self.deliveries)

    @property
    def average_latency(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.latency for d in self.deliveries) / len(self.deliveries)

    @property
    def max_latency(self) -> int:
        return max((d.latency for d in self.deliveries), default=0)

    @property
    def average_hops(self) -> float:
        if not self.deliveries:
            return 0.0
        return sum(d.hops for d in self.deliveries) / len(self.deliveries)


class Network:
    """A complete flit-level on-chip network instance."""

    def __init__(
        self,
        topology: Topology,
        routing: RouteComputer | None = None,
        router_config: RouterConfig | None = None,
    ) -> None:
        self.topology = topology
        self.routing = routing or routing_for(topology)
        self.router_config = router_config or RouterConfig()
        self.routers: dict[NodeId, Router] = {
            node: Router(node, topology, self.routing, self.router_config)
            for node in topology.nodes
        }
        for router in self.routers.values():
            router.connect(self.routers)

        self.cycle = 0
        self.stats = NetworkStats()
        #: cycle -> list of (node, in_port, vc_index, flit) arrivals
        self._arrivals: dict[int, list] = defaultdict(list)
        #: per-router FIFO of packets waiting to enter the inject port
        self._inject_queues: dict[NodeId, deque] = defaultdict(deque)
        #: cycle -> [(packet, node)] future injections (protocol timing)
        self._timed_injections: dict[int, list] = defaultdict(list)
        #: (node, packet) -> flits remaining to inject
        self._inject_progress: dict[tuple[NodeId, int], deque] = {}
        #: (packet_id, destination) -> flits still to eject there
        self._pending_ejects: dict[tuple[int, NodeId], int] = {}
        self._eject_meta: dict[tuple[int, NodeId], Packet] = {}
        self._delivered_callbacks: list = []
        #: Installed validation checkers (see repro.validation.invariants);
        #: empty in normal runs so the hook sites cost one truthiness test.
        self._checkers: list = []
        #: Trace sink captured at construction; the NullSink fast path
        #: reduces every per-flit event site to one attribute check.
        self._sink = _trace.current_sink()

    def set_trace_sink(self, sink) -> None:
        """Swap the flit-event trace sink (None = the null sink)."""
        self._sink = sink if sink is not None else _trace.NULL_SINK

    # -- client API ---------------------------------------------------------

    def on_delivery(self, callback) -> None:
        """Register ``callback(delivery)`` fired on each packet delivery."""
        self._delivered_callbacks.append(callback)

    def install_checker(self, checker) -> None:
        """Attach a validation checker to this network and its routers.

        The checker's ``on_inject``/``after_cycle``/``on_delivery`` hooks
        fire from the network, ``on_switch``/``on_replicate`` from every
        router, and ``final_check`` when a checked run drains (see
        :func:`repro.validation.run_with_checkers`).
        """
        self._checkers.append(checker)
        for router in self.routers.values():
            router.observers.append(checker)
        self.on_delivery(checker.on_delivery)

    @property
    def checkers(self) -> tuple:
        return tuple(self._checkers)

    def schedule_injection(
        self, packet: Packet, at_cycle: int, node: NodeId | None = None
    ) -> None:
        """Queue *packet* for injection at a future cycle (e.g. after a
        bank's tag-match latency in a protocol simulation)."""
        if at_cycle < self.cycle:
            raise SimulationError(
                f"cannot inject at {at_cycle}; current cycle is {self.cycle}"
            )
        self._timed_injections[at_cycle].append((packet, node))

    def inject(self, packet: Packet, node: NodeId | None = None) -> None:
        """Queue *packet* for injection at *node* (default: its source)."""
        node = packet.source if node is None else node
        if node not in self.routers:
            raise SimulationError(f"injection node {node} not in topology")
        packet.created_at = self.cycle
        self._inject_queues[node].append(packet)
        self.stats.packets_injected += 1
        if self._sink.enabled:
            self._sink.instant(
                "inject", "noc.flit", self.cycle, tid=node,
                args={"packet": packet.packet_id,
                      "destinations": [str(d) for d in packet.destinations]},
            )
        for destination in packet.destinations:
            key = (packet.packet_id, destination)
            self._pending_ejects[key] = packet.num_flits
            self._eject_meta[key] = packet
        for checker in self._checkers:
            checker.on_inject(self, packet)

    def step(self) -> None:
        """Advance the network one clock cycle."""
        cycle = self.cycle
        for packet, node in self._timed_injections.pop(cycle, ()):
            self.inject(packet, node)
        self._deliver_arrivals(cycle)
        self._inject_phase(cycle)
        for router in self.routers.values():
            router.replication_phase(cycle)
        for node, router in self.routers.items():
            for forward in router.switch_phase(cycle):
                self._handle_forward(node, forward, cycle)
        for checker in self._checkers:
            checker.after_cycle(self, cycle)
        self.cycle += 1
        self.stats.cycles = self.cycle

    def run(self, cycles: int) -> None:
        for _ in range(cycles):
            self.step()

    def run_until_drained(self, max_cycles: int = 100_000) -> int:
        """Step until every injected packet has been fully delivered.

        Returns the cycle count consumed. Raises if the network fails to
        drain within *max_cycles* (e.g. a deadlock or livelock).
        """
        start = self.cycle
        while self._pending_ejects or self._inject_queues_nonempty():
            if self.cycle - start >= max_cycles:
                raise SimulationError(
                    f"network did not drain within {max_cycles} cycles; "
                    f"{len(self._pending_ejects)} deliveries outstanding"
                )
            self.step()
        return self.cycle - start

    def idle(self) -> bool:
        """True when no flit is buffered, in flight, or awaiting injection."""
        return (
            not self._pending_ejects
            and not self._inject_queues_nonempty()
            and not self._arrivals
        )

    def pending_work(self) -> bool:
        """True while any injected packet still has flits to deliver."""
        return bool(self._pending_ejects) or self._inject_queues_nonempty()

    def next_timed_injection(self) -> int | None:
        """Earliest cycle a scheduled future injection fires (None = none)."""
        return min(self._timed_injections) if self._timed_injections else None

    def outstanding_deliveries(self) -> list[tuple[int, NodeId, int]]:
        """Undelivered ``(packet_id, destination, flits_remaining)`` rows."""
        return sorted(
            ((pid, dst, n) for (pid, dst), n in self._pending_ejects.items()),
            key=str,
        )

    def in_flight_flits(self) -> int:
        """Flits currently crossing links (scheduled future arrivals)."""
        return sum(len(batch) for batch in self._arrivals.values())

    # -- internals ------------------------------------------------------------

    def _inject_queues_nonempty(self) -> bool:
        return (
            any(self._inject_queues.values())
            or bool(self._inject_progress)
            or bool(self._timed_injections)
        )

    def _deliver_arrivals(self, cycle: int) -> None:
        for node, in_port, vc_index, flit in self._arrivals.pop(cycle, ()):  # noqa: B020
            router = self.routers[node]
            flit.eligible_at = cycle + (self.router_config.hop_latency - 1)
            router.inputs[in_port][vc_index].push(flit)
            if self._sink.enabled:
                self._sink.instant(
                    "traverse", "noc.flit", cycle, tid=node,
                    args={"packet": flit.packet.packet_id, "vc": vc_index,
                          "from": str(in_port), "hops": flit.hops},
                )

    def _inject_phase(self, cycle: int) -> None:
        """Move at most one flit per router from its inject queue to a VC."""
        for node, queue in self._inject_queues.items():
            router = self.routers[node]
            progressed = False
            # Continue partially injected packets first (wormhole order).
            for key, flits in list(self._inject_progress.items()):
                if key[0] != node:
                    continue
                vc = flits[0][1]
                flit = flits[0][0]
                if vc.has_space:
                    flits.popleft()
                    flit.eligible_at = cycle + (self.router_config.hop_latency - 1)
                    vc.push(flit)
                    self.stats.flits_injected += 1
                    progressed = True
                if not flits:
                    del self._inject_progress[key]
                if progressed:
                    break
            if progressed or not queue:
                continue
            packet = queue[0]
            unit = router.inputs[INJECT]
            free = next((vc for vc in unit if vc.is_free), None)
            if free is None:
                continue
            queue.popleft()
            flits = packet.flits()
            head = flits[0]
            head.injected_at = cycle
            for flit in flits:
                flit.injected_at = cycle
            head.eligible_at = cycle + (self.router_config.hop_latency - 1)
            free.push(head)
            self.stats.flits_injected += 1
            if len(flits) > 1:
                self._inject_progress[(node, packet.packet_id)] = deque(
                    (flit, free) for flit in flits[1:]
                )

    def _handle_forward(self, node: NodeId, forward, cycle: int) -> None:
        flit = forward.flit
        if forward.out_port == EJECT:
            self._eject(node, flit, cycle)
            return
        wire_delay = self.topology.channel(node, forward.out_port).wire_delay
        arrival = cycle + wire_delay + 1
        self._arrivals[arrival].append(
            (forward.out_port, node, forward.out_vc, flit)
        )

    def _eject(self, node: NodeId, flit: Flit, cycle: int) -> None:
        flit.ejected_at = cycle + 1  # crossing the ejection channel
        if self._sink.enabled:
            self._sink.instant(
                "eject", "noc.flit", flit.ejected_at, tid=node,
                args={"packet": flit.packet.packet_id, "hops": flit.hops},
            )
        for destination in flit.destinations or (node,):
            key = (flit.packet.packet_id, destination)
            if key not in self._pending_ejects:
                raise SimulationError(
                    f"unexpected ejection of packet {flit.packet.packet_id} "
                    f"at {destination}"
                )
            self._pending_ejects[key] -= 1
            if self._pending_ejects[key] == 0:
                del self._pending_ejects[key]
                packet = self._eject_meta.pop(key)
                delivery = Delivery(
                    packet=packet,
                    destination=destination,
                    injected_at=flit.injected_at or packet.created_at,
                    delivered_at=flit.ejected_at,
                    hops=flit.hops,
                )
                self.stats.deliveries.append(delivery)
                if self._sink.enabled:
                    self._sink.complete(
                        "packet", "noc.packet", delivery.injected_at,
                        delivery.latency, tid=destination,
                        args={"packet": packet.packet_id,
                              "source": str(packet.source),
                              "hops": delivery.hops},
                    )
                for callback in self._delivered_callbacks:
                    callback(delivery)

    # -- aggregate inspection ---------------------------------------------

    def publish_metrics(self, registry) -> None:
        """Export network-level and summed per-router counters."""
        registry.counter("noc.network.cycles").inc(self.stats.cycles)
        registry.counter("noc.network.packets_injected").inc(
            self.stats.packets_injected
        )
        registry.counter("noc.network.flits_injected").inc(
            self.stats.flits_injected
        )
        registry.counter("noc.network.packets_delivered").inc(
            self.stats.packets_delivered
        )
        registry.gauge("noc.network.max_latency").update_max(
            self.stats.max_latency
        )
        for node in sorted(self.routers, key=str):
            self.routers[node].publish_metrics(registry)

    def total_buffered_flits(self) -> int:
        return sum(router.buffered_flits() for router in self.routers.values())

    def total_replications(self) -> int:
        return sum(r.stats.replications for r in self.routers.values())

    def total_replication_blocked(self) -> int:
        return sum(
            r.stats.replication_blocked_cycles for r in self.routers.values()
        )
