"""Chip-multiprocessor extension (the paper's first future-work item).

Section 7: "We are planning to expand the study presented in this paper
to include CMP environments by first analyzing the traffic patterns and
finding suitable interconnects for those systems." This package provides
that substrate: several cores share the networked L2 as one large shared
NUCA (the organization of the CMP-NUCA studies the paper cites). On mesh
designs the cores attach at evenly spaced top-row routers; on halos they
share the hub (whose per-spike issue queues arbitrate among them).
"""

from repro.cmp.system import CMPCacheSystem, CMPResult, CoreResult, core_attach_points

__all__ = ["CMPCacheSystem", "CMPResult", "CoreResult", "core_attach_points"]
