"""Multi-core shared-NUCA simulation.

Each core runs its own workload against the shared L2: its own trace,
its own blocking-read retirement clock, its own attach point. Accesses
from all cores are merged in global issue-time order, so they contend for
the same columns, banks, channels, and memory pipe -- the traffic-pattern
analysis the paper proposes as future work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.bankset import BankSetStats
from repro.core.designs import DesignSpec, design_spec
from repro.core.flows import Scheme, make_scheme
from repro.core.system import NetworkedCacheSystem
from repro.errors import ConfigurationError
from repro.noc.topology import NodeId
from repro.perf.ipc import IssueModel
from repro.perf.metrics import LatencyAccumulator
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.trace import Trace


def core_attach_points(spec: DesignSpec, num_cores: int) -> list[NodeId]:
    """Attach points for *num_cores* on a design.

    Mesh designs spread the cores evenly across the top row; halo designs
    share the hub (the spike queues arbitrate among cores).
    """
    if num_cores < 1:
        raise ConfigurationError("num_cores must be >= 1")
    topology = spec.topology_factory()
    if spec.network.startswith("16-spike"):
        return [topology.core_attach] * num_cores
    cols = 16
    if num_cores > cols:
        raise ConfigurationError(f"at most {cols} cores on a 16-column mesh")
    stride = cols / num_cores
    return [(int(stride * (i + 0.5)), 0) for i in range(num_cores)]


@dataclass
class CoreResult:
    """Per-core outcome of a CMP run."""

    core: int
    benchmark: str
    accesses: int
    ipc: float
    average_latency: float
    hit_rate: float


@dataclass
class CMPResult:
    """Aggregate outcome of a CMP run."""

    design: str
    scheme: str
    num_cores: int
    cores: list[CoreResult] = field(default_factory=list)

    @property
    def aggregate_ipc(self) -> float:
        """System throughput: sum of per-core IPCs."""
        return sum(core.ipc for core in self.cores)

    @property
    def average_latency(self) -> float:
        total = sum(c.average_latency * c.accesses for c in self.cores)
        accesses = sum(c.accesses for c in self.cores)
        return total / accesses if accesses else 0.0

    @property
    def fairness(self) -> float:
        """min/max per-core IPC (1.0 = perfectly fair)."""
        ipcs = [core.ipc for core in self.cores]
        return min(ipcs) / max(ipcs) if ipcs and max(ipcs) > 0 else 0.0


@dataclass
class _CoreState:
    index: int
    node: NodeId
    profile: BenchmarkProfile
    trace: Trace
    warmup: int
    issue: IssueModel
    latency: LatencyAccumulator
    position: int = 0
    next_issue: int | None = None

    def done(self) -> bool:
        return self.position >= len(self.trace)


class CMPCacheSystem:
    """N cores sharing one networked L2 cache."""

    def __init__(
        self,
        design: str | DesignSpec = "A",
        scheme: str | Scheme = "multicast+fast_lru",
        num_cores: int = 2,
    ) -> None:
        self.spec = design_spec(design) if isinstance(design, str) else design
        self.scheme = make_scheme(scheme) if isinstance(scheme, str) else scheme
        self.num_cores = num_cores
        self.attach_points = core_attach_points(self.spec, num_cores)
        # Reuse the single-core system for geometry/contents/engine.
        self._system = NetworkedCacheSystem(design=self.spec, scheme=self.scheme)

    def run(
        self,
        workloads: list[tuple[BenchmarkProfile, Trace, int]],
    ) -> CMPResult:
        """Run one (profile, trace, warmup) triple per core, merged.

        Warm-up portions update contents only (round-robin across cores);
        measured accesses are merged in global issue-time order.
        """
        if len(workloads) != self.num_cores:
            raise ConfigurationError(
                f"need {self.num_cores} workloads, got {len(workloads)}"
            )
        system = self._system
        cores = [
            _CoreState(
                index=i,
                node=self.attach_points[i],
                profile=profile,
                trace=trace,
                warmup=warmup,
                issue=IssueModel(perfect_ipc=profile.perfect_l2_ipc),
                latency=LatencyAccumulator(),
            )
            for i, (profile, trace, warmup) in enumerate(workloads)
        ]

        # Phase 1: warm the shared contents, round-robin.
        warming = True
        while warming:
            warming = False
            for core in cores:
                if core.position < core.warmup:
                    access = core.trace[core.position]
                    decoded = system.mapper.decode(access.address)
                    system.array.access(decoded, access.is_write)
                    core.position += 1
                    warming = True
        system.array.stats = BankSetStats()
        system.memory.reset()
        system.geometry.reset_contention()
        system.engine.reset()

        # Phase 2: merged measured run in global issue order.
        for core in cores:
            if not core.done():
                access = core.trace[core.position]
                core.next_issue = core.issue.issue_time(access.gap_instructions)
        while True:
            ready = [c for c in cores if not c.done()]
            if not ready:
                break
            core = min(ready, key=lambda c: c.next_issue)
            access = core.trace[core.position]
            decoded = system.mapper.decode(access.address)
            outcome = system.array.access(decoded, access.is_write)
            timing = system.engine.execute(
                decoded.column,
                outcome,
                core.next_issue,
                access.is_write,
                core_node=core.node,
            )
            core.issue.complete(timing.data_at_core, is_write=access.is_write)
            core.latency.record(
                latency=timing.transaction_latency,
                hit=timing.hit,
                bank=timing.bank_cycles,
                network=timing.network_cycles,
                memory=timing.memory_cycles,
                bank_position=timing.bank_position,
            )
            core.position += 1
            if not core.done():
                nxt = core.trace[core.position]
                core.next_issue = core.issue.issue_time(nxt.gap_instructions)

        result = CMPResult(
            design=self.spec.key,
            scheme=self.scheme.name,
            num_cores=self.num_cores,
        )
        for core in cores:
            _, ipc = core.issue.finish()
            result.cores.append(
                CoreResult(
                    core=core.index,
                    benchmark=core.profile.name,
                    accesses=core.latency.total_count,
                    ipc=ipc,
                    average_latency=core.latency.average_latency,
                    hit_rate=core.latency.hit_rate,
                )
            )
        return result
