"""Seeded, deterministic fault models installable on a live network.

The fault taxonomy (DESIGN.md §11) covers four classes:

* **permanent link failure** (:class:`LinkFault`) -- a directed channel
  dies at a cycle; flits on the wire are destroyed, later traversals drop;
* **router input-VC failure** (:class:`VCFault`) -- one virtual channel of
  one input port stops accepting flits (an input-port failure is the set
  of all its VCs);
* **transient faults** (:class:`TransientFaults`) -- each link traversal
  independently drops or corrupts the flit with a seeded probability
  (a corrupted flit is detected and discarded, i.e. handled as a drop);
* **dead banks** (:class:`BankFault`) -- a bank node neither sources nor
  sinks packets; destinations pointing at it are filtered at injection.

A :class:`FaultPlan` bundles faults; :meth:`FaultPlan.sample` draws one
deterministically from a seed while protecting the nodes the cache cannot
lose (core/memory attach points and the row-0 / position-0 banks), so a
sampled plan degrades capacity and latency but never strands an access.

The :class:`FaultInjector` executes a plan on a network, installed via
:meth:`repro.noc.network.Network.install_fault_controller` -- the same
pattern as ``repro.validation.invariants`` checkers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields

from repro.errors import ConfigurationError
from repro.noc.router import INJECT
from repro.noc.topology import (
    HUB,
    HaloTopology,
    MeshTopology,
    NodeId,
    Topology,
)


@dataclass(frozen=True)
class LinkFault:
    """Permanent failure of the directed channel ``src -> dst``."""

    src: NodeId
    dst: NodeId
    at_cycle: int = 0


@dataclass(frozen=True)
class VCFault:
    """Permanent failure of input VC *vc* of port *in_port* at *node*."""

    node: NodeId
    in_port: object
    vc: int
    at_cycle: int = 0


@dataclass(frozen=True)
class BankFault:
    """A dead bank node: filtered from destinations, masked from contents."""

    node: NodeId


@dataclass(frozen=True)
class TransientFaults:
    """Per-traversal soft-error rates (seeded at the injector)."""

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for rate in (self.drop_rate, self.corrupt_rate):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"transient fault rate {rate} outside [0, 1]"
                )

    @property
    def total_rate(self) -> float:
        return self.drop_rate + self.corrupt_rate


def protected_nodes(topology: Topology) -> frozenset:
    """Nodes a sampled plan may never cut off: the core/memory attach
    points plus every row-0 (mesh) or hub-adjacent position-0 (halo)
    node, so each bank column keeps its entry point and every access can
    still complete (possibly with degraded capacity). On full meshes the
    memory attaches at the *bottom* row, so its whole column is protected
    too -- degraded U-routes reach it only through that column."""
    protected = set()
    if topology.core_attach is not None:
        protected.add(topology.core_attach)
    if topology.memory_attach is not None:
        protected.add(topology.memory_attach)
    if isinstance(topology, HaloTopology):
        protected.add(HUB)
        for s in range(topology.num_spikes):
            protected.add(("spike", s, 0))
    elif isinstance(topology, MeshTopology):
        for x in range(topology.cols):
            protected.add((x, 0))
        if topology.memory_attach is not None:
            mx, my = topology.memory_attach
            if my != 0:
                for y in range(topology.rows):
                    protected.add((mx, y))
    return frozenset(protected)


@dataclass(frozen=True)
class FaultPlan:
    """A declared, reproducible set of faults for one run."""

    links: tuple = ()
    vcs: tuple = ()
    banks: tuple = ()
    transients: TransientFaults | None = None

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.links
            and not self.vcs
            and not self.banks
            and (self.transients is None or self.transients.total_rate == 0.0)
        )

    def dead_channels(self) -> frozenset:
        """Directed channels that (eventually) die under this plan."""
        return frozenset((f.src, f.dst) for f in self.links)

    def dead_banks(self) -> frozenset:
        return frozenset(f.node for f in self.banks)

    def describe(self) -> str:
        parts = []
        if self.links:
            parts.append(f"{len(self.links)} link fault(s)")
        if self.vcs:
            parts.append(f"{len(self.vcs)} VC fault(s)")
        if self.banks:
            parts.append(f"{len(self.banks)} dead bank(s)")
        if self.transients is not None and self.transients.total_rate > 0:
            parts.append(
                f"transient rate {self.transients.total_rate:g}/traversal"
            )
        return ", ".join(parts) if parts else "no faults"

    @staticmethod
    def sample(
        topology: Topology,
        *,
        link_rate: float = 0.0,
        vc_rate: float = 0.0,
        bank_rate: float = 0.0,
        transient_rate: float = 0.0,
        seed: int = 0,
        at_cycle: int = 0,
        num_vcs: int = 4,
    ) -> "FaultPlan":
        """Draw a deterministic plan: each candidate link/VC/bank fails
        independently with its rate, under the protection constraints.

        Both directions of a physical link fail together (a severed wire
        bundle). VC faults spare index 0 of every port so each physical
        channel keeps at least one working VC. Bank faults spare the
        protected nodes and never kill every bank of the topology.
        """
        rng = random.Random(f"faults/{seed}")
        protected = protected_nodes(topology)

        links = []
        seen = set()
        for channel in sorted(topology.channels(), key=lambda c: str((c.src, c.dst))):
            pair = frozenset((channel.src, channel.dst))
            if pair in seen:
                continue
            seen.add(pair)
            if channel.src in protected or channel.dst in protected:
                # Links touching protected nodes stay up so every bank
                # column keeps its entry point and memory stays reachable.
                continue
            if rng.random() < link_rate:
                links.append(LinkFault(channel.src, channel.dst, at_cycle))
                links.append(LinkFault(channel.dst, channel.src, at_cycle))

        vcs = []
        if vc_rate > 0.0:
            for node in sorted(topology.nodes, key=str):
                if node in protected:
                    continue
                for in_port in sorted(topology.predecessors(node), key=str):
                    for vc in range(1, num_vcs):
                        if rng.random() < vc_rate:
                            vcs.append(VCFault(node, in_port, vc, at_cycle))

        banks = []
        if bank_rate > 0.0:
            for node in sorted(topology.nodes, key=str):
                if node in protected:
                    continue
                if rng.random() < bank_rate:
                    banks.append(BankFault(node))

        transients = (
            TransientFaults(drop_rate=transient_rate)
            if transient_rate > 0.0
            else None
        )
        return FaultPlan(
            links=tuple(links),
            vcs=tuple(vcs),
            banks=tuple(banks),
            transients=transients,
        )


@dataclass
class FaultStats:
    """Counters kept by a :class:`FaultInjector`."""

    #: Faults activated (each link direction / VC / bank counts once).
    faults_injected: int = 0
    #: Flits dropped because their next channel was dead.
    link_drops: int = 0
    #: Flits dropped by a transient soft error.
    transient_drops: int = 0
    #: Flits corrupted (detected and discarded) by a transient soft error.
    transient_corruptions: int = 0
    #: Destinations filtered from injected packets (dead banks).
    filtered_destinations: int = 0
    #: Destinations filtered because no legal degraded route reaches them.
    unroutable_destinations: int = 0
    #: Packets rejected whole at injection (every destination dead).
    rejected_packets: int = 0

    def publish_metrics(self, registry) -> None:
        registry.counter("faults.injected").inc(self.faults_injected)
        registry.counter("faults.link_drops").inc(self.link_drops)
        registry.counter("faults.transient_drops").inc(self.transient_drops)
        registry.counter("faults.transient_corruptions").inc(
            self.transient_corruptions
        )
        registry.counter("faults.filtered_destinations").inc(
            self.filtered_destinations
        )
        registry.counter("faults.unroutable_destinations").inc(
            self.unroutable_destinations
        )
        registry.counter("faults.rejected_packets").inc(self.rejected_packets)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Executes a :class:`FaultPlan` on a live :class:`Network`.

    Install with ``network.install_fault_controller(injector)``. The
    network calls :meth:`on_cycle_start` each cycle (activating scheduled
    faults), :meth:`admit` per injection (dead-bank filtering), and
    :meth:`filter_forward` per link traversal (dead-channel and transient
    drops). All randomness is confined to one seeded stream, so a given
    ``(plan, seed)`` is bit-reproducible.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self.stats = FaultStats()
        self._rng = random.Random(f"faults/transient/{seed}")
        self.network = None
        self._dead_channels: set = set()
        self._dead_banks = set(plan.dead_banks())
        #: Optional ``routable(src, dst) -> bool`` filter (degraded routing).
        self._route_filter = None
        self.stats.faults_injected += len(self._dead_banks)
        #: Faults not yet active, keyed by activation cycle.
        self._pending: dict[int, list] = {}
        for fault in list(plan.links) + list(plan.vcs):
            self._pending.setdefault(fault.at_cycle, []).append(fault)
        transients = plan.transients
        self._drop_rate = transients.drop_rate if transients else 0.0
        self._corrupt_rate = transients.corrupt_rate if transients else 0.0

    # -- controller interface (called by the Network) ----------------------

    def attach(self, network) -> None:
        self.network = network

    def next_event(self) -> int | None:
        """Earliest still-pending fault activation (a wakeup source)."""
        return min(self._pending) if self._pending else None

    def on_cycle_start(self, network, cycle: int) -> None:
        if not self._pending:
            return
        for at_cycle in sorted(c for c in self._pending if c <= cycle):
            for fault in self._pending.pop(at_cycle):
                self._activate(network, fault)

    def _activate(self, network, fault) -> None:
        self.stats.faults_injected += 1
        if isinstance(fault, LinkFault):
            self._dead_channels.add((fault.src, fault.dst))
            network.sever_channel(fault.src, fault.dst, "link_failure")
        elif isinstance(fault, VCFault):
            network.fail_vc(fault.node, fault.in_port, fault.vc, "vc_failure")
        else:  # pragma: no cover - plans only schedule link/VC faults
            raise ConfigurationError(f"cannot activate fault {fault!r}")

    def set_route_filter(self, routable) -> None:
        """Install a ``routable(src, dst) -> bool`` predicate; destinations
        with no legal degraded route are filtered at injection (the sender
        fails fast instead of launching a flit the fabric must strand)."""
        self._route_filter = routable

    def admit(self, network, packet, node) -> bool:
        """Filter dead-bank/unroutable destinations; reject dead packets."""
        if not self._dead_banks and self._route_filter is None:
            return True
        alive = []
        for d in packet.destinations:
            if d in self._dead_banks:
                self.stats.filtered_destinations += 1
            elif self._route_filter is not None and not self._route_filter(
                node, d
            ):
                self.stats.unroutable_destinations += 1
            else:
                alive.append(d)
        if len(alive) == len(packet.destinations):
            return True
        if not alive:
            self.stats.rejected_packets += 1
            return False
        packet.destinations = tuple(alive)
        return True

    def filter_forward(self, network, node, forward, cycle) -> str | None:
        """Return a drop reason for this traversal, or ``None`` to pass."""
        if (node, forward.out_port) in self._dead_channels:
            self.stats.link_drops += 1
            return "link_failure"
        if self._drop_rate or self._corrupt_rate:
            draw = self._rng.random()
            if draw < self._drop_rate:
                self.stats.transient_drops += 1
                return "transient_drop"
            if draw < self._drop_rate + self._corrupt_rate:
                self.stats.transient_corruptions += 1
                return "transient_corruption"
        return None

    # -- queries -----------------------------------------------------------

    @property
    def dead_channels(self) -> frozenset:
        """Channels dead *right now* (activated so far)."""
        return frozenset(self._dead_channels)

    @property
    def dead_banks(self) -> frozenset:
        return frozenset(self._dead_banks)


_ = INJECT  # port names are part of the VCFault vocabulary
