"""Degraded-mode routing around dead channels.

:class:`DegradedRouting` wraps a base route computer (XY / XYX / spike).
Per ``(current, destination)`` it first checks whether the *base* path from
``current`` is fully alive -- if so it takes the base hop, so a zero-fault
degraded router is hop-for-hop identical to the base and, on simplified
meshes, every surviving route stays Fig. 5(b)-legal. Only when the base
path crosses a dead channel does it fall back to a detour, and only to a
provably safe family: **U-shaped routes** that ascend the current column
toward the core row (``Y-``), cross horizontally in a surviving row, and
descend the destination column (``Y+``) -- the "fall back to the next
row" of the paper's fabric. Every U-route follows the Fig. 5(b) class
order ``Y- < X < Y+`` with coordinate-monotone numbers inside each class,
so its channel numbers strictly increase; and the *union* of XY base
routes and U-routes performs no ``Y+ -> X`` turn and never mixes ``X+``
with ``X-`` in one row run, which rules out every planar dependency
cycle. A destination with no alive base path and no alive U-route is
*unroutable* -- degradation truncates it away rather than risking an
unprovable detour. (Halo spikes are trees: a cut spike has no detour by
construction, and cross-spike traffic already funnels through the hub.)

The combination is loop-free: a node whose base path is alive follows the
base route to the destination (every suffix of an alive path is alive),
and each U-route hop continues into a node whose own base path or U-route
remainder is alive and strictly shorter, so any mixed walk terminates.

:func:`verify_degraded` is the proof-check hook: it re-runs the Dally &
Seitz argument restricted to the pairs actually routed -- the channel
dependency graph must stay acyclic, and on simplified meshes every path's
Fig. 5(b) channel enumeration must still strictly increase -- so the
existing XYX-legality invariant checker passes under degradation.
"""

from __future__ import annotations

from repro.errors import RoutingError, ValidationError
from repro.noc.routing import (
    RouteComputer,
    is_deadlock_free,
    xyx_path_channel_numbers,
)
from repro.noc.topology import (
    HUB,
    HaloTopology,
    MeshTopology,
    NodeId,
    Topology,
)


def reachable_nodes(
    topology: Topology, dead_channels: frozenset, root: NodeId
) -> frozenset:
    """Nodes reachable *from* root over surviving channels."""
    seen = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for succ in topology.successors(node):
            if (node, succ) in dead_channels or succ in seen:
                continue
            seen.add(succ)
            frontier.append(succ)
    return frozenset(seen)


def coreachable_nodes(
    topology: Topology, dead_channels: frozenset, root: NodeId
) -> frozenset:
    """Nodes that can still *reach* root over surviving channels."""
    seen = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for pred in topology.predecessors(node):
            if (pred, node) in dead_channels or pred in seen:
                continue
            seen.add(pred)
            frontier.append(pred)
    return frozenset(seen)


def alive_nodes(
    topology: Topology,
    dead_channels: frozenset,
    root: NodeId | None = None,
) -> frozenset:
    """Nodes still in two-way contact with *root* (default: core attach).

    A node outside this set can neither receive requests nor return data,
    so the cache treats it as dead regardless of its own health.
    """
    if root is None:
        root = topology.core_attach
    if root is None:
        raise RoutingError(f"{topology.name} has no core attach point")
    return reachable_nodes(topology, dead_channels, root) & coreachable_nodes(
        topology, dead_channels, root
    )


def fallback_destination(
    topology: Topology, alive: frozenset, node: NodeId
) -> NodeId | None:
    """Nearest live substitute for a dead/unreachable endpoint.

    Meshes fall back up the column toward the core row (the "next row" of
    the issue); halos fall back toward the hub along the spike, then to the
    same position on neighboring spikes. Returns ``None`` when nothing
    suitable survives.
    """
    if node in alive:
        return node
    candidates: list[NodeId] = []
    if isinstance(topology, HaloTopology) and node != HUB:
        _, spike, pos = node
        candidates.extend(
            ("spike", spike, p) for p in range(pos - 1, -1, -1)
        )
        for offset in range(1, topology.num_spikes):
            neighbor = (spike + offset) % topology.num_spikes
            candidates.append(("spike", neighbor, min(pos, topology.spike_length - 1)))
        candidates.append(HUB)
    elif isinstance(topology, MeshTopology):
        x, y = node
        candidates.extend((x, row) for row in range(y - 1, -1, -1))
        for offset in range(1, topology.cols):
            for col in ((x + offset) % topology.cols, (x - offset) % topology.cols):
                candidates.append((col, y))
    for candidate in candidates:
        if candidate in alive:
            return candidate
    return None


class DegradedRouting(RouteComputer):
    """Base routing with XYX-legal detours around dead channels."""

    def __init__(
        self,
        topology: Topology,
        base: RouteComputer,
        dead_channels,
    ) -> None:
        self.topology = topology
        self.base = base
        self.dead = frozenset(dead_channels)
        self.name = f"degraded-{base.name}"
        #: Times a hop deviated from the base route (detour hops taken).
        self.detour_hops = 0
        self._base_ok: dict[tuple[NodeId, NodeId], bool] = {}
        self._detour_next: dict[tuple[NodeId, NodeId], NodeId | None] = {}

    # -- base-route liveness ------------------------------------------------

    def base_path_alive(self, current: NodeId, destination: NodeId) -> bool:
        """Does the *base* route from here survive the dead channels?"""
        if current == destination:
            return True
        cached = self._base_ok.get((current, destination))
        if cached is not None:
            return cached
        nodes = [current]
        node = current
        ok = True
        limit = self.topology.num_nodes + 1
        while node != destination:
            try:
                nxt = self.base.next_hop(self.topology, node, destination)
            except RoutingError:
                nxt = None
            if (
                nxt is None
                or not self.topology.has_channel(node, nxt)
                or (node, nxt) in self.dead
            ):
                ok = False
                break
            nodes.append(nxt)
            node = nxt
            if len(nodes) > limit:
                ok = False
                break
        # Every prefix of an alive path is alive; every node collected on a
        # broken walk routes through the same broken hop.
        for n in nodes:
            self._base_ok[(n, destination)] = ok
        return ok

    def is_rerouted(self, source: NodeId, destination: NodeId) -> bool:
        """True when traffic for this pair leaves the base route."""
        return source != destination and not self.base_path_alive(
            source, destination
        )

    # -- U-shaped detours ---------------------------------------------------

    def _channel_alive(self, src: NodeId, dst: NodeId) -> bool:
        return self.topology.has_channel(src, dst) and (src, dst) not in self.dead

    def _find_u_path(self, current: NodeId, destination: NodeId):
        """First fully-alive U-route, trying rows nearest the base first.

        A U-route ascends the current column (``Y-``) to a pivot row
        ``r <= min(sy, dy)``, crosses horizontally at row *r* in a single
        direction, and descends the destination column (``Y+``). Candidate
        pivots are tried from ``min(sy, dy)`` down to row 0, so detours
        prefer the *next* row toward the core and fall back outward.
        Deterministic by construction. Returns ``None`` when no candidate
        survives (destination unroutable) or on non-mesh topologies,
        where base-or-nothing keeps routing provably deadlock-free.
        """
        if not isinstance(self.topology, MeshTopology):
            return None
        sx, sy = current
        dx, dy = destination
        step = 1 if dx > sx else -1
        for r in range(min(sy, dy), -1, -1):
            path = [current]
            ok = True
            for y in range(sy, r, -1):  # ascend own column
                ok = ok and self._channel_alive((sx, y), (sx, y - 1))
                path.append((sx, y - 1))
            x = sx
            while ok and x != dx:  # cross at the pivot row
                ok = self._channel_alive((x, r), (x + step, r))
                path.append((x + step, r))
                x += step
            for y in range(r, dy):  # descend the destination column
                ok = ok and self._channel_alive((dx, y), (dx, y + 1))
                path.append((dx, y + 1))
            if ok and path[-1] == destination:
                return path
        return None

    def _detour_hop(self, current: NodeId, destination: NodeId) -> NodeId | None:
        key = (current, destination)
        if key not in self._detour_next:
            path = self._find_u_path(current, destination)
            self._detour_next[key] = path[1] if path else None
        return self._detour_next[key]

    def next_hop(
        self, topology: Topology, current: NodeId, destination: NodeId
    ) -> NodeId | None:
        if current == destination:
            return None
        if self.base_path_alive(current, destination):
            return self.base.next_hop(topology, current, destination)
        nxt = self._detour_hop(current, destination)
        if nxt is None:
            raise RoutingError(
                f"{self.name}: {destination} unreachable from {current} "
                f"with {len(self.dead)} dead channel(s)"
            )
        self.detour_hops += 1
        return nxt

    def can_route(self, source: NodeId, destination: NodeId) -> bool:
        """True when a full route exists (does not count detour hops)."""
        if source == destination:
            return True
        saved = self.detour_hops
        try:
            self.path(self.topology, source, destination)
        except RoutingError:
            return False
        finally:
            self.detour_hops = saved
        return True


def verify_degraded(
    topology: Topology,
    routing: DegradedRouting,
    pairs=None,
) -> dict:
    """Proof-check a degraded routing function (raises on failure).

    Checks, over *pairs* (default: every ordered pair of alive nodes that
    the degraded function still routes -- unroutable pairs are the
    *declared* degradation, counted but not failed; explicitly supplied
    pairs are traffic endpoints the caller guarantees, so any unroutable
    one raises):

    1. every checked pair routes without stalls, loops, or dead channels;
    2. the channel dependency graph restricted to those routes is acyclic
       (Dally & Seitz deadlock freedom);
    3. on a simplified mesh, every path's Fig. 5(b) channel enumeration is
       strictly increasing -- the same property the online
       ``ChannelOrderChecker`` enforces flit by flit.

    Returns a report dict (``pairs_checked``, ``rerouted_pairs``,
    ``unroutable_pairs``, ``xyx_checked``).
    """
    from repro.noc.topology import SimplifiedMeshTopology

    strict = pairs is not None
    if pairs is None:
        live = sorted(alive_nodes(topology, routing.dead), key=str)
        pairs = [(s, d) for s in live for d in live if s != d]
    else:
        pairs = list(pairs)

    rerouted = 0
    unroutable = 0
    paths = []
    routed_pairs = []
    saved_detour_hops = routing.detour_hops
    for source, destination in pairs:
        try:
            path = routing.path(topology, source, destination)
        except RoutingError as exc:
            if strict:
                raise ValidationError(
                    f"degraded routing cannot serve {source}->{destination}: "
                    f"{exc}"
                ) from exc
            unroutable += 1
            continue
        for a, b in zip(path, path[1:]):
            if (a, b) in routing.dead:
                raise ValidationError(
                    f"degraded route {source}->{destination} crosses dead "
                    f"channel {a}->{b}"
                )
        paths.append(path)
        routed_pairs.append((source, destination))
        if routing.is_rerouted(source, destination):
            rerouted += 1

    if not is_deadlock_free(topology, routing, pairs=routed_pairs):
        raise ValidationError(
            f"degraded routing on {topology.name} creates a cyclic channel "
            f"dependency over {len(routed_pairs)} pairs: deadlock possible"
        )
    routing.detour_hops = saved_detour_hops

    xyx_checked = False
    if isinstance(topology, SimplifiedMeshTopology):
        xyx_checked = True
        for path in paths:
            numbers = xyx_path_channel_numbers(
                topology.cols, topology.rows, path
            )
            if any(b <= a for a, b in zip(numbers, numbers[1:])):
                raise ValidationError(
                    f"degraded route {path} violates the Fig. 5(b) channel "
                    f"enumeration: {numbers} is not strictly increasing"
                )

    return {
        "pairs_checked": len(routed_pairs),
        "rerouted_pairs": rerouted,
        "unroutable_pairs": unroutable,
        "xyx_checked": xyx_checked,
    }


_ = HUB  # halo vocabulary used by fallback_destination
