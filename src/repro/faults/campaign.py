"""Seeded fault-injection campaigns over rate x scheme x topology.

A campaign sweeps a severity knob (the *fault rate*, driving both the
permanent-link sampling rate and the per-traversal transient rate)
across designs and schemes, running every cell through the standard
experiment engine -- so campaign cells parallelize, cache, and publish
telemetry exactly like figure cells. Each sweep always includes the
zero-rate baseline, which both anchors the latency-degradation curve
and (by construction) runs the pristine build path bit-identically.

Reported per point:

* **availability** -- fraction of accesses whose messages never
  exhausted the retry budget (1.0 means every access completed through
  reroute/retry alone);
* **goodput** -- completed accesses per kilocycle;
* **latency degradation** -- average access latency relative to the
  same (design, scheme) at rate zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CampaignConfig:
    """One fault campaign: the sweep axes and the workload pin."""

    designs: tuple = ("A", "C", "F")
    schemes: tuple = ("multicast+fast_lru",)
    benchmark: str = "art"
    #: Severity sweep; 0.0 is always added as the baseline point.
    rates: tuple = (0.0, 1e-3, 1e-2)
    measure: int = 600
    seed: int = 1
    #: Seed of the fault-plan sampler and transient streams.
    fault_seed: int = 7
    #: Flit-simulation core recorded on every cell ("object" | "array").
    core: str = "object"

    def __post_init__(self) -> None:
        if not self.rates:
            raise ConfigurationError("campaign needs at least one rate")
        for rate in self.rates:
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(f"fault rate {rate} outside [0, 1]")

    def sweep_rates(self) -> tuple:
        """Sorted unique rates with the 0.0 baseline always present."""
        return tuple(sorted(set(self.rates) | {0.0}))


@dataclass
class CampaignPoint:
    """One (design, scheme, rate) cell of a campaign."""

    design: str
    scheme: str
    rate: float
    accesses: int = 0
    completed: int = 0
    availability: float = 1.0
    #: Completed accesses per kilocycle.
    goodput: float = 0.0
    average_latency: float = 0.0
    #: Average latency relative to the zero-rate baseline (1.0 = none).
    latency_degradation: float = 1.0
    ipc: float = 0.0
    faults_injected: int = 0
    rerouted_packets: int = 0
    detour_hops: int = 0
    retries: int = 0
    exhausted_retries: int = 0
    degraded_accesses: int = 0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class CampaignResult:
    config: CampaignConfig
    points: list = field(default_factory=list)

    def point(self, design: str, scheme: str, rate: float) -> CampaignPoint:
        for p in self.points:
            if (p.design, p.scheme) == (design, scheme) and p.rate == rate:
                return p
        raise KeyError((design, scheme, rate))


def _counter(metrics: dict, name: str) -> int:
    entry = metrics.get(name)
    return entry["value"] if entry else 0


def run_campaign(config: CampaignConfig | None = None) -> CampaignResult:
    """Run the sweep through the experiment engine; returns all points."""
    from repro.experiments.runner import CellSpec, run_cells

    config = config or CampaignConfig()
    rates = config.sweep_rates()
    coords = [
        (design, scheme, rate)
        for design in config.designs
        for scheme in config.schemes
        for rate in rates
    ]
    specs = [
        CellSpec(
            design=design,
            scheme=scheme,
            benchmark=config.benchmark,
            measure=config.measure,
            seed=config.seed,
            link_fault_rate=rate,
            transient_fault_rate=rate,
            fault_seed=config.fault_seed,
            core=config.core,
        )
        for design, scheme, rate in coords
    ]
    results = run_cells(specs)

    campaign = CampaignResult(config=config)
    baselines: dict[tuple, float] = {}
    for (design, scheme, rate), result in zip(coords, results):
        if rate == 0.0:
            baselines[(design, scheme)] = result.average_latency
    for (design, scheme, rate), result in zip(coords, results):
        metrics = result.metrics
        exhausted = _counter(metrics, "faults.exhausted_retries")
        completed = max(result.accesses - exhausted, 0)
        baseline = baselines[(design, scheme)]
        campaign.points.append(
            CampaignPoint(
                design=design,
                scheme=scheme,
                rate=rate,
                accesses=result.accesses,
                completed=completed,
                availability=(
                    completed / result.accesses if result.accesses else 1.0
                ),
                goodput=(
                    1000.0 * completed / result.cycles if result.cycles else 0.0
                ),
                average_latency=result.average_latency,
                latency_degradation=(
                    result.average_latency / baseline if baseline else 1.0
                ),
                ipc=result.ipc,
                faults_injected=_counter(metrics, "faults.injected"),
                rerouted_packets=_counter(metrics, "faults.rerouted_packets"),
                detour_hops=_counter(metrics, "noc.reroute.detour_hops"),
                retries=_counter(metrics, "faults.retries"),
                exhausted_retries=exhausted,
                degraded_accesses=_counter(
                    metrics, "cache.txn.degraded_accesses"
                ),
            )
        )
    return campaign
