"""End-to-end recovery: timeouts, bounded-backoff retransmit, degradation.

Two layers mirror the repo's two fidelities (DESIGN.md §11):

* **Flit level** -- :class:`RecoveryManager` installs on a
  :class:`~repro.noc.network.Network` like an invariant checker and gives
  every injected packet a per-message retry state machine::

      TRACKED --deliver--> DONE
      TRACKED --loss/timeout--> BACKOFF --retransmit--> TRACKED (attempt+1)
      TRACKED --loss/timeout, attempt == max_retries--> ABANDONED

  A timeout purges the stale wormhole from the fabric (with exact credit
  restitution, via :meth:`Network.purge_packet`) before the clone is
  scheduled, so flit and credit conservation stay green across recovery.
  Retransmit clones carry fresh packet ids; ``on_retransmit`` callbacks
  let the protocol layer re-adopt message roles -- this is how a lost
  Fast-LRU eviction-chain leg is re-issued instead of silently losing a
  block.

* **Transaction level** -- :class:`DegradedCacheGeometry` builds the
  timing geometry over the surviving fabric: columns are truncated to
  their live prefix (:func:`truncate_columns`), routes come from
  :class:`~repro.faults.reroute.DegradedRouting`, and each traversal runs
  a seeded transient-loss retry loop charging ``timeout + backoff``
  per attempt. Zero-fault plans draw no randomness and add no cycles, so
  a degraded geometry with an empty plan is bit-identical to the base.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields

from repro.core.geometry import CacheGeometry
from repro.errors import ConfigurationError
from repro.faults.models import FaultInjector, FaultPlan
from repro.faults.reroute import DegradedRouting, verify_degraded
from repro.noc.packet import Packet
from repro.noc.routing import routing_for
from repro.noc.topology import HaloTopology, Topology, spike_node
from repro.sim.kernel import DeadlineQueue
from repro.telemetry.registry import RECOVERY_LATENCY_EDGES


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for end-to-end retransmission."""

    #: Cycles after injection before an undelivered message is presumed lost.
    timeout: int = 64
    #: Backoff before retry k is ``min(backoff_base * 2**k, backoff_cap)``.
    backoff_base: int = 4
    backoff_cap: int = 256
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.timeout < 1 or self.backoff_base < 0 or self.max_retries < 0:
            raise ConfigurationError(f"invalid retry policy {self}")

    def backoff(self, attempt: int) -> int:
        return min(self.backoff_base * (2 ** attempt), self.backoff_cap)


@dataclass
class RecoveryStats:
    """Counters kept by a :class:`RecoveryManager`."""

    timeouts: int = 0
    retries: int = 0
    #: Messages that delivered after at least one retransmission.
    recovered_messages: int = 0
    #: Messages given up on after ``max_retries`` retransmissions.
    abandoned_messages: int = 0
    abandoned_destinations: int = 0
    #: First-injection-to-final-delivery latency of recovered messages.
    recovery_latencies: list = field(default_factory=list)

    def publish_metrics(self, registry) -> None:
        registry.counter("faults.timeouts").inc(self.timeouts)
        registry.counter("faults.retries").inc(self.retries)
        registry.counter("faults.recovered_messages").inc(
            self.recovered_messages
        )
        registry.counter("faults.abandoned_messages").inc(
            self.abandoned_messages
        )
        histogram = registry.histogram(
            "faults.recovery_latency", RECOVERY_LATENCY_EDGES
        )
        for latency in self.recovery_latencies:
            histogram.record(latency)

    def as_dict(self) -> dict:
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "recovery_latencies"
        }


class _MessageRecord:
    __slots__ = ("packet", "outstanding", "attempt", "origin", "first_cycle")

    def __init__(self, packet, outstanding, attempt, origin, first_cycle):
        self.packet = packet
        self.outstanding = outstanding
        self.attempt = attempt
        self.origin = origin
        self.first_cycle = first_cycle


class RecoveryManager:
    """Per-message timeout + retransmit, installed like a checker.

    Implements the full :class:`NetworkChecker` hook surface (duck-typed)
    plus a :class:`~repro.sim.kernel.DeadlineQueue` of per-message retry
    timers that the network consults through its wakeup-source registry,
    so checked runs never mistake a backoff wait for a stall.
    """

    name = "recovery"

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy or RetryPolicy()
        self.stats = RecoveryStats()
        self.deadlines = DeadlineQueue()
        self.network = None
        self._records: dict[int, _MessageRecord] = {}
        #: clone packet_id -> (attempt, origin pid, first injection cycle),
        #: pre-registered before the retransmit is scheduled.
        self._adopt: dict[int, tuple[int, int, int]] = {}
        self._retransmit_callbacks: list = []

    def install(self, network) -> None:
        self.network = network
        network.install_checker(self)
        network.register_wakeup_source(self.deadlines.peek)

    def on_retransmit(self, callback) -> None:
        """Register ``callback(lost_packet, clone_packet)`` fired when a
        message is re-issued (protocol role adoption hooks in here)."""
        self._retransmit_callbacks.append(callback)

    def outstanding_messages(self) -> int:
        return len(self._records)

    # -- checker hook surface ----------------------------------------------

    def on_inject(self, network, packet) -> None:
        pid = packet.packet_id
        adopted = self._adopt.pop(pid, None)
        if adopted is None:
            attempt, origin, first_cycle = 0, pid, network.cycle
        else:
            attempt, origin, first_cycle = adopted
        self._records[pid] = _MessageRecord(
            packet=packet,
            outstanding=set(packet.destinations),
            attempt=attempt,
            origin=origin,
            first_cycle=first_cycle,
        )
        self.deadlines.arm(pid, network.cycle + self.policy.timeout)

    def on_delivery(self, delivery) -> None:
        pid = delivery.packet.packet_id
        record = self._records.get(pid)
        if record is None:
            return
        record.outstanding.discard(delivery.destination)
        if record.outstanding:
            return
        self.deadlines.disarm(pid)
        del self._records[pid]
        if record.attempt > 0:
            self.stats.recovered_messages += 1
            self.stats.recovery_latencies.append(
                delivery.delivered_at - record.first_cycle
            )

    def on_packet_lost(self, network, packet, destinations) -> None:
        pid = packet.packet_id
        record = self._records.get(pid)
        if record is None:
            return
        lost = [d for d in destinations if d in record.outstanding]
        for destination in lost:
            record.outstanding.discard(destination)
        if not record.outstanding:
            self.deadlines.disarm(pid)
            del self._records[pid]
        if not lost:
            return
        # A destination with no legal degraded route can never be reached
        # by retrying -- abandon it now instead of spinning the backoff.
        routable = getattr(network.routing, "can_route", None)
        if routable is not None:
            viable = [d for d in lost if routable(packet.source, d)]
            if len(viable) < len(lost):
                self.stats.abandoned_destinations += len(lost) - len(viable)
                if not viable:
                    self.stats.abandoned_messages += 1
                    return
                lost = viable
        if record.attempt >= self.policy.max_retries:
            self.stats.abandoned_messages += 1
            self.stats.abandoned_destinations += len(lost)
            return
        clone = Packet(
            message=packet.message,
            source=packet.source,
            destinations=tuple(lost),
            address=packet.address,
            payload=packet.payload,
        )
        self._adopt[clone.packet_id] = (
            record.attempt + 1,
            record.origin,
            record.first_cycle,
        )
        network.schedule_injection(
            clone, network.cycle + self.policy.backoff(record.attempt)
        )
        self.stats.retries += 1
        for callback in self._retransmit_callbacks:
            callback(packet, clone)

    def after_cycle(self, network, cycle) -> None:
        if not len(self.deadlines):
            return
        for pid in self.deadlines.pop_due(cycle):
            record = self._records.get(pid)
            if record is None:
                continue
            if not record.outstanding:
                del self._records[pid]
                continue
            self.stats.timeouts += 1
            # Purge whatever is left of the overdue wormhole; the purge's
            # on_packet_lost notification performs the retransmit.
            network.purge_packet(record.packet, "timeout")

    def on_switch(self, router, in_port, forward, cycle) -> None:
        pass

    def on_replicate(
        self, router, original, replica, borrow_port, borrow_vc, cycle
    ) -> None:
        pass

    def final_check(self, network) -> None:
        pass


def install_resilience(
    network,
    plan: FaultPlan,
    *,
    seed: int = 0,
    policy: RetryPolicy | None = None,
    verify: bool = True,
):
    """Wire a fault plan onto a live flit-level network.

    Swaps in :class:`DegradedRouting` when links die (proof-checking it
    unless *verify* is disabled), installs the :class:`FaultInjector` as
    the network's fault controller, and attaches a
    :class:`RecoveryManager`. Returns ``(injector, recovery)``.
    """
    injector = FaultInjector(plan, seed=seed)
    if plan.links:
        degraded = DegradedRouting(
            network.topology, network.routing, plan.dead_channels()
        )
        network.routing = degraded
        for router in network.routers.values():
            router.routing = degraded
        injector.set_route_filter(degraded.can_route)
        if verify:
            verify_degraded(network.topology, degraded)
    network.install_fault_controller(injector)
    recovery = RecoveryManager(policy)
    recovery.install(network)
    return injector, recovery


# -- transaction-level degradation ------------------------------------------


def truncate_columns(
    topology: Topology,
    columns: list,
    plan: FaultPlan,
    routing: DegradedRouting | None = None,
) -> list:
    """Live prefix of each bank column under *plan*.

    A column is cut at its first dead position -- a bank whose router lost
    a *legal* round trip to the core (link cuts with no XYX-legal detour)
    or whose bank itself died. The Fast-LRU eviction chain runs strictly
    down the column, so banks past a dead position cannot participate even
    when their routers still answer. Prefixes keep positions dense
    (0..k-1), which preserves every ``bank_of_way`` value in the content
    model.
    """
    if routing is None:
        routing = DegradedRouting(
            topology, routing_for(topology), plan.dead_channels()
        )
    core = topology.core_attach
    if core is None:
        raise ConfigurationError(f"{topology.name} has no core attach point")
    dead_banks = plan.dead_banks()
    is_halo = isinstance(topology, HaloTopology)
    out = []
    for col, descriptors in enumerate(columns):
        kept = []
        for descriptor in descriptors:
            node = (
                spike_node(col, descriptor.position)
                if is_halo
                else (col, descriptor.position)
            )
            if (
                node in dead_banks
                or not routing.can_route(core, node)
                or not routing.can_route(node, core)
            ):
                break
            kept.append(descriptor)
        if not kept:
            raise ConfigurationError(
                f"fault plan {plan.describe()!r} kills every bank of "
                f"column {col}; the cache cannot serve its address range"
            )
        out.append(kept)
    return out


@dataclass
class TransactionFaultStats:
    """Fault/recovery counters of one degraded transaction-level run."""

    rerouted_traversals: int = 0
    retries: int = 0
    #: Traversals whose transient losses outlived the retry budget (the
    #: message is escalated out-of-band; the access completes degraded).
    exhausted_retries: int = 0
    #: Extra cycles each recovered traversal spent in timeout + backoff.
    recovery_penalties: list = field(default_factory=list)


class DegradedCacheGeometry(CacheGeometry):
    """A :class:`CacheGeometry` over the surviving fabric of a fault plan.

    Construction truncates columns to their live prefixes, swaps in
    degraded routing, and (by default) proof-checks every endpoint pair it
    can ever route. ``traverse`` then counts rerouted traversals and runs
    the seeded transient retry loop; with a null plan both additions are
    inert and the geometry times identically to the base class.
    """

    def __init__(
        self,
        topology: Topology,
        columns: list,
        plan: FaultPlan,
        *,
        policy: RetryPolicy | None = None,
        seed: int = 0,
        router_config=None,
        spike_queue_entries: int = 2,
        verify: bool = True,
    ) -> None:
        routing = DegradedRouting(
            topology, routing_for(topology), plan.dead_channels()
        )
        live_columns = truncate_columns(topology, columns, plan, routing)
        super().__init__(
            topology,
            live_columns,
            routing=routing,
            router_config=router_config,
            spike_queue_entries=spike_queue_entries,
        )
        self.fault_plan = plan
        self.retry_policy = policy or RetryPolicy()
        self.fault_seed = seed
        self.fault_stats = TransactionFaultStats()
        transients = plan.transients
        self._transient_rate = transients.total_rate if transients else 0.0
        self._rng = random.Random(f"faults/txn/{seed}")
        if verify:
            self.verify_routes()

    def verify_routes(self) -> dict:
        """Proof-check every endpoint pair this geometry can route."""
        endpoints = {self.core_node, self.memory_node}
        for col in range(self.num_columns):
            for pos in range(self.banks_per_column(col)):
                endpoints.add(self.bank_node(col, pos))
        ordered = sorted(endpoints, key=str)
        pairs = [(s, d) for s in ordered for d in ordered if s != d]
        return verify_degraded(self.topology, self.routing, pairs=pairs)

    def traverse(
        self,
        src,
        dst,
        time: int,
        flits: int,
        record_waypoints: bool = False,
    ):
        if src != dst and self.routing.is_rerouted(src, dst):
            self.fault_stats.rerouted_traversals += 1
        arrival, waypoints = super().traverse(
            src, dst, time, flits, record_waypoints
        )
        if self._transient_rate <= 0.0 or src == dst:
            return arrival, waypoints
        first_arrival = arrival
        attempt = 0
        send_time = time
        policy = self.retry_policy
        while self._rng.random() < self._transient_rate:
            if attempt >= policy.max_retries:
                self.fault_stats.exhausted_retries += 1
                break
            # The sender detects the loss one timeout after issue, backs
            # off, and re-sends; the wire/bank reservations of the doomed
            # attempt stay charged (the flits did occupy them).
            send_time = send_time + policy.timeout + policy.backoff(attempt)
            arrival, waypoints = super().traverse(
                src, dst, send_time, flits, record_waypoints
            )
            self.fault_stats.retries += 1
            attempt += 1
        if attempt:
            self.fault_stats.recovery_penalties.append(
                arrival - first_arrival
            )
        return arrival, waypoints

    def reset_contention(self) -> None:
        super().reset_contention()
        self.fault_stats = TransactionFaultStats()
        self.routing.detour_hops = 0

    def publish_metrics(self, registry) -> None:
        super().publish_metrics(registry)
        plan = self.fault_plan
        registry.counter("faults.injected").set(
            len(plan.links) + len(plan.vcs) + len(plan.banks)
        )
        stats = self.fault_stats
        registry.counter("faults.rerouted_packets").set(
            stats.rerouted_traversals
        )
        registry.counter("faults.retries").set(stats.retries)
        registry.counter("faults.exhausted_retries").set(
            stats.exhausted_retries
        )
        registry.counter("noc.reroute.detour_hops").set(
            self.routing.detour_hops
        )
        histogram = registry.histogram(
            "faults.recovery_latency", RECOVERY_LATENCY_EDGES
        )
        for penalty in stats.recovery_penalties:
            histogram.record(penalty)
