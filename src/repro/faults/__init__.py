"""Fault injection and resilience (DESIGN.md §11).

Fault models install on a live :class:`~repro.noc.network.Network` the way
invariant checkers do; degraded routing keeps surviving traffic XYX-legal;
recovery retries lost messages end-to-end; campaigns sweep fault rate
against scheme and topology through the standard experiment runner.
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignPoint,
    CampaignResult,
    run_campaign,
)
from repro.faults.models import (
    BankFault,
    FaultInjector,
    FaultPlan,
    FaultStats,
    LinkFault,
    TransientFaults,
    VCFault,
    protected_nodes,
)
from repro.faults.recovery import (
    DegradedCacheGeometry,
    RecoveryManager,
    RecoveryStats,
    RetryPolicy,
    TransactionFaultStats,
    install_resilience,
    truncate_columns,
)
from repro.faults.reroute import (
    DegradedRouting,
    alive_nodes,
    coreachable_nodes,
    fallback_destination,
    reachable_nodes,
    verify_degraded,
)

__all__ = [
    "BankFault",
    "CampaignConfig",
    "CampaignPoint",
    "CampaignResult",
    "DegradedCacheGeometry",
    "DegradedRouting",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "LinkFault",
    "RecoveryManager",
    "RecoveryStats",
    "RetryPolicy",
    "TransactionFaultStats",
    "TransientFaults",
    "VCFault",
    "alive_nodes",
    "coreachable_nodes",
    "fallback_destination",
    "install_resilience",
    "protected_nodes",
    "reachable_nodes",
    "run_campaign",
    "truncate_columns",
    "verify_degraded",
]
