"""Trace containers: the unit of exchange between workloads and the cache.

A trace is an ordered sequence of L2 accesses. Each access carries the
32-bit address, whether it is a write, and how many instructions retired
since the previous access (which paces the issue model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import TraceError


@dataclass(frozen=True)
class TraceAccess:
    """One L2 access."""

    address: int
    is_write: bool
    gap_instructions: int

    def __post_init__(self) -> None:
        if not 0 <= self.address < (1 << 32):
            raise TraceError(f"address {self.address:#x} is not 32-bit")
        if self.gap_instructions < 0:
            raise TraceError("gap_instructions must be non-negative")


class Trace:
    """An immutable list of accesses with summary helpers."""

    def __init__(self, accesses: Iterable[TraceAccess], name: str = "trace") -> None:
        self._accesses = tuple(accesses)
        self.name = name

    def __len__(self) -> int:
        return len(self._accesses)

    def __iter__(self) -> Iterator[TraceAccess]:
        return iter(self._accesses)

    def __getitem__(self, i: int) -> TraceAccess:
        return self._accesses[i]

    @property
    def total_instructions(self) -> int:
        return sum(access.gap_instructions for access in self._accesses)

    @property
    def write_count(self) -> int:
        return sum(1 for access in self._accesses if access.is_write)

    @property
    def read_count(self) -> int:
        return len(self) - self.write_count

    def distinct_blocks(self, offset_bits: int = 6) -> int:
        return len({access.address >> offset_bits for access in self._accesses})

    def slice(self, start: int, stop: int | None = None) -> "Trace":
        return Trace(self._accesses[start:stop], name=f"{self.name}[{start}:{stop}]")
