"""Trace file I/O.

A compact, diffable text format so traces can be archived, shared, or
hand-written for experiments:

    # repro-trace v1 name=<name>
    <address-hex> <r|w> <gap-instructions>
    ...

Round-trips exactly through :func:`save_trace` / :func:`load_trace`.
"""

from __future__ import annotations

import io
import pathlib

from repro.errors import TraceError
from repro.workloads.trace import Trace, TraceAccess

_MAGIC = "# repro-trace v1"


def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Write *trace* to *path* in the v1 text format."""
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as handle:
        _write(trace, handle)


def dumps_trace(trace: Trace) -> str:
    """The v1 text form of *trace*."""
    buffer = io.StringIO()
    _write(trace, buffer)
    return buffer.getvalue()


def _write(trace: Trace, handle) -> None:
    handle.write(f"{_MAGIC} name={trace.name}\n")
    for access in trace:
        kind = "w" if access.is_write else "r"
        handle.write(f"{access.address:08x} {kind} {access.gap_instructions}\n")


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a v1 trace file."""
    path = pathlib.Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return _read(handle, default_name=path.stem)


def loads_trace(text: str, default_name: str = "trace") -> Trace:
    """Parse the v1 text form."""
    return _read(io.StringIO(text), default_name=default_name)


def _read(handle, default_name: str) -> Trace:
    header = handle.readline().rstrip("\n")
    if not header.startswith(_MAGIC):
        raise TraceError(f"not a repro-trace file (header {header!r})")
    name = default_name
    if "name=" in header:
        name = header.split("name=", 1)[1].strip() or default_name
    accesses = []
    for line_number, line in enumerate(handle, start=2):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3 or parts[1] not in ("r", "w"):
            raise TraceError(f"malformed trace line {line_number}: {line!r}")
        try:
            address = int(parts[0], 16)
            gap = int(parts[2])
        except ValueError as error:
            raise TraceError(
                f"malformed trace line {line_number}: {line!r}"
            ) from error
        accesses.append(
            TraceAccess(
                address=address,
                is_write=(parts[1] == "w"),
                gap_instructions=gap,
            )
        )
    if not accesses:
        raise TraceError("trace file contains no accesses")
    return Trace(accesses, name=name)
