"""Synthetic L2 trace generation.

The generator draws block reuse from a Zipf distribution over the
benchmark's footprint (skewed reuse concentrates hits in the MRU banks,
exactly the property LRU exploits over Promotion), mixed with a stream of
never-seen blocks (compulsory misses). Block numbers are scattered over
the cache's sets with a bijective multiplicative hash so Zipf rank does
not correlate with bank column.

Set sampling
------------
The paper simulates billions of instructions against 16 K sets; at
laptop-trace scale (tens of thousands of accesses) each set would see less
than one access and the bank-set stacks would never develop realistic
depth. We therefore use standard *set sampling*: traffic is concentrated
into ``index_space`` (default 8) of the 1024 index values, shrinking the
effective cache to ``16 columns x index_space x 16 ways`` blocks while
keeping every column, way, and network path exercised. Benchmark
footprints in :mod:`repro.workloads.profiles` are calibrated against this
effective capacity.

Generation is fully deterministic given ``(profile, seed, length)``.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.cache.address import AddressMapper
from repro.errors import TraceError
from repro.workloads.profiles import BenchmarkProfile
from repro.workloads.trace import Trace, TraceAccess

#: Default number of sampled index values (of the 1024 the address allows).
#: 8 indexes x 16 columns x 16 ways = 2048 effective blocks, dense enough
#: for realistic per-set stack dynamics at trace scale.
DEFAULT_INDEX_SPACE = 8
#: Odd multiplier => bijective scatter modulo a power of two.
_SCATTER = 0x9E3779B1


class TraceGenerator:
    """Deterministic generator bound to one benchmark profile."""

    def __init__(
        self,
        profile: BenchmarkProfile,
        seed: int = 12345,
        index_space: int = DEFAULT_INDEX_SPACE,
        mapper: AddressMapper | None = None,
    ) -> None:
        if index_space < 1 or index_space & (index_space - 1):
            raise TraceError("index_space must be a power of two")
        self.profile = profile
        self.seed = seed
        self.index_space = index_space
        self.mapper = mapper or AddressMapper()
        if index_space > self.mapper.sets_per_bank:
            raise TraceError(
                f"index_space {index_space} exceeds the address layout's "
                f"{self.mapper.sets_per_bank} sets"
            )
        layout = self.mapper.layout
        #: Scatter domain: tag x sampled-index x column.
        self._space_bits = (
            layout.tag_bits + index_space.bit_length() - 1 + layout.column_bits
        )
        self._space_mask = (1 << self._space_bits) - 1
        #: Streaming blocks start above any plausible footprint.
        self._stream_base = 1 << (self._space_bits - 1)

    def _scatter(self, block: int) -> int:
        """Bijectively scatter a block id over the sampled block space."""
        return (block * _SCATTER) & self._space_mask

    def _address(self, block: int) -> int:
        """Compose a 32-bit address from a (scattered) block id."""
        layout = self.mapper.layout
        column = block & (layout.num_columns - 1)
        block >>= layout.column_bits
        index = block & (self.index_space - 1)
        block >>= self.index_space.bit_length() - 1
        tag = block & ((1 << layout.tag_bits) - 1)
        return self.mapper.encode(tag=tag, index=index, column=column)

    def generate_with_warmup(
        self, measure: int, mix_factor: float = 0.5
    ) -> tuple[Trace, int]:
        """Trace with a deterministic warm-up prefix; returns (trace, warmup).

        The prefix touches every footprint block once (so compulsory misses
        do not leak into measurement -- the paper's 100 M warm-up
        instructions serve the same purpose) followed by
        ``mix_factor * footprint`` Zipf accesses that establish realistic
        stack order, then *measure* accesses to be measured.
        """
        if measure < 1:
            raise TraceError("measure must be positive")
        resident = self.profile.footprint_blocks + self.profile.band_blocks
        mix = int(resident * mix_factor)
        body = self.generate(mix + measure)
        rng = np.random.default_rng(
            (self.seed + 1, zlib.crc32(self.profile.name.encode("utf-8")))
        )
        order = rng.permutation(resident)
        gaps = rng.geometric(
            p=min(1.0, self.profile.l2_access_per_instr), size=resident
        )
        cover = [
            TraceAccess(
                address=self._address(self._scatter(int(order[i]))),
                is_write=False,
                gap_instructions=int(gaps[i]),
            )
            for i in range(resident)
        ]
        trace = Trace(
            cover + list(body),
            name=f"{self.profile.name}-w{resident + mix}+{measure}@{self.seed}",
        )
        return trace, resident + mix

    def generate(self, length: int) -> Trace:
        """Produce a trace of *length* accesses."""
        if length < 1:
            raise TraceError("trace length must be positive")
        profile = self.profile
        if profile.footprint_blocks + profile.band_blocks >= self._stream_base:
            raise TraceError(
                f"footprint {profile.footprint_blocks} + band "
                f"{profile.band_blocks} exceeds the sampled block space "
                f"({self._stream_base})"
            )
        # zlib.crc32 is stable across processes (str.__hash__ is not).
        rng = np.random.default_rng(
            (self.seed, zlib.crc32(profile.name.encode("utf-8")))
        )

        # Zipf over the footprint: p(k) ~ 1 / (k+1)^alpha.
        footprint = profile.footprint_blocks
        ranks = np.arange(1, footprint + 1, dtype=np.float64)
        weights = ranks ** -profile.zipf_alpha
        weights /= weights.sum()
        reuse_blocks = rng.choice(footprint, size=length, p=weights)

        # A random rank->block permutation decouples hotness from identity.
        permutation = rng.permutation(footprint)
        reuse_blocks = permutation[reuse_blocks]

        # Component selection: stream | loop band | zipf reuse.
        selector = rng.random(length)
        is_stream = selector < profile.stream_fraction
        is_band = (~is_stream) & (
            selector < profile.stream_fraction + profile.band_fraction
        )
        blocks = reuse_blocks
        if profile.band_fraction > 0:
            band_ids = footprint + rng.integers(
                0, profile.band_blocks, size=length
            )
            blocks = np.where(is_band, band_ids, blocks)
        stream_ids = self._stream_base + np.cumsum(is_stream)
        blocks = np.where(is_stream, stream_ids, blocks)

        is_write = rng.random(length) < profile.write_fraction
        gaps = rng.geometric(
            p=min(1.0, profile.l2_access_per_instr), size=length
        )

        accesses = [
            TraceAccess(
                address=self._address(self._scatter(int(blocks[i]))),
                is_write=bool(is_write[i]),
                gap_instructions=int(gaps[i]),
            )
            for i in range(length)
        ]
        return Trace(accesses, name=f"{profile.name}-{length}@{self.seed}")


def generate_trace(
    profile: BenchmarkProfile,
    length: int = 60_000,
    seed: int = 12345,
    index_space: int = DEFAULT_INDEX_SPACE,
) -> Trace:
    """Convenience wrapper: one-shot deterministic trace."""
    return TraceGenerator(profile, seed, index_space=index_space).generate(length)
