"""The twelve SPEC2000 benchmarks of Table 2.

The first block of fields reproduces Table 2 verbatim (instructions
executed, perfect-L2 IPC, L2 reads/writes, accesses per instruction). The
second block parameterizes the synthetic trace generator so the simulated
L2 lands in the regime the paper reports for each benchmark:

* ``footprint_blocks`` -- distinct 64 B blocks the benchmark touches,
  calibrated against the *set-sampled* effective cache of the default
  trace generator (16 columns x 8 indexes x 16 ways = 2048 blocks):
  ``art`` fits entirely, ``mcf`` overflows it roughly 2.5-fold;
* ``zipf_alpha`` -- reuse skew (higher = hotter head = more MRU-bank hits);
* ``stream_fraction`` -- share of accesses that touch never-seen blocks
  (compulsory-miss streams, dominant in ``applu``/``lucas``);
* ``band_fraction`` / ``band_blocks`` -- a medium-reuse *loop band*
  (uniformly re-referenced loop working sets): blocks re-touched every few
  same-set insertions, which true LRU retains but D-NUCA's one-step
  Promotion loses -- the structure behind the paper's "LRU generates 14 %
  higher cache hit rate than Promotion".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

MILLION = 1_000_000


@dataclass(frozen=True)
class BenchmarkProfile:
    """One Table-2 benchmark plus its synthetic-locality parameters."""

    name: str
    suite: str  # "FP" or "INT"
    instructions: int
    perfect_l2_ipc: float
    l2_reads: int
    l2_writes: int
    l2_access_per_instr: float
    footprint_blocks: int
    zipf_alpha: float
    stream_fraction: float
    band_fraction: float = 0.0
    band_blocks: int = 0

    def __post_init__(self) -> None:
        if self.suite not in ("FP", "INT"):
            raise ConfigurationError(f"suite must be FP or INT, got {self.suite!r}")
        if not 0.0 <= self.stream_fraction < 1.0:
            raise ConfigurationError("stream_fraction must be in [0, 1)")
        if not 0.0 <= self.band_fraction < 1.0:
            raise ConfigurationError("band_fraction must be in [0, 1)")
        if self.stream_fraction + self.band_fraction >= 1.0:
            raise ConfigurationError("stream + band fractions must leave zipf mass")
        if self.band_fraction > 0 and self.band_blocks < 1:
            raise ConfigurationError("band_fraction needs band_blocks >= 1")
        if self.footprint_blocks < 1:
            raise ConfigurationError("footprint_blocks must be positive")

    @property
    def l2_accesses(self) -> int:
        return self.l2_reads + self.l2_writes

    @property
    def write_fraction(self) -> float:
        return self.l2_writes / self.l2_accesses

    @property
    def mean_gap_instructions(self) -> float:
        """Average instructions between consecutive L2 accesses."""
        return 1.0 / self.l2_access_per_instr


def _p(name, suite, instr_m, ipc, reads_m, writes_m, api, fp, alpha, stream,
       band=0.0, band_blocks=0):
    return BenchmarkProfile(
        name=name,
        suite=suite,
        instructions=int(instr_m * MILLION),
        perfect_l2_ipc=ipc,
        l2_reads=int(reads_m * MILLION),
        l2_writes=int(writes_m * MILLION),
        l2_access_per_instr=api,
        footprint_blocks=fp,
        zipf_alpha=alpha,
        stream_fraction=stream,
        band_fraction=band,
        band_blocks=band_blocks,
    )


#: Table 2 of the paper, augmented with synthetic-locality parameters.
BENCHMARKS: tuple[BenchmarkProfile, ...] = (
    _p("applu", "FP", 500, 0.43, 9.444, 4.428, 0.028, 1_500, 0.85, 0.28,
       band=0.26, band_blocks=450),
    _p("apsi", "FP", 1000, 0.40, 12.375, 8.204, 0.021, 1_600, 0.95, 0.06,
       band=0.22, band_blocks=700),
    _p("art", "FP", 500, 0.40, 63.877, 13.578, 0.155, 800, 0.95, 0.00),
    _p("galgel", "FP", 2000, 0.43, 19.415, 4.137, 0.012, 1_100, 1.00, 0.03,
       band=0.15, band_blocks=600),
    _p("lucas", "FP", 1000, 0.44, 19.506, 13.226, 0.033, 1_700, 0.85, 0.24,
       band=0.26, band_blocks=500),
    _p("mesa", "FP", 2000, 0.40, 2.907, 2.656, 0.003, 400, 1.00, 0.01),
    _p("bzip2", "INT", 2000, 0.39, 16.301, 4.233, 0.010, 1_200, 0.95, 0.04,
       band=0.18, band_blocks=700),
    _p("gcc", "INT", 500, 0.29, 26.201, 14.827, 0.082, 2_000, 0.95, 0.06,
       band=0.28, band_blocks=650),
    _p("mcf", "INT", 250, 0.34, 29.500, 15.755, 0.181, 5_000, 0.80, 0.08,
       band=0.34, band_blocks=900),
    _p("parser", "INT", 2000, 0.38, 18.257, 6.915, 0.013, 1_300, 0.95, 0.04,
       band=0.18, band_blocks=700),
    _p("twolf", "INT", 1000, 0.38, 20.283, 7.653, 0.028, 900, 1.00, 0.02,
       band=0.15, band_blocks=600),
    _p("vpr", "INT", 1000, 0.41, 12.459, 5.024, 0.017, 850, 1.00, 0.02,
       band=0.12, band_blocks=500),
)

_BY_NAME = {profile.name: profile for profile in BENCHMARKS}

BENCHMARK_NAMES = tuple(_BY_NAME)


def profile_by_name(name: str) -> BenchmarkProfile:
    """Fetch a Table-2 benchmark profile by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; known: {', '.join(_BY_NAME)}"
        ) from None
