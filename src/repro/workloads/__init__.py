"""Synthetic SPEC2000-like L2 workloads (substitution for sim-alpha traces).

Each benchmark of Table 2 becomes a :class:`BenchmarkProfile` carrying the
paper's measured statistics plus locality parameters (footprint, Zipf skew,
streaming fraction) that put the synthetic trace in the same hit-rate and
reuse regime the paper describes.
"""

from repro.workloads.profiles import (
    BENCHMARKS,
    BenchmarkProfile,
    profile_by_name,
)
from repro.workloads.trace import Trace, TraceAccess
from repro.workloads.generator import TraceGenerator, generate_trace

__all__ = [
    "BenchmarkProfile",
    "BENCHMARKS",
    "profile_by_name",
    "Trace",
    "TraceAccess",
    "TraceGenerator",
    "generate_trace",
]
