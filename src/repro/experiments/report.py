"""Plain-text table/series rendering shared by all experiment drivers."""

from __future__ import annotations

from typing import Iterable


def format_table(headers: list[str], rows: Iterable[Iterable], title: str = "") -> str:
    """Render an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_ratio(value: float) -> str:
    """e.g. 1.38 -> '+38%'."""
    return f"{(value - 1) * 100:+.0f}%"
