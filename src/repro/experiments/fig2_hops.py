"""Figure 2 worked example: LRU vs Fast-LRU communication for a hit in bank 4.

The paper walks a 16-bank column where the request hits in the fourth
bank: classic LRU needs 21 hops of communication in total (7 of initial
tag-matching, 14 of post-hit block movement and notification) while
Fast-LRU needs 12, because the eviction chain rides along with the
request.

Rather than re-deriving the paper's exact leg bookkeeping, we *measure*
the communication of both schemes with the flow engine: every channel
acquisition of the transaction is one hop of one message. The absolute
counts differ slightly from the paper's 21/12 (our core-to-column
distance is 0 on the core's own column), but the shape -- Fast-LRU
roughly halving LRU's communication, with identical tag-match cost --
must hold, and the test suite pins it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.address import AddressMapper
from repro.core.system import NetworkedCacheSystem

PAPER_LRU_HOPS = 21
PAPER_FASTLRU_HOPS = 12
#: The paper's example hits the fourth bank (position 3, 0-indexed).
HIT_POSITION = 3
#: A column away from the core, so the request pays realistic row hops.
COLUMN = 4


@dataclass(frozen=True)
class HopMeasurement:
    scheme: str
    total_hops: int
    data_latency: int
    transaction_latency: int


def _measure(scheme: str, column: int = COLUMN) -> HopMeasurement:
    system = NetworkedCacheSystem(design="A", scheme=scheme)
    mapper = AddressMapper()
    index = 7
    # Fill the set so tags 15..0 sit at ways 0..15; tag (15 - HIT_POSITION)
    # then sits exactly at the paper's hit bank.
    for tag in range(16):
        system.access(mapper.encode(tag=tag, index=index, column=column), at=0)
    system.geometry.reset_contention()
    system.memory.reset()
    system.engine.reset()
    before = _channel_grants(system)
    timing = system.access(
        mapper.encode(tag=15 - HIT_POSITION, index=index, column=column),
        at=10_000,
    )
    assert timing.hit and timing.bank_position == HIT_POSITION
    after = _channel_grants(system)
    return HopMeasurement(
        scheme=scheme,
        total_hops=after - before,
        data_latency=timing.latency,
        transaction_latency=timing.transaction_latency,
    )


def _channel_grants(system: NetworkedCacheSystem) -> int:
    return sum(
        resource.grants
        for resource in system.geometry._channel_resources.values()
    )


def run() -> dict[str, HopMeasurement]:
    return {
        "lru": _measure("unicast+lru"),
        "fast_lru": _measure("unicast+fast_lru"),
    }


def render(results: dict[str, HopMeasurement]) -> str:
    lru = results["lru"]
    fast = results["fast_lru"]
    return "\n".join(
        [
            "Figure 2 example: hit in the 4th bank of a 16-way column",
            f"  LRU:      {lru.total_hops} hops, transaction "
            f"{lru.transaction_latency} cycles (paper: {PAPER_LRU_HOPS} hops)",
            f"  Fast-LRU: {fast.total_hops} hops, transaction "
            f"{fast.transaction_latency} cycles (paper: {PAPER_FASTLRU_HOPS} hops)",
            f"  hop saving: {1 - fast.total_hops / lru.total_hops:.0%} "
            f"(paper: {1 - PAPER_FASTLRU_HOPS / PAPER_LRU_HOPS:.0%})",
        ]
    )
