"""Figure 9: normalized IPC of Designs A-F under Multicast Fast-LRU.

The paper's shape: B tracks A (with +7-10 % for the low-hit-rate
benchmarks thanks to the core-adjacent memory controller), the big-bank
meshes C and D degrade (-14 % / -12 % on average, most visibly for the
hit-dominated ``art``), and the halos win (E +12 %, F +13 %; ``art``
x1.33 and ``lucas`` x1.19 on F).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.designs import DESIGN_NAMES, design_spec
from repro.experiments.charts import horizontal_bars
from repro.experiments.common import ExperimentConfig, geometric_mean, run_systems
from repro.experiments.report import format_table

SCHEME = "multicast+fast_lru"


@dataclass
class Figure9Result:
    benchmarks: list[str]
    #: design -> benchmark -> absolute IPC
    ipc: dict[str, dict[str, float]] = field(default_factory=dict)

    def normalized(self, design: str, benchmark: str) -> float:
        return self.ipc[design][benchmark] / self.ipc["A"][benchmark]

    def geomean_normalized(self, design: str) -> float:
        return geometric_mean(
            [self.normalized(design, b) for b in self.benchmarks]
        )


def run(config: ExperimentConfig | None = None) -> Figure9Result:
    config = config or ExperimentConfig()
    cells = [
        (design, SCHEME, benchmark)
        for design in DESIGN_NAMES
        for benchmark in config.benchmarks
    ]
    results = run_systems(cells, config)
    result = Figure9Result(benchmarks=list(config.benchmarks))
    for design in DESIGN_NAMES:
        result.ipc[design] = {
            benchmark: results[(design, SCHEME, benchmark)].ipc
            for benchmark in config.benchmarks
        }
    return result


def render(result: Figure9Result) -> str:
    rows = []
    for benchmark in result.benchmarks:
        rows.append(
            [benchmark]
            + [result.normalized(design, benchmark) for design in DESIGN_NAMES]
        )
    rows.append(
        ["GEOMEAN"] + [result.geomean_normalized(d) for d in DESIGN_NAMES]
    )
    headers = ["benchmark"] + [
        f"{d}: {design_spec(d).label}" for d in DESIGN_NAMES
    ]
    table = format_table(
        headers,
        rows,
        title="Figure 9: normalized IPC (Multicast Fast-LRU, vs Design A)",
    )
    chart = horizontal_bars(
        {d: result.geomean_normalized(d) for d in DESIGN_NAMES},
        baseline=1.0,
        unit="x",
    )
    paper = (
        "paper averages: B ~= A, C -14%, D -12%, E +12%, F +13% "
        "(art x1.33 / lucas x1.19 on F)"
    )
    return f"{table}\n\nGeomean normalized IPC:\n{chart}\n\n{paper}"
