"""Technology sensitivity of the halo's advantage.

The halo wins because wires are slow relative to the core and the memory
is far; both are technology parameters. This experiment sweeps them:

* **memory latency** -- with much faster (or slower) off-chip memory, how
  does the Design-F-over-Design-A IPC ratio move? (Slower memory dilutes
  the on-chip advantage for miss-heavy mixes; faster memory amplifies
  the hit-path win.)
* **wire delay** -- scaling every Table-1 wire delay by k models worse
  (or better) global wires; the halo's short MRU paths should matter
  *more* as wires get worse, which is the paper's underlying bet on
  technology scaling ("increasing wire delays ... lead to various
  technologies to minimize the impact of slow on-chip communication").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, geometric_mean
from repro.experiments.runner import run_cells, spec_for

BENCHMARKS = ("art", "twolf", "mcf")
SCHEME = "multicast+fast_lru"


@dataclass(frozen=True)
class SensitivityPoint:
    parameter: str
    value: float
    ipc_a: float
    ipc_f: float

    @property
    def halo_ratio(self) -> float:
        return self.ipc_f / self.ipc_a


def _sweep(
    config: ExperimentConfig, parameter: str, values: tuple, overrides_of
) -> list[SensitivityPoint]:
    """One engine batch covering every (value, design, benchmark) cell.

    The model override travels inside each :class:`CellSpec`, so workers
    apply it locally (and restore it) instead of the sweep mutating
    ``repro.config`` around serial runs.
    """
    specs = [
        spec_for(design, SCHEME, benchmark, config, **overrides_of(value))
        for value in values
        for design in ("A", "F")
        for benchmark in BENCHMARKS
    ]
    results = iter(run_cells(specs))
    points = []
    for value in values:
        ipc = {
            design: geometric_mean([next(results).ipc for _ in BENCHMARKS])
            for design in ("A", "F")
        }
        points.append(
            SensitivityPoint(
                parameter=parameter, value=value, ipc_a=ipc["A"], ipc_f=ipc["F"]
            )
        )
    return points


def memory_latency_sweep(
    config: ExperimentConfig | None = None,
    base_latencies: tuple = (60, 130, 300),
) -> list[SensitivityPoint]:
    """Sweep the off-chip base latency (Table 1 uses 130 cycles)."""
    config = config or ExperimentConfig()
    return _sweep(
        config,
        "memory_base_latency",
        base_latencies,
        lambda base: {"memory_base_latency": base},
    )


def wire_delay_sweep(
    config: ExperimentConfig | None = None,
    scales: tuple = (1, 2, 3),
) -> list[SensitivityPoint]:
    """Scale every Table-1 wire delay by an integer factor."""
    config = config or ExperimentConfig()
    return _sweep(
        config,
        "wire_delay_scale",
        scales,
        lambda scale: {"wire_delay_scale": scale},
    )


def render(points: list[SensitivityPoint], title: str) -> str:
    lines = [title, "=" * len(title),
             f"{'value':>8} {'IPC A':>8} {'IPC F':>8} {'F / A':>7}"]
    for point in points:
        lines.append(
            f"{point.value:>8.0f} {point.ipc_a:>8.3f} {point.ipc_f:>8.3f} "
            f"{point.halo_ratio:>7.2f}"
        )
    return "\n".join(lines)
